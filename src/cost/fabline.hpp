// fabline.hpp — fabline capacity, utilization and cost-of-ownership model.
//
// Section III.A.d: wafer cost depends strongly on how well the fabline's
// equipment is utilized, because "the cost of ownership for equipment may
// be the same for active and inactive usage".  A mono-product high-volume
// line can be sized so every tool group runs near capacity; a low-volume
// multi-product line must own at least one of every tool its product mix
// touches and pays for the idle time.  The detailed study the paper cites
// [12] found the resulting wafer-cost ratio can reach 7x.
//
// Model: a fabline owns integer counts of tools in a set of tool groups.
// Each wafer of product p makes `passes` visits to each group; a visit
// consumes 1/throughput hours.  The line pays cost-of-ownership per owned
// tool-hour regardless of usage, and allocates the period cost over the
// wafers produced.

#pragma once

#include "core/units.hpp"

#include <string>
#include <vector>

namespace silicon::cost {

/// One equipment (tool) group.
struct tool_group {
    std::string name;
    dollars ownership_per_hour{0.0};  ///< cost of owning one tool, per hour
    double wafers_per_hour = 1.0;     ///< throughput of one tool, visits/hour
};

/// Number of visits one wafer of a product makes to each tool group
/// (parallel to the fabline's group list).
struct wafer_recipe {
    std::string name;
    std::vector<double> passes;
};

/// A product demand: recipe plus wafer starts per period.
struct product_demand {
    wafer_recipe recipe;
    double wafers_per_period = 0.0;
};

/// Per-group line report.
struct group_load {
    std::string name;
    int tools = 0;              ///< owned tool count
    double required_hours = 0.0;///< demanded tool-hours in the period
    double capacity_hours = 0.0;///< owned tool-hours in the period
    double utilization = 0.0;   ///< required / capacity
    dollars period_cost{0.0};   ///< ownership cost of the group
};

/// Whole-line report for one product mix.
struct fabline_report {
    std::vector<group_load> groups;
    double total_wafers = 0.0;
    dollars period_cost{0.0};
    dollars cost_per_wafer{0.0};
    double bottleneck_utilization = 0.0;  ///< max group utilization
    double average_utilization = 0.0;     ///< tool-hour weighted mean
};

/// Fabline: tool groups, a period length, and a sizing policy.
class fabline {
public:
    /// @param groups the tool set; throughputs must be positive.
    /// @param hours_per_period scheduling period, e.g. 720 h/month.
    fabline(std::vector<tool_group> groups, double hours_per_period);

    [[nodiscard]] const std::vector<tool_group>& groups() const noexcept {
        return groups_;
    }
    [[nodiscard]] double hours_per_period() const noexcept {
        return hours_per_period_;
    }

    /// Tool-hours demanded per group by the mix (validates recipe widths).
    [[nodiscard]] std::vector<double> required_hours(
        const std::vector<product_demand>& mix) const;

    /// Minimal integer tool counts covering the mix's demand (at most
    /// `max_utilization` loading per group, default 95%).  Groups with no
    /// demand get zero tools.
    [[nodiscard]] std::vector<int> size_line(
        const std::vector<product_demand>& mix,
        double max_utilization = 0.95) const;

    /// Analyze a mix running on a line with the given tool counts.
    /// Throws std::invalid_argument when any group would exceed 100%
    /// utilization (infeasible schedule) or when vector widths mismatch.
    [[nodiscard]] fabline_report analyze(
        const std::vector<product_demand>& mix,
        const std::vector<int>& tools) const;

    /// Convenience: size the line for the mix, then analyze it.
    [[nodiscard]] fabline_report analyze_sized(
        const std::vector<product_demand>& mix,
        double max_utilization = 0.95) const;

    /// A generic 8-group CMOS line with early-90s ownership costs and
    /// throughputs (lithography most expensive, cleans cheapest).
    [[nodiscard]] static fabline generic_cmos(double hours_per_period =
                                                  720.0);

    /// A recipe for the generic_cmos line derived from a synthesized
    /// process (pass counts per group for a CMOS flow at the given
    /// feature size / metal stack).
    [[nodiscard]] static wafer_recipe generic_recipe(double feature_um,
                                                     int metal_layers);

private:
    std::vector<tool_group> groups_;
    double hours_per_period_;
};

}  // namespace silicon::cost
