// batch_fast_avx2.cpp — AVX2 compilation of the fast cost kernel
// bodies (see cost/batch_fast_impl.hpp and yield/batch_fast_impl.hpp
// for the per-ISA pass-compilation scheme and the bit-identity
// argument).  Compiled with -mavx2 -mfma -ffp-contract=off on x86-64
// only; nothing here runs unless simd::active_target() resolved to
// avx2.

#if defined(__x86_64__) || defined(_M_X64)

#define SILICON_FAST_IMPL_NS avx2
#include "cost/batch_fast_impl.hpp"
#undef SILICON_FAST_IMPL_NS

#endif  // x86-64
