// mcm.hpp — multi-chip module system cost and the known-good-die problem.
//
// Section VI's MCM argument ([30,31]): an MCM's economics are dominated by
// the probability that *all* bare dies on the substrate are good.  Three
// strategies are compared:
//
//   * bare      — assemble wafer-sorted dies as-is.  Sort coverage is
//                 imperfect, so each die carries a defect level
//                 (Williams-Brown); one escape scraps the module.
//   * kgd       — pay for known-good-die testing (burn-in + full test)
//                 per die before assembly: near-unity coverage, much
//                 higher per-die test cost.
//   * smart     — the paper's "smart substrate" [30]: an active (more
//                 expensive) substrate with built-in self-test that can
//                 diagnose bad dies after assembly, enabling rework
//                 (replace just the bad die) instead of scrapping.
//
// The reproduction claim (bench_ablate_mcm): bare assembly collapses as
// the die count grows, KGD pays a per-die premium that dominates small
// modules, and the smart substrate wins for larger modules — which is why
// the paper argues that judging MCMs by substrate cost alone ("traditional
// MCM strategies focus on the cost of the substrate itself") misses
// system-level gains.

#pragma once

#include "core/units.hpp"

#include <string>
#include <vector>

namespace silicon::cost {

/// One die type placed on the module.
struct mcm_die {
    std::string name;
    dollars cost{10.0};            ///< cost of one sorted bare die
    probability sort_escape{0.05}; ///< P(die is bad despite passing sort)
    probability attach_yield{0.99};///< P(attach operation succeeds)

    /// P(slot ends up with a working, attached die in one attempt).
    [[nodiscard]] probability slot_yield() const {
        return sort_escape.complement() * attach_yield;
    }
};

/// Assembly strategy.
enum class mcm_strategy { bare, kgd, smart_substrate };

/// Module-level parameters.
struct mcm_config {
    std::vector<mcm_die> dies;
    dollars substrate_cost{50.0};        ///< passive substrate
    dollars smart_substrate_cost{150.0}; ///< active substrate premium
    dollars kgd_test_cost_per_die{8.0};  ///< burn-in + full test per die
    probability kgd_escape{0.002};       ///< residual escape after KGD
    dollars rework_cost_per_die{5.0};    ///< remove + re-attach labor
    dollars module_test_cost{3.0};       ///< post-assembly module test
};

/// Cost analysis of one strategy.
struct mcm_result {
    mcm_strategy strategy;
    probability module_yield{0.0};     ///< P(first-pass module works)
    dollars cost_per_attempt{0.0};     ///< materials + work per attempt
    dollars cost_per_good_module{0.0}; ///< the figure of merit
    double expected_rework_operations = 0.0;  ///< smart substrate only
};

/// Evaluate one strategy; throws std::invalid_argument on an empty die
/// list or out-of-range parameters, std::domain_error when a strategy's
/// module yield underflows to zero (cost would be unbounded).
[[nodiscard]] mcm_result evaluate_mcm(const mcm_config& config,
                                      mcm_strategy strategy);

/// Evaluate all three strategies in enum order.
[[nodiscard]] std::vector<mcm_result> compare_mcm_strategies(
    const mcm_config& config);

/// Strategy name for tables.
[[nodiscard]] std::string to_string(mcm_strategy strategy);

/// Convenience: a module of `count` identical dies.
[[nodiscard]] mcm_config uniform_module(int count, const mcm_die& prototype,
                                        const mcm_config& base = {});

}  // namespace silicon::cost
