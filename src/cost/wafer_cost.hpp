// wafer_cost.hpp — wafer manufacturing cost model (paper Eqs. 2 and 3).
//
// Eq. (2) splits the per-wafer cost into the "pure" manufacturing cost
// C'_w and amortized overhead:  C_w(V) = C'_w + C_over / V.
//
// Eq. (3) models C'_w as a function of the minimum feature size with a
// per-generation escalation rate X:
//
//     C'_w = C_0 * X^((1 - lambda) / g)
//
// where g is the feature-size step between technology generations and
// C_0 is the cost of the 1 um reference wafer.
//
// REPRODUCTION NOTE (see EXPERIMENTS.md): the paper typesets the exponent
// as "0.5 (1 - lambda)".  That form cannot reproduce any row of the
// paper's own Table 3; the exponent (1 - lambda)/0.2 — i.e. X applied per
// 0.2 um generation step, numerically 5*(1-lambda) — reproduces all
// cross-checkable Table 3 rows to every printed digit (rows 1-3, 11,
// 13-14 verified analytically).  We therefore treat the printed "0.5" as
// a typo for the generation step of 0.2 um and expose the step as a
// parameter (default 0.2 um).  With lambda = 1 um the model returns C_0
// for every X, as it must.

#pragma once

#include "core/units.hpp"

namespace silicon::cost {

/// Eq. (3) with the Table-3-validated per-generation exponent.
class wafer_cost_model {
public:
    /// @param c0 reference wafer cost at lambda = 1 um (paper: $500-$1500
    ///           depending on product class, Table 3 column C_0).
    /// @param x  per-generation escalation rate; the paper quotes values
    ///           between 1.1 (optimistic Scenario #1) and 2.4.
    /// @param generation_step feature-size decrease per technology
    ///           generation; the Table 3 calibration implies 0.2 um.
    wafer_cost_model(dollars c0, double x,
                     microns generation_step = microns{0.2});

    [[nodiscard]] dollars c0() const noexcept { return c0_; }
    [[nodiscard]] double x() const noexcept { return x_; }
    [[nodiscard]] microns generation_step() const noexcept {
        return generation_step_;
    }

    /// Number of technology generations between the 1 um reference and
    /// `lambda`: (1 - lambda)/step.  Negative for lambda > 1 um (older,
    /// cheaper technology).
    [[nodiscard]] double generations_from_reference(microns lambda) const;

    /// C'_w(lambda) — Eq. (3).
    [[nodiscard]] dollars pure_wafer_cost(microns lambda) const;

    /// Eq. (2): C_w = C'_w + C_over / V for a production volume of
    /// `volume_wafers` wafers.  Throws std::invalid_argument when the
    /// volume is not positive while overhead is.
    [[nodiscard]] dollars wafer_cost_at_volume(microns lambda,
                                               dollars overhead,
                                               double volume_wafers) const;

    /// The X implied by two (lambda, cost) observations — the inverse
    /// problem used to extract X = 1.2-1.4 from Fig. 2's curves.
    [[nodiscard]] static double extract_x(
        microns lambda_a, dollars cost_a, microns lambda_b, dollars cost_b,
        microns generation_step = microns{0.2});

private:
    dollars c0_;
    double x_;
    microns generation_step_;
};

}  // namespace silicon::cost
