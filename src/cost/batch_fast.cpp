// batch_fast.cpp — fast_math variants of the SoA cost kernels.
//
// Same block structure as yield/batch_fast.cpp: classify lanes with
// the scalar kernels' guard chains, mask invalid lanes to benign
// arguments *before* the vector transcendental, then apply the scalar
// post-guards.  See cost/batch.hpp for the fast_math contract.
//
// The kernel bodies live in batch_fast_impl.hpp and are compiled with
// the portable baseline flags here (namespace `baseline`) and — on
// x86-64 — with AVX2 flags in batch_fast_avx2.cpp (namespace `avx2`),
// bit-identically; each public kernel picks the variant once from
// simd::active_target().

#include "cost/batch.hpp"

#include <cstddef>
#include <limits>

#include "simd/dispatch.hpp"

#define SILICON_FAST_IMPL_NS baseline
#include "cost/batch_fast_impl.hpp"
#undef SILICON_FAST_IMPL_NS

namespace silicon::cost::batch {

#if defined(__x86_64__) || defined(_M_X64)
// Defined in batch_fast_avx2.cpp from the same impl header.
namespace avx2 {
void pure_wafer_cost_fast(const double*, const double*, const double*,
                          double, double*, std::size_t);
void scenario1_cost_per_transistor_fast(const scenario_columns&, double*,
                                        std::size_t);
void scenario2_cost_per_transistor_fast(const scenario_columns&, double*,
                                        std::size_t);
}  // namespace avx2
#endif

namespace {

inline bool wide_passes() {
#if defined(__x86_64__) || defined(_M_X64)
    return simd::active_target() == simd::target::avx2;
#else
    return false;
#endif
}

}  // namespace

void pure_wafer_cost_fast(const double* c0_usd, const double* x,
                          const double* lambda_um,
                          double generation_step_um, double* out,
                          std::size_t n) {
    if (!(generation_step_um > 0.0)) {
        for (std::size_t i = 0; i < n; ++i) {
            out[i] = std::numeric_limits<double>::quiet_NaN();
        }
        return;
    }
#if defined(__x86_64__) || defined(_M_X64)
    if (wide_passes()) {
        avx2::pure_wafer_cost_fast(c0_usd, x, lambda_um,
                                   generation_step_um, out, n);
        return;
    }
#endif
    baseline::pure_wafer_cost_fast(c0_usd, x, lambda_um,
                                   generation_step_um, out, n);
}

void scenario1_cost_per_transistor_fast(const scenario_columns& in,
                                        double* out, std::size_t n) {
#if defined(__x86_64__) || defined(_M_X64)
    if (wide_passes()) {
        avx2::scenario1_cost_per_transistor_fast(in, out, n);
        return;
    }
#endif
    baseline::scenario1_cost_per_transistor_fast(in, out, n);
}

void scenario2_cost_per_transistor_fast(const scenario_columns& in,
                                        double* out, std::size_t n) {
#if defined(__x86_64__) || defined(_M_X64)
    if (wide_passes()) {
        avx2::scenario2_cost_per_transistor_fast(in, out, n);
        return;
    }
#endif
    baseline::scenario2_cost_per_transistor_fast(in, out, n);
}

}  // namespace silicon::cost::batch
