#include "cost/investment.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::cost {

namespace {

void validate(const fab_investment& plan) {
    if (!(plan.capital.value() > 0.0)) {
        throw std::invalid_argument(
            "fab_investment: capital must be positive");
    }
    if (plan.life_quarters < 1) {
        throw std::invalid_argument(
            "fab_investment: horizon must be at least one quarter");
    }
    if (!(plan.wafers_per_quarter > 0.0)) {
        throw std::invalid_argument(
            "fab_investment: capacity must be positive");
    }
    if (plan.ramp_quarters < 0) {
        throw std::invalid_argument(
            "fab_investment: ramp must be >= 0 quarters");
    }
    if (!(plan.utilization > 0.0 && plan.utilization <= 1.0)) {
        throw std::invalid_argument(
            "fab_investment: utilization must be in (0, 1]");
    }
    if (!(plan.margin_erosion_per_quarter >= 0.0 &&
          plan.margin_erosion_per_quarter < 1.0)) {
        throw std::invalid_argument(
            "fab_investment: erosion must be in [0, 1)");
    }
    if (!(plan.discount_rate_per_quarter >= 0.0 &&
          plan.discount_rate_per_quarter < 1.0)) {
        throw std::invalid_argument(
            "fab_investment: discount rate must be in [0, 1)");
    }
}

}  // namespace

investment_result evaluate_investment(const fab_investment& plan) {
    validate(plan);

    investment_result result;
    result.quarters.reserve(static_cast<std::size_t>(plan.life_quarters));
    double cumulative = -plan.capital.value();
    for (int q = 0; q < plan.life_quarters; ++q) {
        quarter_cash_flow row;
        row.quarter = q;
        const double ramp =
            plan.ramp_quarters == 0
                ? 1.0
                : std::min(1.0, static_cast<double>(q + 1) /
                                    (plan.ramp_quarters + 1));
        row.wafers = plan.wafers_per_quarter * plan.utilization * ramp;
        row.margin_per_wafer =
            plan.margin_per_wafer *
            std::pow(1.0 - plan.margin_erosion_per_quarter, q);
        row.cash = dollars{row.wafers * row.margin_per_wafer.value()};
        row.discounted =
            row.cash /
            std::pow(1.0 + plan.discount_rate_per_quarter, q + 1);
        cumulative += row.discounted.value();
        row.cumulative_npv = dollars{cumulative};
        if (result.payback_quarter < 0 && cumulative >= 0.0) {
            result.payback_quarter = q;
        }
        result.quarters.push_back(row);
    }
    result.npv = dollars{cumulative};

    // Utilization at which NPV crosses zero (bisection; monotone in
    // utilization because cash is linear in it).
    double lo = 0.0;
    double hi = 1.0;
    const auto npv_at = [&](double utilization) {
        if (utilization <= 0.0) {
            return -plan.capital.value();
        }
        fab_investment probe = plan;
        probe.utilization = utilization;
        return investment_npv(probe).value();
    };
    if (npv_at(1.0) <= 0.0) {
        result.internal_utilization_breakeven = 1.0;  // never pays
    } else {
        for (int iter = 0; iter < 60; ++iter) {
            const double mid = 0.5 * (lo + hi);
            if (npv_at(mid) < 0.0) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        result.internal_utilization_breakeven = 0.5 * (lo + hi);
    }
    return result;
}

dollars investment_npv(const fab_investment& plan) {
    validate(plan);
    double cumulative = -plan.capital.value();
    for (int q = 0; q < plan.life_quarters; ++q) {
        const double ramp =
            plan.ramp_quarters == 0
                ? 1.0
                : std::min(1.0, static_cast<double>(q + 1) /
                                    (plan.ramp_quarters + 1));
        const double wafers =
            plan.wafers_per_quarter * plan.utilization * ramp;
        const double margin =
            plan.margin_per_wafer.value() *
            std::pow(1.0 - plan.margin_erosion_per_quarter, q);
        cumulative += wafers * margin /
                      std::pow(1.0 + plan.discount_rate_per_quarter, q + 1);
    }
    return dollars{cumulative};
}

}  // namespace silicon::cost
