// test_cost.hpp — test economics (Sec. III.A.e and Sec. VI).
//
// The paper stresses that "the cost of testing a wafer may be comparable
// with the cost of manufacturing" and that adequate analytical test cost
// models are missing; Sec. VI calls for models linking test cost to "the
// probability of fault escapes" [32] and for quantifying what DFT/BIST
// buys.  This module supplies the standard ingredients:
//
//   * a tester time/cost model: probe (wafer sort) tests every gross die,
//     final test every packaged part; test time grows with transistor
//     count (log-depth scan patterns: t = t0 + k * log2(N_tr) per vector
//     burst — the conventional first-order model);
//   * the Williams-Brown escape model: after a test with fault coverage
//     T on a die with true yield Y, the shipped defect level is
//     DL = 1 - Y^(1-T);
//   * a DFT/BIST trade: area overhead shrinks yield a little but raises
//     coverage and cuts tester seconds — exactly the "is DFT worth it"
//     question the paper says designers cannot answer today.

#pragma once

#include "core/units.hpp"

namespace silicon::cost {

/// Tester characteristics.
struct tester_spec {
    dollars rate_per_hour{1000.0};  ///< fully loaded tester+handler rate
    double seconds_fixed = 0.5;     ///< per-die handling/index time
    double seconds_per_megavector = 1.0;  ///< raw pattern application time
};

/// Test program characteristics for one product.
struct test_program {
    double transistors = 1e6;     ///< device size (drives pattern count)
    double fault_coverage = 0.95; ///< T in [0,1]
    double vectors_per_kilotransistor = 2.0;  ///< pattern density
};

/// Seconds on the tester for one execution of the program.
[[nodiscard]] double test_seconds(const tester_spec& tester,
                                  const test_program& program);

/// Dollars for one execution of the program.
[[nodiscard]] dollars test_cost_per_die(const tester_spec& tester,
                                        const test_program& program);

/// Williams-Brown defect level: fraction of *passing* dies that are in
/// fact faulty, DL = 1 - Y^(1-T).  `yield` is the true die yield, and
/// `coverage` the test's fault coverage.
[[nodiscard]] probability defect_level(probability yield, double coverage);

/// Probe (wafer sort) cost allocated per *good* die: every gross die is
/// tested but only the yielded fraction carries the bill.
[[nodiscard]] dollars probe_cost_per_good_die(const tester_spec& tester,
                                              const test_program& program,
                                              probability yield);

/// Combined probe + final-test economics for one product.
struct test_economics {
    dollars probe_per_good_die{0.0};
    dollars final_per_good_die{0.0};
    probability shipped_defect_level{0.0};
    dollars escape_cost_per_shipped_die{0.0};  ///< expected field cost
    dollars total_per_shipped_die{0.0};
};

/// Evaluate probe + final test for a die of true yield `yield`; the
/// final test re-screens packaged parts with the same program.  Escaping
/// defects cost `field_cost_per_escape` each (board rework / RMA),
/// which is what makes low coverage expensive even though it is cheap on
/// the tester.
[[nodiscard]] test_economics evaluate_test_economics(
    const tester_spec& tester, const test_program& program,
    probability yield, dollars field_cost_per_escape);

/// DFT/BIST variant of a program: adds `area_overhead` fractional die
/// area (lowering yield slightly — the caller applies that), raises
/// coverage to `coverage_with_dft` and divides vector count by
/// `compression`.  Returns the modified program.
[[nodiscard]] test_program apply_dft(const test_program& base,
                                     double coverage_with_dft,
                                     double compression);

}  // namespace silicon::cost
