#include "cost/product_mix.hpp"

#include <stdexcept>

namespace silicon::cost {

mix_comparison compare_mono_vs_multi(const fabline& line,
                                     const wafer_recipe& mono,
                                     double mono_volume,
                                     const std::vector<product_demand>& mix,
                                     double max_utilization) {
    if (!(mono_volume > 0.0)) {
        throw std::invalid_argument(
            "compare_mono_vs_multi: mono volume must be positive");
    }
    if (mix.empty()) {
        throw std::invalid_argument(
            "compare_mono_vs_multi: the multi-product mix is empty");
    }
    mix_comparison result;
    result.mono = line.analyze_sized({{mono, mono_volume}}, max_utilization);
    result.multi = line.analyze_sized(mix, max_utilization);
    if (result.mono.cost_per_wafer.value() <= 0.0) {
        throw std::domain_error(
            "compare_mono_vs_multi: mono line produced no cost baseline");
    }
    result.cost_ratio = result.multi.cost_per_wafer.value() /
                        result.mono.cost_per_wafer.value();
    return result;
}

std::vector<product_demand> diverse_mix(int products, double wafers_each) {
    if (products < 1) {
        throw std::invalid_argument("diverse_mix: need at least one product");
    }
    if (!(wafers_each > 0.0)) {
        throw std::invalid_argument(
            "diverse_mix: wafer volume must be positive");
    }
    // Rotate through process flavors so no two neighbors load the line the
    // same way: metal stacks 1-4, features 1.2 um down to 0.5 um.
    static constexpr double features[] = {1.2, 1.0, 0.8, 0.6, 0.5};
    std::vector<product_demand> mix;
    mix.reserve(static_cast<std::size_t>(products));
    for (int p = 0; p < products; ++p) {
        const double feature = features[p % 5];
        const int metals = 1 + p % 4;
        wafer_recipe recipe = fabline::generic_recipe(feature, metals);
        recipe.name += " (variant " + std::to_string(p + 1) + ")";
        mix.push_back({std::move(recipe), wafers_each});
    }
    return mix;
}

}  // namespace silicon::cost
