// batch.hpp — structure-of-arrays cost kernels for sweep evaluation.
//
// Companions to yield/batch.hpp on the money side: contiguous-array
// kernels for the pure wafer cost C_w(lambda) = C_0 X^((1-lambda)/step)
// and the paper's Scenario #1 / Scenario #2 cost-per-transistor curves
// (Eqs. (8) and (9)), which are what the serve engine's `sweep`
// endpoint spends its time on (Figs. 6 and 7 are exactly these curves).
//
// Bit-exactness contract (pinned by tests/cost/test_batch.cpp and the
// serve sweep equivalence tests): each lane performs exactly the
// floating-point operations, in the same association order, as
// wafer_cost_model::pure_wafer_cost / scenario1::cost_per_transistor /
// scenario2::cost_per_transistor through the serve endpoint's
// constructor chain.  Lanes whose inputs would make the scalar path
// throw (C_0 <= 0, X < 1, radius <= 0, lambda <= 0, Y_0 outside (0,1],
// overflow to infinity, yield underflow to zero, ...) produce quiet
// NaN, which the engine serializes as JSON null — the bytes the
// per-point error path yields.  Kernels never throw, and lanes are
// independent (sub-range calls compose bit-identically).

#pragma once

#include <cstddef>

namespace silicon::cost::batch {

/// Pure wafer cost C_0 * X^((1 - lambda)/step) per lane, mirroring
/// wafer_cost_model{c0, x, step}.pure_wafer_cost(lambda).  Lane NaN
/// when the model constructor would reject (c0 non-positive or
/// non-finite, x < 1, step not strictly positive), lambda is not
/// strictly positive and finite, or the cost overflows.
void pure_wafer_cost(const double* c0_usd, const double* x,
                     const double* lambda_um, double generation_step_um,
                     double* out, std::size_t n);

/// Parameter columns for the scenario kernels; every pointer spans n
/// lanes.  `y0` is only read by scenario #2.
struct scenario_columns {
    const double* lambda_um = nullptr;
    const double* c0_usd = nullptr;
    const double* x = nullptr;
    const double* wafer_radius_cm = nullptr;
    const double* design_density = nullptr;
    const double* y0 = nullptr;
};

/// Scenario #1 (Eq. (8)): C_tr = C_w(lambda) d_d lambda^2 / A_w in
/// dollars per lane, the serve `scenario1` endpoint's
/// cost_per_transistor_usd.
void scenario1_cost_per_transistor(const scenario_columns& in, double* out,
                                   std::size_t n);

/// Scenario #2 (Eq. (9)): Scenario #1 divided by the reference-die
/// yield Y_0^A(lambda) of the roadmap microprocessor die area
/// A(lambda) = 16.5 exp(-5.3 lambda) cm^2 (A_0 = 1 cm^2), the serve
/// `scenario2` endpoint's cost_per_transistor_usd.
void scenario2_cost_per_transistor(const scenario_columns& in, double* out,
                                   std::size_t n);

// ---- fast_math variants --------------------------------------------
//
// Same lane-validity classification as the scalar kernels above, but
// X^((1-lambda)/step), exp(-5.3 lambda) and Y_0^A go through the
// dispatched vector math in simd/math.hpp, so results agree with the
// scalar kernels only to the ULP bounds in DESIGN.md §15 — not
// bitwise.  Invalid lanes are masked to benign arguments before the
// transcendental and serialize as the same JSON nulls; lanes stay
// independent, so sub-range calls compose bit-identically and
// fast_math sweeps are deterministic across thread counts.  Selected
// by the engine only when engine_config::fast_math is set.

/// Vector-path pure_wafer_cost (same NaN classification).
void pure_wafer_cost_fast(const double* c0_usd, const double* x,
                          const double* lambda_um,
                          double generation_step_um, double* out,
                          std::size_t n);

/// Vector-path scenario1_cost_per_transistor.
void scenario1_cost_per_transistor_fast(const scenario_columns& in,
                                        double* out, std::size_t n);

/// Vector-path scenario2_cost_per_transistor.
void scenario2_cost_per_transistor_fast(const scenario_columns& in,
                                        double* out, std::size_t n);

}  // namespace silicon::cost::batch
