#include "cost/mcm.hpp"

#include <stdexcept>

namespace silicon::cost {

namespace {

void validate(const mcm_config& config) {
    if (config.dies.empty()) {
        throw std::invalid_argument("mcm: module has no dies");
    }
    if (config.substrate_cost.value() < 0.0 ||
        config.smart_substrate_cost.value() < 0.0 ||
        config.kgd_test_cost_per_die.value() < 0.0 ||
        config.rework_cost_per_die.value() < 0.0 ||
        config.module_test_cost.value() < 0.0) {
        throw std::invalid_argument("mcm: costs must be >= 0");
    }
}

}  // namespace

mcm_result evaluate_mcm(const mcm_config& config, mcm_strategy strategy) {
    validate(config);

    mcm_result result;
    result.strategy = strategy;

    switch (strategy) {
        case mcm_strategy::bare: {
            // One attempt: substrate + all dies + module test.  The module
            // works only if every slot got a truly good die attached.
            probability module_yield{1.0};
            dollars materials = config.substrate_cost;
            for (const mcm_die& die : config.dies) {
                module_yield = module_yield * die.slot_yield();
                materials = materials + die.cost;
            }
            result.module_yield = module_yield;
            result.cost_per_attempt = materials + config.module_test_cost;
            if (module_yield.value() <= 0.0) {
                throw std::domain_error(
                    "mcm: bare module yield underflowed to zero");
            }
            result.cost_per_good_module = dollars{
                result.cost_per_attempt.value() / module_yield.value()};
            break;
        }
        case mcm_strategy::kgd: {
            // Dies are screened to the KGD escape level before assembly;
            // the per-die test bill is paid on every die.
            probability module_yield{1.0};
            dollars materials = config.substrate_cost;
            for (const mcm_die& die : config.dies) {
                const probability slot =
                    config.kgd_escape.complement() * die.attach_yield;
                module_yield = module_yield * slot;
                materials = materials + die.cost +
                            config.kgd_test_cost_per_die;
            }
            result.module_yield = module_yield;
            result.cost_per_attempt = materials + config.module_test_cost;
            if (module_yield.value() <= 0.0) {
                throw std::domain_error(
                    "mcm: KGD module yield underflowed to zero");
            }
            result.cost_per_good_module = dollars{
                result.cost_per_attempt.value() / module_yield.value()};
            break;
        }
        case mcm_strategy::smart_substrate: {
            // The active substrate diagnoses bad slots after assembly, so
            // a bad die is replaced (die + rework labor) instead of
            // scrapping the module.  Expected attempts per slot with
            // per-attempt success g is 1/g; the first attempt is part of
            // the build, each extra one costs a die plus rework.
            dollars expected_cost = config.smart_substrate_cost +
                                    config.module_test_cost;
            probability first_pass{1.0};
            double rework_ops = 0.0;
            for (const mcm_die& die : config.dies) {
                const double g = die.slot_yield().value();
                if (g <= 0.0) {
                    throw std::domain_error(
                        "mcm: a die slot can never succeed");
                }
                const double expected_attempts = 1.0 / g;
                const double extra = expected_attempts - 1.0;
                expected_cost =
                    expected_cost +
                    die.cost * expected_attempts +
                    config.rework_cost_per_die * extra;
                rework_ops += extra;
                first_pass = first_pass * die.slot_yield();
            }
            // With diagnosis + rework every module is eventually good, so
            // the expected cost *is* the cost per good module.
            result.module_yield = first_pass;
            result.cost_per_attempt = expected_cost;
            result.cost_per_good_module = expected_cost;
            result.expected_rework_operations = rework_ops;
            break;
        }
    }
    return result;
}

std::vector<mcm_result> compare_mcm_strategies(const mcm_config& config) {
    return {evaluate_mcm(config, mcm_strategy::bare),
            evaluate_mcm(config, mcm_strategy::kgd),
            evaluate_mcm(config, mcm_strategy::smart_substrate)};
}

std::string to_string(mcm_strategy strategy) {
    switch (strategy) {
        case mcm_strategy::bare:            return "bare";
        case mcm_strategy::kgd:             return "known-good-die";
        case mcm_strategy::smart_substrate: return "smart substrate";
    }
    return "unknown";
}

mcm_config uniform_module(int count, const mcm_die& prototype,
                          const mcm_config& base) {
    if (count < 1) {
        throw std::invalid_argument(
            "uniform_module: need at least one die");
    }
    mcm_config config = base;
    config.dies.assign(static_cast<std::size_t>(count), prototype);
    return config;
}

}  // namespace silicon::cost
