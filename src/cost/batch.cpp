#include "cost/batch.hpp"

#include <cmath>
#include <limits>

namespace silicon::cost::batch {

namespace {

constexpr double nan_lane = std::numeric_limits<double>::quiet_NaN();
constexpr double pi = 3.14159265358979323846;  // core/units.hpp disc_area

/// Guards shared by both scenarios: wafer_cost_model{dollars{c0}, x}
/// (dollars finite, c0 > 0, x >= 1; the default generation step 0.2 is
/// always valid), wafer{centimeters{r}} (r finite, >= 0, then > 0),
/// microns{lambda} then the scenarios' lambda > 0 requirement.
bool scenario_inputs_valid(double c0, double x, double r, double l) {
    if (std::isnan(c0) || std::isinf(c0) || !(c0 > 0.0) || !(x >= 1.0)) {
        return false;
    }
    if (!(r >= 0.0) || std::isinf(r) || r <= 0.0) {
        return false;
    }
    if (!(l >= 0.0) || std::isinf(l) || !(l > 0.0)) {
        return false;
    }
    return true;
}

}  // namespace

void pure_wafer_cost(const double* c0_usd, const double* x,
                     const double* lambda_um, double generation_step_um,
                     double* out, std::size_t n) {
    if (!(generation_step_um > 0.0)) {
        for (std::size_t i = 0; i < n; ++i) {
            out[i] = nan_lane;
        }
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double c0 = c0_usd[i];
        const double xi = x[i];
        const double l = lambda_um[i];
        if (std::isnan(c0) || std::isinf(c0) || !(c0 > 0.0) ||
            !(xi >= 1.0) || !(l >= 0.0) || std::isinf(l) || !(l > 0.0)) {
            out[i] = nan_lane;
            continue;
        }
        // Exact scalar association: C_0 * X^((1 - lambda) / step); the
        // dollars constructor on the result maps overflow to NaN.
        const double cw =
            c0 * std::pow(xi, (1.0 - l) / generation_step_um);
        out[i] = (std::isnan(cw) || std::isinf(cw)) ? nan_lane : cw;
    }
}

void scenario1_cost_per_transistor(const scenario_columns& in, double* out,
                                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const double l = in.lambda_um[i];
        const double c0 = in.c0_usd[i];
        const double x = in.x[i];
        const double r = in.wafer_radius_cm[i];
        const double dd = in.design_density[i];
        if (!scenario_inputs_valid(c0, x, r, l)) {
            out[i] = nan_lane;
            continue;
        }
        const double cw = c0 * std::pow(x, (1.0 - l) / 0.2);
        if (std::isnan(cw) || std::isinf(cw)) {  // dollars{cw}
            out[i] = nan_lane;
            continue;
        }
        const double wafer_area_cm2 = pi * r * r;
        if (!(wafer_area_cm2 >= 0.0) ||
            std::isinf(wafer_area_cm2)) {  // square_centimeters ctor
            out[i] = nan_lane;
            continue;
        }
        const double wafer_um2 = wafer_area_cm2 * 1e8;
        const double area_per_transistor_um2 = dd * l * l;
        const double ctr = cw * area_per_transistor_um2 / wafer_um2;
        out[i] = (std::isnan(ctr) || std::isinf(ctr)) ? nan_lane : ctr;
    }
}

void scenario2_cost_per_transistor(const scenario_columns& in, double* out,
                                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const double l = in.lambda_um[i];
        const double c0 = in.c0_usd[i];
        const double x = in.x[i];
        const double r = in.wafer_radius_cm[i];
        const double dd = in.design_density[i];
        const double y0 = in.y0[i];
        // reference_die_yield{probability{y0}}: y0 in [0,1] then > 0.
        if (!(y0 >= 0.0 && y0 <= 1.0) || y0 <= 0.0 ||
            !scenario_inputs_valid(c0, x, r, l)) {
            out[i] = nan_lane;
            continue;
        }
        const double cw = c0 * std::pow(x, (1.0 - l) / 0.2);
        if (std::isnan(cw) || std::isinf(cw)) {  // dollars{cw}
            out[i] = nan_lane;
            continue;
        }
        const double wafer_area_cm2 = pi * r * r;
        if (!(wafer_area_cm2 >= 0.0) || std::isinf(wafer_area_cm2)) {
            out[i] = nan_lane;
            continue;
        }
        const double wafer_um2 = wafer_area_cm2 * 1e8;
        const double area_per_transistor_um2 = dd * l * l;
        // Roadmap die area A(lambda) = 16.5 exp(-5.3 lambda) cm^2 and
        // Y = Y_0^(A / A_0) with the scenario's default A_0 = 1 cm^2.
        const double die_area_cm2 = 16.5 * std::exp(-5.3 * l);
        if (!(die_area_cm2 >= 0.0) || std::isinf(die_area_cm2)) {
            out[i] = nan_lane;
            continue;
        }
        const double y = std::pow(y0, die_area_cm2 / 1.0);
        // probability ctor range check, then the scenario's explicit
        // yield-underflow domain_error.
        if (!(y >= 0.0 && y <= 1.0) || y <= 0.0) {
            out[i] = nan_lane;
            continue;
        }
        const double ctr =
            cw * area_per_transistor_um2 / (wafer_um2 * y);
        out[i] = (std::isnan(ctr) || std::isinf(ctr)) ? nan_lane : ctr;
    }
}

}  // namespace silicon::cost::batch
