#include "cost/assembly.hpp"

#include <stdexcept>

namespace silicon::cost {

dollars package_cost(const package_spec& spec) {
    if (spec.pins < 0) {
        throw std::invalid_argument("package_cost: negative pin count");
    }
    return spec.base_cost + spec.cost_per_pin * static_cast<double>(spec.pins);
}

dollars packaged_part_cost(dollars good_die_cost, const package_spec& spec) {
    if (good_die_cost.value() < 0.0) {
        throw std::invalid_argument(
            "packaged_part_cost: die cost must be >= 0");
    }
    if (spec.assembly_yield.value() <= 0.0) {
        throw std::domain_error(
            "packaged_part_cost: assembly yield must be positive");
    }
    const dollars per_attempt = good_die_cost + package_cost(spec);
    return dollars{per_attempt.value() / spec.assembly_yield.value()};
}

}  // namespace silicon::cost
