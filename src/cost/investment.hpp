// investment.hpp — fabline investment economics (Sec. V, Phase 1).
//
// The paper's Phase 1 describes the "invest-now-to-dominate-later"
// strategy: spend toward $1B on a new-generation fabline, ramp volume,
// and recover the capital from per-wafer margins.  This module prices
// that bet: discounted cash flow of a fab over its depreciation life,
// with a volume ramp, a wafer margin that erodes over time (the paper's
// "decrease in previously lucrative profit margins" [5]), and the X-
// scaled capital cost of the target generation.
//
// It answers the questions the Sec. V narrative hinges on: payback time,
// NPV vs. escalation rate X, and the utilization level below which the
// investment never pays — the mechanism that pushes low-volume players
// out of manufacturing ("fabless") in Phases 2-3.

#pragma once

#include "core/units.hpp"

#include <vector>

namespace silicon::cost {

/// Inputs to the fab investment case.
struct fab_investment {
    dollars capital{1000e6};        ///< fabline construction + equipment
    int life_quarters = 20;         ///< evaluation horizon (5 years)
    double wafers_per_quarter = 60000.0;  ///< capacity at full ramp
    int ramp_quarters = 4;          ///< linear ramp to full volume
    double utilization = 0.9;       ///< steady-state loading
    dollars margin_per_wafer{900.0};///< initial revenue - variable cost
    double margin_erosion_per_quarter = 0.03;  ///< competitive decay
    double discount_rate_per_quarter = 0.03;   ///< cost of capital
};

/// One quarter of the cash flow.
struct quarter_cash_flow {
    int quarter = 0;
    double wafers = 0.0;
    dollars margin_per_wafer{0.0};
    dollars cash{0.0};           ///< undiscounted
    dollars discounted{0.0};
    dollars cumulative_npv{0.0}; ///< including the upfront capital
};

/// Full evaluation.
struct investment_result {
    std::vector<quarter_cash_flow> quarters;
    dollars npv{0.0};           ///< at the horizon
    int payback_quarter = -1;   ///< first quarter with cumulative >= 0,
                                ///< -1 if never within the horizon
    double internal_utilization_breakeven = 0.0;  ///< utilization at
                                ///< which NPV = 0 (bisection)
};

/// Evaluate the case.  Throws std::invalid_argument on non-positive
/// capital/volume/horizon or out-of-range rates.
[[nodiscard]] investment_result evaluate_investment(
    const fab_investment& plan);

/// NPV only (used by the breakeven search and benches).
[[nodiscard]] dollars investment_npv(const fab_investment& plan);

}  // namespace silicon::cost
