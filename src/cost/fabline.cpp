#include "cost/fabline.hpp"

#include "tech/process.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace silicon::cost {

fabline::fabline(std::vector<tool_group> groups, double hours_per_period)
    : groups_{std::move(groups)}, hours_per_period_{hours_per_period} {
    if (groups_.empty()) {
        throw std::invalid_argument("fabline: need at least one tool group");
    }
    if (!(hours_per_period > 0.0)) {
        throw std::invalid_argument(
            "fabline: period length must be positive");
    }
    for (const tool_group& g : groups_) {
        if (!(g.wafers_per_hour > 0.0)) {
            throw std::invalid_argument("fabline: tool group '" + g.name +
                                        "' needs positive throughput");
        }
        if (g.ownership_per_hour.value() < 0.0) {
            throw std::invalid_argument("fabline: tool group '" + g.name +
                                        "' needs non-negative ownership "
                                        "cost");
        }
    }
}

std::vector<double> fabline::required_hours(
    const std::vector<product_demand>& mix) const {
    std::vector<double> hours(groups_.size(), 0.0);
    for (const product_demand& demand : mix) {
        if (demand.recipe.passes.size() != groups_.size()) {
            throw std::invalid_argument(
                "fabline: recipe '" + demand.recipe.name +
                "' does not match the line's tool groups");
        }
        if (!(demand.wafers_per_period >= 0.0)) {
            throw std::invalid_argument(
                "fabline: wafer volume must be >= 0");
        }
        for (std::size_t g = 0; g < groups_.size(); ++g) {
            const double passes = demand.recipe.passes[g];
            if (passes < 0.0) {
                throw std::invalid_argument(
                    "fabline: negative pass count in recipe '" +
                    demand.recipe.name + "'");
            }
            hours[g] += demand.wafers_per_period * passes /
                        groups_[g].wafers_per_hour;
        }
    }
    return hours;
}

std::vector<int> fabline::size_line(const std::vector<product_demand>& mix,
                                    double max_utilization) const {
    if (!(max_utilization > 0.0 && max_utilization <= 1.0)) {
        throw std::invalid_argument(
            "fabline: max utilization must be in (0,1]");
    }
    const std::vector<double> hours = required_hours(mix);
    std::vector<int> tools(groups_.size(), 0);
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        if (hours[g] > 0.0) {
            tools[g] = static_cast<int>(std::ceil(
                hours[g] / (hours_per_period_ * max_utilization)));
        }
    }
    return tools;
}

fabline_report fabline::analyze(const std::vector<product_demand>& mix,
                                const std::vector<int>& tools) const {
    if (tools.size() != groups_.size()) {
        throw std::invalid_argument(
            "fabline: tool count vector does not match groups");
    }
    const std::vector<double> hours = required_hours(mix);

    fabline_report report;
    report.groups.reserve(groups_.size());
    double owned_hours = 0.0;
    double busy_hours = 0.0;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        if (tools[g] < 0) {
            throw std::invalid_argument("fabline: negative tool count");
        }
        group_load load;
        load.name = groups_[g].name;
        load.tools = tools[g];
        load.required_hours = hours[g];
        load.capacity_hours = tools[g] * hours_per_period_;
        if (hours[g] > 0.0 && load.capacity_hours <= 0.0) {
            throw std::invalid_argument(
                "fabline: group '" + groups_[g].name +
                "' has demand but no tools");
        }
        load.utilization = load.capacity_hours > 0.0
                               ? hours[g] / load.capacity_hours
                               : 0.0;
        if (load.utilization > 1.0 + 1e-9) {
            throw std::invalid_argument(
                "fabline: group '" + groups_[g].name +
                "' is over capacity (utilization " +
                std::to_string(load.utilization) + ")");
        }
        load.period_cost = dollars{load.capacity_hours *
                                   groups_[g].ownership_per_hour.value()};
        report.period_cost = report.period_cost + load.period_cost;
        owned_hours += load.capacity_hours;
        busy_hours += hours[g];
        report.bottleneck_utilization =
            std::max(report.bottleneck_utilization, load.utilization);
        report.groups.push_back(std::move(load));
    }
    for (const product_demand& demand : mix) {
        report.total_wafers += demand.wafers_per_period;
    }
    if (report.total_wafers > 0.0) {
        report.cost_per_wafer =
            dollars{report.period_cost.value() / report.total_wafers};
    }
    report.average_utilization =
        owned_hours > 0.0 ? busy_hours / owned_hours : 0.0;
    return report;
}

fabline_report fabline::analyze_sized(const std::vector<product_demand>& mix,
                                      double max_utilization) const {
    return analyze(mix, size_line(mix, max_utilization));
}

fabline fabline::generic_cmos(double hours_per_period) {
    // Ownership cost per tool-hour amortizes purchase price, floor space,
    // maintenance and staffing; early-90s figures (a $5M stepper over 5
    // years with overheads lands near $250/h).
    std::vector<tool_group> groups = {
        {"lithography", dollars{250.0}, 20.0},
        {"etch",        dollars{120.0}, 15.0},
        {"implant",     dollars{150.0}, 25.0},
        {"deposition",  dollars{110.0}, 12.0},
        {"diffusion",   dollars{60.0},  40.0},
        {"cmp",         dollars{100.0}, 18.0},
        {"clean",       dollars{40.0},  60.0},
        {"metrology",   dollars{80.0},  30.0},
    };
    return fabline{std::move(groups), hours_per_period};
}

wafer_recipe fabline::generic_recipe(double feature_um, int metal_layers) {
    const tech::process_recipe process =
        tech::synthesize_cmos_recipe(microns{feature_um}, metal_layers);
    // Map step categories onto the generic_cmos group order.
    wafer_recipe recipe;
    recipe.name = process.name;
    recipe.passes = {
        static_cast<double>(process.count(tech::step_category::lithography)),
        static_cast<double>(process.count(tech::step_category::etch)),
        static_cast<double>(process.count(tech::step_category::implant)),
        static_cast<double>(process.count(tech::step_category::deposition)),
        static_cast<double>(process.count(tech::step_category::diffusion)),
        static_cast<double>(process.count(tech::step_category::cmp)),
        static_cast<double>(process.count(tech::step_category::clean)),
        static_cast<double>(process.count(tech::step_category::metrology)),
    };
    return recipe;
}

}  // namespace silicon::cost
