// product_mix.hpp — mono-product vs. multi-product wafer cost comparison.
//
// Builds on the fabline model to reproduce the Sec. III.A.d claim from
// [12]: "the ratio of the cost of the wafer fabricated with low volume
// multi-product fabline and high volume mono-product environment may
// reach as high value as 7".
//
// The mechanism: a mono-product line is sized so each tool group runs at
// its utilization cap, while a diverse low-volume mix forces the line to
// own at least one tool of every group each product touches — most of
// which then idle — and cost of ownership accrues regardless.

#pragma once

#include "cost/fabline.hpp"

#include <vector>

namespace silicon::cost {

/// Result of the comparison.
struct mix_comparison {
    fabline_report mono;   ///< high-volume single-product line
    fabline_report multi;  ///< low-volume multi-product line
    double cost_ratio = 0.0;  ///< multi cost/wafer over mono cost/wafer
};

/// Compare the per-wafer cost of `mono` produced at `mono_volume` wafers
/// per period on a tightly sized line against `mix` on a line sized for
/// the mix.  Both lines use the same fabline tool set and sizing cap.
[[nodiscard]] mix_comparison compare_mono_vs_multi(
    const fabline& line, const wafer_recipe& mono, double mono_volume,
    const std::vector<product_demand>& mix, double max_utilization = 0.95);

/// Synthesize a diverse low-volume mix of `products` distinct recipes
/// with `wafers_each` wafer starts.  Recipes alternate between process
/// flavors (different metal stacks and feature sizes) so tool demands are
/// non-uniform across groups, the condition that produces poor
/// utilization.  Recipes match the generic_cmos group order.
[[nodiscard]] std::vector<product_demand> diverse_mix(int products,
                                                      double wafers_each);

}  // namespace silicon::cost
