// batch_fast_impl.hpp — fast_math cost kernel bodies, compiled once
// per instruction-set variant (same scheme as yield/batch_fast_impl.hpp:
// namespace `baseline` from batch_fast.cpp with portable flags, and on
// x86-64 namespace `avx2` from batch_fast_avx2.cpp with
// -mavx2 -mfma -ffp-contract=off so the classification/guard passes run
// at the transcendentals' register width while staying bit-identical).
//
// Define SILICON_FAST_IMPL_NS to the variant namespace before
// including.

#include <cmath>
#include <cstddef>
#include <limits>

#include "cost/batch.hpp"
#include "simd/math.hpp"

namespace silicon::cost::batch {
namespace SILICON_FAST_IMPL_NS {

constexpr double nan_lane = std::numeric_limits<double>::quiet_NaN();
constexpr double pi = 3.14159265358979323846;  // core/units.hpp disc_area
constexpr std::size_t block = 256;

/// Flattened (no short-circuit control flow, `&` on bools) so the
/// per-lane classification loops that inline this if-convert and
/// vectorize.  NaN fails every ordered comparison, so the explicit
/// isnan checks of the scalar kernels are subsumed.
inline bool scenario_inputs_valid(double c0, double x, double r, double l) {
    return (c0 > 0.0) & !std::isinf(c0) & (x >= 1.0) & (r > 0.0) &
           !std::isinf(r) & (l > 0.0) & !std::isinf(l);
}

void pure_wafer_cost_fast(const double* c0_usd, const double* x,
                          const double* lambda_um,
                          double generation_step_um, double* out,
                          std::size_t n) {
    double pb[block];
    double pe[block];
    double xp[block];
    for (std::size_t base = 0; base < n; base += block) {
        const std::size_t len = (n - base < block) ? (n - base) : block;
        for (std::size_t j = 0; j < len; ++j) {
            const double c0 = c0_usd[base + j];
            const double xi = x[base + j];
            const double l = lambda_um[base + j];
            const bool valid = (c0 > 0.0) & !std::isinf(c0) &
                               (xi >= 1.0) & (l > 0.0) & !std::isinf(l);
            // Unconditional division so the loop if-converts.
            const double expo = (1.0 - l) / generation_step_um;
            pb[j] = valid ? xi : 1.0;
            pe[j] = valid ? expo : 0.0;
        }
        simd::pow_lanes(pb, pe, xp, len);
        for (std::size_t j = 0; j < len; ++j) {
            const double c0 = c0_usd[base + j];
            const double xi = x[base + j];
            const double l = lambda_um[base + j];
            const bool valid = (c0 > 0.0) & !std::isinf(c0) &
                               (xi >= 1.0) & (l > 0.0) & !std::isinf(l);
            const double cw = c0 * xp[j];
            out[base + j] =
                (!valid | std::isnan(cw) | std::isinf(cw)) ? nan_lane
                                                           : cw;
        }
    }
}

void scenario1_cost_per_transistor_fast(const scenario_columns& in,
                                        double* out, std::size_t n) {
    // Hoisted column pointers: re-reading them from the struct inside
    // the lane loops makes the vectorizer treat them as loop-variant
    // and give up.
    const double* const col_l = in.lambda_um;
    const double* const col_c0 = in.c0_usd;
    const double* const col_x = in.x;
    const double* const col_r = in.wafer_radius_cm;
    const double* const col_dd = in.design_density;
    double pb[block];
    double pe[block];
    double xp[block];
    for (std::size_t base = 0; base < n; base += block) {
        const std::size_t len = (n - base < block) ? (n - base) : block;
        for (std::size_t j = 0; j < len; ++j) {
            const double l = col_l[base + j];
            const double c0 = col_c0[base + j];
            const double x = col_x[base + j];
            const double r = col_r[base + j];
            const bool valid = scenario_inputs_valid(c0, x, r, l);
            const double expo = (1.0 - l) / 0.2;
            pb[j] = valid ? x : 1.0;
            pe[j] = valid ? expo : 0.0;
        }
        simd::pow_lanes(pb, pe, xp, len);
        // Branchless guard chain (every intermediate runs on every
        // lane; invalid lanes are discarded by the final select) so
        // the compiler can if-convert and vectorize the pass.
        for (std::size_t j = 0; j < len; ++j) {
            const double l = col_l[base + j];
            const double c0 = col_c0[base + j];
            const double x = col_x[base + j];
            const double r = col_r[base + j];
            const double dd = col_dd[base + j];
            const double cw = c0 * xp[j];
            const double wafer_area_cm2 = pi * r * r;
            const double wafer_um2 = wafer_area_cm2 * 1e8;
            const double area_per_transistor_um2 = dd * l * l;
            const double ctr = cw * area_per_transistor_um2 / wafer_um2;
            const bool invalid =
                !scenario_inputs_valid(c0, x, r, l) | std::isnan(cw) |
                std::isinf(cw) | !(wafer_area_cm2 >= 0.0) |
                std::isinf(wafer_area_cm2) | std::isnan(ctr) |
                std::isinf(ctr);
            out[base + j] = invalid ? nan_lane : ctr;
        }
    }
}

void scenario2_cost_per_transistor_fast(const scenario_columns& in,
                                        double* out, std::size_t n) {
    // Hoisted column pointers, as in scenario1.
    const double* const col_l = in.lambda_um;
    const double* const col_c0 = in.c0_usd;
    const double* const col_x = in.x;
    const double* const col_r = in.wafer_radius_cm;
    const double* const col_dd = in.design_density;
    const double* const col_y0 = in.y0;
    double pb[block];
    double pe[block];
    double xp[block];
    double arg[block];
    double ea[block];
    double yv[block];
    for (std::size_t base = 0; base < n; base += block) {
        const std::size_t len = (n - base < block) ? (n - base) : block;
        for (std::size_t j = 0; j < len; ++j) {
            const double l = col_l[base + j];
            const double c0 = col_c0[base + j];
            const double x = col_x[base + j];
            const double r = col_r[base + j];
            const double y0 = col_y0[base + j];
            const bool valid = (y0 > 0.0) & (y0 <= 1.0) &
                               scenario_inputs_valid(c0, x, r, l);
            const double expo = (1.0 - l) / 0.2;
            pb[j] = valid ? x : 1.0;
            pe[j] = valid ? expo : 0.0;
            arg[j] = valid ? -5.3 * l : 0.0;
        }
        simd::pow_lanes(pb, pe, xp, len);
        simd::exp_lanes(arg, ea, len);
        for (std::size_t j = 0; j < len; ++j) {
            const double l = col_l[base + j];
            const double c0 = col_c0[base + j];
            const double x = col_x[base + j];
            const double r = col_r[base + j];
            const double y0 = col_y0[base + j];
            const bool valid = (y0 > 0.0) & (y0 <= 1.0) &
                               scenario_inputs_valid(c0, x, r, l);
            const double die_area_cm2 = 16.5 * ea[j];
            pb[j] = valid ? y0 : 1.0;
            pe[j] = valid ? die_area_cm2 / 1.0 : 0.0;
        }
        simd::pow_lanes(pb, pe, yv, len);
        // Branchless guard chain, same shape as scenario1's.
        for (std::size_t j = 0; j < len; ++j) {
            const double l = col_l[base + j];
            const double c0 = col_c0[base + j];
            const double x = col_x[base + j];
            const double r = col_r[base + j];
            const double dd = col_dd[base + j];
            const double y0 = col_y0[base + j];
            const double cw = c0 * xp[j];
            const double wafer_area_cm2 = pi * r * r;
            const double wafer_um2 = wafer_area_cm2 * 1e8;
            const double area_per_transistor_um2 = dd * l * l;
            const double die_area_cm2 = 16.5 * ea[j];
            const double y = yv[j];
            const double ctr =
                cw * area_per_transistor_um2 / (wafer_um2 * y);
            const bool invalid =
                !((y0 > 0.0) & (y0 <= 1.0)) |
                !scenario_inputs_valid(c0, x, r, l) | std::isnan(cw) |
                std::isinf(cw) | !(wafer_area_cm2 >= 0.0) |
                std::isinf(wafer_area_cm2) | !(die_area_cm2 >= 0.0) |
                std::isinf(die_area_cm2) | !((y > 0.0) & (y <= 1.0)) |
                std::isnan(ctr) | std::isinf(ctr);
            out[base + j] = invalid ? nan_lane : ctr;
        }
    }
}

}  // namespace SILICON_FAST_IMPL_NS
}  // namespace silicon::cost::batch
