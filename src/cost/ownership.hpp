// ownership.hpp — equipment cost-of-ownership model.
//
// Section III.A.d's fabline argument rests on "the cost of 'ownership'
// for some equipment may be the same for 'active' and 'inactive'
// equipment usage."  This module derives that per-hour ownership rate
// from first principles instead of taking it as a constant: purchase
// price on a straight-line depreciation schedule, floor space,
// maintenance, consumables, and operator labor, divided by scheduled
// hours.  It feeds `fabline` with derived rather than assumed tool
// rates, and lets benches show how equipment price escalation (the X
// driver of Sec. III.A.b) propagates into wafer cost.

#pragma once

#include "core/units.hpp"
#include "cost/fabline.hpp"

#include <string>
#include <vector>

namespace silicon::cost {

/// Cost-of-ownership inputs for one tool type.
struct tool_cost_inputs {
    std::string name;
    dollars purchase_price{1e6};
    double depreciation_years = 5.0;   ///< straight line
    dollars install_fraction{0.15};    ///< install+facilitization as a
                                       ///< fraction of purchase (value()
                                       ///< used as the fraction)
    double floor_space_m2 = 20.0;
    dollars floor_cost_per_m2_year{2000.0};  ///< cleanroom space
    double maintenance_fraction_per_year = 0.08;  ///< of purchase price
    dollars consumables_per_hour{5.0};
    double operators_per_tool = 0.25;  ///< fractional headcount
    dollars operator_cost_per_hour{30.0};
    double scheduled_hours_per_year = 8000.0;
    double wafers_per_hour = 20.0;     ///< throughput when running
};

/// The derived ownership rate in dollars per scheduled hour.
/// Throws std::invalid_argument on non-positive life/hours.
[[nodiscard]] dollars ownership_per_hour(const tool_cost_inputs& inputs);

/// Cost per wafer *pass* at full utilization (ownership / throughput).
[[nodiscard]] dollars cost_per_wafer_pass(const tool_cost_inputs& inputs);

/// Build a `tool_group` for the fabline model from the derived rate.
[[nodiscard]] tool_group make_tool_group(const tool_cost_inputs& inputs);

/// An early-90s CMOS tool set with public-ballpark purchase prices
/// (stepper ~$5M dominating; cleans cheapest).  Ordered to match
/// fabline::generic_cmos()'s groups.
[[nodiscard]] std::vector<tool_cost_inputs> generic_cmos_tool_costs();

/// Fabline whose tool rates come from the derived COO model; an
/// `equipment_price_factor` scales every purchase price (the equipment
/// escalation knob of Sec. III.A.b).
[[nodiscard]] fabline derived_cmos_fabline(double equipment_price_factor = 1.0,
                                           double hours_per_period = 720.0);

}  // namespace silicon::cost
