#include "cost/wafer_cost.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::cost {

wafer_cost_model::wafer_cost_model(dollars c0, double x,
                                   microns generation_step)
    : c0_{c0}, x_{x}, generation_step_{generation_step} {
    if (!(c0.value() > 0.0)) {
        throw std::invalid_argument("wafer_cost_model: C_0 must be positive");
    }
    if (!(x >= 1.0)) {
        throw std::invalid_argument(
            "wafer_cost_model: X must be >= 1 (cost escalation rate)");
    }
    if (!(generation_step.value() > 0.0)) {
        throw std::invalid_argument(
            "wafer_cost_model: generation step must be positive");
    }
}

double wafer_cost_model::generations_from_reference(microns lambda) const {
    if (!(lambda.value() > 0.0)) {
        throw std::invalid_argument(
            "wafer_cost_model: lambda must be positive");
    }
    return (1.0 - lambda.value()) / generation_step_.value();
}

dollars wafer_cost_model::pure_wafer_cost(microns lambda) const {
    return dollars{c0_.value() *
                   std::pow(x_, generations_from_reference(lambda))};
}

dollars wafer_cost_model::wafer_cost_at_volume(microns lambda,
                                               dollars overhead,
                                               double volume_wafers) const {
    if (overhead.value() < 0.0) {
        throw std::invalid_argument(
            "wafer_cost_model: overhead must be >= 0");
    }
    if (overhead.value() > 0.0 && !(volume_wafers > 0.0)) {
        throw std::invalid_argument(
            "wafer_cost_model: positive overhead needs a positive volume");
    }
    const dollars pure = pure_wafer_cost(lambda);
    if (overhead.value() == 0.0) {
        return pure;
    }
    return pure + dollars{overhead.value() / volume_wafers};
}

double wafer_cost_model::extract_x(microns lambda_a, dollars cost_a,
                                   microns lambda_b, dollars cost_b,
                                   microns generation_step) {
    if (!(cost_a.value() > 0.0) || !(cost_b.value() > 0.0)) {
        throw std::invalid_argument(
            "wafer_cost_model: costs must be positive");
    }
    const double generations =
        (lambda_a.value() - lambda_b.value()) / generation_step.value();
    if (generations == 0.0) {
        throw std::invalid_argument(
            "wafer_cost_model: observations are at the same feature size");
    }
    // cost_b / cost_a = X^generations.
    return std::pow(cost_b.value() / cost_a.value(), 1.0 / generations);
}

}  // namespace silicon::cost
