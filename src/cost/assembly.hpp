// assembly.hpp — packaging and assembly cost model.
//
// A thin but necessary substrate: die cost is not product cost.  The MCM
// comparison (Sec. VI) and the system examples need a per-package cost
// with a pin-count term and an assembly yield, both standard first-order
// models.

#pragma once

#include "core/units.hpp"

namespace silicon::cost {

/// Single-chip package.
struct package_spec {
    dollars base_cost{1.0};        ///< leadframe/substrate base
    dollars cost_per_pin{0.02};    ///< incremental pin cost
    int pins = 64;
    probability assembly_yield{0.99};  ///< per-die attach/bond success
};

/// Package piece cost (no yield effects).
[[nodiscard]] dollars package_cost(const package_spec& spec);

/// Cost of one *good packaged part*: (die cost + package cost) divided by
/// the assembly yield — scrapping a packaged part loses both the die and
/// the package.  Throws std::domain_error on zero assembly yield.
[[nodiscard]] dollars packaged_part_cost(dollars good_die_cost,
                                         const package_spec& spec);

}  // namespace silicon::cost
