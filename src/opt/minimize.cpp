#include "opt/minimize.hpp"

#include "exec/thread_pool.hpp"

#include <cmath>
#include <exception>
#include <stdexcept>
#include <vector>

namespace silicon::opt {

namespace {

/// Evaluate f at the `grid_points` samples lo + step*i into a slot
/// vector via the deterministic shard decomposition.  When the
/// objective throws, the exception from the lowest-index shard is
/// rethrown, so the failure mode is independent of the thread count.
std::vector<double> evaluate_grid(const std::function<double(double)>& f,
                                  double lo, double step, int grid_points,
                                  unsigned parallelism) {
    const auto items = static_cast<std::size_t>(grid_points);
    std::vector<double> values(items);
    std::vector<std::exception_ptr> failures(exec::shard_count_for(items));
    exec::parallel_for(items, parallelism, [&](const exec::shard_range& r) {
        try {
            for (std::size_t i = r.begin; i < r.end; ++i) {
                values[i] = f(lo + step * static_cast<double>(i));
            }
        } catch (...) {
            failures[r.index] = std::current_exception();
        }
    });
    for (const std::exception_ptr& failure : failures) {
        if (failure) {
            std::rethrow_exception(failure);
        }
    }
    return values;
}

}  // namespace

scalar_minimum golden_section(const std::function<double(double)>& f,
                              double lo, double hi, double tolerance) {
    if (!(lo < hi)) {
        throw std::invalid_argument("golden_section: empty interval");
    }
    if (!(tolerance > 0.0)) {
        throw std::invalid_argument(
            "golden_section: tolerance must be positive");
    }
    constexpr double inv_phi = 0.6180339887498949;  // 1/phi

    double a = lo;
    double b = hi;
    double x1 = b - inv_phi * (b - a);
    double x2 = a + inv_phi * (b - a);
    double f1 = f(x1);
    double f2 = f(x2);
    int evaluations = 2;

    while (b - a > tolerance) {
        if (f1 <= f2) {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - inv_phi * (b - a);
            f1 = f(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + inv_phi * (b - a);
            f2 = f(x2);
        }
        ++evaluations;
        if (evaluations > 10000) {
            break;  // tolerance finer than double spacing; best effort
        }
    }
    scalar_minimum result;
    result.x = f1 <= f2 ? x1 : x2;
    result.value = f1 <= f2 ? f1 : f2;
    result.evaluations = evaluations;
    return result;
}

scalar_minimum grid_then_golden(const std::function<double(double)>& f,
                                double lo, double hi, int grid_points,
                                double tolerance, unsigned parallelism) {
    if (grid_points < 3) {
        throw std::invalid_argument(
            "grid_then_golden: need at least 3 grid points");
    }
    if (!(lo < hi)) {
        throw std::invalid_argument("grid_then_golden: empty interval");
    }
    const double step = (hi - lo) / (grid_points - 1);
    const std::vector<double> values =
        evaluate_grid(f, lo, step, grid_points, parallelism);
    // Serial argmin keeps the earliest strictly-lower sample, so grid
    // ties resolve identically at every parallelism value.
    int best = 0;
    double best_value = values[0];
    for (int i = 1; i < grid_points; ++i) {
        const double value = values[static_cast<std::size_t>(i)];
        if (value < best_value) {
            best_value = value;
            best = i;
        }
    }
    int evaluations = grid_points;
    const double bracket_lo = lo + step * (best > 0 ? best - 1 : 0);
    const double bracket_hi =
        lo + step * (best < grid_points - 1 ? best + 1 : grid_points - 1);
    scalar_minimum refined =
        golden_section(f, bracket_lo, bracket_hi, tolerance);
    refined.evaluations += evaluations;
    if (best_value < refined.value) {
        refined.x = lo + step * best;
        refined.value = best_value;
    }
    return refined;
}

std::vector<scalar_minimum> local_minima_on_grid(
    const std::function<double(double)>& f, double lo, double hi,
    int grid_points, unsigned parallelism) {
    if (grid_points < 3) {
        throw std::invalid_argument(
            "local_minima_on_grid: need at least 3 grid points");
    }
    if (!(lo < hi)) {
        throw std::invalid_argument("local_minima_on_grid: empty interval");
    }
    const double step = (hi - lo) / (grid_points - 1);
    const std::vector<double> values =
        evaluate_grid(f, lo, step, grid_points, parallelism);

    std::vector<scalar_minimum> minima;
    for (int i = 0; i < grid_points; ++i) {
        // Walk over plateaus: compare against the nearest differing
        // neighbors on each side.
        int left = i - 1;
        while (left >= 0 && values[static_cast<std::size_t>(left)] ==
                                values[static_cast<std::size_t>(i)]) {
            --left;
        }
        int right = i + 1;
        while (right < grid_points &&
               values[static_cast<std::size_t>(right)] ==
                   values[static_cast<std::size_t>(i)]) {
            ++right;
        }
        const bool falls_left =
            left < 0 || values[static_cast<std::size_t>(left)] >
                            values[static_cast<std::size_t>(i)];
        const bool falls_right =
            right >= grid_points ||
            values[static_cast<std::size_t>(right)] >
                values[static_cast<std::size_t>(i)];
        const bool plateau_start =
            i == 0 || values[static_cast<std::size_t>(i - 1)] !=
                          values[static_cast<std::size_t>(i)];
        if (falls_left && falls_right && plateau_start) {
            scalar_minimum m;
            m.x = lo + step * i;
            m.value = values[static_cast<std::size_t>(i)];
            m.evaluations = grid_points;
            minima.push_back(m);
        }
    }
    return minima;
}

}  // namespace silicon::opt
