#include "opt/partition.hpp"

#include "exec/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <limits>
#include <stdexcept>

namespace silicon::opt {

namespace {

std::atomic<std::uint64_t> pricer_hits_total{0};
std::atomic<std::uint64_t> pricer_entries_total{0};

}  // namespace

std::uint64_t partition_pricer_hits() noexcept {
    return pricer_hits_total.load(std::memory_order_relaxed);
}

std::uint64_t partition_pricer_entries() noexcept {
    return pricer_entries_total.load(std::memory_order_relaxed);
}

std::vector<std::vector<std::size_t>> set_partitions(std::size_t n) {
    if (n == 0 || n > 12) {
        throw std::invalid_argument(
            "set_partitions: n must be in [1, 12]");
    }
    // Restricted growth strings: a[0] = 0, a[i] <= max(a[0..i-1]) + 1.
    std::vector<std::vector<std::size_t>> all;
    std::vector<std::size_t> current(n, 0);

    const std::function<void(std::size_t, std::size_t)> recurse =
        [&](std::size_t index, std::size_t max_so_far) {
            if (index == n) {
                all.push_back(current);
                return;
            }
            for (std::size_t g = 0; g <= max_so_far + 1; ++g) {
                current[index] = g;
                recurse(index + 1, std::max(max_so_far, g));
            }
        };
    current[0] = 0;
    recurse(1, 0);
    return all;
}

unsigned long long bell_number(unsigned n) {
    if (n > 20) {
        throw std::invalid_argument("bell_number: n too large for u64");
    }
    // Bell triangle.
    std::vector<unsigned long long> row{1};
    for (unsigned i = 1; i <= n; ++i) {
        std::vector<unsigned long long> next;
        next.reserve(i + 1);
        next.push_back(row.back());
        for (unsigned long long v : row) {
            next.push_back(next.back() + v);
        }
        row = std::move(next);
    }
    return row.front();
}

partition_solution optimize_partitions(const std::vector<block>& blocks,
                                       const die_cost_fn& die_cost,
                                       const packaging_cost_fn& packaging_cost,
                                       std::size_t max_blocks,
                                       unsigned parallelism) {
    if (blocks.empty()) {
        throw std::invalid_argument("optimize_partitions: no blocks");
    }
    if (blocks.size() > max_blocks) {
        throw std::invalid_argument(
            "optimize_partitions: too many blocks for exhaustive "
            "enumeration");
    }

    const std::size_t n = blocks.size();

    // Every group of every partition is one of the 2^n - 1 non-empty
    // block subsets, and every subset does occur (alongside singleton
    // dies), so price each exactly once up front.  Each subset is
    // independent: fan the pricing across the shard decomposition;
    // pricing failures rethrow from the lowest-index shard so errors
    // are thread-count invariant too.  Subset mask m is stored at
    // priced[m]; bit i set = block i on the die.
    const std::size_t subsets = (std::size_t{1} << n) - 1;
    std::vector<std::pair<double, double>> priced(subsets + 1);
    std::vector<std::exception_ptr> failures(exec::shard_count_for(subsets));
    exec::parallel_for(
        subsets, parallelism, [&](const exec::shard_range& r) {
            try {
                for (std::size_t s = r.begin; s < r.end; ++s) {
                    const std::size_t mask = s + 1;
                    std::vector<block> group;
                    for (std::size_t i = 0; i < n; ++i) {
                        if ((mask >> i) & 1u) {
                            group.push_back(blocks[i]);
                        }
                    }
                    priced[mask] = die_cost(group);
                }
            } catch (...) {
                failures[r.index] = std::current_exception();
            }
        });
    for (const std::exception_ptr& failure : failures) {
        if (failure) {
            std::rethrow_exception(failure);
        }
    }
    pricer_entries_total.fetch_add(subsets, std::memory_order_relaxed);

    const auto partitions = set_partitions(n);
    std::uint64_t lookups = 0;
    partition_solution best;
    best.total_cost = std::numeric_limits<double>::infinity();

    for (const std::vector<std::size_t>& labels : partitions) {
        const std::size_t groups =
            1 + *std::max_element(labels.begin(), labels.end());

        partition_solution candidate;
        candidate.dies.resize(groups);
        for (std::size_t i = 0; i < labels.size(); ++i) {
            candidate.dies[labels[i]].block_indices.push_back(i);
        }

        bool valid = true;
        for (die_assignment& die : candidate.dies) {
            std::size_t mask = 0;
            for (std::size_t bi : die.block_indices) {
                mask |= std::size_t{1} << bi;
            }
            const auto [cost, lambda] = priced[mask];
            ++lookups;
            if (!std::isfinite(cost) || cost < 0.0) {
                valid = false;
                break;
            }
            die.cost = cost;
            die.chosen_lambda = lambda;
            candidate.die_cost_total += cost;
        }
        if (!valid) {
            continue;
        }
        candidate.packaging_cost = packaging_cost(groups);
        candidate.total_cost =
            candidate.die_cost_total + candidate.packaging_cost;
        if (candidate.total_cost < best.total_cost) {
            best = std::move(candidate);
        }
    }
    pricer_hits_total.fetch_add(lookups, std::memory_order_relaxed);
    if (!std::isfinite(best.total_cost)) {
        throw std::domain_error(
            "optimize_partitions: no valid partition (die cost functional "
            "rejected every grouping)");
    }
    return best;
}

}  // namespace silicon::opt
