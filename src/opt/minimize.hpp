// minimize.hpp — 1-D minimizers for lambda-opt searches.
//
// Section IV.B: "for each die size there is a different lambda_opt which
// minimizes the cost per transistor".  The cost curves are smooth and
// unimodal over the feature-size ranges of interest, so golden-section
// search (derivative-free, robust) plus a Brent-style refinement is the
// right tool.  A bracketing grid scan guards against multimodal inputs
// (Fig. 8 *does* show several local optima along other slices).
//
// Grid scans take a `parallelism` knob (0 = hardware concurrency,
// 1 = serial, the default) and fan the sample evaluations across the
// exec engine's deterministic shard decomposition: results — including
// tie-breaks and which exception propagates when the objective throws —
// are bit-identical at every parallelism value.  The objective must be
// a pure function of its argument and safe to call concurrently.

#pragma once

#include <functional>
#include <vector>

namespace silicon::opt {

/// Result of a scalar minimization.
struct scalar_minimum {
    double x = 0.0;
    double value = 0.0;
    int evaluations = 0;
};

/// Golden-section search on [lo, hi]; `tolerance` is the absolute x
/// interval at which iteration stops.  The function is assumed unimodal
/// on the interval; otherwise a local minimum is returned.
/// Throws std::invalid_argument on an empty interval or non-positive
/// tolerance.
[[nodiscard]] scalar_minimum golden_section(
    const std::function<double(double)>& f, double lo, double hi,
    double tolerance = 1e-8);

/// Global-ish minimizer: scan `grid_points` samples of [lo, hi], then
/// refine around the best sample with golden-section on the bracketing
/// sub-interval.  Finds the global minimum when the grid resolves every
/// basin.  grid_points must be >= 3.
[[nodiscard]] scalar_minimum grid_then_golden(
    const std::function<double(double)>& f, double lo, double hi,
    int grid_points = 64, double tolerance = 1e-8,
    unsigned parallelism = 1);

/// All local minima of a sampled function: indices whose value is lower
/// than both neighbors (plateau-aware: the first point of a flat valley
/// is reported).  Used to count Fig. 8's local optima along a slice.
[[nodiscard]] std::vector<scalar_minimum> local_minima_on_grid(
    const std::function<double(double)>& f, double lo, double hi,
    int grid_points, unsigned parallelism = 1);

}  // namespace silicon::opt
