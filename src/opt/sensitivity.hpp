// sensitivity.hpp — parameter sensitivity / elasticity analysis.
//
// "Demonstrate the complexity of the IC manufacturing cost problem"
// (Sec. III) invites the obvious follow-up: which inputs move the answer
// most?  This module computes elasticities
//
//     E_theta = d ln C / d ln theta        (central finite differences)
//
// for a cost functional against a named parameter set, so benches and
// examples can print "a 1% increase in X raises C_tr by E%" rows.

#pragma once

#include <functional>
#include <string>
#include <vector>

namespace silicon::opt {

/// A named parameter with its nominal value.
struct parameter {
    std::string name;
    double value = 0.0;
};

/// Elasticity of the objective against one parameter.
struct elasticity {
    std::string name;
    double value = 0.0;       ///< d ln C / d ln theta at the nominal point
    double nominal = 0.0;     ///< parameter value used
};

/// Compute elasticities of `objective` (called with the full parameter
/// vector) for every parameter, using central differences with relative
/// step `rel_step`.  Parameters with value 0 are skipped (elasticity is
/// undefined there).  The objective must be positive at the nominal point
/// and at the probe points; throws std::domain_error otherwise.
///
/// `parallelism` fans the per-parameter probes across the exec engine
/// (0 = hardware concurrency, 1 = serial).  The objective must be pure
/// and thread-safe; rows — and which parameter's error propagates on
/// failure — are identical at every parallelism value.
[[nodiscard]] std::vector<elasticity> elasticities(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<parameter>& parameters, double rel_step = 1e-4,
    unsigned parallelism = 1);

/// A batched objective: evaluates the objective at every probe point in
/// one call, writing values[k] = C(points[k]).  Each points[k] is a full
/// parameter vector.  Lets callers back the probes with the SoA kernels
/// (cost/batch.hpp, yield/batch.hpp) instead of re-entering a scalar
/// model 2N+1 times.
using batch_objective = std::function<void(
    const std::vector<std::vector<double>>& points,
    std::vector<double>& values)>;

/// Batched-probe elasticities: builds the nominal point plus the up/down
/// probe pair for every parameter, evaluates them through `objective` in
/// a single call, and reduces to the same rows — same formula, same
/// validation, and the same error (lowest offending parameter first) as
/// the scalar overload.
[[nodiscard]] std::vector<elasticity> elasticities(
    const batch_objective& objective,
    const std::vector<parameter>& parameters, double rel_step = 1e-4);

/// Sort a copy of the rows by |value| descending — "what matters most".
[[nodiscard]] std::vector<elasticity> ranked(std::vector<elasticity> rows);

}  // namespace silicon::opt
