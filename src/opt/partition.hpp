// partition.hpp — system partition optimization (Sec. IV.B).
//
// The paper's proposal: "by including in the IC system design process such
// variables as sizes of the system's partitions and minimum feature sizes
// of each partition one can minimize the overall system cost", and "the
// optimum solution may not call for the smallest possible (and expensive)
// feature size".
//
// This optimizer enumerates all set partitions of a block list (restricted
// growth strings — fine up to ~10 blocks, Bell(10) = 115975), prices each
// group with a caller-supplied die-cost functional (which internally picks
// the group's optimal feature size), adds a per-system packaging/assembly
// term that grows with the number of dies, and returns the cheapest
// arrangement.  The functional design keeps `opt` independent of the core
// cost model; `core::system_optimizer` provides the convenient glue.
//
// Although Bell(10) = 115975 partitions exist, their groups draw from at
// most 2^10 - 1 = 1023 distinct block subsets, so the functional is
// invoked once per subset (optionally fanned across the exec engine via
// the `parallelism` knob) and the partition scan just sums memoized
// prices.  The die-cost functional must therefore be a pure function of
// its group and safe to call concurrently; the selected partition —
// including ties, which resolve to the earliest enumeration — is
// bit-identical at every parallelism value.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace silicon::opt {

/// A system block to be assigned to a die.
struct block {
    std::string name;
    double transistors = 0.0;
    double design_density = 100.0;  ///< lambda^2 per transistor
};

/// One die of a solution: the block indices placed on it and the cost
/// details the functional reported.
struct die_assignment {
    std::vector<std::size_t> block_indices;
    double cost = 0.0;          ///< cost of this die (all its blocks)
    double chosen_lambda = 0.0; ///< feature size the functional selected
};

/// A fully priced partitioning.
struct partition_solution {
    std::vector<die_assignment> dies;
    double die_cost_total = 0.0;
    double packaging_cost = 0.0;
    double total_cost = 0.0;
};

/// Cost of one die holding the given blocks; also reports the feature
/// size it chose.  Returned cost must be finite and >= 0.
using die_cost_fn =
    std::function<std::pair<double, double>(const std::vector<block>&)>;

/// Packaging/integration cost of a system built from `die_count` dies.
using packaging_cost_fn = std::function<double(std::size_t)>;

/// Exhaustively find the cheapest partition of `blocks`.
/// Throws std::invalid_argument when blocks is empty or larger than
/// `max_blocks` (enumeration guard, default 10).  `parallelism` spreads
/// the per-subset die pricing across the exec engine (0 = hardware
/// concurrency, 1 = serial); the result is identical either way.
[[nodiscard]] partition_solution optimize_partitions(
    const std::vector<block>& blocks, const die_cost_fn& die_cost,
    const packaging_cost_fn& packaging_cost, std::size_t max_blocks = 10,
    unsigned parallelism = 1);

/// Enumerate all set partitions of n elements as restricted growth
/// strings (element i's value is its group id).  Exposed for testing and
/// for callers wanting custom pricing.  Throws when n == 0 or n > 12.
[[nodiscard]] std::vector<std::vector<std::size_t>> set_partitions(
    std::size_t n);

/// Bell number B(n) (number of set partitions); throws for n > 20.
[[nodiscard]] unsigned long long bell_number(unsigned n);

/// Process-global mask-memoization statistics for `optimize_partitions`:
/// `partition_pricer_entries` counts subsets priced into the 2^n - 1
/// memo table, `partition_pricer_hits` counts memoized lookups the
/// partition scan performed instead of re-invoking the functional.
/// Cumulative relaxed atomics, observability only — the serve engine
/// exports them through `stats` and the Prometheus text exposition so
/// exploration cost is visible in production.
[[nodiscard]] std::uint64_t partition_pricer_hits() noexcept;
[[nodiscard]] std::uint64_t partition_pricer_entries() noexcept;

}  // namespace silicon::opt
