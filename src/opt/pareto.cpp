#include "opt/pareto.hpp"

#include <algorithm>

namespace silicon::opt {

bool dominates(const design_point& other, const design_point& candidate) {
    const bool no_worse = other.cost <= candidate.cost &&
                          other.merit >= candidate.merit;
    const bool strictly_better = other.cost < candidate.cost ||
                                 other.merit > candidate.merit;
    return no_worse && strictly_better;
}

std::vector<design_point> pareto_front(std::vector<design_point> points) {
    std::sort(points.begin(), points.end(),
              [](const design_point& a, const design_point& b) {
                  if (a.cost != b.cost) {
                      return a.cost < b.cost;
                  }
                  return a.merit > b.merit;
              });
    std::vector<design_point> front;
    double best_merit = -1e300;
    for (const design_point& p : points) {
        // After the sort, a point is non-dominated iff its merit strictly
        // exceeds every cheaper point's merit — except exact duplicates
        // of the current frontier point, which are kept.
        if (p.merit > best_merit) {
            front.push_back(p);
            best_merit = p.merit;
        } else if (!front.empty() && p.cost == front.back().cost &&
                   p.merit == front.back().merit) {
            front.push_back(p);
        }
    }
    return front;
}

}  // namespace silicon::opt
