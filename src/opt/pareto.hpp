// pareto.hpp — Pareto-front extraction for cost/performance trades.
//
// Section IV's message is that cost joins performance as a first-class
// design objective; once both matter, the designer needs the
// non-dominated set rather than a single optimum.  This is the generic
// utility: given labeled (cost, merit) points — lower cost better,
// higher merit better — return the Pareto-efficient subset in cost
// order.

#pragma once

#include <string>
#include <vector>

namespace silicon::opt {

/// One candidate design point.
struct design_point {
    std::string label;
    double cost = 0.0;   ///< minimize
    double merit = 0.0;  ///< maximize

    friend bool operator==(const design_point&,
                           const design_point&) = default;
};

/// The Pareto-efficient subset, sorted by ascending cost (and therefore
/// ascending merit).  A point is kept when no other point has both
/// cost <= and merit >= with at least one strict.  Duplicate-valued
/// points are all kept.
[[nodiscard]] std::vector<design_point> pareto_front(
    std::vector<design_point> points);

/// True when `candidate` is dominated by `other`.
[[nodiscard]] bool dominates(const design_point& other,
                             const design_point& candidate);

}  // namespace silicon::opt
