#include "opt/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace silicon::opt {

std::vector<elasticity> elasticities(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<parameter>& parameters, double rel_step) {
    if (!(rel_step > 0.0 && rel_step < 0.5)) {
        throw std::invalid_argument(
            "elasticities: relative step must be in (0, 0.5)");
    }
    std::vector<double> values;
    values.reserve(parameters.size());
    for (const parameter& p : parameters) {
        values.push_back(p.value);
    }
    const double nominal = objective(values);
    if (!(nominal > 0.0)) {
        throw std::domain_error(
            "elasticities: objective must be positive at the nominal "
            "point");
    }

    std::vector<elasticity> rows;
    rows.reserve(parameters.size());
    for (std::size_t i = 0; i < parameters.size(); ++i) {
        if (parameters[i].value == 0.0) {
            continue;
        }
        std::vector<double> up = values;
        std::vector<double> down = values;
        up[i] = values[i] * (1.0 + rel_step);
        down[i] = values[i] * (1.0 - rel_step);
        const double f_up = objective(up);
        const double f_down = objective(down);
        if (!(f_up > 0.0) || !(f_down > 0.0)) {
            throw std::domain_error(
                "elasticities: objective must stay positive at probe "
                "points for parameter '" +
                parameters[i].name + "'");
        }
        elasticity row;
        row.name = parameters[i].name;
        row.nominal = parameters[i].value;
        // d ln C / d ln theta by central difference in log space.
        row.value = (std::log(f_up) - std::log(f_down)) /
                    (std::log1p(rel_step) - std::log1p(-rel_step));
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<elasticity> ranked(std::vector<elasticity> rows) {
    std::sort(rows.begin(), rows.end(),
              [](const elasticity& a, const elasticity& b) {
                  return std::abs(a.value) > std::abs(b.value);
              });
    return rows;
}

}  // namespace silicon::opt
