#include "opt/sensitivity.hpp"

#include "exec/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <stdexcept>

namespace silicon::opt {

std::vector<elasticity> elasticities(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<parameter>& parameters, double rel_step,
    unsigned parallelism) {
    if (!(rel_step > 0.0 && rel_step < 0.5)) {
        throw std::invalid_argument(
            "elasticities: relative step must be in (0, 0.5)");
    }
    std::vector<double> values;
    values.reserve(parameters.size());
    for (const parameter& p : parameters) {
        values.push_back(p.value);
    }
    const double nominal = objective(values);
    if (!(nominal > 0.0)) {
        throw std::domain_error(
            "elasticities: objective must be positive at the nominal "
            "point");
    }

    // Probe list: parameters with a defined elasticity, in input order.
    std::vector<std::size_t> probes;
    probes.reserve(parameters.size());
    for (std::size_t i = 0; i < parameters.size(); ++i) {
        if (parameters[i].value != 0.0) {
            probes.push_back(i);
        }
    }

    // Each probe is independent: fan them across the shard
    // decomposition into index-addressed slots.  On failure the
    // lowest-index shard's exception is rethrown, which is the lowest
    // offending parameter — the same one the serial loop reports.
    std::vector<elasticity> rows(probes.size());
    std::vector<std::exception_ptr> failures(
        exec::shard_count_for(probes.size()));
    exec::parallel_for(
        probes.size(), parallelism, [&](const exec::shard_range& r) {
            try {
                for (std::size_t slot = r.begin; slot < r.end; ++slot) {
                    const std::size_t i = probes[slot];
                    std::vector<double> up = values;
                    std::vector<double> down = values;
                    up[i] = values[i] * (1.0 + rel_step);
                    down[i] = values[i] * (1.0 - rel_step);
                    const double f_up = objective(up);
                    const double f_down = objective(down);
                    if (!(f_up > 0.0) || !(f_down > 0.0)) {
                        throw std::domain_error(
                            "elasticities: objective must stay positive "
                            "at probe points for parameter '" +
                            parameters[i].name + "'");
                    }
                    elasticity row;
                    row.name = parameters[i].name;
                    row.nominal = parameters[i].value;
                    // d ln C / d ln theta by central difference in log
                    // space.
                    row.value =
                        (std::log(f_up) - std::log(f_down)) /
                        (std::log1p(rel_step) - std::log1p(-rel_step));
                    rows[slot] = std::move(row);
                }
            } catch (...) {
                failures[r.index] = std::current_exception();
            }
        });
    for (const std::exception_ptr& failure : failures) {
        if (failure) {
            std::rethrow_exception(failure);
        }
    }
    return rows;
}

std::vector<elasticity> elasticities(
    const batch_objective& objective,
    const std::vector<parameter>& parameters, double rel_step) {
    if (!(rel_step > 0.0 && rel_step < 0.5)) {
        throw std::invalid_argument(
            "elasticities: relative step must be in (0, 0.5)");
    }
    std::vector<double> values;
    values.reserve(parameters.size());
    for (const parameter& p : parameters) {
        values.push_back(p.value);
    }

    std::vector<std::size_t> probes;
    probes.reserve(parameters.size());
    for (std::size_t i = 0; i < parameters.size(); ++i) {
        if (parameters[i].value != 0.0) {
            probes.push_back(i);
        }
    }

    // Point layout: [nominal, up_0, down_0, up_1, down_1, ...] — one
    // batch call covers the whole probe set.
    std::vector<std::vector<double>> points;
    points.reserve(1 + 2 * probes.size());
    points.push_back(values);
    for (const std::size_t i : probes) {
        std::vector<double> up = values;
        std::vector<double> down = values;
        up[i] = values[i] * (1.0 + rel_step);
        down[i] = values[i] * (1.0 - rel_step);
        points.push_back(std::move(up));
        points.push_back(std::move(down));
    }
    std::vector<double> out;
    objective(points, out);
    if (out.size() != points.size()) {
        throw std::invalid_argument(
            "elasticities: batched objective returned " +
            std::to_string(out.size()) + " values for " +
            std::to_string(points.size()) + " points");
    }
    if (!(out[0] > 0.0)) {
        throw std::domain_error(
            "elasticities: objective must be positive at the nominal "
            "point");
    }

    std::vector<elasticity> rows(probes.size());
    for (std::size_t slot = 0; slot < probes.size(); ++slot) {
        const std::size_t i = probes[slot];
        const double f_up = out[1 + 2 * slot];
        const double f_down = out[2 + 2 * slot];
        if (!(f_up > 0.0) || !(f_down > 0.0)) {
            throw std::domain_error(
                "elasticities: objective must stay positive at probe "
                "points for parameter '" +
                parameters[i].name + "'");
        }
        elasticity row;
        row.name = parameters[i].name;
        row.nominal = parameters[i].value;
        row.value = (std::log(f_up) - std::log(f_down)) /
                    (std::log1p(rel_step) - std::log1p(-rel_step));
        rows[slot] = std::move(row);
    }
    return rows;
}

std::vector<elasticity> ranked(std::vector<elasticity> rows) {
    std::sort(rows.begin(), rows.end(),
              [](const elasticity& a, const elasticity& b) {
                  return std::abs(a.value) > std::abs(b.value);
              });
    return rows;
}

}  // namespace silicon::opt
