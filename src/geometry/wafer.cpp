#include "geometry/wafer.hpp"

#include <stdexcept>

namespace silicon::geometry {

wafer::wafer(centimeters radius, centimeters edge_exclusion)
    : radius_{radius}, edge_exclusion_{edge_exclusion} {
    if (radius.value() <= 0.0) {
        throw std::invalid_argument("wafer: radius must be positive");
    }
    if (edge_exclusion.value() >= radius.value()) {
        throw std::invalid_argument(
            "wafer: edge exclusion must be smaller than the radius");
    }
}

}  // namespace silicon::geometry
