#include "geometry/gross_die.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace silicon::geometry {

namespace {

constexpr double pi = 3.14159265358979323846;

/// Half chord length of a circle of radius r_mm at signed height y_mm from
/// the center; zero outside the circle.
double half_chord(double r_mm, double y_mm) {
    const double d2 = r_mm * r_mm - y_mm * y_mm;
    return d2 > 0.0 ? std::sqrt(d2) : 0.0;
}

}  // namespace

long maly_row_count(const wafer& w, const die& d) {
    const double r = w.usable_radius().to_millimeters().value();
    const double a = d.width().value();
    const double b = d.height().value();

    // Rows of height b stacked from the bottom of the wafer (y = -r).
    const long rows = static_cast<long>(std::floor(2.0 * r / b));
    long total = 0;
    for (long j = 0; j < rows; ++j) {
        // Chord half-lengths at the bottom and top edge of row j.
        const double y_lo = static_cast<double>(j) * b - r;
        const double y_hi = static_cast<double>(j + 1) * b - r;
        const double chord =
            std::min(half_chord(r, y_lo), half_chord(r, y_hi));
        total += static_cast<long>(std::floor(2.0 * chord / a));
    }
    return total;
}

long maly_row_count_best_orientation(const wafer& w, const die& d) {
    return std::max(maly_row_count(w, d), maly_row_count(w, d.rotated()));
}

long area_ratio_bound(const wafer& w, const die& d) {
    const double wafer_mm2 = w.usable_area().to_square_millimeters().value();
    return static_cast<long>(std::floor(wafer_mm2 / d.area().value()));
}

long circumference_corrected(const wafer& w, const die& d) {
    const double r = w.usable_radius().to_millimeters().value();
    const double area = d.area().value();
    const double n =
        pi * r * r / area - pi * (2.0 * r) / std::sqrt(2.0 * area);
    return n > 0.0 ? static_cast<long>(std::floor(n)) : 0;
}

long ferris_prabhu(const wafer& w, const die& d) {
    const double r = w.usable_radius().to_millimeters().value();
    const double area = d.area().value();
    const double s = std::sqrt(area);
    const double r_eff = r - 0.5 * s;
    if (r_eff <= 0.0) {
        return 0;
    }
    return static_cast<long>(std::floor(pi * r_eff * r_eff / area));
}

placement_result exact_count(const wafer& w, const die& d, millimeters scribe,
                             int offsets_per_axis) {
    if (offsets_per_axis < 1) {
        throw std::invalid_argument(
            "exact_count: offsets_per_axis must be >= 1");
    }
    const double r = w.usable_radius().to_millimeters().value();
    const double pitch_x = d.width().value() + scribe.value();
    const double pitch_y = d.height().value() + scribe.value();
    const double a = d.width().value();
    const double b = d.height().value();

    placement_result best;
    const double r2 = r * r;

    // A die placed with lower-left corner (x, y) fits iff all four corners
    // lie inside the usable circle; because the die is convex and the disc
    // is convex, corners suffice.
    const auto corner_inside = [&](double x, double y) {
        return x * x + y * y <= r2;
    };
    const auto die_fits = [&](double x, double y) {
        return corner_inside(x, y) && corner_inside(x + a, y) &&
               corner_inside(x, y + b) && corner_inside(x + a, y + b);
    };

    for (int oi = 0; oi < offsets_per_axis; ++oi) {
        for (int oj = 0; oj < offsets_per_axis; ++oj) {
            const double off_x =
                pitch_x * static_cast<double>(oi) /
                static_cast<double>(offsets_per_axis);
            const double off_y =
                pitch_y * static_cast<double>(oj) /
                static_cast<double>(offsets_per_axis);

            long count = 0;
            std::vector<long> row_counts;
            // Enumerate grid cells overlapping the disc bounding box.
            const long j_lo = static_cast<long>(
                std::floor((-r - off_y) / pitch_y) - 1);
            const long j_hi = static_cast<long>(
                std::ceil((r - off_y) / pitch_y) + 1);
            for (long j = j_lo; j <= j_hi; ++j) {
                const double y = off_y + static_cast<double>(j) * pitch_y;
                long in_row = 0;
                const long i_lo = static_cast<long>(
                    std::floor((-r - off_x) / pitch_x) - 1);
                const long i_hi = static_cast<long>(
                    std::ceil((r - off_x) / pitch_x) + 1);
                for (long i = i_lo; i <= i_hi; ++i) {
                    const double x = off_x + static_cast<double>(i) * pitch_x;
                    if (die_fits(x, y)) {
                        ++in_row;
                    }
                }
                if (in_row > 0) {
                    row_counts.push_back(in_row);
                    count += in_row;
                }
            }
            if (count > best.count) {
                best.count = count;
                best.offset_x = off_x;
                best.offset_y = off_y;
                best.row_counts = std::move(row_counts);
            }
        }
    }
    return best;
}

long gross_dies(const wafer& w, const die& d, gross_die_method method,
                millimeters scribe) {
    switch (method) {
        case gross_die_method::maly_rows:
            return maly_row_count(w, d);
        case gross_die_method::maly_rows_best_orient:
            return maly_row_count_best_orientation(w, d);
        case gross_die_method::area_ratio:
            return area_ratio_bound(w, d);
        case gross_die_method::circumference:
            return circumference_corrected(w, d);
        case gross_die_method::ferris_prabhu:
            return ferris_prabhu(w, d);
        case gross_die_method::exact:
            return exact_count(w, d, scribe).count;
    }
    throw std::invalid_argument("gross_dies: unknown method");
}

std::string to_string(gross_die_method method) {
    switch (method) {
        case gross_die_method::maly_rows:
            return "maly_rows";
        case gross_die_method::maly_rows_best_orient:
            return "maly_rows_best_orient";
        case gross_die_method::area_ratio:
            return "area_ratio";
        case gross_die_method::circumference:
            return "circumference";
        case gross_die_method::ferris_prabhu:
            return "ferris_prabhu";
        case gross_die_method::exact:
            return "exact";
    }
    return "unknown";
}

}  // namespace silicon::geometry
