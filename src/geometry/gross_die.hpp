// gross_die.hpp — gross-die-per-wafer (N_ch) estimators.
//
// Eq. (4) of the paper counts whole dies in horizontal rows stacked across
// the wafer.  The literature (Ferris-Prabhu [20] and successors) offers a
// family of closed-form approximations; this module implements the paper's
// row formula plus the standard approximations so they can be
// cross-validated (bench_ablate_grossdie) and so callers can pick the
// fidelity/speed point they need.
//
// A note on Eq. (4) as printed: the paper typesets
//
//     N_ch = sum_{j=0}^{floor(2 R_w / b) - 1} floor[ (2 / (a/b)) min(R_j, R_{j+1}) ]
//     R_j  = sqrt(R_w^2 - (j a b - R_w)^2)
//
// which is dimensionally inconsistent (the product `a*b` inside R_j is an
// area, and `2/(a/b)` carries a stray factor of b).  The intended formula —
// standard row-by-row die counting, and the one that reproduces the
// published N_ch values — stacks rows of height b across the 2*R_w wafer
// diameter and counts dies of width a within the chord at each row
// boundary:
//
//     R_j  = sqrt(R_w^2 - (j*b - R_w)^2)          (half chord at row line j)
//     N_ch = sum_j floor[ (2/a) * min(R_j, R_{j+1}) ]
//
// Both row edges must lie inside the circle, hence the min().  This is what
// `maly_row_count` implements.

#pragma once

#include "geometry/die.hpp"
#include "geometry/wafer.hpp"

#include <string>
#include <vector>

namespace silicon::geometry {

/// Eq. (4): row-stacked whole-die count.  Rows of height b are stacked
/// bottom-to-top across the wafer; each row holds floor(2*min(R_j,R_j+1)/a)
/// dies.  Deterministic, centered grid (no offset search).
/// Returns 0 when the die does not fit at all.
[[nodiscard]] long maly_row_count(const wafer& w, const die& d);

/// Same as maly_row_count but also evaluated with the die rotated 90
/// degrees; returns the larger count (a free optimization a mask designer
/// would always take for non-square dies).
[[nodiscard]] long maly_row_count_best_orientation(const wafer& w,
                                                   const die& d);

/// Naive upper bound: floor(wafer area / die area).  Ignores the circular
/// boundary entirely; useful as a sanity ceiling for the other estimators.
[[nodiscard]] long area_ratio_bound(const wafer& w, const die& d);

/// The classic first-order circumference correction
///     N = pi R^2 / A - pi (2R) / sqrt(2 A)
/// attributed to the die-per-wafer folklore and consistent with
/// Ferris-Prabhu's effective-area analysis [20] for square dies.
/// Returns 0 when the correction drives the estimate negative.
[[nodiscard]] long circumference_corrected(const wafer& w, const die& d);

/// Ferris-Prabhu effective-radius estimator [20]:
///     N = pi (R - s/2)^2 / A,   s = sqrt(A)
/// Treats each die as if its center must lie at least half a die-edge away
/// from the wafer rim.  Slightly optimistic for large dies.
[[nodiscard]] long ferris_prabhu(const wafer& w, const die& d);

/// Result of the exact placement search (see exact_count).
struct placement_result {
    long count = 0;        ///< best whole-die count over searched offsets
    double offset_x = 0.0; ///< grid offset in mm that achieved it
    double offset_y = 0.0;
    /// Per-row die counts for the winning placement (bottom to top).
    std::vector<long> row_counts;
};

/// Exhaustive grid-offset search: places a rectangular grid of dies (with
/// optional scribe/kerf spacing) at `offsets_per_axis`^2 sub-die-pitch
/// offsets and keeps the placement maximizing whole dies inside the usable
/// radius.  This is the ground truth the closed forms are judged against.
[[nodiscard]] placement_result exact_count(
    const wafer& w, const die& d,
    millimeters scribe = millimeters{0.0},
    int offsets_per_axis = 8);

/// Names for reporting which estimator produced a figure.
enum class gross_die_method {
    maly_rows,              ///< Eq. (4) row formula (paper default)
    maly_rows_best_orient,  ///< Eq. (4), best of two orientations
    area_ratio,             ///< area upper bound
    circumference,          ///< first-order edge correction
    ferris_prabhu,          ///< effective-radius form [20]
    exact,                  ///< offset-searched placement
};

/// Dispatch on method; `scribe` only affects gross_die_method::exact.
[[nodiscard]] long gross_dies(const wafer& w, const die& d,
                              gross_die_method method,
                              millimeters scribe = millimeters{0.0});

/// Human-readable method name for tables/benches.
[[nodiscard]] std::string to_string(gross_die_method method);

}  // namespace silicon::geometry
