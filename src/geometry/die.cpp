#include "geometry/die.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::geometry {

die::die(millimeters a, millimeters b) : a_{a}, b_{b} {
    if (a.value() <= 0.0 || b.value() <= 0.0) {
        throw std::invalid_argument("die: both edges must be positive");
    }
}

die die::square_with_area(square_millimeters area) {
    if (area.value() <= 0.0) {
        throw std::invalid_argument("die: area must be positive");
    }
    const millimeters edge{std::sqrt(area.value())};
    return die{edge, edge};
}

}  // namespace silicon::geometry
