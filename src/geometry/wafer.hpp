// wafer.hpp — physical description of a silicon wafer.
//
// The cost model needs only a handful of wafer attributes: the radius R_w
// (the paper works with R_w = 7.5 cm for 6-inch and 10 cm for 8-inch
// wafers), an optional edge exclusion ring where dies may not be placed,
// and the usable area A_w that enters Eq. (8)/(9).

#pragma once

#include "core/units.hpp"

namespace silicon::geometry {

/// Immutable wafer description.
///
/// Invariant: radius > 0 and edge_exclusion < radius.
class wafer {
public:
    /// Construct a wafer with the given physical radius and edge exclusion
    /// ring (defect-prone outer annulus where no dies are placed).
    /// Throws std::invalid_argument when the invariant is violated.
    explicit wafer(centimeters radius,
                   centimeters edge_exclusion = centimeters{0.0});

    /// Physical radius R_w.
    [[nodiscard]] centimeters radius() const noexcept { return radius_; }

    /// Width of the unusable outer annulus.
    [[nodiscard]] centimeters edge_exclusion() const noexcept {
        return edge_exclusion_;
    }

    /// Radius of the area usable for die placement.
    [[nodiscard]] centimeters usable_radius() const noexcept {
        return centimeters{radius_.value() - edge_exclusion_.value()};
    }

    /// Full physical area pi * R_w^2 (the A_w of Eqs. (8) and (9)).
    [[nodiscard]] square_centimeters area() const {
        return disc_area(radius_);
    }

    /// Area of the placement-usable disc.
    [[nodiscard]] square_centimeters usable_area() const {
        return disc_area(usable_radius());
    }

    /// The paper's default wafer: 6-inch, R_w = 7.5 cm, no edge exclusion.
    [[nodiscard]] static wafer six_inch() {
        return wafer{centimeters{7.5}};
    }

    /// 8-inch wafer (R_w = 10 cm), used in Table 3 row 14.
    [[nodiscard]] static wafer eight_inch() {
        return wafer{centimeters{10.0}};
    }

private:
    centimeters radius_;
    centimeters edge_exclusion_;
};

}  // namespace silicon::geometry
