// wafer_map.hpp — ASCII rendering of die placements on a wafer.
//
// Purely a diagnostic/visualization aid: renders the exact_count placement
// as a character raster (one cell per die site), marking sites inside the
// usable area.  Used by examples and by humans sanity-checking the
// gross-die estimators.

#pragma once

#include "geometry/die.hpp"
#include "geometry/gross_die.hpp"
#include "geometry/wafer.hpp"

#include <string>

namespace silicon::geometry {

/// Render the dies of the best exact placement as an ASCII map.
/// `#` marks a placed whole die, `.` marks a grid site whose die would
/// cross the usable boundary, space is outside the wafer bounding box.
/// `max_width` caps the number of character columns; the map is scaled by
/// skipping rendering (not placement) when the grid is wider than that.
[[nodiscard]] std::string render_wafer_map(const wafer& w, const die& d,
                                           millimeters scribe = millimeters{0.0},
                                           int max_width = 120);

}  // namespace silicon::geometry
