#include "geometry/reticle.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::geometry {

reticle_plan plan_reticle(const wafer& w, const die& d,
                          const reticle_spec& spec) {
    if (!(spec.field_width.value() > 0.0) ||
        !(spec.field_height.value() > 0.0)) {
        throw std::invalid_argument("plan_reticle: empty field");
    }
    if (!(spec.seconds_per_exposure > 0.0)) {
        throw std::invalid_argument(
            "plan_reticle: exposure time must be positive");
    }

    // Dice per field: n dice consume n*edge + (n-1)*scribe.
    const auto fit = [&](double die_edge, double field_edge) {
        const double pitch = die_edge + spec.scribe.value();
        return static_cast<int>(
            std::floor((field_edge + spec.scribe.value()) / pitch));
    };
    reticle_plan plan;
    plan.cols = fit(d.width().value(), spec.field_width.value());
    plan.rows = fit(d.height().value(), spec.field_height.value());
    if (plan.cols < 1 || plan.rows < 1) {
        throw std::invalid_argument(
            "plan_reticle: die does not fit in the reticle field");
    }
    plan.dice_per_field = plan.cols * plan.rows;

    // Fields per wafer: cover the wafer area with field-sized tiles; the
    // stepper exposes partial edge fields too, so count tiles whose
    // rectangle intersects the usable disc.
    const double r = w.usable_radius().to_millimeters().value();
    const double fw = spec.field_width.value();
    const double fh = spec.field_height.value();
    const double r2 = r * r;
    long fields = 0;
    const long half_cols = static_cast<long>(std::ceil(r / fw)) + 1;
    const long half_rows = static_cast<long>(std::ceil(r / fh)) + 1;
    for (long j = -half_rows; j < half_rows; ++j) {
        for (long i = -half_cols; i < half_cols; ++i) {
            const double x0 = static_cast<double>(i) * fw;
            const double y0 = static_cast<double>(j) * fh;
            // Closest point of the tile to the center inside the disc?
            const double cx = std::max(x0, std::min(0.0, x0 + fw));
            const double cy = std::max(y0, std::min(0.0, y0 + fh));
            if (cx * cx + cy * cy <= r2) {
                ++fields;
            }
        }
    }
    plan.fields_per_wafer = fields;
    plan.seconds_per_wafer =
        spec.seconds_overhead_per_wafer +
        static_cast<double>(fields) * spec.seconds_per_exposure;
    plan.wafers_per_hour = 3600.0 / plan.seconds_per_wafer;
    return plan;
}

}  // namespace silicon::geometry
