// reticle.hpp — stepper reticle field geometry.
//
// The lithography link between die geometry and fab economics: a stepper
// exposes one reticle *field* at a time, a field holds an integer grid
// of dice, and wafer throughput falls with the number of fields per
// wafer.  This closes the loop from die size to the fabline model's
// lithography pass time — the mechanism behind "high throughput ...
// indirectly leads to very low utilization levels" (Sec. V) and part of
// why small dies are cheap beyond pure area.

#pragma once

#include "geometry/die.hpp"
#include "geometry/wafer.hpp"

namespace silicon::geometry {

/// Stepper field limits (e.g. a 22 x 22 mm early-90s field).
struct reticle_spec {
    millimeters field_width{22.0};
    millimeters field_height{22.0};
    millimeters scribe{0.1};     ///< spacing between dice in the field
    double seconds_per_exposure = 0.6;  ///< expose + step time
    double seconds_overhead_per_wafer = 30.0;  ///< load/align
};

/// Field packing result.
struct reticle_plan {
    int dice_per_field = 0;      ///< cols * rows inside the field
    int cols = 0;
    int rows = 0;
    long fields_per_wafer = 0;   ///< exposures needed for full coverage
    double seconds_per_wafer = 0.0;   ///< one mask layer's litho time
    double wafers_per_hour = 0.0;     ///< stepper throughput, one layer
};

/// Pack the die into the field (how many columns/rows of dice fit with
/// scribe spacing) and derive exposures per wafer and stepper
/// throughput.  Throws std::invalid_argument when the die does not fit
/// in the field at all.
[[nodiscard]] reticle_plan plan_reticle(const wafer& w, const die& d,
                                        const reticle_spec& spec = {});

}  // namespace silicon::geometry
