// die.hpp — rectangular die geometry.
//
// The paper parameterizes dies by their edge lengths a and b (Eq. 4) or by
// their area A_ch (Eqs. 5-9).  `die` stores both edges; square dies are the
// common case and have a dedicated factory.

#pragma once

#include "core/units.hpp"

namespace silicon::geometry {

/// Immutable rectangular die.  Invariant: both edges > 0.
class die {
public:
    /// Construct from edge lengths a x b.  Throws std::invalid_argument
    /// when either edge is non-positive.
    die(millimeters a, millimeters b);

    /// Square die with the given area (the paper's A_ch, e.g. A_0 = 1 cm^2).
    [[nodiscard]] static die square_with_area(square_millimeters area);

    /// Square die with the given edge.
    [[nodiscard]] static die square(millimeters edge) {
        return die{edge, edge};
    }

    [[nodiscard]] millimeters width() const noexcept { return a_; }
    [[nodiscard]] millimeters height() const noexcept { return b_; }

    /// A_ch = a * b.
    [[nodiscard]] square_millimeters area() const { return area_of(a_, b_); }

    /// Aspect ratio a/b (>= the reciprocal of itself only for a >= b).
    [[nodiscard]] double aspect_ratio() const noexcept {
        return a_.value() / b_.value();
    }

    /// Die with the same area but edges swapped.
    [[nodiscard]] die rotated() const { return die{b_, a_}; }

private:
    millimeters a_;
    millimeters b_;
};

}  // namespace silicon::geometry
