#include "geometry/wafer_map.hpp"

#include <cmath>
#include <vector>

namespace silicon::geometry {

std::string render_wafer_map(const wafer& w, const die& d, millimeters scribe,
                             int max_width) {
    const placement_result placed = exact_count(w, d, scribe);
    const double r = w.usable_radius().to_millimeters().value();
    const double pitch_x = d.width().value() + scribe.value();
    const double pitch_y = d.height().value() + scribe.value();
    const double a = d.width().value();
    const double b = d.height().value();
    const double r2 = r * r;

    const auto die_fits = [&](double x, double y) {
        const auto in = [&](double px, double py) {
            return px * px + py * py <= r2;
        };
        return in(x, y) && in(x + a, y) && in(x, y + b) && in(x + a, y + b);
    };
    const auto cell_touches_wafer = [&](double x, double y) {
        // Any corner inside the physical wafer keeps the site on the map.
        const double pr = w.radius().to_millimeters().value();
        const double pr2 = pr * pr;
        const auto in = [&](double px, double py) {
            return px * px + py * py <= pr2;
        };
        return in(x, y) || in(x + a, y) || in(x, y + b) || in(x + a, y + b);
    };

    const long cols_half =
        static_cast<long>(std::ceil(r / pitch_x)) + 1;
    const long rows_half =
        static_cast<long>(std::ceil(r / pitch_y)) + 1;

    std::string out;
    long col_step = 1;
    if (2 * cols_half + 1 > max_width) {
        col_step = (2 * cols_half + max_width) / max_width;
    }

    for (long j = rows_half; j >= -rows_half; --j) {
        const double y = placed.offset_y + static_cast<double>(j) * pitch_y;
        std::string line;
        for (long i = -cols_half; i <= cols_half; i += col_step) {
            const double x = placed.offset_x + static_cast<double>(i) * pitch_x;
            if (die_fits(x, y)) {
                line.push_back('#');
            } else if (cell_touches_wafer(x, y)) {
                line.push_back('.');
            } else {
                line.push_back(' ');
            }
        }
        // Trim trailing spaces to keep the output compact.
        while (!line.empty() && line.back() == ' ') {
            line.pop_back();
        }
        if (!line.empty()) {
            out += line;
            out.push_back('\n');
        }
    }
    return out;
}

}  // namespace silicon::geometry
