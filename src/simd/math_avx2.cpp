// math_avx2.cpp — AVX2+FMA backend (4 double lanes per register).
//
// Compiled with -mavx2 -mfma (see simd/CMakeLists.txt); nothing in
// this TU may run unless host_supports(target::avx2) — math.cpp only
// installs this table after that check.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "simd/math_impl.hpp"

namespace silicon::simd::detail {
namespace {

struct vec_avx2 {
    using reg = __m256d;
    static constexpr std::size_t width = 4;

    static reg load(const double* p) { return _mm256_loadu_pd(p); }
    static void store(double* p, reg v) { _mm256_storeu_pd(p, v); }
    static reg set1(double x) { return _mm256_set1_pd(x); }

    static reg add(reg a, reg b) { return _mm256_add_pd(a, b); }
    static reg sub(reg a, reg b) { return _mm256_sub_pd(a, b); }
    static reg mul(reg a, reg b) { return _mm256_mul_pd(a, b); }
    static reg div(reg a, reg b) { return _mm256_div_pd(a, b); }
    /// a*b + c with a single rounding.
    static reg fma(reg a, reg b, reg c) { return _mm256_fmadd_pd(a, b, c); }
    static reg min(reg a, reg b) { return _mm256_min_pd(a, b); }
    static reg max(reg a, reg b) { return _mm256_max_pd(a, b); }
    static reg abs(reg a) {
        return _mm256_andnot_pd(set1(-0.0), a);
    }
    static reg round_nearest(reg a) {
        return _mm256_round_pd(a, _MM_FROUND_TO_NEAREST_INT |
                                      _MM_FROUND_NO_EXC);
    }

    static reg lt(reg a, reg b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
    static reg le(reg a, reg b) { return _mm256_cmp_pd(a, b, _CMP_LE_OQ); }
    static reg gt(reg a, reg b) { return _mm256_cmp_pd(a, b, _CMP_GT_OQ); }
    static reg eq(reg a, reg b) { return _mm256_cmp_pd(a, b, _CMP_EQ_OQ); }
    static reg unordered(reg a) {
        return _mm256_cmp_pd(a, a, _CMP_UNORD_Q);
    }
    static reg and_m(reg a, reg b) { return _mm256_and_pd(a, b); }
    static reg or_m(reg a, reg b) { return _mm256_or_pd(a, b); }
    /// mask-true lanes from a, others from b.
    static reg select(reg mask, reg a, reg b) {
        return _mm256_blendv_pd(b, a, mask);
    }

    /// One bit per lane (bit i = lane i's mask sign); all_mask when
    /// every lane is set.  Lets kernels skip a branch's work for
    /// uniform registers without changing any lane's result.
    static constexpr int all_mask = 0xF;
    static int movemask(reg m) { return _mm256_movemask_pd(m); }

    /// 2^k for integral-valued double lanes k in [-1022, 1023].
    static reg pow2i(reg k) {
        const __m128i k32 = _mm256_cvtpd_epi32(k);
        const __m256i k64 = _mm256_cvtepi32_epi64(k32);
        const __m256i bits = _mm256_slli_epi64(
            _mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52);
        return _mm256_castsi256_pd(bits);
    }

    /// Biased exponent field as a double, for positive finite inputs.
    static reg exp_biased(reg x) {
        const __m256i bits = _mm256_castpd_si256(x);
        const __m256i e = _mm256_srli_epi64(bits, 52);
        // int64 in [0, 2047] -> double via the 2^52 offset trick.
        const __m256i magic = _mm256_castpd_si256(set1(0x1p52));
        const reg shifted = _mm256_castsi256_pd(_mm256_or_si256(e, magic));
        return sub(shifted, set1(0x1p52));
    }

    /// Mantissa of x re-homed to [0.5, 1).
    static reg mant_half(reg x) {
        const __m256i bits = _mm256_castpd_si256(x);
        const __m256i mant = _mm256_and_si256(
            bits, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL));
        const __m256i half = _mm256_or_si256(
            mant, _mm256_set1_epi64x(0x3FE0000000000000LL));
        return _mm256_castsi256_pd(half);
    }
};

const math_table table = {
    &exp_array<vec_avx2>,
    &expm1_array<vec_avx2>,
    &pow_array<vec_avx2>,
};

}  // namespace

const math_table& avx2_table() { return table; }

}  // namespace silicon::simd::detail

#endif  // x86-64
