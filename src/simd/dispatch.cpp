#include "simd/dispatch.hpp"

#include <cstdlib>
#include <cstring>

namespace silicon::simd {
namespace {

bool env_is(const char* value, const char* want) {
    return value != nullptr && std::strcmp(value, want) == 0;
}

target detect() {
    const char* forced = std::getenv("SILICON_SIMD");
    if (env_is(forced, "scalar")) {
        return target::scalar;
    }
    if (env_is(forced, "avx2")) {
        return host_supports(target::avx2) ? target::avx2 : target::scalar;
    }
    if (env_is(forced, "neon")) {
        return host_supports(target::neon) ? target::neon : target::scalar;
    }
    // Unset or "auto" (or anything unrecognized): best the host can do.
    if (host_supports(target::avx2)) {
        return target::avx2;
    }
    if (host_supports(target::neon)) {
        return target::neon;
    }
    return target::scalar;
}

}  // namespace

bool host_supports(target t) {
    switch (t) {
    case target::scalar:
        return true;
    case target::avx2:
#if defined(__x86_64__) || defined(_M_X64)
        return __builtin_cpu_supports("avx2") != 0 &&
               __builtin_cpu_supports("fma") != 0;
#else
        return false;
#endif
    case target::neon:
#if defined(__aarch64__)
        // Advanced SIMD with double lanes is baseline on aarch64.
        return true;
#else
        return false;
#endif
    }
    return false;
}

target active_target() {
    static const target resolved = detect();
    return resolved;
}

const char* to_string(target t) {
    switch (t) {
    case target::scalar:
        return "scalar";
    case target::avx2:
        return "avx2";
    case target::neon:
        return "neon";
    }
    return "scalar";
}

}  // namespace silicon::simd
