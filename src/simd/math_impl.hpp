// math_impl.hpp — ISA-generic bodies of the vector transcendentals.
//
// Included only by the per-ISA translation units (math_avx2.cpp,
// math_neon.cpp), each of which supplies a traits struct V wrapping
// its intrinsics.  Keeping one algorithm shared between backends means
// the NEON path is the *same numerics* as the AVX2 path that CI
// exercises on x86 — only the register wrappers differ.
//
// Algorithms (see math.hpp for the resulting error bounds):
//
//   exp   — Cody-Waite reduction r = x - k*ln2 with a 2-term split
//           constant (k*ln2hi exact for |k| <= 2^31 because ln2hi
//           carries 20 trailing zero bits), degree-17 Taylor kernel
//           for expm1(r) on |r| <= ln2/2, and a two-step 2^k scaling
//           so overflow saturates to inf and underflow degrades
//           gradually through the subnormals with a single rounding.
//   expm1 — the same Taylor kernel applied directly on |x| <= ln2
//           (no cancellation), exp(x)-1 outside (where |exp(x)-1| is
//           bounded away from 0 so the subtraction is benign).
//   pow   — exp(y * log(x)) with log returned as a double-double
//           (hi, lo) pair: the leading 2s term of the atanh series is
//           compensated for both the division rounding *and* the
//           rounding of the 1+m denominator, which keeps the relative
//           error of y*log(x) near 2^-60 and therefore the final
//           error at a few ULP even when |y*log(x)| is several
//           hundred (results close to the overflow/underflow edge).
//
// Per-lane independence: nothing here mixes lanes, so the value of a
// lane never depends on its position inside a register.  The array
// drivers exploit that by computing ragged tails through a padded
// register — a sub-range call is bytewise a slice of the full-range
// call, which is what makes fast_math byte-stable across
// parallel_for shard boundaries and thread counts.

#pragma once

#include <cstddef>
#include <limits>

#include "simd/math.hpp"

// The drivers below unroll four independent kernel evaluations per
// iteration to hide FMA latency; that only works if the kernels are
// actually inlined there (an out-of-line call makes every vector
// register caller-saved, spilling the interleaved chains to the
// stack).  gcc declines to inline v_pow at -O2 on its own, so force
// it.
#if defined(__GNUC__)
#define SILICON_SIMD_INLINE inline __attribute__((always_inline))
#else
#define SILICON_SIMD_INLINE inline
#endif

namespace silicon::simd::detail {

// exp reduction constants (fdlibm split: ln2hi has 20 trailing zero
// mantissa bits, so k*ln2hi is exact for the |k| <= 1077 we produce).
inline constexpr double k_log2e = 1.44269504088896338700;   // 0x1.71547652b82fep+0
inline constexpr double k_ln2hi = 6.93147180369123816490e-01;  // 0x1.62e42fee00000p-1
inline constexpr double k_ln2lo = 1.90821492927058770002e-10;  // 0x1.a39ef35793c76p-33
inline constexpr double k_exp_hi_clamp = 710.0;   // > ln(DBL_MAX) = 709.78
inline constexpr double k_exp_lo_clamp = -746.0;  // < ln(0x1p-1075) = -745.2
inline constexpr double k_sqrt_half = 0.70710678118654752440;

// Taylor coefficients of (exp(r) - 1 - r) / r^2 = sum r^(n-2)/n!,
// n = 2..17.  Degree 17 keeps the truncation below 1e-17 relative up
// to |r| = ln2, which covers both the exp kernel (|r| <= ln2/2) and
// the direct expm1 window (|x| <= ln2).
inline constexpr double k_expm1_q[] = {
    1.0 / 2.0,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5040.0,
    1.0 / 40320.0,
    1.0 / 362880.0,
    1.0 / 3628800.0,
    1.0 / 39916800.0,
    1.0 / 479001600.0,
    1.0 / 6227020800.0,
    1.0 / 87178291200.0,
    1.0 / 1307674368000.0,
    1.0 / 20922789888000.0,
    1.0 / 355687428096000.0,
};

// atanh series for log: log(m) = 2s * (1 + sum z^j / (2j+1)),
// z = s^2, s = (m-1)/(m+1), |s| <= sqrt(2)-1 / sqrt(2)+1 = 0.1716.
// The leading 1/3 term is carried as a two-double split (the 0.5-ULP
// rounding of 1/3 alone would cost ~1e-18 absolute in the tail, the
// single biggest error term of a naive evaluation); the remaining
// exact-rational terms put the truncation near 1e-20 relative.
inline constexpr double k_third_hi = 1.0 / 3.0;
inline constexpr double k_third_lo = 1.850371707708594e-17;  // 1/3 - k_third_hi
inline constexpr double k_log_q[] = {
    1.0 / 5.0,  1.0 / 7.0,  1.0 / 9.0,  1.0 / 11.0,
    1.0 / 13.0, 1.0 / 15.0, 1.0 / 17.0, 1.0 / 19.0,
    1.0 / 21.0, 1.0 / 23.0, 1.0 / 25.0,
};

/// Q(r) such that expm1(r) = r + r^2 * Q(r) (Horner, highest first).
template <class V>
SILICON_SIMD_INLINE typename V::reg expm1_q(typename V::reg r) {
    constexpr std::size_t terms = sizeof(k_expm1_q) / sizeof(k_expm1_q[0]);
    typename V::reg q = V::set1(k_expm1_q[terms - 1]);
    for (std::size_t i = terms - 1; i-- > 0;) {
        q = V::fma(q, r, V::set1(k_expm1_q[i]));
    }
    return q;
}

/// exp(hi + lo) for hi in [-746, 710], |lo| <~ 2^-50 * |hi|.
template <class V>
SILICON_SIMD_INLINE typename V::reg exp_core(typename V::reg hi, typename V::reg lo) {
    using R = typename V::reg;
    const R k = V::round_nearest(V::mul(hi, V::set1(k_log2e)));
    R r = V::fma(k, V::set1(-k_ln2hi), hi);  // exact
    r = V::fma(k, V::set1(-k_ln2lo), r);
    r = V::add(r, lo);
    const R p = V::fma(V::mul(r, r), expm1_q<V>(r), r);  // expm1(r)
    // 2^k in two exact halves so |k| up to 1077 neither overflows the
    // exponent field nor double-rounds the subnormal result.
    const R k1 = V::round_nearest(V::mul(k, V::set1(0.5)));
    const R k2 = V::sub(k, k1);
    const R scaled = V::mul(V::add(p, V::set1(1.0)), V::pow2i(k1));
    return V::mul(scaled, V::pow2i(k2));
}

/// exp(x) over the full double range with IEEE specials.
template <class V>
SILICON_SIMD_INLINE typename V::reg v_exp(typename V::reg x) {
    using R = typename V::reg;
    const R xc = V::min(V::max(x, V::set1(k_exp_lo_clamp)),
                        V::set1(k_exp_hi_clamp));
    R res = exp_core<V>(xc, V::set1(0.0));
    // Propagate (quieted) NaN inputs; the clamp above may have eaten
    // them depending on the ISA's min/max semantics.
    return V::select(V::unordered(x), V::add(x, x), res);
}

/// expm1(x) over the full double range with IEEE specials.
///
/// The two branches (direct polynomial on |x| <= ln2, exp(x)-1
/// outside) cost about the same, so computing both for every register
/// doubles the work.  A movemask test skips the unused branch when the
/// register is uniform — the common case for sweep grids, which are
/// monotone — without changing any lane's bits: each lane's value is
/// the same expression the mixed path's selects would have picked.
template <class V>
SILICON_SIMD_INLINE typename V::reg v_expm1(typename V::reg x) {
    using R = typename V::reg;
    const R small = V::le(V::abs(x), V::set1(6.93147180559945286227e-01));
    const int mm = V::movemask(small);
    if (mm == V::all_mask) {
        // All lanes small.  NaN lanes cannot be here (unordered le is
        // false), so only the signed-zero fixup applies: the
        // polynomial turns -0 into +0 (x + x^2 Q rounds -0 + 0 up);
        // hand zeros back verbatim so expm1(+-0) = +-0 like libm.
        const R direct = V::fma(V::mul(x, x), expm1_q<V>(x), x);
        return V::select(V::eq(x, V::set1(0.0)), x, direct);
    }
    if (mm == 0) {
        // No small lanes, so no zeros; NaN propagation still applies.
        const R via_exp = V::sub(v_exp<V>(x), V::set1(1.0));
        return V::select(V::unordered(x), V::add(x, x), via_exp);
    }
    const R direct = V::fma(V::mul(x, x), expm1_q<V>(x), x);
    const R via_exp = V::sub(v_exp<V>(x), V::set1(1.0));
    R res = V::select(small, direct, via_exp);
    res = V::select(V::eq(x, V::set1(0.0)), x, res);
    return V::select(V::unordered(x), V::add(x, x), res);
}

/// log(x) as a double-double (hi + lo), for x > 0 finite; x = +inf
/// yields a large finite hi (callers special-case inf bases).
template <class V>
SILICON_SIMD_INLINE void v_log_dd(typename V::reg x, typename V::reg& hi, typename V::reg& lo) {
    using R = typename V::reg;
    const R one = V::set1(1.0);
    // Subnormal bases: renormalize by 2^54 so the exponent field is
    // meaningful, then fold the 54 back into e.
    const R tiny = V::lt(x, V::set1(std::numeric_limits<double>::min()));
    const R xs = V::select(tiny, V::mul(x, V::set1(0x1p54)), x);
    const R eadj = V::select(tiny, V::set1(54.0), V::set1(0.0));
    R m = V::mant_half(xs);  // mantissa of xs placed in [0.5, 1)
    R e = V::sub(V::sub(V::exp_biased(xs), V::set1(1022.0)), eadj);
    // Center m in [sqrt(1/2), sqrt(2)) so f = m-1 is small and exact.
    const R low_m = V::lt(m, V::set1(k_sqrt_half));
    m = V::select(low_m, V::add(m, m), m);
    e = V::select(low_m, V::sub(e, one), e);
    const R f = V::sub(m, one);  // exact (Sterbenz)
    // s = f / (1+m), with the leading term compensated for both the
    // division rounding and the rounding of den = 1+m itself.
    const R den = V::add(one, m);
    const R bb = V::sub(den, one);
    const R den_err = V::add(V::sub(one, V::sub(den, bb)), V::sub(m, bb));
    const R s = V::div(f, den);
    const R sres = V::fma(V::sub(V::set1(0.0), s), den, f);  // exact residual
    const R slo = V::div(V::fma(V::sub(V::set1(0.0), s), den_err, sres), den);
    // atanh tail: log(m) = 2s + w/3 + w*z*Q2(z), w = 2s*z, z = s^2.
    // w/3 (the whole tail is ~1% of 2s) is computed as a dd so its
    // rounding does not cap the final accuracy; the z^2-and-up rest is
    // small enough for a plain double chain.
    const R z = V::mul(s, s);
    const R slo2 = V::add(slo, slo);
    // First-order corrections: z_true ~ z + zcorr (z rounding plus the
    // 2*s*slo cross term), w_true ~ w + wcorr likewise.
    const R zcorr = V::fma(s, slo2, V::fma(s, s, V::sub(V::set1(0.0), z)));
    const R two_s = V::add(s, s);
    const R w = V::mul(two_s, z);
    R wcorr = V::fma(two_s, z, V::sub(V::set1(0.0), w));
    wcorr = V::fma(two_s, zcorr, wcorr);
    wcorr = V::fma(slo2, z, wcorr);
    constexpr std::size_t terms = sizeof(k_log_q) / sizeof(k_log_q[0]);
    R q2 = V::set1(k_log_q[terms - 1]);
    for (std::size_t i = terms - 1; i-- > 0;) {
        q2 = V::fma(q2, z, V::set1(k_log_q[i]));
    }
    const R tail_hi = V::mul(w, V::set1(k_third_hi));
    R tail_lo = V::fma(w, V::set1(k_third_hi),
                       V::sub(V::set1(0.0), tail_hi));  // exact residual
    tail_lo = V::fma(w, V::set1(k_third_lo), tail_lo);
    tail_lo = V::fma(wcorr, V::set1(k_third_hi), tail_lo);
    tail_lo = V::fma(V::mul(w, z), q2, tail_lo);
    // Assemble e*ln2 + 2s + tail as a renormalized dd.
    const R t1 = V::mul(e, V::set1(k_ln2hi));  // exact
    const R h = V::add(t1, two_s);
    const R hbb = V::sub(h, t1);
    const R c1 = V::add(V::sub(t1, V::sub(h, hbb)), V::sub(two_s, hbb));
    const R small_sum = V::fma(e, V::set1(k_ln2lo),
                               V::fma(V::set1(2.0), slo, tail_lo));
    const R lo_total = V::add(V::add(c1, small_sum), tail_hi);
    hi = V::add(h, lo_total);
    lo = V::add(V::sub(h, hi), lo_total);  // fast_two_sum renormalize
}

/// The log phase of pow(b, y): thc/tl such that the result (before
/// special-case selects) is exp_core(thc, tl).  Split from the exp
/// phase so pow_array can run the two (each register-hungry) phases
/// as separate passes over a small stack block — a whole v_pow keeps
/// too many values live to interleave on a 16-register file.
template <class V>
SILICON_SIMD_INLINE void v_pow_log_phase(typename V::reg b,
                                         typename V::reg y,
                                         typename V::reg& thc,
                                         typename V::reg& tl) {
    using R = typename V::reg;
    R lh, ll;
    v_log_dd<V>(b, lh, ll);
    const R th = V::mul(y, lh);
    const R terr = V::fma(y, lh, V::sub(V::set1(0.0), th));
    tl = V::fma(y, ll, terr);
    thc = V::min(V::max(th, V::set1(k_exp_lo_clamp)),
                 V::set1(k_exp_hi_clamp));
}

/// The special-case selects of pow applied to a raw exp_core result.
template <class V>
SILICON_SIMD_INLINE typename V::reg v_pow_specials(typename V::reg b,
                                                   typename V::reg y,
                                                   typename V::reg res) {
    using R = typename V::reg;
    const R zero = V::set1(0.0);
    const R one = V::set1(1.0);
    const R inf = V::set1(std::numeric_limits<double>::infinity());
    const R qnan = V::set1(std::numeric_limits<double>::quiet_NaN());
    // Infinite exponent with a finite base: y*log(b) is an inf*finite
    // product whose compensation term is inf - inf = NaN, so decide
    // directly — the result grows iff |b| > 1 agrees with the sign of
    // y (b == 1 and NaN/negative bases are overridden below).
    const R y_inf = V::eq(V::abs(y), inf);
    const R grows = V::or_m(V::and_m(V::gt(b, one), V::gt(y, zero)),
                            V::and_m(V::lt(b, one), V::lt(y, zero)));
    res = V::select(y_inf, V::select(grows, inf, zero), res);
    const R b_inf = V::eq(b, inf);
    const R b_zero = V::eq(b, zero);
    res = V::select(V::and_m(b_inf, V::gt(y, zero)), inf, res);
    res = V::select(V::and_m(b_inf, V::lt(y, zero)), zero, res);
    res = V::select(V::and_m(b_zero, V::gt(y, zero)), zero, res);
    res = V::select(V::and_m(b_zero, V::lt(y, zero)), inf, res);
    res = V::select(V::or_m(V::lt(b, zero), V::unordered(b)), qnan, res);
    res = V::select(V::unordered(y), qnan, res);
    // pow(x, +-0) and pow(1, y) are 1 for *every* x and y, NaN included.
    res = V::select(V::or_m(V::eq(y, zero), V::eq(b, one)), one, res);
    return res;
}

/// pow(b, y) for b >= 0 (plus IEEE specials; negative bases -> NaN).
template <class V>
SILICON_SIMD_INLINE typename V::reg v_pow(typename V::reg b, typename V::reg y) {
    typename V::reg thc, tl;
    v_pow_log_phase<V>(b, y, thc, tl);
    return v_pow_specials<V>(b, y, exp_core<V>(thc, tl));
}

// ---- array drivers (padded deterministic tails) --------------------
//
// The kernels above are long serial FMA chains (degree-17 Horner for
// exp/expm1, the double-double log for pow), so one vector in flight
// leaves the FMA pipes mostly idle — throughput is latency-bound.  The
// drivers therefore process four independent vectors per iteration;
// the out-of-order core interleaves the four chains and the same code
// runs ~3x faster.  Per-lane numerics are untouched (each lane still
// sees the identical op sequence), so bit-stability across sub-range
// splits is preserved.

template <class V>
void exp_array(const double* x, double* out, std::size_t n) {
    constexpr std::size_t w = V::width;
    std::size_t i = 0;
    for (; i + 4 * w <= n; i += 4 * w) {
        const typename V::reg r0 = v_exp<V>(V::load(x + i));
        const typename V::reg r1 = v_exp<V>(V::load(x + i + w));
        const typename V::reg r2 = v_exp<V>(V::load(x + i + 2 * w));
        const typename V::reg r3 = v_exp<V>(V::load(x + i + 3 * w));
        V::store(out + i, r0);
        V::store(out + i + w, r1);
        V::store(out + i + 2 * w, r2);
        V::store(out + i + 3 * w, r3);
    }
    for (; i + w <= n; i += w) {
        V::store(out + i, v_exp<V>(V::load(x + i)));
    }
    if (i < n) {
        double in[w];
        double res[w];
        for (std::size_t j = 0; j < w; ++j) {
            in[j] = (i + j < n) ? x[i + j] : 0.0;
        }
        V::store(res, v_exp<V>(V::load(in)));
        for (std::size_t j = 0; i + j < n; ++j) {
            out[i + j] = res[j];
        }
    }
}

template <class V>
void expm1_array(const double* x, double* out, std::size_t n) {
    constexpr std::size_t w = V::width;
    std::size_t i = 0;
    for (; i + 4 * w <= n; i += 4 * w) {
        const typename V::reg r0 = v_expm1<V>(V::load(x + i));
        const typename V::reg r1 = v_expm1<V>(V::load(x + i + w));
        const typename V::reg r2 = v_expm1<V>(V::load(x + i + 2 * w));
        const typename V::reg r3 = v_expm1<V>(V::load(x + i + 3 * w));
        V::store(out + i, r0);
        V::store(out + i + w, r1);
        V::store(out + i + 2 * w, r2);
        V::store(out + i + 3 * w, r3);
    }
    for (; i + w <= n; i += w) {
        V::store(out + i, v_expm1<V>(V::load(x + i)));
    }
    if (i < n) {
        double in[w];
        double res[w];
        for (std::size_t j = 0; j < w; ++j) {
            in[j] = (i + j < n) ? x[i + j] : 0.0;
        }
        V::store(res, v_expm1<V>(V::load(in)));
        for (std::size_t j = 0; i + j < n; ++j) {
            out[i + j] = res[j];
        }
    }
}

template <class V>
void pow_array(const double* base, const double* expo, double* out,
               std::size_t n) {
    constexpr std::size_t w = V::width;
    std::size_t i = 0;
    // Two passes over a 4-vector block through stack buffers: the log
    // phase and the exp phase each fit the register file, so their
    // four chains interleave instead of spilling (numerically this is
    // the exact v_pow op sequence — only the schedule differs, and
    // per-lane results are bitwise the same).
    for (; i + 2 * w <= n; i += 2 * w) {
        alignas(64) double thc[2 * w];
        alignas(64) double tl[2 * w];
        for (std::size_t j = 0; j < 2; ++j) {
            typename V::reg h, l;
            v_pow_log_phase<V>(V::load(base + i + j * w),
                               V::load(expo + i + j * w), h, l);
            V::store(thc + j * w, h);
            V::store(tl + j * w, l);
        }
        for (std::size_t j = 0; j < 2; ++j) {
            const typename V::reg res = v_pow_specials<V>(
                V::load(base + i + j * w), V::load(expo + i + j * w),
                exp_core<V>(V::load(thc + j * w), V::load(tl + j * w)));
            V::store(out + i + j * w, res);
        }
    }
    for (; i + w <= n; i += w) {
        V::store(out + i, v_pow<V>(V::load(base + i), V::load(expo + i)));
    }
    if (i < n) {
        double b[w];
        double y[w];
        double res[w];
        for (std::size_t j = 0; j < w; ++j) {
            b[j] = (i + j < n) ? base[i + j] : 1.0;
            y[j] = (i + j < n) ? expo[i + j] : 0.0;
        }
        V::store(res, v_pow<V>(V::load(b), V::load(y)));
        for (std::size_t j = 0; i + j < n; ++j) {
            out[i + j] = res[j];
        }
    }
}

}  // namespace silicon::simd::detail
