// math.hpp — dispatched array transcendentals for the fast_math path.
//
// These are the only vectorized primitives the `*_fast` batch kernels
// use: everything else in those kernels is plain elementwise
// arithmetic.  Each call processes a contiguous lane range with the
// backend picked once by simd::active_target() (see dispatch.hpp).
//
// Numerics contract (vector backends):
//
//   * exp_lanes    — |error| <= ~1.5 ULP over the full double range,
//                    with IEEE specials (NaN -> NaN, +-inf, overflow
//                    to inf, gradual underflow to 0/subnormals).
//   * expm1_lanes  — |error| <= ~2 ULP; NaN/inf specials as libm,
//                    expm1(+-0) = +-0.
//   * pow_lanes    — base >= 0 domain (negative bases return NaN, like
//                    libm for non-integer exponents); |error| <= ~3
//                    ULP via a double-double log, so accuracy holds
//                    even for results near the underflow/overflow
//                    boundary; specials: pow(x,0)=pow(1,y)=1 (any x/y,
//                    NaN included), pow(0,y>0)=0, pow(0,y<0)=inf,
//                    pow(inf,y>0)=inf, pow(inf,y<0)=0; an infinite
//                    exponent on a finite positive base grows iff
//                    (b > 1) agrees with the sign of y, as libm; NaN
//                    otherwise propagates.
//
// The scalar backend implements the same entry points with std::exp /
// std::expm1 / std::pow per lane, so a kernel written against these
// primitives runs everywhere; only the rounding of each lane differs
// between targets (bounded by the ULP harness in tests/simd).
//
// Determinism: every backend computes each lane independently and a
// sub-range call [i, j) produces bytes identical to the same lanes of
// a full-range call — tails are evaluated with the *same* vector math
// through a padded register, never demoted to libm.  This is what
// makes fast_math sweeps byte-stable across thread counts and shard
// boundaries (pinned by tests/simd/test_vec_math.cpp).

#pragma once

#include <cstddef>

namespace silicon::simd {

/// out[i] = exp(x[i]) for i in [0, n).
void exp_lanes(const double* x, double* out, std::size_t n);

/// out[i] = expm1(x[i]) for i in [0, n).
void expm1_lanes(const double* x, double* out, std::size_t n);

/// out[i] = pow(base[i], expo[i]) for i in [0, n); base[i] >= 0.
void pow_lanes(const double* base, const double* expo, double* out,
               std::size_t n);

namespace detail {

/// Function table one backend exports; resolved once in math.cpp.
struct math_table {
    void (*exp_)(const double*, double*, std::size_t);
    void (*expm1_)(const double*, double*, std::size_t);
    void (*pow_)(const double*, const double*, double*, std::size_t);
};

/// Scalar libm backend (always available).
const math_table& scalar_table();

#if defined(__x86_64__) || defined(_M_X64)
/// AVX2+FMA backend, defined in math_avx2.cpp (x86-64 builds only).
/// Callers must have checked host_supports(target::avx2).
const math_table& avx2_table();
#endif

#if defined(__aarch64__)
/// NEON backend, defined in math_neon.cpp (aarch64 builds only).
const math_table& neon_table();
#endif

}  // namespace detail

}  // namespace silicon::simd
