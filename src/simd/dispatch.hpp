// dispatch.hpp — one-time runtime CPU dispatch for the vector kernels.
//
// The batch kernels ship two numerics: the bit-exact scalar path (the
// default, byte-identical to the scalar library) and a `fast_math`
// vector path built on the array transcendentals in simd/math.hpp.
// Which instruction set backs the vector path is decided exactly once
// per process, the first time anyone asks:
//
//   * x86-64 hosts with AVX2+FMA use the 4-lane __m256d backend;
//   * aarch64 hosts use the 2-lane float64x2_t NEON backend;
//   * everything else (and any host where detection fails) falls back
//     to a scalar libm backend with the *same fast-path formulation*,
//     so fast_math results stay deterministic per target and the ULP
//     contract holds on every host.
//
// The environment variable SILICON_SIMD overrides detection for CI and
// debugging: "scalar" forces the fallback, "avx2"/"neon" force a
// vector backend (silently demoted to scalar when the host cannot run
// it — the effective target is observable via /statusz, the silicond
// startup banner, and the silicon_build_info Prometheus gauge).

#pragma once

namespace silicon::simd {

/// Instruction set backing the fast_math array transcendentals.
enum class target {
    scalar,  ///< libm per lane (fast-path formulation, no intrinsics)
    avx2,    ///< x86-64 AVX2 + FMA, 4 double lanes
    neon,    ///< aarch64 Advanced SIMD, 2 double lanes
};

/// The target selected for this process (detection + SILICON_SIMD
/// override, resolved once on first call, stable thereafter).
[[nodiscard]] target active_target();

/// Lower-case name for banners/metrics: "scalar", "avx2", "neon".
[[nodiscard]] const char* to_string(target t);

/// True when the *hardware* (not the override) can run `t`.
[[nodiscard]] bool host_supports(target t);

}  // namespace silicon::simd
