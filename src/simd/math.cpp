// math.cpp — backend resolution + the scalar libm fallback.

#include "simd/math.hpp"

#include <cmath>
#include <limits>

#include "simd/dispatch.hpp"

namespace silicon::simd {
namespace detail {
namespace {

void exp_scalar(const double* x, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = std::exp(x[i]);
    }
}

void expm1_scalar(const double* x, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = std::expm1(x[i]);
    }
}

void pow_scalar(const double* base, const double* expo, double* out,
                std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        // The documented domain is base >= 0 with negative bases NaN on
        // *every* backend; libm's integer-exponent carve-out
        // (pow(-2, 2) = 4) would make the scalar fallback diverge from
        // the vector targets, so it is excluded here.  pow(x, 0) = 1
        // stays first, NaN bases included, matching the vector table.
        if (expo[i] == 0.0) {
            out[i] = 1.0;
        } else if (base[i] < 0.0) {
            out[i] = std::numeric_limits<double>::quiet_NaN();
        } else {
            out[i] = std::pow(base[i], expo[i]);
        }
    }
}

const math_table scalar = {&exp_scalar, &expm1_scalar, &pow_scalar};

const math_table& resolve() {
    switch (active_target()) {
#if defined(__x86_64__) || defined(_M_X64)
    case target::avx2:
        return avx2_table();
#endif
#if defined(__aarch64__)
    case target::neon:
        return neon_table();
#endif
    default:
        return scalar_table();
    }
}

const math_table& table() {
    static const math_table& t = resolve();
    return t;
}

}  // namespace

const math_table& scalar_table() { return scalar; }

}  // namespace detail

void exp_lanes(const double* x, double* out, std::size_t n) {
    detail::table().exp_(x, out, n);
}

void expm1_lanes(const double* x, double* out, std::size_t n) {
    detail::table().expm1_(x, out, n);
}

void pow_lanes(const double* base, const double* expo, double* out,
               std::size_t n) {
    detail::table().pow_(base, expo, out, n);
}

}  // namespace silicon::simd
