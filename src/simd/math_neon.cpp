// math_neon.cpp — aarch64 Advanced SIMD backend (2 double lanes).
//
// Same generic bodies as the AVX2 TU (math_impl.hpp); only the
// register wrappers differ, so the numerics CI exercises on x86 are
// the numerics that run here.

#if defined(__aarch64__)

#include <arm_neon.h>

#include "simd/math_impl.hpp"

namespace silicon::simd::detail {
namespace {

struct vec_neon {
    using reg = float64x2_t;
    static constexpr std::size_t width = 2;

    static reg load(const double* p) { return vld1q_f64(p); }
    static void store(double* p, reg v) { vst1q_f64(p, v); }
    static reg set1(double x) { return vdupq_n_f64(x); }

    static reg add(reg a, reg b) { return vaddq_f64(a, b); }
    static reg sub(reg a, reg b) { return vsubq_f64(a, b); }
    static reg mul(reg a, reg b) { return vmulq_f64(a, b); }
    static reg div(reg a, reg b) { return vdivq_f64(a, b); }
    /// a*b + c with a single rounding (vfmaq computes c + a*b).
    static reg fma(reg a, reg b, reg c) { return vfmaq_f64(c, a, b); }
    static reg min(reg a, reg b) { return vminq_f64(a, b); }
    static reg max(reg a, reg b) { return vmaxq_f64(a, b); }
    static reg abs(reg a) { return vabsq_f64(a); }
    static reg round_nearest(reg a) { return vrndnq_f64(a); }

    static reg lt(reg a, reg b) {
        return vreinterpretq_f64_u64(vcltq_f64(a, b));
    }
    static reg le(reg a, reg b) {
        return vreinterpretq_f64_u64(vcleq_f64(a, b));
    }
    static reg gt(reg a, reg b) {
        return vreinterpretq_f64_u64(vcgtq_f64(a, b));
    }
    static reg eq(reg a, reg b) {
        return vreinterpretq_f64_u64(vceqq_f64(a, b));
    }
    static reg unordered(reg a) {
        // NaN lanes fail a == a; invert the equality mask.
        return vreinterpretq_f64_u64(
            veorq_u64(vceqq_f64(a, a), vdupq_n_u64(~0ULL)));
    }
    static reg and_m(reg a, reg b) {
        return vreinterpretq_f64_u64(vandq_u64(vreinterpretq_u64_f64(a),
                                               vreinterpretq_u64_f64(b)));
    }
    static reg or_m(reg a, reg b) {
        return vreinterpretq_f64_u64(vorrq_u64(vreinterpretq_u64_f64(a),
                                               vreinterpretq_u64_f64(b)));
    }
    /// mask-true lanes from a, others from b.
    static reg select(reg mask, reg a, reg b) {
        return vbslq_f64(vreinterpretq_u64_f64(mask), a, b);
    }

    /// One bit per lane (bit i = lane i's mask sign); all_mask when
    /// every lane is set.  Lets kernels skip a branch's work for
    /// uniform registers without changing any lane's result.
    static constexpr int all_mask = 0x3;
    static int movemask(reg m) {
        const uint64x2_t u = vreinterpretq_u64_f64(m);
        return static_cast<int>((vgetq_lane_u64(u, 0) >> 63) |
                                ((vgetq_lane_u64(u, 1) >> 63) << 1));
    }

    /// 2^k for integral-valued double lanes k in [-1022, 1023].
    static reg pow2i(reg k) {
        const int64x2_t k64 = vcvtnq_s64_f64(k);
        const int64x2_t bits =
            vshlq_n_s64(vaddq_s64(k64, vdupq_n_s64(1023)), 52);
        return vreinterpretq_f64_s64(bits);
    }

    /// Biased exponent field as a double, for positive finite inputs.
    static reg exp_biased(reg x) {
        const uint64x2_t e = vshrq_n_u64(vreinterpretq_u64_f64(x), 52);
        return vcvtq_f64_u64(e);
    }

    /// Mantissa of x re-homed to [0.5, 1).
    static reg mant_half(reg x) {
        const uint64x2_t mant = vandq_u64(
            vreinterpretq_u64_f64(x), vdupq_n_u64(0x000FFFFFFFFFFFFFULL));
        const uint64x2_t half =
            vorrq_u64(mant, vdupq_n_u64(0x3FE0000000000000ULL));
        return vreinterpretq_f64_u64(half);
    }
};

const math_table table = {
    &exp_array<vec_neon>,
    &expm1_array<vec_neon>,
    &pow_array<vec_neon>,
};

}  // namespace

const math_table& neon_table() { return table; }

}  // namespace silicon::simd::detail

#endif  // aarch64
