// event_loop.hpp — the epoll reactor behind silicond's TCP transport.
//
// PR 5 served TCP with one blocking thread per connection, which caps
// concurrency at the thread budget and spends a stack per idle client.
// This module replaces that transport with a single-threaded,
// level-triggered epoll loop multiplexing every connection (the
// acceptance floor is 1000 concurrent loopback clients) while keeping
// the response bytes identical: each connection still batches its lines
// through `engine::handle_batch`, which fans across the exec pool, so
// parallelism lives in the engine and the loop only moves bytes.
//
// Structure:
//
//   * listener fd (non-blocking, accept4 until EAGAIN; beyond
//     `max_conns` the accept is closed immediately and counted);
//   * one `serve::conn` per client (serve/conn.hpp) owning framing,
//     HTTP mode switching, and the watermark write queue; the loop owns
//     only the epoll interest mask, which it recomputes from
//     `wants_read()`/`wants_write()` after every event — a paused
//     (backpressured) connection simply drops EPOLLIN and the kernel's
//     receive window pushes back on the client;
//   * an eventfd for cross-thread/async-signal `stop()` (write(2) is
//     async-signal-safe, so the SIGTERM handler may call it directly);
//   * a timerfd driving a 256-slot hashed timing wheel for idle and
//     write-stall deadlines.  Wheel entries are lazy: expiry looks the
//     fd up and *revalidates* the real deadline from the connection's
//     activity ticks, so stale entries (connection gone, fd recycled)
//     cost one hash lookup and nothing else — no per-entry cancellation
//     bookkeeping, at most one live entry per connection
//     (`conn::wheel_scheduled`).
//
// Level-triggered semantics are load-bearing twice: an injected EINTR
// (faults `eintr@silicond.read`) can simply abandon the read pass
// because the event re-fires on the next epoll_wait, and a connection
// handler never needs drain-to-EAGAIN discipline for correctness (only
// for efficiency).
//
// Single-threaded by design: all conns of a loop are touched only by
// the thread in `run()`.  `stop()` is the one cross-thread entry point.

#pragma once

#include "obs/metrics.hpp"
#include "serve/conn.hpp"
#include "serve/engine.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

namespace silicon::serve {

struct event_loop_config {
    /// Most simultaneous connections; further accepts are closed
    /// immediately and counted (0 = unlimited).
    std::size_t max_conns = 0;
    /// Close a connection with no read/write progress for this long
    /// (0 = never).
    std::uint64_t idle_timeout_ms = 0;
    /// Close a connection whose write queue has made no progress to an
    /// empty state for this long — a slow or stuck reader (0 = never).
    std::uint64_t write_timeout_ms = 0;
    /// Wheel granularity; deadlines round up to a tick.
    std::uint64_t tick_ms = 100;
    /// Invoke `on_periodic` from the loop thread roughly this often
    /// (rounded up to a tick; 0 = never).  Used by silicond for periodic
    /// cache snapshots; the callback runs between epoll wakeups, so it
    /// must not block for long or connections stall.
    std::uint64_t periodic_ms = 0;
    std::function<void()> on_periodic;
    /// Per-connection behavior (framing, batching, watermarks, HTTP).
    conn_config conn;
};

class event_loop {
public:
    /// Takes ownership of `listen_fd` (an already-bound, listening
    /// socket; the loop makes it non-blocking).  Throws std::system_error
    /// when the epoll/eventfd/timerfd plumbing cannot be created.
    event_loop(engine& eng, int listen_fd, event_loop_config config);
    ~event_loop();
    event_loop(const event_loop&) = delete;
    event_loop& operator=(const event_loop&) = delete;

    /// Serve until `stop()` is called or `should_stop` returns true
    /// (checked after every wakeup, so a signal that interrupts
    /// epoll_wait is noticed immediately).  Open connections are
    /// dropped on exit.
    void run(const std::function<bool()>& should_stop = {});

    /// Request `run` to return.  Async-signal-safe and thread-safe
    /// (one write(2) on an eventfd).
    void stop() noexcept;

    [[nodiscard]] std::size_t open_connections() const noexcept {
        return conns_.size();
    }

private:
    static constexpr std::size_t wheel_slots = 256;

    void handle_listener();
    void handle_conn(int fd, std::uint32_t events);
    /// Recompute the epoll interest mask and timer state after any
    /// event; destroys the connection when it is finished.
    void settle(conn& c);
    void close_conn(int fd);
    void schedule(conn& c);
    void advance_wheel(std::uint64_t ticks);
    /// The connection's earliest deadline in ticks (idle vs write
    /// stall); 0 when no timeout applies to its current state.
    [[nodiscard]] std::uint64_t deadline_tick(const conn& c) const noexcept;

    engine& eng_;
    event_loop_config config_;
    conn_shared shared_;
    int epoll_fd_ = -1;
    int listen_fd_ = -1;
    int stop_fd_ = -1;   ///< eventfd
    int timer_fd_ = -1;  ///< timerfd, -1 when no timeout configured
    std::uint64_t now_tick_ = 1;  ///< starts at 1 so tick 0 means "unset"
    std::uint64_t idle_ticks_ = 0;
    std::uint64_t write_ticks_ = 0;
    std::uint64_t periodic_ticks_ = 0;
    std::uint64_t next_periodic_tick_ = 0;  ///< 0 = no periodic callback
    std::unordered_map<int, std::unique_ptr<conn>> conns_;
    std::unordered_map<int, std::uint32_t> interest_;  ///< fd → epoll mask
    std::array<std::vector<int>, wheel_slots> wheel_;

    obs::gauge& open_conns_gauge_;
    obs::counter& accepts_;
    obs::counter& accept_drops_;
    obs::counter& timeouts_;
};

}  // namespace silicon::serve
