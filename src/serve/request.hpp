// request.hpp — the typed request schema of the serve protocol.
//
// A request is one JSON object per line:
//
//     {"op": "<endpoint>", "id": <any>, ...endpoint parameters...}
//
// `op` selects the endpoint, the optional `id` is echoed verbatim in
// the response, and every other member is an endpoint parameter.  All
// parameters have documented defaults, so `{"op":"scenario1"}` is a
// complete request.  Parsing is strict: unknown members, wrong types
// and malformed ranges produce a `request_error` whose code/message
// land in the error response — a client typo never silently evaluates
// the wrong model.
//
// Canonicalization: `parse_request` re-serializes the *typed* request
// (every parameter explicit, defaults filled in, keys sorted) into
// `request::canonical_key`.  Two requests that mean the same
// evaluation — regardless of member order or omitted defaults — map to
// the same key, which is what the engine's memoization cache keys on.
//
// Endpoints:
//
//   cost_tr    Eq. (1) full cost breakdown for product x process x economics
//   gross_die  Eq. (4) family: dies-per-wafer for a die/wafer/method
//   yield      the yield-model family evaluated at one operating point
//   scenario1  Eq. (8), the paper's optimistic memory scenario
//   scenario2  Eq. (9), the realistic custom-logic scenario
//   table3     the 17-row Table 3 reproduction (one row or all)
//   mc_yield   Monte-Carlo defect-injection yield on a wire array
//   sweep      evaluate any endpoint above over a 1-D parameter grid
//   stats      engine cache/metrics snapshot (never cached, no golden)
//   chiplet    multi-die system cost breakdown (src/chiplet composition)
//   partition_explore  monolithic-vs-N-way split cost over a total-area grid

#pragma once

#include "serve/json.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>

namespace silicon::serve {

/// Endpoint selector.  Order is the wire-name registry and the metrics
/// index; append only.
enum class op_code {
    cost_tr,
    gross_die,
    yield,
    scenario1,
    scenario2,
    table3,
    mc_yield,
    sweep,
    stats,
    chiplet,
    partition_explore,
};

inline constexpr int op_count = 11;

/// Wire name of an endpoint ("cost_tr", "gross_die", ...).
[[nodiscard]] std::string_view to_string(op_code op);

/// Inverse of to_string; empty for unknown names.
[[nodiscard]] std::optional<op_code> op_from_string(std::string_view name);

/// Schema violation: `code` is a stable machine-readable identifier
/// ("bad_request", "unknown_op", "unknown_field", "bad_param"), the
/// what() string explains the specific problem.
class request_error : public std::runtime_error {
public:
    request_error(std::string code, const std::string& message)
        : std::runtime_error{message}, code_{std::move(code)} {}

    [[nodiscard]] const std::string& code() const noexcept { return code_; }

private:
    std::string code_;
};

// ---------------------------------------------------------------------------
// Endpoint parameter blocks (all defaults are the paper's)
// ---------------------------------------------------------------------------

/// Yield model choice inside a process spec (core::yield_spec mirror).
struct yield_spec_params {
    enum class kind { reference, scaled, fixed };
    kind model = kind::reference;
    double y0 = 0.7;       ///< reference: yield of the A_0 die
    double a0_cm2 = 1.0;   ///< reference: die area of the Y_0 observation
    double d = 1.72;       ///< scaled: Eq. (7) defect parameter D
    double p = 4.07;       ///< scaled: defect size tail exponent
    double fixed = 1.0;    ///< fixed: constant yield (Scenario #1 style)
};

/// core::process_spec mirror.
struct process_params {
    double c0_usd = 500.0;             ///< Eq. (3) reference wafer cost
    double x = 1.5;                    ///< per-generation escalation
    double generation_step_um = 0.2;   ///< Eq. (3) generation step
    double wafer_radius_cm = 7.5;      ///< R_w (6-inch default)
    double edge_exclusion_cm = 0.0;
    std::string gross_die_method = "maly_rows";
    yield_spec_params yield;
};

/// core::product_spec mirror.
struct product_params {
    std::string name = "product";
    double transistors = 1e6;
    double design_density = 150.0;
    double feature_size_um = 0.8;
    double die_aspect_ratio = 1.0;
};

/// core::economics_spec mirror.
struct economics_params {
    double overhead_usd = 0.0;
    double volume_wafers = 1.0;
};

struct cost_tr_request {
    process_params process;
    product_params product;
    economics_params economics;
};

struct gross_die_request {
    double wafer_radius_cm = 7.5;
    double edge_exclusion_cm = 0.0;
    double die_width_mm = 10.0;
    double die_height_mm = 10.0;
    std::string method = "maly_rows";
    double scribe_mm = 0.0;  ///< only gross_die_method::exact uses it
};

/// One evaluation of the yield-model family.  `model` selects which
/// parameters matter; the fault count is `expected_faults` when >= 0,
/// otherwise die_area_cm2 * defects_per_cm2.
struct yield_request {
    std::string model = "poisson";  ///< poisson | murphy | seeds |
                                    ///< bose_einstein | neg_binomial |
                                    ///< scaled_poisson | reference
    double expected_faults = -1.0;  ///< < 0 = derive from area * density
    double die_area_cm2 = 1.0;
    double defects_per_cm2 = 1.0;
    int critical_steps = 10;        ///< bose_einstein
    double alpha = 2.0;             ///< neg_binomial
    double d = 1.72;                ///< scaled_poisson
    double p = 4.07;                ///< scaled_poisson
    double lambda_um = 0.8;         ///< scaled_poisson
    double y0 = 0.7;                ///< reference
    double a0_cm2 = 1.0;            ///< reference
};

/// Eq. (8) with the Fig. 6 defaults.
struct scenario1_request {
    double lambda_um = 0.8;
    double c0_usd = 500.0;
    double x = 1.2;
    double wafer_radius_cm = 7.5;
    double design_density = 30.0;
};

/// Eq. (9) with the Fig. 7 defaults.
struct scenario2_request {
    double lambda_um = 0.8;
    double c0_usd = 500.0;
    double x = 1.8;
    double wafer_radius_cm = 7.5;
    double design_density = 200.0;
    double y0 = 0.7;
};

struct table3_request {
    int row = 0;  ///< 1-17 = one row, 0 = whole table + separation
};

/// Monte-Carlo defect injection on the canonical wire-array layout.
/// The engine runs it at its own parallelism; results are thread-count
/// invariant by the exec determinism contract, so `parallelism` is
/// deliberately NOT part of the schema (it would split cache keys for
/// identical results).
struct mc_yield_request {
    double line_width_um = 1.0;
    double line_spacing_um = 1.2;
    double line_length_um = 150.0;
    int line_count = 15;
    double defect_r0_um = 0.6;   ///< Fig. 5 peak radius
    double defect_p = 4.07;      ///< Fig. 5 tail exponent
    double defect_q = 1.0;       ///< Fig. 5 rising-branch exponent
    int dies = 10000;
    double defects_per_um2 = 1e-4;
    double extra_material_fraction = 0.5;
    std::uint64_t seed = 0x5eed;
};

struct request;

/// Evaluate `target` over a 1-D grid of `count` points on
/// [from, to] (inclusive, linear or log spacing) applied to the
/// parameter named by `param` (dotted path for nested members, e.g.
/// "product.feature_size_um").  The response pairs `xs` with the
/// target endpoint's primary scalar metric; infeasible points yield
/// null.  Targets `sweep` and `stats` are rejected.
struct sweep_request {
    std::shared_ptr<const request> target;  ///< parsed target (canonical)
    json::object target_params;             ///< raw params for re-binding
    std::string param;
    double from = 0.0;
    double to = 1.0;
    int count = 2;
    std::string scale = "linear";  ///< linear | log
};

struct stats_request {};

/// chiplet::chiplet_spec mirror (src/chiplet/model.hpp documents the
/// model).  Flat scalars + SSO strings only, so the hot path's
/// capacity-preserving payload reset keeps warm point queries
/// allocation-free.
struct chiplet_request {
    int chiplets = 1;  ///< [1, 16]; 1 = monolithic baseline
    double logic_area_mm2 = 350.0;
    double memory_area_mm2 = 150.0;
    double io_area_mm2 = 100.0;
    double d2d_area_mm2 = 5.0;
    double lambda_um = 0.5;
    double c0_usd = 5000.0;
    double x = 1.5;
    double generation_step_um = 0.2;
    double wafer_radius_cm = 15.0;
    double edge_exclusion_cm = 0.0;
    double defects_per_cm2 = 0.5;
    double memory_defect_factor = 0.5;
    double io_defect_factor = 0.3;
    double clustering_alpha = 2.0;
    double test_coverage = 0.98;
    double tester_rate_per_hour = 3600.0;
    double test_seconds_fixed = 0.5;
    double test_seconds_per_cm2 = 1.0;
    std::string substrate = "organic";  ///< organic | rdl | interposer
    double substrate_cost_per_cm2 = 0.5;
    double rdl_cost_per_cm2 = 2.0;
    double rdl_defects_per_cm2 = 0.05;
    double interposer_cost_per_cm2 = 8.0;
    double interposer_defects_per_cm2 = 0.2;
    double package_area_factor = 1.1;
    double bond_yield = 0.99;
    double bonding_cost_per_chiplet = 0.5;
};

/// Sweep monolithic-vs-N-way chiplet splits of one configuration over
/// a total-area grid.  `base.chiplets` is fixed at 1 and not part of
/// the schema — the split counts come from `splits`, a strict
/// comma-separated ascending list that must include 1 (the monolithic
/// baseline every crossover is measured against).  The grid rescales
/// the base logic+memory+IO budget to each total area, preserving
/// ratios.  Admission-budgeted like `sweep`: splits x count grid cells
/// count against max_sweep_points.
struct partition_explore_request {
    chiplet_request base;
    std::string splits = "1,2,4";  ///< ascending, in [1,16], includes 1
    double area_from_mm2 = 40.0;
    double area_to_mm2 = 1000.0;
    int count = 32;                ///< [1, 65536]
    std::string scale = "linear";  ///< linear | log
};

// ---------------------------------------------------------------------------
// The request envelope
// ---------------------------------------------------------------------------

using request_payload =
    std::variant<cost_tr_request, gross_die_request, yield_request,
                 scenario1_request, scenario2_request, table3_request,
                 mc_yield_request, sweep_request, stats_request,
                 chiplet_request, partition_explore_request>;

struct request {
    op_code op = op_code::stats;
    request_payload payload;
    json::value id;        ///< echoed in the response
    bool has_id = false;
    /// Per-request deadline budget in milliseconds, measured from the
    /// moment the serving layer starts the line.  Envelope-level like
    /// `id` (excluded from the canonical key); 0 with has_deadline set
    /// means "already expired".
    std::uint64_t deadline_ms = 0;
    bool has_deadline = false;
    /// Client-supplied trace identifier, echoed as `trace_id` in the
    /// response envelope (success and error alike).  Envelope-level
    /// like `id` and `deadline_ms`: excluded from the canonical key so
    /// tracing never splits the memoization cache.
    std::string trace_id;
    bool has_trace = false;
    /// Canonical serialization of (op, fully-explicit params) — the
    /// memoization cache key.  Excludes `id` and `deadline_ms`.
    std::string canonical_key;
};

/// Parse and validate one request document.  Throws request_error on
/// any schema violation; throws nothing else for any input.
[[nodiscard]] request parse_request(const json::value& doc);

/// The typed request re-serialized with every parameter explicit
/// (defaults filled in), as an object {"op": ..., <params>}.  `id` is
/// not included.  `canonical_key == json::canonical(request_to_json(r))`.
[[nodiscard]] json::value request_to_json(const request& r);

/// The response member holding the endpoint's primary scalar — the
/// value a sweep extracts per grid point.  nullptr for endpoints that
/// have no scalar (table3, sweep, stats), which are invalid sweep
/// targets.
[[nodiscard]] const char* primary_metric(op_code op);

}  // namespace silicon::serve
