// http.hpp — a minimal, incremental HTTP/1.1 request parser.
//
// PR 5's transport answered a line starting with `GET /metrics` with a
// one-shot HTTP/1.0 response and closed the connection.  That hack
// cannot coexist with keep-alive scrapers (Prometheus reuses its
// connection), so this module graduates it into a real — deliberately
// small — parser: request line + headers + optional Content-Length
// body, keep-alive semantics, and a strict error taxonomy.  It is fed
// incrementally (whatever bytes the socket produced) and never
// over-consumes: bytes after a complete message are left to the caller,
// which is what lets JSONL requests and pipelined HTTP requests
// interleave on one connection (serve/conn).
//
// Strictness (each is unit-tested in tests/serve/test_http.cpp):
//
//   * obs-fold (header folding, a continuation line starting with
//     SP/HT) is rejected with 400 per RFC 7230 §3.2.4 — folding is a
//     classic request-smuggling vector.
//   * Content-Length must be a pure digit string; duplicates (even
//     agreeing ones), signs, overflow and junk are 400.
//   * Transfer-Encoding is 501 (chunked bodies are out of scope for a
//     metrics/JSONL port; refusing loudly beats desyncing).
//   * Header block over `max_header_bytes` is 431, body over
//     `max_body_bytes` is 413 — both bound memory per connection.
//   * Only HTTP/1.0 and HTTP/1.1 are accepted; anything else is 505.
//
// The parser never throws and holds no global state; one instance per
// connection, `reset()` between keep-alive requests.

#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace silicon::serve::http {

/// A parsed request.  Header names keep their wire spelling; lookup is
/// case-insensitive via `header()`.
struct request {
    std::string method;
    std::string target;
    int minor_version = 1;  ///< HTTP/1.<minor_version>
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
    bool keep_alive = true;  ///< resolved from version + Connection

    /// Case-insensitive header lookup; nullptr when absent.
    [[nodiscard]] const std::string* header(std::string_view name) const;
};

/// True when `line` (one transport line, '\r' already stripped) looks
/// like an HTTP/1.x request line — the trigger for a JSONL connection
/// to hand its stream to the parser.
[[nodiscard]] bool is_request_line(std::string_view line) noexcept;

class parser {
public:
    enum class status { need_more, complete, error };

    struct config {
        /// Request line + header block byte bound (431 beyond).
        std::size_t max_header_bytes = 16384;
        /// Content-Length bound (413 beyond).
        std::size_t max_body_bytes = 1 << 20;
    };

    parser() : parser(config{}) {}
    explicit parser(config cfg) : config_{cfg} {}

    /// Consume bytes from the stream.  Returns how many of `data` were
    /// taken; on a complete message (or an error) the surplus is left
    /// for the caller.  Call `state()` after every feed.
    std::size_t consume(std::string_view data);

    [[nodiscard]] status state() const noexcept { return state_; }

    /// The parsed request; valid only when state() == complete.
    [[nodiscard]] const request& result() const noexcept { return request_; }

    /// HTTP status code for the failure (400/413/431/501/505); valid
    /// only when state() == error.
    [[nodiscard]] int error_status() const noexcept { return error_status_; }
    [[nodiscard]] std::string_view error_reason() const noexcept {
        return error_reason_;
    }

    /// Ready the parser for the next keep-alive request.
    void reset();

private:
    enum class phase { headers, body };

    void fail(int status_code, std::string_view reason);
    std::size_t consume_body_bytes(std::string_view data);
    void parse_head(std::string_view head);
    bool parse_request_line(std::string_view line);
    bool parse_header_line(std::string_view line);
    void finalize();

    config config_;
    status state_ = status::need_more;
    phase phase_ = phase::headers;
    std::string buffer_;        ///< unparsed head (or body) bytes
    std::size_t scanned_ = 0;   ///< buffer_ prefix already scanned for CRLFCRLF
    std::size_t content_length_ = 0;
    bool saw_content_length_ = false;
    int error_status_ = 0;
    std::string error_reason_;
    request request_;
};

/// Serialize a simple response: status line, Content-Type,
/// Content-Length, Connection header, CRLF, body.  `head_only` elides
/// the body bytes (HEAD) while keeping the Content-Length of the full
/// representation.
[[nodiscard]] std::string simple_response(int status_code,
                                          std::string_view reason,
                                          std::string_view content_type,
                                          std::string_view body,
                                          bool keep_alive,
                                          bool head_only = false);

}  // namespace silicon::serve::http
