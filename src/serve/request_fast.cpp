#include "serve/request_fast.hpp"

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <variant>

// Every parse function below mirrors its namesake in request.cpp member
// for member and check for check, in the same order, with the same error
// codes and messages — the equivalence fuzz test in
// tests/serve/test_hotpath.cpp compares the two parsers over valid and
// malformed corpora.  When touching request.cpp, touch the mirror here.

namespace silicon::serve {

namespace {

using json::aview;

/// Thrown when the fast parser declines an input it cannot mirror
/// allocation-free (nested sweep targets, pathological member counts).
/// Such inputs are always handled by the legacy fallback, so declining
/// costs speed, never correctness.
struct fast_parse_unsupported {};

// ---------------------------------------------------------------------------
// Validating field access over an arena view
// ---------------------------------------------------------------------------

class fast_reader {
  public:
    fast_reader(const aview& o, const char* context)
        : o_{o}, context_{context} {}

    [[nodiscard]] double number(const char* key, double fallback) {
        const aview* v = get(key);
        if (v == nullptr) {
            return fallback;
        }
        if (!v->is_number()) {
            fail_type(key, "a number");
        }
        return v->number;
    }

    [[nodiscard]] int integer(const char* key, int fallback) {
        const aview* v = get(key);
        if (v == nullptr) {
            return fallback;
        }
        if (!v->is_number() || v->number != std::floor(v->number) ||
            std::abs(v->number) > 2147483647.0) {
            fail_type(key, "an integer");
        }
        return static_cast<int>(v->number);
    }

    [[nodiscard]] std::uint64_t uinteger(const char* key,
                                         std::uint64_t fallback) {
        const aview* v = get(key);
        if (v == nullptr) {
            return fallback;
        }
        if (!v->is_number() || v->number != std::floor(v->number) ||
            v->number < 0.0 || v->number > 9007199254740992.0) {
            fail_type(key, "a non-negative integer (<= 2^53)");
        }
        return static_cast<std::uint64_t>(v->number);
    }

    /// Assigns the member into `out` (capacity-preserving) when present;
    /// leaves `out` (already holding the default) untouched when absent.
    void text_into(const char* key, std::string& out) {
        const aview* v = get(key);
        if (v == nullptr) {
            return;
        }
        if (!v->is_string()) {
            fail_type(key, "a string");
        }
        out.assign(v->string);
    }

    [[nodiscard]] const aview* raw(const char* key) { return get(key); }

    void forbid_unknown() const {
        for (std::uint32_t i = 0; i < o_.count; ++i) {
            const std::string_view key = o_.members[i].key;
            bool known = false;
            for (std::size_t j = 0; j < consumed_count_; ++j) {
                if (consumed_[j] == key) {
                    known = true;
                    break;
                }
            }
            if (!known) {
                throw request_error("unknown_field",
                                    std::string{context_} +
                                        ": unknown field '" +
                                        std::string{key} + "'");
            }
        }
    }

  private:
    const aview* get(const char* key) {
        if (consumed_count_ >= consumed_.size()) {
            throw fast_parse_unsupported{};  // no endpoint reads this many
        }
        consumed_[consumed_count_++] = key;
        return o_.find(key);
    }

    [[noreturn]] void fail_type(const char* key, const char* wanted) const {
        throw request_error("bad_param", std::string{context_} + ": field '" +
                                             std::string{key} +
                                             "' must be " + wanted);
    }

    const aview& o_;
    const char* context_;
    // Sized for the widest reader: partition_explore consumes
    // op + id + deadline_ms + trace_id + 27 base fields +
    // splits/area/count/scale.
    std::array<std::string_view, 40> consumed_{};
    std::size_t consumed_count_ = 0;
};

const aview& require_object_fast(const aview& v, const char* context) {
    if (!v.is_object()) {
        throw request_error("bad_param",
                            std::string{context} + " must be a JSON object");
    }
    return v;
}

// Shared with request.cpp by contract (identical registries/messages).

void validate_gross_die_method_fast(const std::string& name,
                                    const char* context) {
    for (const char* known :
         {"maly_rows", "maly_rows_best_orient", "area_ratio", "circumference",
          "ferris_prabhu", "exact"}) {
        if (name == known) {
            return;
        }
    }
    throw request_error(
        "bad_param",
        std::string{context} + ": unknown gross-die method '" + name +
            "' (maly_rows | maly_rows_best_orient | area_ratio | "
            "circumference | ferris_prabhu | exact)");
}

void validate_yield_model_fast(const std::string& name) {
    for (const char* known :
         {"poisson", "murphy", "seeds", "bose_einstein", "neg_binomial",
          "scaled_poisson", "reference"}) {
        if (name == known) {
            return;
        }
    }
    throw request_error(
        "bad_param",
        "yield.model: unknown model '" + name +
            "' (poisson | murphy | seeds | bose_einstein | neg_binomial | "
            "scaled_poisson | reference)");
}

void validate_substrate_fast(const std::string& name) {
    for (const char* known : {"organic", "rdl", "interposer"}) {
        if (name == known) {
            return;
        }
    }
    throw request_error("bad_param",
                        "substrate: unknown substrate '" + name +
                            "' (organic | rdl | interposer)");
}

void validate_splits_fast(const std::string& s) {
    static constexpr const char* bad_splits =
        "partition_explore: splits must be a strictly ascending "
        "comma-separated list of split counts in [1, 16] including 1 "
        "(e.g. '1,2,4')";
    int entries = 0;
    int prev = 0;
    bool has_one = false;
    std::size_t i = 0;
    while (true) {
        if (i >= s.size() || s[i] < '1' || s[i] > '9') {
            throw request_error("bad_param", bad_splits);
        }
        int value = 0;
        while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
            value = value * 10 + (s[i] - '0');
            if (value > 16) {
                throw request_error("bad_param", bad_splits);
            }
            ++i;
        }
        if (value <= prev || ++entries > 8) {
            throw request_error("bad_param", bad_splits);
        }
        if (value == 1) {
            has_one = true;
        }
        prev = value;
        if (i == s.size()) {
            break;
        }
        if (s[i] != ',') {
            throw request_error("bad_param", bad_splits);
        }
        ++i;
    }
    if (!has_one) {
        throw request_error("bad_param", bad_splits);
    }
}

/// Reuses the payload alternative when the op repeats (preserving string
/// capacity) and resets it to schema defaults either way.
template <class T>
T& ensure_payload(request& r) {
    if (T* p = std::get_if<T>(&r.payload)) {
        *p = T{};  // capacity-preserving: all default strings are SSO
        return *p;
    }
    return r.payload.template emplace<T>();
}

// ---------------------------------------------------------------------------
// Parameter block parsers (in-place twins of request.cpp)
// ---------------------------------------------------------------------------

void parse_yield_spec_fast(const aview* v, yield_spec_params& out) {
    out = yield_spec_params{};
    if (v == nullptr) {
        return;
    }
    fast_reader r{require_object_fast(*v, "process.yield"), "process.yield"};
    // Legacy reads `model` into a temporary before matching; the match
    // itself is on the same bytes, so match the view directly.
    std::string model_name{"reference"};
    r.text_into("model", model_name);
    if (model_name == "reference") {
        out.model = yield_spec_params::kind::reference;
    } else if (model_name == "scaled") {
        out.model = yield_spec_params::kind::scaled;
    } else if (model_name == "fixed") {
        out.model = yield_spec_params::kind::fixed;
    } else {
        throw request_error("bad_param",
                            "process.yield.model: unknown model '" +
                                model_name + "' (reference | scaled | fixed)");
    }
    out.y0 = r.number("y0", out.y0);
    out.a0_cm2 = r.number("a0_cm2", out.a0_cm2);
    out.d = r.number("d", out.d);
    out.p = r.number("p", out.p);
    out.fixed = r.number("fixed", out.fixed);
    r.forbid_unknown();
}

void parse_process_fast(const aview* v, process_params& out) {
    out = process_params{};
    if (v == nullptr) {
        return;
    }
    fast_reader r{require_object_fast(*v, "process"), "process"};
    out.c0_usd = r.number("c0_usd", out.c0_usd);
    out.x = r.number("x", out.x);
    out.generation_step_um =
        r.number("generation_step_um", out.generation_step_um);
    out.wafer_radius_cm = r.number("wafer_radius_cm", out.wafer_radius_cm);
    out.edge_exclusion_cm =
        r.number("edge_exclusion_cm", out.edge_exclusion_cm);
    r.text_into("gross_die_method", out.gross_die_method);
    validate_gross_die_method_fast(out.gross_die_method,
                                   "process.gross_die_method");
    parse_yield_spec_fast(r.raw("yield"), out.yield);
    r.forbid_unknown();
}

void parse_product_fast(const aview* v, product_params& out) {
    out = product_params{};
    if (v == nullptr) {
        return;
    }
    fast_reader r{require_object_fast(*v, "product"), "product"};
    r.text_into("name", out.name);
    out.transistors = r.number("transistors", out.transistors);
    out.design_density = r.number("design_density", out.design_density);
    out.feature_size_um = r.number("feature_size_um", out.feature_size_um);
    out.die_aspect_ratio = r.number("die_aspect_ratio", out.die_aspect_ratio);
    r.forbid_unknown();
}

void parse_economics_fast(const aview* v, economics_params& out) {
    out = economics_params{};
    if (v == nullptr) {
        return;
    }
    fast_reader r{require_object_fast(*v, "economics"), "economics"};
    out.overhead_usd = r.number("overhead_usd", out.overhead_usd);
    out.volume_wafers = r.number("volume_wafers", out.volume_wafers);
    r.forbid_unknown();
}

// ---------------------------------------------------------------------------
// Endpoint payload parsers
// ---------------------------------------------------------------------------

void parse_cost_tr_fast(fast_reader& r, request& req) {
    cost_tr_request& out = ensure_payload<cost_tr_request>(req);
    parse_process_fast(r.raw("process"), out.process);
    parse_product_fast(r.raw("product"), out.product);
    parse_economics_fast(r.raw("economics"), out.economics);
}

void parse_gross_die_fast(fast_reader& r, request& req) {
    gross_die_request& out = ensure_payload<gross_die_request>(req);
    out.wafer_radius_cm = r.number("wafer_radius_cm", out.wafer_radius_cm);
    out.edge_exclusion_cm =
        r.number("edge_exclusion_cm", out.edge_exclusion_cm);
    out.die_width_mm = r.number("die_width_mm", out.die_width_mm);
    out.die_height_mm = r.number("die_height_mm", out.die_height_mm);
    r.text_into("method", out.method);
    validate_gross_die_method_fast(out.method, "method");
    out.scribe_mm = r.number("scribe_mm", out.scribe_mm);
}

void parse_yield_fast(fast_reader& r, request& req) {
    yield_request& out = ensure_payload<yield_request>(req);
    r.text_into("model", out.model);
    validate_yield_model_fast(out.model);
    out.expected_faults = r.number("expected_faults", out.expected_faults);
    out.die_area_cm2 = r.number("die_area_cm2", out.die_area_cm2);
    out.defects_per_cm2 = r.number("defects_per_cm2", out.defects_per_cm2);
    out.critical_steps = r.integer("critical_steps", out.critical_steps);
    out.alpha = r.number("alpha", out.alpha);
    out.d = r.number("d", out.d);
    out.p = r.number("p", out.p);
    out.lambda_um = r.number("lambda_um", out.lambda_um);
    out.y0 = r.number("y0", out.y0);
    out.a0_cm2 = r.number("a0_cm2", out.a0_cm2);
}

void parse_scenario1_fast(fast_reader& r, request& req) {
    scenario1_request& out = ensure_payload<scenario1_request>(req);
    out.lambda_um = r.number("lambda_um", out.lambda_um);
    out.c0_usd = r.number("c0_usd", out.c0_usd);
    out.x = r.number("x", out.x);
    out.wafer_radius_cm = r.number("wafer_radius_cm", out.wafer_radius_cm);
    out.design_density = r.number("design_density", out.design_density);
}

void parse_scenario2_fast(fast_reader& r, request& req) {
    scenario2_request& out = ensure_payload<scenario2_request>(req);
    out.lambda_um = r.number("lambda_um", out.lambda_um);
    out.c0_usd = r.number("c0_usd", out.c0_usd);
    out.x = r.number("x", out.x);
    out.wafer_radius_cm = r.number("wafer_radius_cm", out.wafer_radius_cm);
    out.design_density = r.number("design_density", out.design_density);
    out.y0 = r.number("y0", out.y0);
}

void parse_table3_fast(fast_reader& r, request& req) {
    table3_request& out = ensure_payload<table3_request>(req);
    out.row = r.integer("row", out.row);
    if (out.row < 0 || out.row > 17) {
        throw request_error("bad_param",
                            "table3: row must be 0 (all) or 1-17");
    }
}

void parse_mc_yield_fast(fast_reader& r, request& req) {
    mc_yield_request& out = ensure_payload<mc_yield_request>(req);
    out.line_width_um = r.number("line_width_um", out.line_width_um);
    out.line_spacing_um = r.number("line_spacing_um", out.line_spacing_um);
    out.line_length_um = r.number("line_length_um", out.line_length_um);
    out.line_count = r.integer("line_count", out.line_count);
    out.defect_r0_um = r.number("defect_r0_um", out.defect_r0_um);
    out.defect_p = r.number("defect_p", out.defect_p);
    out.defect_q = r.number("defect_q", out.defect_q);
    out.dies = r.integer("dies", out.dies);
    out.defects_per_um2 = r.number("defects_per_um2", out.defects_per_um2);
    out.extra_material_fraction =
        r.number("extra_material_fraction", out.extra_material_fraction);
    out.seed = r.uinteger("seed", out.seed);
    if (out.dies < 1 || out.dies > 100000000) {
        throw request_error("bad_param",
                            "mc_yield: dies must be in [1, 1e8]");
    }
}

void parse_chiplet_base_fast(fast_reader& r, chiplet_request& out) {
    out.logic_area_mm2 = r.number("logic_area_mm2", out.logic_area_mm2);
    out.memory_area_mm2 = r.number("memory_area_mm2", out.memory_area_mm2);
    out.io_area_mm2 = r.number("io_area_mm2", out.io_area_mm2);
    out.d2d_area_mm2 = r.number("d2d_area_mm2", out.d2d_area_mm2);
    out.lambda_um = r.number("lambda_um", out.lambda_um);
    out.c0_usd = r.number("c0_usd", out.c0_usd);
    out.x = r.number("x", out.x);
    out.generation_step_um =
        r.number("generation_step_um", out.generation_step_um);
    out.wafer_radius_cm = r.number("wafer_radius_cm", out.wafer_radius_cm);
    out.edge_exclusion_cm =
        r.number("edge_exclusion_cm", out.edge_exclusion_cm);
    out.defects_per_cm2 = r.number("defects_per_cm2", out.defects_per_cm2);
    out.memory_defect_factor =
        r.number("memory_defect_factor", out.memory_defect_factor);
    out.io_defect_factor = r.number("io_defect_factor", out.io_defect_factor);
    out.clustering_alpha = r.number("clustering_alpha", out.clustering_alpha);
    out.test_coverage = r.number("test_coverage", out.test_coverage);
    out.tester_rate_per_hour =
        r.number("tester_rate_per_hour", out.tester_rate_per_hour);
    out.test_seconds_fixed =
        r.number("test_seconds_fixed", out.test_seconds_fixed);
    out.test_seconds_per_cm2 =
        r.number("test_seconds_per_cm2", out.test_seconds_per_cm2);
    r.text_into("substrate", out.substrate);
    validate_substrate_fast(out.substrate);
    out.substrate_cost_per_cm2 =
        r.number("substrate_cost_per_cm2", out.substrate_cost_per_cm2);
    out.rdl_cost_per_cm2 = r.number("rdl_cost_per_cm2", out.rdl_cost_per_cm2);
    out.rdl_defects_per_cm2 =
        r.number("rdl_defects_per_cm2", out.rdl_defects_per_cm2);
    out.interposer_cost_per_cm2 =
        r.number("interposer_cost_per_cm2", out.interposer_cost_per_cm2);
    out.interposer_defects_per_cm2 =
        r.number("interposer_defects_per_cm2", out.interposer_defects_per_cm2);
    out.package_area_factor =
        r.number("package_area_factor", out.package_area_factor);
    out.bond_yield = r.number("bond_yield", out.bond_yield);
    out.bonding_cost_per_chiplet =
        r.number("bonding_cost_per_chiplet", out.bonding_cost_per_chiplet);
}

void parse_chiplet_fast(fast_reader& r, request& req) {
    chiplet_request& out = ensure_payload<chiplet_request>(req);
    out.chiplets = r.integer("chiplets", out.chiplets);
    if (out.chiplets < 1 || out.chiplets > 16) {
        throw request_error("bad_param",
                            "chiplet: chiplets must be in [1, 16]");
    }
    parse_chiplet_base_fast(r, out);
}

void parse_partition_explore_fast(fast_reader& r, request& req) {
    partition_explore_request& out =
        ensure_payload<partition_explore_request>(req);
    parse_chiplet_base_fast(r, out.base);
    r.text_into("splits", out.splits);
    validate_splits_fast(out.splits);
    out.area_from_mm2 = r.number("area_from_mm2", out.area_from_mm2);
    out.area_to_mm2 = r.number("area_to_mm2", out.area_to_mm2);
    if (!std::isfinite(out.area_from_mm2) || !(out.area_from_mm2 > 0.0) ||
        !std::isfinite(out.area_to_mm2) || !(out.area_to_mm2 > 0.0)) {
        throw request_error("bad_param",
                            "partition_explore: area_from_mm2/area_to_mm2 "
                            "must be finite and positive");
    }
    out.count = r.integer("count", out.count);
    if (out.count < 1 || out.count > 65536) {
        throw request_error("bad_param",
                            "partition_explore: count must be in [1, 65536]");
    }
    r.text_into("scale", out.scale);
    if (out.scale != "linear" && out.scale != "log") {
        throw request_error(
            "bad_param", "partition_explore: scale must be 'linear' or 'log'");
    }
}

// ---------------------------------------------------------------------------
// Canonical-key emitters (sorted member order baked in)
// ---------------------------------------------------------------------------

// The orders below are the bytewise-sorted key orders json::canonical
// produces for request_to_json output; the equivalence test compares the
// emitted keys against json::canonical(request_to_json(r)) for every op.

void emit_number(double d, std::string& out) {
    json::format_number_into(d, out);
}

void emit_yield_spec_key(const yield_spec_params& y, std::string& out) {
    out += "{\"a0_cm2\":";
    emit_number(y.a0_cm2, out);
    out += ",\"d\":";
    emit_number(y.d, out);
    out += ",\"fixed\":";
    emit_number(y.fixed, out);
    out += ",\"model\":";
    switch (y.model) {
        case yield_spec_params::kind::reference: out += "\"reference\""; break;
        case yield_spec_params::kind::scaled: out += "\"scaled\""; break;
        case yield_spec_params::kind::fixed: out += "\"fixed\""; break;
    }
    out += ",\"p\":";
    emit_number(y.p, out);
    out += ",\"y0\":";
    emit_number(y.y0, out);
    out += '}';
}

void emit_cost_tr_key(const cost_tr_request& q, std::string& out) {
    out += "{\"economics\":{\"overhead_usd\":";
    emit_number(q.economics.overhead_usd, out);
    out += ",\"volume_wafers\":";
    emit_number(q.economics.volume_wafers, out);
    out += "},\"op\":\"cost_tr\",\"process\":{\"c0_usd\":";
    emit_number(q.process.c0_usd, out);
    out += ",\"edge_exclusion_cm\":";
    emit_number(q.process.edge_exclusion_cm, out);
    out += ",\"generation_step_um\":";
    emit_number(q.process.generation_step_um, out);
    out += ",\"gross_die_method\":";
    json::write_string_into(out, q.process.gross_die_method);
    out += ",\"wafer_radius_cm\":";
    emit_number(q.process.wafer_radius_cm, out);
    out += ",\"x\":";
    emit_number(q.process.x, out);
    out += ",\"yield\":";
    emit_yield_spec_key(q.process.yield, out);
    out += "},\"product\":{\"design_density\":";
    emit_number(q.product.design_density, out);
    out += ",\"die_aspect_ratio\":";
    emit_number(q.product.die_aspect_ratio, out);
    out += ",\"feature_size_um\":";
    emit_number(q.product.feature_size_um, out);
    out += ",\"name\":";
    json::write_string_into(out, q.product.name);
    out += ",\"transistors\":";
    emit_number(q.product.transistors, out);
    out += "}}";
}

void emit_gross_die_key(const gross_die_request& q, std::string& out) {
    out += "{\"die_height_mm\":";
    emit_number(q.die_height_mm, out);
    out += ",\"die_width_mm\":";
    emit_number(q.die_width_mm, out);
    out += ",\"edge_exclusion_cm\":";
    emit_number(q.edge_exclusion_cm, out);
    out += ",\"method\":";
    json::write_string_into(out, q.method);
    out += ",\"op\":\"gross_die\",\"scribe_mm\":";
    emit_number(q.scribe_mm, out);
    out += ",\"wafer_radius_cm\":";
    emit_number(q.wafer_radius_cm, out);
    out += '}';
}

void emit_yield_key(const yield_request& q, std::string& out) {
    out += "{\"a0_cm2\":";
    emit_number(q.a0_cm2, out);
    out += ",\"alpha\":";
    emit_number(q.alpha, out);
    out += ",\"critical_steps\":";
    emit_number(static_cast<double>(q.critical_steps), out);
    out += ",\"d\":";
    emit_number(q.d, out);
    out += ",\"defects_per_cm2\":";
    emit_number(q.defects_per_cm2, out);
    out += ",\"die_area_cm2\":";
    emit_number(q.die_area_cm2, out);
    out += ",\"expected_faults\":";
    emit_number(q.expected_faults, out);
    out += ",\"lambda_um\":";
    emit_number(q.lambda_um, out);
    out += ",\"model\":";
    json::write_string_into(out, q.model);
    out += ",\"op\":\"yield\",\"p\":";
    emit_number(q.p, out);
    out += ",\"y0\":";
    emit_number(q.y0, out);
    out += '}';
}

void emit_scenario1_key(const scenario1_request& q, std::string& out) {
    out += "{\"c0_usd\":";
    emit_number(q.c0_usd, out);
    out += ",\"design_density\":";
    emit_number(q.design_density, out);
    out += ",\"lambda_um\":";
    emit_number(q.lambda_um, out);
    out += ",\"op\":\"scenario1\",\"wafer_radius_cm\":";
    emit_number(q.wafer_radius_cm, out);
    out += ",\"x\":";
    emit_number(q.x, out);
    out += '}';
}

void emit_scenario2_key(const scenario2_request& q, std::string& out) {
    out += "{\"c0_usd\":";
    emit_number(q.c0_usd, out);
    out += ",\"design_density\":";
    emit_number(q.design_density, out);
    out += ",\"lambda_um\":";
    emit_number(q.lambda_um, out);
    out += ",\"op\":\"scenario2\",\"wafer_radius_cm\":";
    emit_number(q.wafer_radius_cm, out);
    out += ",\"x\":";
    emit_number(q.x, out);
    out += ",\"y0\":";
    emit_number(q.y0, out);
    out += '}';
}

void emit_table3_key(const table3_request& q, std::string& out) {
    out += "{\"op\":\"table3\",\"row\":";
    emit_number(static_cast<double>(q.row), out);
    out += '}';
}

void emit_mc_yield_key(const mc_yield_request& q, std::string& out) {
    out += "{\"defect_p\":";
    emit_number(q.defect_p, out);
    out += ",\"defect_q\":";
    emit_number(q.defect_q, out);
    out += ",\"defect_r0_um\":";
    emit_number(q.defect_r0_um, out);
    out += ",\"defects_per_um2\":";
    emit_number(q.defects_per_um2, out);
    out += ",\"dies\":";
    emit_number(static_cast<double>(q.dies), out);
    out += ",\"extra_material_fraction\":";
    emit_number(q.extra_material_fraction, out);
    out += ",\"line_count\":";
    emit_number(static_cast<double>(q.line_count), out);
    out += ",\"line_length_um\":";
    emit_number(q.line_length_um, out);
    out += ",\"line_spacing_um\":";
    emit_number(q.line_spacing_um, out);
    out += ",\"line_width_um\":";
    emit_number(q.line_width_um, out);
    out += ",\"op\":\"mc_yield\",\"seed\":";
    emit_number(static_cast<double>(q.seed), out);
    out += '}';
}

/// `target_key` is the already-canonical target serialization (spliced
/// verbatim — canonical is idempotent under re-sorting).
void emit_sweep_key(const sweep_request& q, std::string_view target_key,
                    std::string& out) {
    out += "{\"count\":";
    emit_number(static_cast<double>(q.count), out);
    out += ",\"from\":";
    emit_number(q.from, out);
    out += ",\"op\":\"sweep\",\"param\":";
    json::write_string_into(out, q.param);
    out += ",\"scale\":";
    json::write_string_into(out, q.scale);
    out += ",\"target\":";
    out += target_key;
    out += ",\"to\":";
    emit_number(q.to, out);
    out += '}';
}

/// The sorted run of chiplet configuration keys from "bond_yield"
/// through "clustering_alpha"; both chiplet-family emitters start with
/// it (partition_explore's "area_*" / "count" keys interleave around
/// it and are emitted by the caller).
void emit_chiplet_run_bond_to_c0(const chiplet_request& q, std::string& out) {
    out += "\"bond_yield\":";
    emit_number(q.bond_yield, out);
    out += ",\"bonding_cost_per_chiplet\":";
    emit_number(q.bonding_cost_per_chiplet, out);
    out += ",\"c0_usd\":";
    emit_number(q.c0_usd, out);
}

/// Sorted keys "d2d_area_mm2" .. "memory_defect_factor" — identical in
/// both chiplet-family canonical forms.
void emit_chiplet_run_d2d_to_memory(const chiplet_request& q,
                                    std::string& out) {
    out += ",\"d2d_area_mm2\":";
    emit_number(q.d2d_area_mm2, out);
    out += ",\"defects_per_cm2\":";
    emit_number(q.defects_per_cm2, out);
    out += ",\"edge_exclusion_cm\":";
    emit_number(q.edge_exclusion_cm, out);
    out += ",\"generation_step_um\":";
    emit_number(q.generation_step_um, out);
    out += ",\"interposer_cost_per_cm2\":";
    emit_number(q.interposer_cost_per_cm2, out);
    out += ",\"interposer_defects_per_cm2\":";
    emit_number(q.interposer_defects_per_cm2, out);
    out += ",\"io_area_mm2\":";
    emit_number(q.io_area_mm2, out);
    out += ",\"io_defect_factor\":";
    emit_number(q.io_defect_factor, out);
    out += ",\"lambda_um\":";
    emit_number(q.lambda_um, out);
    out += ",\"logic_area_mm2\":";
    emit_number(q.logic_area_mm2, out);
    out += ",\"memory_area_mm2\":";
    emit_number(q.memory_area_mm2, out);
    out += ",\"memory_defect_factor\":";
    emit_number(q.memory_defect_factor, out);
}

/// Sorted keys "package_area_factor" .. "rdl_defects_per_cm2" (the run
/// right after "op" in both chiplet-family canonical forms).
void emit_chiplet_run_package_to_rdl(const chiplet_request& q,
                                     std::string& out) {
    out += ",\"package_area_factor\":";
    emit_number(q.package_area_factor, out);
    out += ",\"rdl_cost_per_cm2\":";
    emit_number(q.rdl_cost_per_cm2, out);
    out += ",\"rdl_defects_per_cm2\":";
    emit_number(q.rdl_defects_per_cm2, out);
}

/// Sorted keys "substrate" .. "x" — the shared tail of both
/// chiplet-family canonical forms (partition_explore's "scale" and
/// "splits" sort immediately before "substrate" and are emitted by the
/// caller).
void emit_chiplet_run_substrate_to_x(const chiplet_request& q,
                                     std::string& out) {
    out += ",\"substrate\":";
    json::write_string_into(out, q.substrate);
    out += ",\"substrate_cost_per_cm2\":";
    emit_number(q.substrate_cost_per_cm2, out);
    out += ",\"test_coverage\":";
    emit_number(q.test_coverage, out);
    out += ",\"test_seconds_fixed\":";
    emit_number(q.test_seconds_fixed, out);
    out += ",\"test_seconds_per_cm2\":";
    emit_number(q.test_seconds_per_cm2, out);
    out += ",\"tester_rate_per_hour\":";
    emit_number(q.tester_rate_per_hour, out);
    out += ",\"wafer_radius_cm\":";
    emit_number(q.wafer_radius_cm, out);
    out += ",\"x\":";
    emit_number(q.x, out);
    out += '}';
}

void emit_chiplet_key(const chiplet_request& q, std::string& out) {
    out += '{';
    emit_chiplet_run_bond_to_c0(q, out);
    out += ",\"chiplets\":";
    emit_number(static_cast<double>(q.chiplets), out);
    out += ",\"clustering_alpha\":";
    emit_number(q.clustering_alpha, out);
    emit_chiplet_run_d2d_to_memory(q, out);
    out += ",\"op\":\"chiplet\"";
    emit_chiplet_run_package_to_rdl(q, out);
    emit_chiplet_run_substrate_to_x(q, out);
}

void emit_partition_explore_key(const partition_explore_request& q,
                                std::string& out) {
    out += "{\"area_from_mm2\":";
    emit_number(q.area_from_mm2, out);
    out += ",\"area_to_mm2\":";
    emit_number(q.area_to_mm2, out);
    out += ',';
    emit_chiplet_run_bond_to_c0(q.base, out);
    out += ",\"clustering_alpha\":";
    emit_number(q.base.clustering_alpha, out);
    out += ",\"count\":";
    emit_number(static_cast<double>(q.count), out);
    emit_chiplet_run_d2d_to_memory(q.base, out);
    out += ",\"op\":\"partition_explore\"";
    emit_chiplet_run_package_to_rdl(q.base, out);
    out += ",\"scale\":";
    json::write_string_into(out, q.scale);
    out += ",\"splits\":";
    json::write_string_into(out, q.splits);
    emit_chiplet_run_substrate_to_x(q.base, out);
}

// ---------------------------------------------------------------------------
// Top-level parse
// ---------------------------------------------------------------------------

void parse_sweep_fast(fast_reader& r, fast_parse_state& st);

/// Parses a scalar (non-sweep) request document into `out` and appends
/// its canonical key into `key_out` (cleared first).  `allow_sweep`
/// distinguishes the top level (sweeps handled via `st`) from sweep
/// targets (nested sweeps decline to the legacy path).
void parse_request_fast_inner(const aview& doc, request& out,
                              std::string& key_out,
                              fast_parse_state* sweep_state) {
    if (!doc.is_object()) {
        throw request_error("bad_request", "request must be a JSON object");
    }
    fast_reader r{doc, "request"};

    const aview* op_member = r.raw("op");
    if (op_member == nullptr || !op_member->is_string()) {
        throw request_error("bad_request", "request: 'op' must be a string");
    }
    const std::optional<op_code> op = op_from_string(op_member->string);
    if (!op.has_value()) {
        throw request_error("unknown_op", "request: unknown op '" +
                                              std::string{op_member->string} +
                                              "'");
    }

    out.op = *op;
    out.has_id = false;
    if (const aview* id = r.raw("id")) {
        out.has_id = true;
        if (sweep_state != nullptr) {
            sweep_state->id_view = id;
        }
    }
    out.has_deadline = false;
    out.deadline_ms = 0;
    if (r.raw("deadline_ms") != nullptr) {
        out.deadline_ms = r.uinteger("deadline_ms", 0);
        out.has_deadline = true;
    }
    out.has_trace = false;
    if (const aview* trace = r.raw("trace_id")) {
        if (!trace->is_string()) {
            throw request_error("bad_param",
                                "request: field 'trace_id' must be a string");
        }
        // `request::trace_id` stays untouched on the fast path (assigning
        // could allocate); the echo reads the arena-backed view instead.
        out.has_trace = true;
        if (sweep_state != nullptr) {
            sweep_state->trace_view = trace;
        }
    }

    switch (*op) {
        case op_code::cost_tr: parse_cost_tr_fast(r, out); break;
        case op_code::gross_die: parse_gross_die_fast(r, out); break;
        case op_code::yield: parse_yield_fast(r, out); break;
        case op_code::scenario1: parse_scenario1_fast(r, out); break;
        case op_code::scenario2: parse_scenario2_fast(r, out); break;
        case op_code::table3: parse_table3_fast(r, out); break;
        case op_code::mc_yield: parse_mc_yield_fast(r, out); break;
        case op_code::sweep:
            if (sweep_state == nullptr) {
                // Nested sweep target: always rejected downstream, but the
                // legacy parser surfaces the *target's* error first, which
                // would need unbounded scratch to mirror.  Decline instead.
                throw fast_parse_unsupported{};
            }
            parse_sweep_fast(r, *sweep_state);
            break;
        case op_code::stats:
            ensure_payload<stats_request>(out);
            break;
        case op_code::chiplet: parse_chiplet_fast(r, out); break;
        case op_code::partition_explore:
            parse_partition_explore_fast(r, out);
            break;
    }
    r.forbid_unknown();

    key_out.clear();
    switch (*op) {
        case op_code::sweep:
            emit_sweep_key(std::get<sweep_request>(out.payload),
                           sweep_state->target_key, key_out);
            break;
        default:
            canonical_key_into(out, key_out);
            break;
    }
}

void parse_sweep_fast(fast_reader& r, fast_parse_state& st) {
    sweep_request& out = ensure_payload<sweep_request>(st.req);

    const aview* target = r.raw("target");
    if (target == nullptr) {
        throw request_error("bad_param", "sweep: 'target' is required");
    }
    require_object_fast(*target, "sweep.target");
    if (target->find("id") != nullptr) {
        throw request_error("bad_param",
                            "sweep.target: must not carry an 'id'");
    }
    if (target->find("deadline_ms") != nullptr) {
        throw request_error("bad_param",
                            "sweep.target: must not carry a 'deadline_ms'");
    }
    if (target->find("trace_id") != nullptr) {
        throw request_error("bad_param",
                            "sweep.target: must not carry a 'trace_id'");
    }

    parse_request_fast_inner(*target, st.target_req, st.target_key,
                             /*sweep_state=*/nullptr);
    if (st.target_req.op == op_code::sweep ||
        st.target_req.op == op_code::stats ||
        primary_metric(st.target_req.op) == nullptr) {
        throw request_error(
            "bad_param",
            "sweep: target op '" +
                std::string{to_string(st.target_req.op)} +
                "' has no sweepable scalar metric");
    }

    const aview* param = r.raw("param");
    if (param == nullptr || !param->is_string()) {
        throw request_error("bad_param",
                            "sweep: 'param' must be a string path");
    }
    out.param.assign(param->string);

    if (!numeric_param_exists(st.target_req, out.param)) {
        throw request_error("bad_param",
                            "sweep: param '" + out.param +
                                "' does not address a numeric parameter of "
                                "the target");
    }
    // Unlike the legacy parser, target/target_params stay empty: the fast
    // path only needs the canonical key, and a cache miss re-parses the
    // line through the legacy pipeline before evaluating.

    const aview* from = r.raw("from");
    const aview* to_v = r.raw("to");
    if (from == nullptr || !from->is_number() || to_v == nullptr ||
        !to_v->is_number()) {
        throw request_error("bad_param",
                            "sweep: 'from' and 'to' must be numbers");
    }
    out.from = from->number;
    out.to = to_v->number;
    if (!std::isfinite(out.from) || !std::isfinite(out.to)) {
        throw request_error("bad_param",
                            "sweep: 'from'/'to' must be finite");
    }

    out.count = r.integer("count", out.count);
    if (out.count < 1 || out.count > 65536) {
        throw request_error("bad_param",
                            "sweep: count must be in [1, 65536]");
    }
    r.text_into("scale", out.scale);
    if (out.scale != "linear" && out.scale != "log") {
        throw request_error("bad_param",
                            "sweep: scale must be 'linear' or 'log'");
    }
    if (out.scale == "log" && (!(out.from > 0.0) || !(out.to > 0.0))) {
        throw request_error(
            "bad_param", "sweep: log scale requires positive 'from'/'to'");
    }
}

}  // namespace

void parse_request_fast(const json::aview& doc, fast_parse_state& st) {
    st.id_view = nullptr;
    st.trace_view = nullptr;
    parse_request_fast_inner(doc, st.req, st.req.canonical_key, &st);
}

void canonical_key_into(const request& r, std::string& out) {
    switch (r.op) {
        case op_code::cost_tr:
            emit_cost_tr_key(std::get<cost_tr_request>(r.payload), out);
            break;
        case op_code::gross_die:
            emit_gross_die_key(std::get<gross_die_request>(r.payload), out);
            break;
        case op_code::yield:
            emit_yield_key(std::get<yield_request>(r.payload), out);
            break;
        case op_code::scenario1:
            emit_scenario1_key(std::get<scenario1_request>(r.payload), out);
            break;
        case op_code::scenario2:
            emit_scenario2_key(std::get<scenario2_request>(r.payload), out);
            break;
        case op_code::table3:
            emit_table3_key(std::get<table3_request>(r.payload), out);
            break;
        case op_code::mc_yield:
            emit_mc_yield_key(std::get<mc_yield_request>(r.payload), out);
            break;
        case op_code::sweep: {
            // Test/utility path for legacy-parsed sweeps (target_params
            // populated); the hot path splices the precomputed target key.
            const auto& q = std::get<sweep_request>(r.payload);
            std::string target_key;
            json::canonical_into(json::value{q.target_params}, target_key);
            emit_sweep_key(q, target_key, out);
            break;
        }
        case op_code::stats:
            out += "{\"op\":\"stats\"}";
            break;
        case op_code::chiplet:
            emit_chiplet_key(std::get<chiplet_request>(r.payload), out);
            break;
        case op_code::partition_explore:
            emit_partition_explore_key(
                std::get<partition_explore_request>(r.payload), out);
            break;
    }
}

// ---------------------------------------------------------------------------
// Numeric parameter tables (mirror of parse_sweep's canonical-JSON walk)
// ---------------------------------------------------------------------------

namespace {

double* cost_tr_param(cost_tr_request& q, std::string_view p) {
    if (p == "process.c0_usd") return &q.process.c0_usd;
    if (p == "process.x") return &q.process.x;
    if (p == "process.generation_step_um") return &q.process.generation_step_um;
    if (p == "process.wafer_radius_cm") return &q.process.wafer_radius_cm;
    if (p == "process.edge_exclusion_cm") return &q.process.edge_exclusion_cm;
    if (p == "process.yield.y0") return &q.process.yield.y0;
    if (p == "process.yield.a0_cm2") return &q.process.yield.a0_cm2;
    if (p == "process.yield.d") return &q.process.yield.d;
    if (p == "process.yield.p") return &q.process.yield.p;
    if (p == "process.yield.fixed") return &q.process.yield.fixed;
    if (p == "product.transistors") return &q.product.transistors;
    if (p == "product.design_density") return &q.product.design_density;
    if (p == "product.feature_size_um") return &q.product.feature_size_um;
    if (p == "product.die_aspect_ratio") return &q.product.die_aspect_ratio;
    if (p == "economics.overhead_usd") return &q.economics.overhead_usd;
    if (p == "economics.volume_wafers") return &q.economics.volume_wafers;
    return nullptr;
}

double* gross_die_param(gross_die_request& q, std::string_view p) {
    if (p == "wafer_radius_cm") return &q.wafer_radius_cm;
    if (p == "edge_exclusion_cm") return &q.edge_exclusion_cm;
    if (p == "die_width_mm") return &q.die_width_mm;
    if (p == "die_height_mm") return &q.die_height_mm;
    if (p == "scribe_mm") return &q.scribe_mm;
    return nullptr;
}

double* yield_param(yield_request& q, std::string_view p) {
    if (p == "expected_faults") return &q.expected_faults;
    if (p == "die_area_cm2") return &q.die_area_cm2;
    if (p == "defects_per_cm2") return &q.defects_per_cm2;
    if (p == "alpha") return &q.alpha;
    if (p == "d") return &q.d;
    if (p == "p") return &q.p;
    if (p == "lambda_um") return &q.lambda_um;
    if (p == "y0") return &q.y0;
    if (p == "a0_cm2") return &q.a0_cm2;
    return nullptr;
}

double* scenario1_param(scenario1_request& q, std::string_view p) {
    if (p == "lambda_um") return &q.lambda_um;
    if (p == "c0_usd") return &q.c0_usd;
    if (p == "x") return &q.x;
    if (p == "wafer_radius_cm") return &q.wafer_radius_cm;
    if (p == "design_density") return &q.design_density;
    return nullptr;
}

double* scenario2_param(scenario2_request& q, std::string_view p) {
    if (p == "lambda_um") return &q.lambda_um;
    if (p == "c0_usd") return &q.c0_usd;
    if (p == "x") return &q.x;
    if (p == "wafer_radius_cm") return &q.wafer_radius_cm;
    if (p == "design_density") return &q.design_density;
    if (p == "y0") return &q.y0;
    return nullptr;
}

double* chiplet_param(chiplet_request& q, std::string_view p) {
    if (p == "logic_area_mm2") return &q.logic_area_mm2;
    if (p == "memory_area_mm2") return &q.memory_area_mm2;
    if (p == "io_area_mm2") return &q.io_area_mm2;
    if (p == "d2d_area_mm2") return &q.d2d_area_mm2;
    if (p == "lambda_um") return &q.lambda_um;
    if (p == "c0_usd") return &q.c0_usd;
    if (p == "x") return &q.x;
    if (p == "generation_step_um") return &q.generation_step_um;
    if (p == "wafer_radius_cm") return &q.wafer_radius_cm;
    if (p == "edge_exclusion_cm") return &q.edge_exclusion_cm;
    if (p == "defects_per_cm2") return &q.defects_per_cm2;
    if (p == "memory_defect_factor") return &q.memory_defect_factor;
    if (p == "io_defect_factor") return &q.io_defect_factor;
    if (p == "clustering_alpha") return &q.clustering_alpha;
    if (p == "test_coverage") return &q.test_coverage;
    if (p == "tester_rate_per_hour") return &q.tester_rate_per_hour;
    if (p == "test_seconds_fixed") return &q.test_seconds_fixed;
    if (p == "test_seconds_per_cm2") return &q.test_seconds_per_cm2;
    if (p == "substrate_cost_per_cm2") return &q.substrate_cost_per_cm2;
    if (p == "rdl_cost_per_cm2") return &q.rdl_cost_per_cm2;
    if (p == "rdl_defects_per_cm2") return &q.rdl_defects_per_cm2;
    if (p == "interposer_cost_per_cm2") return &q.interposer_cost_per_cm2;
    if (p == "interposer_defects_per_cm2") {
        return &q.interposer_defects_per_cm2;
    }
    if (p == "package_area_factor") return &q.package_area_factor;
    if (p == "bond_yield") return &q.bond_yield;
    if (p == "bonding_cost_per_chiplet") return &q.bonding_cost_per_chiplet;
    return nullptr;
}

double* mc_yield_param(mc_yield_request& q, std::string_view p) {
    if (p == "line_width_um") return &q.line_width_um;
    if (p == "line_spacing_um") return &q.line_spacing_um;
    if (p == "line_length_um") return &q.line_length_um;
    if (p == "defect_r0_um") return &q.defect_r0_um;
    if (p == "defect_p") return &q.defect_p;
    if (p == "defect_q") return &q.defect_q;
    if (p == "defects_per_um2") return &q.defects_per_um2;
    if (p == "extra_material_fraction") return &q.extra_material_fraction;
    return nullptr;
}

/// Numeric members serialized from integer storage: addressable by a
/// sweep per the canonical-JSON walk, but not double-pokeable.
bool integer_param_exists(const request& r, std::string_view p) {
    switch (r.op) {
        case op_code::yield:
            return p == "critical_steps";
        case op_code::mc_yield:
            return p == "line_count" || p == "dies" || p == "seed";
        case op_code::table3:
            return p == "row";
        case op_code::chiplet:
            return p == "chiplets";
        default:
            return false;
    }
}

}  // namespace

double* numeric_param_ptr(request& r, std::string_view path) {
    switch (r.op) {
        case op_code::cost_tr:
            return cost_tr_param(std::get<cost_tr_request>(r.payload), path);
        case op_code::gross_die:
            return gross_die_param(std::get<gross_die_request>(r.payload),
                                   path);
        case op_code::yield:
            return yield_param(std::get<yield_request>(r.payload), path);
        case op_code::scenario1:
            return scenario1_param(std::get<scenario1_request>(r.payload),
                                   path);
        case op_code::scenario2:
            return scenario2_param(std::get<scenario2_request>(r.payload),
                                   path);
        case op_code::mc_yield:
            return mc_yield_param(std::get<mc_yield_request>(r.payload),
                                  path);
        case op_code::chiplet:
            return chiplet_param(std::get<chiplet_request>(r.payload), path);
        case op_code::table3:
        case op_code::sweep:
        case op_code::stats:
        case op_code::partition_explore:
            return nullptr;
    }
    return nullptr;
}

bool numeric_param_exists(const request& r, std::string_view path) {
    if (integer_param_exists(r, path)) {
        return true;
    }
    // The pointer table never writes through a const request.
    return numeric_param_ptr(const_cast<request&>(r), path) != nullptr;
}

}  // namespace silicon::serve
