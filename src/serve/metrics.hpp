// metrics.hpp — per-endpoint counters and latency histograms.
//
// Every request the engine handles increments lock-free counters for
// its endpoint (requests, errors, cache hits) and records its
// wall-clock service time into a power-of-two-bucketed latency
// histogram (bucket k counts latencies in [2^k, 2^(k+1)) microseconds,
// bucket 0 additionally holding sub-microsecond calls).  Everything is
// relaxed atomics: recording never takes a lock, never allocates, and
// never perturbs the hot path by more than a few nanoseconds.
//
// `metrics_registry::to_json()` dumps the whole registry — counts,
// totals, histogram buckets and derived mean/max — as a JSON object,
// which is what the `stats` endpoint and `silicond --metrics` print.
// Metrics are observability, not results: they are deliberately
// excluded from response payloads so the determinism contract (same
// requests, same bytes, any thread count) is untouched.

#pragma once

#include "serve/json.hpp"
#include "serve/request.hpp"

#include <array>
#include <atomic>
#include <cstdint>

namespace silicon::serve {

/// Lock-free latency histogram over power-of-two microsecond buckets.
class latency_histogram {
public:
    static constexpr int bucket_count = 24;  ///< up to ~2.3 hours

    /// Record one observation (relaxed atomics, thread-safe).
    void record(std::uint64_t nanoseconds) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept;
    [[nodiscard]] std::uint64_t total_nanoseconds() const noexcept;
    [[nodiscard]] std::uint64_t max_nanoseconds() const noexcept;

    /// {"count":..,"mean_us":..,"max_us":..,"buckets_us":[...]} with
    /// buckets trimmed after the last non-zero entry.
    [[nodiscard]] json::value to_json() const;

private:
    std::array<std::atomic<std::uint64_t>, bucket_count> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> total_ns_{0};
    std::atomic<std::uint64_t> max_ns_{0};
};

/// Counters for one endpoint.
struct endpoint_metrics {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> cache_hits{0};
    latency_histogram latency;
};

/// Fixed registry: one endpoint_metrics per op_code.
class metrics_registry {
public:
    [[nodiscard]] endpoint_metrics& at(op_code op) noexcept {
        return endpoints_[static_cast<std::size_t>(op)];
    }
    [[nodiscard]] const endpoint_metrics& at(op_code op) const noexcept {
        return endpoints_[static_cast<std::size_t>(op)];
    }

    /// One member per endpoint that has seen traffic:
    /// {"cost_tr":{"requests":..,"errors":..,"cache_hits":..,
    ///             "latency":{...}}, ...}
    [[nodiscard]] json::value to_json() const;

private:
    std::array<endpoint_metrics, op_count> endpoints_{};
};

}  // namespace silicon::serve
