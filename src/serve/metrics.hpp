// metrics.hpp — per-endpoint counters and latency histograms.
//
// Every request the engine handles increments lock-free counters for
// its endpoint (requests, errors, cache hits) and records its
// wall-clock service time into an obs::latency_histogram (promoted to
// src/obs in PR 3; bucket k counts latencies in [2^k, 2^(k+1))
// microseconds).  Everything is relaxed atomics: recording never takes
// a lock, never allocates, and never perturbs the hot path by more
// than a few nanoseconds.
//
// Two read paths:
//
//   * `metrics_registry::to_json()` dumps the whole registry — counts,
//     totals, histogram buckets and derived mean/max — as a JSON
//     object, which is what the `stats` endpoint prints.
//   * `metrics_registry::to_prometheus()` appends the same data in
//     Prometheus text exposition format (one labeled sample family per
//     counter, cumulative-bucket histograms), which is what the
//     `GET /metrics` transport op and `silicond --metrics-interval`
//     emit (see obs/metrics.hpp for the format helpers).
//
// Metrics are observability, not results: they are deliberately
// excluded from response payloads so the determinism contract (same
// requests, same bytes, any thread count) is untouched.

#pragma once

#include "obs/metrics.hpp"
#include "serve/json.hpp"
#include "serve/request.hpp"

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace silicon::serve {

/// Promoted to obs (PR 3); the alias keeps the serve-era name working.
using latency_histogram = obs::latency_histogram;

/// Counters for one endpoint.
struct endpoint_metrics {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> cache_hits{0};
    latency_histogram latency;
    /// Stage breakdown of `latency`, recorded at the dispatcher's span
    /// sites (serve.parse+canonicalize, serve.cache, serve.exec,
    /// serve.serialize).  Shed requests record nothing here.
    latency_histogram stage_parse;
    latency_histogram stage_cache;
    latency_histogram stage_exec;
    latency_histogram stage_serialize;

    /// Tail exemplar: the slowest trace-carrying request since the last
    /// Prometheus scrape.  `tail_ns` is the fast-reject filter; the
    /// trace bytes are guarded by `tail_lock` (contended writers drop
    /// their update — an exemplar is best-effort by definition).
    /// Mutable: the scrape consumes the exemplar through const access.
    mutable std::atomic<std::uint64_t> tail_ns{0};
    mutable std::atomic_flag tail_lock = ATOMIC_FLAG_INIT;
    mutable char tail_trace[48] = {};
};

/// Record `trace` as the endpoint's tail exemplar when `nanoseconds`
/// beats the current one.  No-op for empty traces; never blocks.
void note_tail_exemplar(endpoint_metrics& m, std::uint64_t nanoseconds,
                        std::string_view trace) noexcept;

/// Fixed registry: one endpoint_metrics per op_code.
class metrics_registry {
public:
    [[nodiscard]] endpoint_metrics& at(op_code op) noexcept {
        return endpoints_[static_cast<std::size_t>(op)];
    }
    [[nodiscard]] const endpoint_metrics& at(op_code op) const noexcept {
        return endpoints_[static_cast<std::size_t>(op)];
    }

    /// One member per endpoint that has seen traffic:
    /// {"cost_tr":{"requests":..,"errors":..,"cache_hits":..,
    ///             "latency":{...}}, ...}
    [[nodiscard]] json::value to_json() const;

    /// Append the registry as Prometheus text exposition:
    /// silicon_serve_requests_total{op="..."} etc., a
    /// silicon_serve_latency_seconds histogram + stage-breakdown
    /// histograms per active endpoint, sliding-window
    /// p50/p99/p999 gauges (interpolated over the bucket deltas since
    /// the previous scrape — each scrape is one window), and the tail
    /// trace_id exemplar gauge (consumed by the scrape).
    void to_prometheus(std::string& out) const;

private:
    std::array<endpoint_metrics, op_count> endpoints_{};

    /// Previous-scrape bucket snapshot per endpoint (window quantiles);
    /// only the scrape path touches it.
    struct window_state {
        std::array<std::uint64_t, latency_histogram::bucket_count> last{};
    };
    mutable std::array<window_state, op_count> windows_{};
    mutable std::mutex scrape_mutex_;
};

}  // namespace silicon::serve
