// conn.hpp — one multiplexed silicond connection (event-loop edition).
//
// A `conn` owns everything per-connection the PR 5 thread-per-client
// loop kept on its stack, restructured for a non-blocking fd driven by
// epoll (serve/event_loop):
//
//   * a bounded `io::line_splitter` framing the JSONL stream (oversized
//     lines are discarded as they arrive and answered `too_large`
//     in-order, exactly like the blocking transport);
//   * an `http::parser` the connection hands its stream to whenever a
//     framed line turns out to be an HTTP/1.1 request line — after the
//     response (keep-alive permitting) the stream drops back to JSONL,
//     so Prometheus scrapers and JSONL clients coexist on one port and
//     even on one connection;
//   * a bounded write queue with watermark backpressure: responses the
//     socket will not take immediately are buffered; above
//     `queue_high_bytes` the connection *stops reading* (the kernel's
//     receive window then pushes back on the client) and resumes below
//     `queue_low_bytes`.  Every buffered byte holds a PR 5 admission
//     ticket against the loop-wide `queue_budget_bytes` ledger, so a
//     thousand slow readers cannot OOM the server: when the ledger
//     refuses, the connection is dropped (counted, never torn
//     mid-line — the queue is all-or-nothing per response flush).
//
// Ordering invariant (inherited from DESIGN.md §11): every accepted
// line gets exactly one reply, in request order; oversized rejections
// and HTTP responses land at the stream position their bytes occupied,
// behind any batch still pending.
//
// A conn is single-threaded — only the owning event loop touches it.
// The shared state (`conn_shared`) is the loop-wide ledger + metrics,
// safe to alias from every conn of that loop.

#pragma once

#include "obs/metrics.hpp"
#include "serve/engine.hpp"
#include "serve/http.hpp"
#include "serve/io.hpp"
#include "serve/limits.hpp"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace silicon::serve {

struct conn_config {
    /// Max lines per engine batch (mirrors silicond --batch).
    std::size_t batch = 1024;
    /// Per-line byte bound for the splitter (0 = unbounded).
    std::size_t max_line_bytes = 0;
    /// Pause reading when the write queue holds more than this.
    std::size_t queue_high_bytes = 4u << 20;
    /// Resume reading when it drains below this.
    std::size_t queue_low_bytes = 256u << 10;
    /// Loop-wide buffered-response byte budget (0 = off); enforced via
    /// admission tickets on the shared ledger.
    std::size_t queue_budget_bytes = 0;
    /// Drop the connection after answering an oversized line (TCP
    /// framing is suspect; matches the PR 5 transport).
    bool close_on_oversize = true;
    /// HTTP parser bounds (431/413 beyond).
    http::parser::config http;
};

/// State shared by every conn of one event loop: the engine, the
/// response-queue ledger, and the metric handles (registered once in
/// the process-global obs registry; same names as the PR 5 transport
/// where the meaning carried over).
struct conn_shared {
    conn_shared(engine& eng, conn_config cfg);

    engine& eng;
    conn_config config;
    admission_controller ledger;  ///< buffered-response bytes
    std::atomic<std::uint64_t> queued_bytes{0};
    std::atomic<std::size_t> paused_conns{0};
    /// Transport-level debug state for `GET /statusz`.
    std::chrono::steady_clock::time_point started =
        std::chrono::steady_clock::now();
    std::atomic<std::size_t> open_conns{0};

    obs::counter& flushes;
    obs::counter& flushed_bytes;
    obs::counter& oversized_lines;
    obs::counter& http_requests;
    obs::counter& queue_overflow_drops;
    obs::gauge& queue_bytes_gauge;
};

class conn {
public:
    conn(int fd, conn_shared& shared);
    ~conn();
    conn(const conn&) = delete;
    conn& operator=(const conn&) = delete;

    /// Drain the socket (until EAGAIN / short read / backpressure
    /// pause), frame lines, answer complete batches.  EOF flushes the
    /// final unterminated line and schedules flush-then-close.
    void on_readable();

    /// Flush the write queue as far as the socket allows.
    void on_writable();

    /// True when the loop must destroy this connection (dead peer, or
    /// close-after-flush with an empty queue).
    [[nodiscard]] bool finished() const noexcept {
        return dead_ || (close_after_flush_ && queue_.empty());
    }

    [[nodiscard]] bool wants_read() const noexcept {
        return !paused_ && !eof_seen_ && !close_after_flush_ && !dead_;
    }
    [[nodiscard]] bool wants_write() const noexcept {
        return !queue_.empty() && !dead_;
    }
    [[nodiscard]] bool paused() const noexcept { return paused_; }
    [[nodiscard]] std::size_t queued_bytes() const noexcept {
        return queued_bytes_;
    }
    [[nodiscard]] int fd() const noexcept { return fd_; }

    // Timer bookkeeping, owned by the event loop's wheel.
    std::uint64_t last_activity_tick = 0;
    std::uint64_t write_pending_since_tick = 0;  ///< 0 = nothing pending
    bool wheel_scheduled = false;

private:
    enum class mode { jsonl, http };

    struct out_buf {
        std::string data;
        std::size_t offset = 0;
        admission_controller::ticket ticket;
    };

    void consume(std::string_view data);
    /// Splitter callback; returns false to stop framing (mode switch,
    /// close, or fatal enqueue failure).
    bool on_jsonl_line(std::string_view line, bool oversized);
    /// Evaluate pending lines through the engine and enqueue replies.
    void flush_pending_batch();
    void respond_http(const http::request& req);
    void respond_http_error();
    void enqueue(std::string_view bytes);
    void set_paused(bool paused);

    int fd_;
    conn_shared& shared_;
    mode mode_ = mode::jsonl;
    io::line_splitter splitter_;
    http::parser http_;
    std::string pending_http_line_;  ///< request line that triggered http mode
    bool switch_to_http_ = false;
    std::vector<std::string> lines_;
    std::string gather_;
    std::string reject_;
    std::deque<out_buf> queue_;
    std::size_t queued_bytes_ = 0;
    bool paused_ = false;
    bool eof_seen_ = false;
    bool close_after_flush_ = false;
    bool dead_ = false;
};

}  // namespace silicon::serve
