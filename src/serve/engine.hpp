// engine.hpp — the batched cost-query engine.
//
// The engine is the dispatcher behind `silicond`: it turns request
// lines (see request.hpp for the schema) into response lines, routing
// each endpoint into the model library — core/ (cost model, scenarios,
// Table 3), geometry/ (gross die), yield/ (model family, Monte-Carlo),
// cost/ (wafer cost) — and running batches on the src/exec thread
// pool.
//
// Six layers of speed, none of which may change a byte of output:
//
//   * Batching: `handle_batch` fans request lines across
//     exec::parallel_for with the configured `parallelism` knob
//     (0 = hardware concurrency, 1 = serial).  Every response depends
//     only on its own request line, and responses are written into
//     index-addressed slots, so the output is bit-identical at every
//     thread count — the same determinism contract as the rest of the
//     library (DESIGN.md §7/§8).
//   * Memoization: evaluated results are cached in a sharded LRU
//     (cache.hpp) keyed by the request's canonical serialization;
//     endpoints are pure functions of their canonical request, so a
//     hit returns exactly the bytes a fresh evaluation would produce.
//     Sweep grid points share the same cache as top-level requests on
//     both the kernel and the per-point path (see engine_config).
//   * Hot path (`hot_path`): a warm cache hit is answered without a
//     single heap allocation — the line is parsed into a per-thread
//     monotonic arena (json_arena.hpp), canonicalized by the
//     allocation-free twin parser (request_fast.hpp), probed with
//     memo_cache::get_if_present, and the response envelope is spliced
//     into a reused buffer.  Any surprise (miss, unsupported shape,
//     exception) falls back to the legacy pipeline, which re-parses
//     from scratch, so bytes, error messages and cache accounting are
//     exactly the legacy ones (DESIGN.md §10).
//   * Intra-batch dedup (`batch_dedup`): identical canonical keys
//     within one `handle_batch` call evaluate once; the twins answer
//     from the cache after the representative completes.  Error
//     responses are never coalesced — a twin whose representative
//     failed re-evaluates individually, and every response keeps its
//     own `id`.
//   * SoA sweep kernels (`sweep_kernels`): eligible sweep targets
//     (scenario #1/#2, every yield model) evaluate on the
//     structure-of-arrays batch kernels in
//     yield/batch.hpp and cost/batch.hpp, bit-identical to the
//     per-point path; other targets with a swept double parameter use
//     a typed per-lane evaluation that skips the per-point JSON round
//     trip.
//   * Parallel kernels: endpoints that are themselves parallel
//     (mc_yield) inherit the engine parallelism; nested use inside a
//     batch degrades to serial per the exec engine rules, with
//     identical results either way.
//
// Error handling: every failure — malformed JSON, schema violations,
// infeasible model inputs (die does not fit, yield underflow) — maps
// to a structured `{"ok":false,"error":{"code","message"}}` response
// on the request's own line.  `handle_line` never throws.

#pragma once

#include "exec/cancel.hpp"
#include "obs/flight.hpp"
#include "serve/cache.hpp"
#include "serve/limits.hpp"
#include "serve/metrics.hpp"
#include "serve/request.hpp"
#include "serve/snapshot.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace silicon::serve {

struct engine_config {
    /// Batch fan-out width: 0 = hardware concurrency, 1 = serial.
    unsigned parallelism = 0;
    /// Total memoization-cache entry budget; 0 disables caching.
    std::size_t cache_capacity = 65536;
    /// Cache shard count (see memo_cache).
    std::size_t cache_shards = 16;
    /// Arena-backed allocation-free parse/canonicalize/probe fast path
    /// for `handle_line`; warm cache hits allocate nothing.  Off =
    /// always take the legacy pipeline (A/B ablation knob; bytes are
    /// identical either way).
    bool hot_path = true;
    /// Coalesce identical canonical keys within one `handle_batch`
    /// call (requires a non-zero cache_capacity).  Off = every line
    /// evaluates independently, exactly as before.
    bool batch_dedup = true;
    /// Evaluate eligible sweep targets on the SoA batch kernels.
    /// Kernel lanes populate the per-point memoization cache just like
    /// the per-point path (a post-sweep point query is a warm hit), so
    /// this knob changes throughput only, never bytes or cache sharing.
    bool sweep_kernels = true;
    /// Route sweep/partition_explore kernels through the *_fast
    /// variants (vector transcendentals via simd/math.hpp, dispatched
    /// once per process to AVX2/NEON/scalar — see simd/dispatch.hpp).
    /// Off (the default) keeps every response bit-identical to the
    /// scalar library; on, sweep curve values may drift from the
    /// scalar path within the ULP bounds documented in DESIGN.md §15
    /// (NaN/null lanes are still classified identically), results
    /// remain deterministic across thread counts and repeat runs on
    /// the same host, and fast lanes never populate the per-point
    /// memoization cache (point queries must keep returning scalar
    /// bytes).  Do not enable under golden/bit-exact workflows.
    bool fast_math = false;
    /// Resource budgets and overload behavior (limits.hpp); all
    /// defaults are 0/off, so an unconfigured engine is byte-identical
    /// to one built before limits existed.
    limits_config limits;
};

class engine {
public:
    explicit engine(engine_config config = {});

    /// Serve one request line: parse, validate, evaluate (or hit the
    /// cache) and return the response line (no trailing newline).
    /// Never throws; every failure becomes an error response.
    [[nodiscard]] std::string handle_line(std::string_view line);

    /// `handle_line` into a caller-owned buffer (cleared first, but its
    /// capacity is reused) — with `hot_path` on, a warm cache hit
    /// through here performs zero heap allocations (gated by
    /// tests/serve/test_hotpath.cpp with a counting allocator).
    void handle_line_into(std::string_view line, std::string& out);

    /// Serve a batch of lines on the exec pool; response i answers
    /// line i.  Output is bit-identical for every parallelism value.
    [[nodiscard]] std::vector<std::string> handle_batch(
        const std::vector<std::string>& lines);

    /// Evaluate a parsed request directly, bypassing cache, metrics
    /// and the response envelope — the reference path golden tests
    /// compare cached/batched responses against.  Throws on
    /// infeasible inputs exactly like the underlying library.
    [[nodiscard]] json::value evaluate(const request& req);

    /// Prometheus text exposition of everything observable about this
    /// engine: per-endpoint counters and latency histograms, cache
    /// totals + per-shard occupancy + hit ratio, parse errors, and the
    /// process-global obs registry (exec pool gauges).  Served by the
    /// `GET /metrics` transport op and `silicond --metrics-interval`.
    [[nodiscard]] std::string prometheus_text() const;

    /// Debug snapshot for `GET /statusz`: effective configuration,
    /// limit budgets, cache occupancy, overload counters and the
    /// flight-recorder summary.  Live data, never cached, never golden.
    [[nodiscard]] json::value statusz_json() const;

    [[nodiscard]] memo_cache::stats cache_stats() const {
        return cache_.snapshot();
    }
    [[nodiscard]] const metrics_registry& metrics() const noexcept {
        return metrics_;
    }
    [[nodiscard]] const engine_config& config() const noexcept {
        return config_;
    }

    /// In-batch duplicate lines coalesced behind a representative
    /// evaluation since start (see `batch_dedup`).
    [[nodiscard]] std::uint64_t dedup_hits() const noexcept {
        return dedup_hits_.load(std::memory_order_relaxed);
    }
    /// Arena bytes consumed by hot-path cache hits since start.
    [[nodiscard]] std::uint64_t arena_bytes() const noexcept {
        return arena_bytes_.load(std::memory_order_relaxed);
    }

    /// Bytes-in-flight ledger + per-reason rejection counters (the
    /// overload observability surface; also in stats/Prometheus).
    [[nodiscard]] const admission_controller& admission() const noexcept {
        return admission_;
    }
    /// Lines answered `deadline_exceeded` since start.
    [[nodiscard]] std::uint64_t deadline_exceeded_total() const noexcept {
        return deadline_exceeded_.load(std::memory_order_relaxed);
    }
    /// Hot-path declines forced by the arena byte budget (graceful
    /// degradation to the legacy allocator path) since start.
    [[nodiscard]] std::uint64_t hot_declines() const noexcept {
        return hot_declines_.load(std::memory_order_relaxed);
    }
    /// Memoization-cache entries shed under overload since start.
    [[nodiscard]] std::uint64_t cache_shed_entries() const noexcept {
        return cache_shed_entries_.load(std::memory_order_relaxed);
    }

    /// Cache snapshot/restore observability (also exported to
    /// Prometheus, /statusz and the stats endpoint).
    struct snapshot_stats {
        std::uint64_t writes = 0;           ///< successful writes
        std::uint64_t write_failures = 0;   ///< failed write attempts
        std::uint64_t restores = 0;         ///< successful restores
        std::uint64_t restore_failures = 0; ///< counted cold starts
        std::uint64_t restored_entries = 0; ///< entries loaded at boot
        std::uint64_t last_entries = 0;     ///< entries in last write
        std::uint64_t last_bytes = 0;       ///< bytes in last write
        double last_write_seconds = 0.0;
        double last_restore_seconds = 0.0;
        /// Seconds since the last successful write; negative when no
        /// snapshot has been written by this engine yet.
        double age_seconds = -1.0;
    };

    /// Atomically snapshot the memoization cache to `path` (temp file
    /// + fsync + rename; see snapshot.hpp).  Serialized against
    /// concurrent writers (periodic tick vs SIGUSR2 vs shutdown), safe
    /// against concurrent serving and overload sheds.  Never throws.
    snapshot::write_result snapshot_write(const std::string& path);

    /// Restore the cache from `path` at boot.  Strictly defensive:
    /// corruption of any kind degrades to a counted cold start (see
    /// restore_failures / silicon_cache_snapshot_restore_failures_total)
    /// and a missing file is a plain cold start.  Never throws.
    snapshot::restore_result snapshot_restore(const std::string& path);

    [[nodiscard]] snapshot_stats snapshot_info() const;

private:
    /// Cache/exec stage capture for one line, filled by result_for and
    /// folded into the stage histograms + flight record afterwards.
    struct line_probe {
        std::uint64_t cache_ns = 0;
        std::uint64_t exec_ns = 0;
        bool cache_probed = false;
        bool exec_ran = false;
        bool cache_hit = false;
    };

    /// Cached result JSON for a request (everything except `stats`).
    /// `probe` (optional) captures the cache/exec stage timings for the
    /// top-level line; sweep grid points pass nullptr.
    [[nodiscard]] std::shared_ptr<const std::string> result_for(
        const request& req, const exec::cancel_token* cancel,
        line_probe* probe = nullptr);

    /// `evaluate` with an optional cooperative deadline token threaded
    /// into the cancellable endpoints (sweep, mc_yield) plus the
    /// structural too_large budget checks.
    [[nodiscard]] json::value evaluate_impl(const request& req,
                                            const exec::cancel_token* cancel);

    /// Size-checked line dispatch shared by the single-line and batch
    /// entry points (admission against the in-flight byte budget is the
    /// caller's job — once per public entry, never per batch line).
    /// `rec` non-null = the flight recorder is enabled and the caller
    /// will append the filled record *in line order* (which is what
    /// keeps dumps byte-identical at any thread count) and fire the
    /// anomaly trigger afterwards.
    void serve_line(std::string_view line, std::string& out,
                    const std::chrono::steady_clock::time_point*
                        batch_deadline,
                    obs::flight_record* rec);

    /// Allocation-free warm-hit attempt; false = caller must run the
    /// legacy path (which owns all miss/error accounting).
    bool try_handle_line_hot(std::string_view line,
                             std::chrono::steady_clock::time_point start,
                             const std::chrono::steady_clock::time_point*
                                 batch_deadline,
                             std::string& out, obs::flight_record* rec);
    void handle_line_slow(std::string_view line,
                          std::chrono::steady_clock::time_point start,
                          const std::chrono::steady_clock::time_point*
                              batch_deadline,
                          std::string& out, obs::flight_record* rec);

    /// Shed cache shards if configured (called on overloaded rejects).
    void on_overload();

    [[nodiscard]] json::value eval_sweep(const sweep_request& q,
                                         const exec::cancel_token* cancel);
    /// SoA-kernel / typed per-lane sweep evaluation; false = target
    /// shape not eligible, use the generic per-point path.
    bool eval_sweep_fast(const sweep_request& q,
                         const std::vector<double>& xs,
                         std::vector<json::value>& ys,
                         const exec::cancel_token* cancel);
    /// Monolithic-vs-N-way split exploration over a total-area grid:
    /// SoA chiplet kernel when `sweep_kernels` is on, per-point
    /// library evaluation otherwise — bit-identical either way.
    [[nodiscard]] json::value eval_partition_explore(
        const partition_explore_request& q,
        const exec::cancel_token* cancel);
    [[nodiscard]] json::value stats_json();

    engine_config config_;
    memo_cache cache_;
    metrics_registry metrics_;
    admission_controller admission_;
    std::atomic<std::uint64_t> parse_errors_{0};
    std::atomic<std::uint64_t> dedup_hits_{0};
    std::atomic<std::uint64_t> arena_bytes_{0};
    std::atomic<std::uint64_t> deadline_exceeded_{0};
    std::atomic<std::uint64_t> hot_declines_{0};
    std::atomic<std::uint64_t> cache_shed_entries_{0};

    /// Serializes snapshot writers; the cache itself needs no global
    /// lock (shards are captured one at a time under their own locks).
    std::mutex snapshot_mutex_;
    std::atomic<std::uint64_t> snap_writes_{0};
    std::atomic<std::uint64_t> snap_write_failures_{0};
    std::atomic<std::uint64_t> snap_restores_{0};
    std::atomic<std::uint64_t> snap_restore_failures_{0};
    std::atomic<std::uint64_t> snap_restored_entries_{0};
    std::atomic<std::uint64_t> snap_last_entries_{0};
    std::atomic<std::uint64_t> snap_last_bytes_{0};
    std::atomic<std::uint64_t> snap_last_write_ns_{0};
    std::atomic<std::uint64_t> snap_last_restore_ns_{0};
    /// steady_clock ns of the last successful write; 0 = never.
    std::atomic<std::uint64_t> snap_last_write_at_ns_{0};
};

}  // namespace silicon::serve
