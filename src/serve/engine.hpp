// engine.hpp — the batched cost-query engine.
//
// The engine is the dispatcher behind `silicond`: it turns request
// lines (see request.hpp for the schema) into response lines, routing
// each endpoint into the model library — core/ (cost model, scenarios,
// Table 3), geometry/ (gross die), yield/ (model family, Monte-Carlo),
// cost/ (wafer cost) — and running batches on the src/exec thread
// pool.
//
// Three layers of speed, none of which may change a byte of output:
//
//   * Batching: `handle_batch` fans request lines across
//     exec::parallel_for with the configured `parallelism` knob
//     (0 = hardware concurrency, 1 = serial).  Every response depends
//     only on its own request line, and responses are written into
//     index-addressed slots, so the output is bit-identical at every
//     thread count — the same determinism contract as the rest of the
//     library (DESIGN.md §7/§8).
//   * Memoization: evaluated results are cached in a sharded LRU
//     (cache.hpp) keyed by the request's canonical serialization;
//     endpoints are pure functions of their canonical request, so a
//     hit returns exactly the bytes a fresh evaluation would produce.
//     Sweep grid points share the same cache as top-level requests.
//   * Parallel kernels: endpoints that are themselves parallel
//     (mc_yield) inherit the engine parallelism; nested use inside a
//     batch degrades to serial per the exec engine rules, with
//     identical results either way.
//
// Error handling: every failure — malformed JSON, schema violations,
// infeasible model inputs (die does not fit, yield underflow) — maps
// to a structured `{"ok":false,"error":{"code","message"}}` response
// on the request's own line.  `handle_line` never throws.

#pragma once

#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/request.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace silicon::serve {

struct engine_config {
    /// Batch fan-out width: 0 = hardware concurrency, 1 = serial.
    unsigned parallelism = 0;
    /// Total memoization-cache entry budget; 0 disables caching.
    std::size_t cache_capacity = 65536;
    /// Cache shard count (see memo_cache).
    std::size_t cache_shards = 16;
};

class engine {
public:
    explicit engine(engine_config config = {});

    /// Serve one request line: parse, validate, evaluate (or hit the
    /// cache) and return the response line (no trailing newline).
    /// Never throws; every failure becomes an error response.
    [[nodiscard]] std::string handle_line(std::string_view line);

    /// Serve a batch of lines on the exec pool; response i answers
    /// line i.  Output is bit-identical for every parallelism value.
    [[nodiscard]] std::vector<std::string> handle_batch(
        const std::vector<std::string>& lines);

    /// Evaluate a parsed request directly, bypassing cache, metrics
    /// and the response envelope — the reference path golden tests
    /// compare cached/batched responses against.  Throws on
    /// infeasible inputs exactly like the underlying library.
    [[nodiscard]] json::value evaluate(const request& req);

    /// Prometheus text exposition of everything observable about this
    /// engine: per-endpoint counters and latency histograms, cache
    /// totals + per-shard occupancy + hit ratio, parse errors, and the
    /// process-global obs registry (exec pool gauges).  Served by the
    /// `GET /metrics` transport op and `silicond --metrics-interval`.
    [[nodiscard]] std::string prometheus_text() const;

    [[nodiscard]] memo_cache::stats cache_stats() const {
        return cache_.snapshot();
    }
    [[nodiscard]] const metrics_registry& metrics() const noexcept {
        return metrics_;
    }
    [[nodiscard]] const engine_config& config() const noexcept {
        return config_;
    }

private:
    /// Cached result JSON for a request (everything except `stats`).
    [[nodiscard]] std::shared_ptr<const std::string> result_for(
        const request& req);

    [[nodiscard]] json::value eval_sweep(const sweep_request& q);
    [[nodiscard]] json::value stats_json();

    engine_config config_;
    memo_cache cache_;
    metrics_registry metrics_;
    std::atomic<std::uint64_t> parse_errors_{0};
};

}  // namespace silicon::serve
