#include "serve/json.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>

namespace silicon::serve::json {

// ---------------------------------------------------------------------------
// object
// ---------------------------------------------------------------------------

const value* object::find(std::string_view key) const {
    for (const member& m : members_) {
        if (m.first == key) {
            return &m.second;
        }
    }
    return nullptr;
}

value* object::find(std::string_view key) {
    for (member& m : members_) {
        if (m.first == key) {
            return &m.second;
        }
    }
    return nullptr;
}

value& object::set(std::string key, value v) {
    if (value* existing = find(key)) {
        *existing = std::move(v);
        return *existing;
    }
    members_.emplace_back(std::move(key), std::move(v));
    return members_.back().second;
}

std::size_t object::size() const noexcept { return members_.size(); }
bool object::empty() const noexcept { return members_.empty(); }

// ---------------------------------------------------------------------------
// value
// ---------------------------------------------------------------------------

bool value::is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(v_);
}
bool value::is_bool() const noexcept {
    return std::holds_alternative<bool>(v_);
}
bool value::is_number() const noexcept {
    return std::holds_alternative<double>(v_);
}
bool value::is_string() const noexcept {
    return std::holds_alternative<std::string>(v_);
}
bool value::is_array() const noexcept {
    return std::holds_alternative<array>(v_);
}
bool value::is_object() const noexcept {
    return std::holds_alternative<object>(v_);
}

namespace {

[[noreturn]] void wrong_kind(const char* wanted) {
    throw type_error(std::string{"json: value is not a "} + wanted);
}

}  // namespace

bool value::as_bool() const {
    if (const bool* b = std::get_if<bool>(&v_)) {
        return *b;
    }
    wrong_kind("bool");
}

double value::as_number() const {
    if (const double* d = std::get_if<double>(&v_)) {
        return *d;
    }
    wrong_kind("number");
}

const std::string& value::as_string() const {
    if (const std::string* s = std::get_if<std::string>(&v_)) {
        return *s;
    }
    wrong_kind("string");
}

const array& value::as_array() const {
    if (const array* a = std::get_if<array>(&v_)) {
        return *a;
    }
    wrong_kind("array");
}

array& value::as_array() {
    if (array* a = std::get_if<array>(&v_)) {
        return *a;
    }
    wrong_kind("array");
}

const object& value::as_object() const {
    if (const object* o = std::get_if<object>(&v_)) {
        return *o;
    }
    wrong_kind("object");
}

object& value::as_object() {
    if (object* o = std::get_if<object>(&v_)) {
        return *o;
    }
    wrong_kind("object");
}

bool operator==(const value& a, const value& b) {
    if (a.v_.index() != b.v_.index()) {
        return false;
    }
    if (a.is_object()) {
        // Order-insensitive member comparison (objects are unordered in
        // the JSON data model even though we preserve insertion order).
        const object& oa = a.as_object();
        const object& ob = b.as_object();
        if (oa.size() != ob.size()) {
            return false;
        }
        for (const object::member& m : oa.members()) {
            const value* other = ob.find(m.first);
            if (other == nullptr || !(m.second == *other)) {
                return false;
            }
        }
        return true;
    }
    return a.v_ == b.v_;
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

namespace {

constexpr int max_depth = 128;

class parser {
public:
    explicit parser(std::string_view text) : text_{text} {}

    value run() {
        skip_ws();
        value v = parse_value(0);
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON document");
        }
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& message) const {
        throw parse_error("json: " + message, pos_);
    }

    [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }

    [[nodiscard]] char peek() const {
        if (at_end()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    char take() {
        const char c = peek();
        ++pos_;
        return c;
    }

    void expect(char c, const char* what) {
        if (at_end() || text_[pos_] != c) {
            fail(std::string{"expected "} + what);
        }
        ++pos_;
    }

    void skip_ws() noexcept {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
                break;
            }
            ++pos_;
        }
    }

    void expect_literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) {
            fail("invalid literal");
        }
        pos_ += word.size();
    }

    value parse_value(int depth) {
        if (depth > max_depth) {
            fail("nesting too deep");
        }
        switch (peek()) {
            case '{':
                return parse_object(depth);
            case '[':
                return parse_array(depth);
            case '"':
                return value{parse_string()};
            case 't':
                expect_literal("true");
                return value{true};
            case 'f':
                expect_literal("false");
                return value{false};
            case 'n':
                expect_literal("null");
                return value{nullptr};
            default:
                return value{parse_number()};
        }
    }

    value parse_object(int depth) {
        expect('{', "'{'");
        object o;
        skip_ws();
        if (!at_end() && peek() == '}') {
            ++pos_;
            return value{std::move(o)};
        }
        for (;;) {
            skip_ws();
            if (peek() != '"') {
                fail("expected object key string");
            }
            std::string key = parse_string();
            if (o.find(key) != nullptr) {
                fail("duplicate object key '" + key + "'");
            }
            skip_ws();
            expect(':', "':'");
            skip_ws();
            o.set(std::move(key), parse_value(depth + 1));
            skip_ws();
            const char c = take();
            if (c == '}') {
                return value{std::move(o)};
            }
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}' in object");
            }
        }
    }

    value parse_array(int depth) {
        expect('[', "'['");
        array a;
        skip_ws();
        if (!at_end() && peek() == ']') {
            ++pos_;
            return value{std::move(a)};
        }
        for (;;) {
            skip_ws();
            a.push_back(parse_value(depth + 1));
            skip_ws();
            const char c = take();
            if (c == ']') {
                return value{std::move(a)};
            }
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']' in array");
            }
        }
    }

    void append_utf8(std::string& out, std::uint32_t cp) {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        }
    }

    std::uint32_t parse_hex4() {
        std::uint32_t result = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = take();
            result <<= 4;
            if (c >= '0' && c <= '9') {
                result |= static_cast<std::uint32_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                result |= static_cast<std::uint32_t>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                result |= static_cast<std::uint32_t>(c - 'A' + 10);
            } else {
                --pos_;
                fail("invalid \\u escape digit");
            }
        }
        return result;
    }

    std::string parse_string() {
        expect('"', "'\"'");
        std::string out;
        for (;;) {
            const char c = take();
            if (c == '"') {
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                --pos_;
                fail("unescaped control character in string");
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            const char esc = take();
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    std::uint32_t cp = parse_hex4();
                    if (cp >= 0xd800 && cp <= 0xdbff) {
                        // High surrogate: a low surrogate must follow.
                        if (take() != '\\' || take() != 'u') {
                            --pos_;
                            fail("unpaired UTF-16 surrogate");
                        }
                        const std::uint32_t lo = parse_hex4();
                        if (lo < 0xdc00 || lo > 0xdfff) {
                            fail("invalid low surrogate");
                        }
                        cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                    } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                        fail("unpaired UTF-16 surrogate");
                    }
                    append_utf8(out, cp);
                    break;
                }
                default:
                    --pos_;
                    fail("invalid escape character");
            }
        }
    }

    double parse_number() {
        const std::size_t start = pos_;
        if (!at_end() && text_[pos_] == '-') {
            ++pos_;
        }
        // Integer part: 0, or a non-zero digit followed by digits.
        if (at_end() || text_[pos_] < '0' || text_[pos_] > '9') {
            pos_ = start;
            fail("invalid value");
        }
        if (text_[pos_] == '0') {
            ++pos_;
            if (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') {
                fail("leading zero in number");
            }
        } else {
            while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') {
                ++pos_;
            }
        }
        if (!at_end() && text_[pos_] == '.') {
            ++pos_;
            if (at_end() || text_[pos_] < '0' || text_[pos_] > '9') {
                fail("digit required after decimal point");
            }
            while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') {
                ++pos_;
            }
        }
        if (!at_end() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (at_end() || text_[pos_] < '0' || text_[pos_] > '9') {
                fail("digit required in exponent");
            }
            while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') {
                ++pos_;
            }
        }
        double result = 0.0;
        const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                               text_.data() + pos_, result);
        (void)ptr;
        if (ec == std::errc::result_out_of_range) {
            // Keep the parser total over all grammatically valid numbers:
            // strtod's IEEE semantics (huge -> +-inf, tiny -> +-0).
            result = std::strtod(std::string{text_.substr(start, pos_ - start)}
                                     .c_str(),
                                 nullptr);
        } else if (ec != std::errc{}) {
            pos_ = start;
            fail("invalid number");
        }
        return result;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

value parse(std::string_view text) { return parser{text}.run(); }

// ---------------------------------------------------------------------------
// writers
// ---------------------------------------------------------------------------

std::string format_number(double d) {
    std::string out;
    format_number_into(d, out);
    return out;
}

void format_number_into(double d, std::string& out) {
    if (!std::isfinite(d)) {
        out += "null";
        return;
    }
    char buffer[32];
    const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof buffer, d);
    (void)ec;  // 32 bytes always suffice for shortest round-trip doubles
    out.append(buffer, static_cast<std::size_t>(ptr - buffer));
}

void write_string_into(std::string& out, std::string_view s) {
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    constexpr char hex[] = "0123456789abcdef";
                    out += "\\u00";
                    out.push_back(hex[(c >> 4) & 0xf]);
                    out.push_back(hex[c & 0xf]);
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
}

namespace {

void write_value(std::string& out, const value& v, bool sort_keys) {
    if (v.is_null()) {
        out += "null";
    } else if (v.is_bool()) {
        out += v.as_bool() ? "true" : "false";
    } else if (v.is_number()) {
        out += format_number(v.as_number());
    } else if (v.is_string()) {
        write_string_into(out, v.as_string());
    } else if (v.is_array()) {
        out.push_back('[');
        bool first = true;
        for (const value& element : v.as_array()) {
            if (!first) {
                out.push_back(',');
            }
            first = false;
            write_value(out, element, sort_keys);
        }
        out.push_back(']');
    } else {
        const object& o = v.as_object();
        std::vector<const object::member*> members;
        members.reserve(o.size());
        for (const object::member& m : o.members()) {
            members.push_back(&m);
        }
        if (sort_keys) {
            std::sort(members.begin(), members.end(),
                      [](const object::member* a, const object::member* b) {
                          return a->first < b->first;
                      });
        }
        out.push_back('{');
        bool first = true;
        for (const object::member* m : members) {
            if (!first) {
                out.push_back(',');
            }
            first = false;
            write_string_into(out, m->first);
            out.push_back(':');
            write_value(out, m->second, sort_keys);
        }
        out.push_back('}');
    }
}

}  // namespace

std::string dump(const value& v) {
    std::string out;
    write_value(out, v, /*sort_keys=*/false);
    return out;
}

std::string canonical(const value& v) {
    std::string out;
    write_value(out, v, /*sort_keys=*/true);
    return out;
}

void canonical_into(const value& v, std::string& out) {
    write_value(out, v, /*sort_keys=*/true);
}

}  // namespace silicon::serve::json
