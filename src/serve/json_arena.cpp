#include "serve/json_arena.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace silicon::serve::json {

const aview* aview::find(std::string_view key) const noexcept {
    if (kind != kind_t::object) {
        return nullptr;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
        if (members[i].key == key) {
            return &members[i].val;
        }
    }
    return nullptr;
}

namespace {

constexpr int max_depth = 128;  // must match json.cpp's parser guard

}  // namespace

// Mirrors the recursive-descent parser in json.cpp step for step: same
// grammar, same duplicate-key and depth rules, same number conversion
// (from_chars with the strtod out-of-range fallback), so both parsers
// accept the same inputs and produce bit-identical doubles and identical
// decoded strings.  Divergence here would let the hot path compute a
// canonical key for a line the legacy path rejects (or vice versa), which
// the fallback design tolerates but the equivalence test forbids.
class arena_parser_impl {
  public:
    arena_parser_impl(arena_parser& parser, std::string_view text,
                      exec::arena& a)
        : p_{parser}, text_{text}, arena_{a} {}

    const aview& run() {
        p_.value_stack_.clear();
        p_.member_stack_.clear();
        skip_ws();
        aview v = parse_value(0);
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON document");
        }
        return *arena_.make<aview>(v);
    }

  private:
    [[noreturn]] void fail(const std::string& message) const {
        throw parse_error("json: " + message, pos_);
    }

    [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }

    [[nodiscard]] char peek() const {
        if (at_end()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    char take() {
        const char c = peek();
        ++pos_;
        return c;
    }

    void expect(char c, const char* what) {
        if (at_end() || text_[pos_] != c) {
            fail(std::string{"expected "} + what);
        }
        ++pos_;
    }

    void skip_ws() noexcept {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
                break;
            }
            ++pos_;
        }
    }

    void expect_literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) {
            fail("invalid literal");
        }
        pos_ += word.size();
    }

    aview parse_value(int depth) {
        if (depth > max_depth) {
            fail("nesting too deep");
        }
        aview v;
        switch (peek()) {
            case '{':
                return parse_object(depth);
            case '[':
                return parse_array(depth);
            case '"':
                v.kind = aview::kind_t::string;
                v.string = parse_string();
                return v;
            case 't':
                expect_literal("true");
                v.kind = aview::kind_t::boolean;
                v.boolean = true;
                return v;
            case 'f':
                expect_literal("false");
                v.kind = aview::kind_t::boolean;
                v.boolean = false;
                return v;
            case 'n':
                expect_literal("null");
                return v;
            default:
                v.kind = aview::kind_t::number;
                v.number = parse_number();
                return v;
        }
    }

    aview parse_object(int depth) {
        expect('{', "'{'");
        const std::size_t mark = p_.member_stack_.size();
        skip_ws();
        if (!at_end() && peek() == '}') {
            ++pos_;
            return commit_object(mark);
        }
        for (;;) {
            skip_ws();
            if (peek() != '"') {
                fail("expected object key string");
            }
            std::string_view key = parse_string();
            for (std::size_t i = mark; i < p_.member_stack_.size(); ++i) {
                if (p_.member_stack_[i].key == key) {
                    fail("duplicate object key '" + std::string{key} + "'");
                }
            }
            skip_ws();
            expect(':', "':'");
            skip_ws();
            // The member value may itself push onto the stack; append the
            // finished pair only after it fully parses.
            aview member_value = parse_value(depth + 1);
            p_.member_stack_.push_back(amember{key, member_value});
            skip_ws();
            const char c = take();
            if (c == '}') {
                return commit_object(mark);
            }
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}' in object");
            }
        }
    }

    aview commit_object(std::size_t mark) {
        const std::size_t n = p_.member_stack_.size() - mark;
        aview v;
        v.kind = aview::kind_t::object;
        v.count = static_cast<std::uint32_t>(n);
        if (n != 0) {
            amember* dst = arena_.make_array<amember>(n);
            std::memcpy(dst, p_.member_stack_.data() + mark,
                        n * sizeof(amember));
            v.members = dst;
            p_.member_stack_.resize(mark);
        }
        return v;
    }

    aview parse_array(int depth) {
        expect('[', "'['");
        const std::size_t mark = p_.value_stack_.size();
        skip_ws();
        if (!at_end() && peek() == ']') {
            ++pos_;
            return commit_array(mark);
        }
        for (;;) {
            skip_ws();
            aview element = parse_value(depth + 1);
            p_.value_stack_.push_back(element);
            skip_ws();
            const char c = take();
            if (c == ']') {
                return commit_array(mark);
            }
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']' in array");
            }
        }
    }

    aview commit_array(std::size_t mark) {
        const std::size_t n = p_.value_stack_.size() - mark;
        aview v;
        v.kind = aview::kind_t::array;
        v.count = static_cast<std::uint32_t>(n);
        if (n != 0) {
            aview* dst = arena_.make_array<aview>(n);
            std::memcpy(dst, p_.value_stack_.data() + mark, n * sizeof(aview));
            v.elems = dst;
            p_.value_stack_.resize(mark);
        }
        return v;
    }

    static void append_utf8(char*& out, std::uint32_t cp) noexcept {
        if (cp < 0x80) {
            *out++ = static_cast<char>(cp);
        } else if (cp < 0x800) {
            *out++ = static_cast<char>(0xc0 | (cp >> 6));
            *out++ = static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            *out++ = static_cast<char>(0xe0 | (cp >> 12));
            *out++ = static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            *out++ = static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            *out++ = static_cast<char>(0xf0 | (cp >> 18));
            *out++ = static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            *out++ = static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            *out++ = static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    std::uint32_t parse_hex4() {
        std::uint32_t result = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = take();
            result <<= 4;
            if (c >= '0' && c <= '9') {
                result |= static_cast<std::uint32_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                result |= static_cast<std::uint32_t>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                result |= static_cast<std::uint32_t>(c - 'A' + 10);
            } else {
                --pos_;
                fail("invalid \\u escape digit");
            }
        }
        return result;
    }

    std::string_view parse_string() {
        expect('"', "'\"'");
        // Fast scan: most strings carry no escapes and can be viewed
        // directly into the input without copying.
        const std::size_t start = pos_;
        bool escaped = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                break;
            }
            if (c == '\\') {
                escaped = true;
                break;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
            }
            ++pos_;
        }
        if (at_end()) {
            fail("unexpected end of input");
        }
        if (!escaped) {
            const std::string_view out = text_.substr(start, pos_ - start);
            ++pos_;  // closing quote
            return out;
        }
        // Slow path: decode into the arena.  The decoded form is never
        // longer than the escaped span (\uXXXX is 6 chars for at most 4
        // UTF-8 bytes), so the remaining input length bounds the buffer.
        char* buf = static_cast<char*>(arena_.allocate(text_.size() - start, 1));
        std::memcpy(buf, text_.data() + start, pos_ - start);
        char* out = buf + (pos_ - start);
        for (;;) {
            const char c = take();
            if (c == '"') {
                return std::string_view{buf,
                                        static_cast<std::size_t>(out - buf)};
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                --pos_;
                fail("unescaped control character in string");
            }
            if (c != '\\') {
                *out++ = c;
                continue;
            }
            const char esc = take();
            switch (esc) {
                case '"': *out++ = '"'; break;
                case '\\': *out++ = '\\'; break;
                case '/': *out++ = '/'; break;
                case 'b': *out++ = '\b'; break;
                case 'f': *out++ = '\f'; break;
                case 'n': *out++ = '\n'; break;
                case 'r': *out++ = '\r'; break;
                case 't': *out++ = '\t'; break;
                case 'u': {
                    std::uint32_t cp = parse_hex4();
                    if (cp >= 0xd800 && cp <= 0xdbff) {
                        if (take() != '\\' || take() != 'u') {
                            --pos_;
                            fail("unpaired UTF-16 surrogate");
                        }
                        const std::uint32_t lo = parse_hex4();
                        if (lo < 0xdc00 || lo > 0xdfff) {
                            fail("invalid low surrogate");
                        }
                        cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                    } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                        fail("unpaired UTF-16 surrogate");
                    }
                    append_utf8(out, cp);
                    break;
                }
                default:
                    --pos_;
                    fail("invalid escape character");
            }
        }
    }

    double parse_number() {
        const std::size_t start = pos_;
        if (!at_end() && text_[pos_] == '-') {
            ++pos_;
        }
        if (at_end() || text_[pos_] < '0' || text_[pos_] > '9') {
            pos_ = start;
            fail("invalid value");
        }
        if (text_[pos_] == '0') {
            ++pos_;
            if (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') {
                fail("leading zero in number");
            }
        } else {
            while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') {
                ++pos_;
            }
        }
        if (!at_end() && text_[pos_] == '.') {
            ++pos_;
            if (at_end() || text_[pos_] < '0' || text_[pos_] > '9') {
                fail("digit required after decimal point");
            }
            while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') {
                ++pos_;
            }
        }
        if (!at_end() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (at_end() || text_[pos_] < '0' || text_[pos_] > '9') {
                fail("digit required in exponent");
            }
            while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') {
                ++pos_;
            }
        }
        double result = 0.0;
        const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                               text_.data() + pos_, result);
        (void)ptr;
        if (ec == std::errc::result_out_of_range) {
            // Same IEEE semantics as the legacy parser (huge -> +-inf,
            // tiny -> +-0); a stack buffer keeps the common case of this
            // rare path allocation-free.
            const std::size_t n = pos_ - start;
            char stack_buf[256];
            if (n < sizeof stack_buf) {
                std::memcpy(stack_buf, text_.data() + start, n);
                stack_buf[n] = '\0';
                result = std::strtod(stack_buf, nullptr);
            } else {
                result = std::strtod(
                    std::string{text_.substr(start, n)}.c_str(), nullptr);
            }
        } else if (ec != std::errc{}) {
            pos_ = start;
            fail("invalid number");
        }
        return result;
    }

    arena_parser& p_;
    std::string_view text_;
    exec::arena& arena_;
    std::size_t pos_ = 0;
};

const aview& arena_parser::parse(std::string_view text, exec::arena& a) {
    return arena_parser_impl{*this, text, a}.run();
}

namespace {

void dump_view(const aview& v, std::string& out) {
    switch (v.kind) {
        case aview::kind_t::null:
            out += "null";
            break;
        case aview::kind_t::boolean:
            out += v.boolean ? "true" : "false";
            break;
        case aview::kind_t::number:
            format_number_into(v.number, out);
            break;
        case aview::kind_t::string:
            write_string_into(out, v.string);
            break;
        case aview::kind_t::array:
            out.push_back('[');
            for (std::uint32_t i = 0; i < v.count; ++i) {
                if (i != 0) {
                    out.push_back(',');
                }
                dump_view(v.elems[i], out);
            }
            out.push_back(']');
            break;
        case aview::kind_t::object:
            out.push_back('{');
            for (std::uint32_t i = 0; i < v.count; ++i) {
                if (i != 0) {
                    out.push_back(',');
                }
                write_string_into(out, v.members[i].key);
                out.push_back(':');
                dump_view(v.members[i].val, out);
            }
            out.push_back('}');
            break;
    }
}

}  // namespace

void dump_into(const aview& v, std::string& out) { dump_view(v, out); }

}  // namespace silicon::serve::json
