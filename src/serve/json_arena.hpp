// json_arena.hpp — arena-backed JSON parsing for the serve hot path.
//
// `json::parse` builds a `json::value` tree out of heap-owned strings and
// vectors, which is exactly the per-request allocation churn the batched
// pipeline wants to avoid.  This header provides a read-only *view* DOM
// (`aview`) whose nodes, arrays, member tables and decoded strings all live
// in an `exec::arena`, plus a reusable `arena_parser` whose scratch stacks
// persist across lines.  After a few warm-up lines a parse performs zero
// heap allocations.
//
// Contract: `arena_parser::parse` accepts exactly the same inputs as
// `json::parse` (same grammar, same duplicate-key and depth rules) and
// yields identical values — the same doubles bit-for-bit (shared
// from_chars/strtod path) and the same decoded strings — so the hot path
// can canonicalize from an `aview` and hit the same cache entries the
// legacy path would.  Equivalence is pinned by tests/serve/test_hotpath.cpp.
//
// Lifetime: returned views point into the arena and, for escape-free
// strings, into the input text; both must outlive the view.  `aview` is
// trivially destructible by design (the arena never runs destructors).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exec/arena.hpp"
#include "serve/json.hpp"

namespace silicon::serve::json {

struct amember;

/// A node of the arena-backed JSON view.
struct aview {
    enum class kind_t : unsigned char {
        null,
        boolean,
        number,
        string,
        array,
        object,
    };

    kind_t kind = kind_t::null;
    bool boolean = false;
    double number = 0.0;
    std::string_view string{};       // kind string: decoded bytes
    const aview* elems = nullptr;    // kind array: `count` contiguous nodes
    const amember* members = nullptr;  // kind object: `count` members
    std::uint32_t count = 0;

    [[nodiscard]] bool is_null() const noexcept {
        return kind == kind_t::null;
    }
    [[nodiscard]] bool is_bool() const noexcept {
        return kind == kind_t::boolean;
    }
    [[nodiscard]] bool is_number() const noexcept {
        return kind == kind_t::number;
    }
    [[nodiscard]] bool is_string() const noexcept {
        return kind == kind_t::string;
    }
    [[nodiscard]] bool is_array() const noexcept {
        return kind == kind_t::array;
    }
    [[nodiscard]] bool is_object() const noexcept {
        return kind == kind_t::object;
    }

    /// Object member lookup (linear scan, document order); nullptr when
    /// absent or when this node is not an object.
    [[nodiscard]] const aview* find(std::string_view key) const noexcept;
};

/// One object member: key in document order, value by… value (nodes are
/// small and trivially copyable).
struct amember {
    std::string_view key;
    aview val;
};

/// Reusable parser; keep one per thread and call `parse` per line.  The
/// internal scratch stacks retain capacity across calls.
class arena_parser {
  public:
    /// Parses one complete JSON document into `a`.  Throws
    /// `json::parse_error` exactly where `json::parse` would.
    const aview& parse(std::string_view text, exec::arena& a);

  private:
    friend class arena_parser_impl;
    std::vector<aview> value_stack_;
    std::vector<amember> member_stack_;
};

/// Compact serialization of a view, object members in document order —
/// byte-identical to `json::dump(json::parse(text))` for the document the
/// view was parsed from.  Appends to `out` (no clear), allocating only if
/// `out` must grow.
void dump_into(const aview& v, std::string& out);

}  // namespace silicon::serve::json
