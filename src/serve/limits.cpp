#include "serve/limits.hpp"

#include <charconv>

namespace silicon::serve {

std::string_view to_string(reject_reason reason) {
    switch (reason) {
        case reject_reason::line_too_large: return "line_too_large";
        case reject_reason::batch_too_large: return "batch_too_large";
        case reject_reason::sweep_too_large: return "sweep_too_large";
        case reject_reason::mc_too_large: return "mc_too_large";
        case reject_reason::overloaded: return "overloaded";
        case reject_reason::explore_too_large: return "explore_too_large";
    }
    return "unknown";
}

void admission_controller::ticket::release() noexcept {
    if (owner_ != nullptr) {
        owner_->inflight_bytes_.fetch_sub(bytes_,
                                          std::memory_order_relaxed);
        owner_ = nullptr;
        bytes_ = 0;
    }
}

admission_controller::ticket admission_controller::admit(
    std::size_t bytes, std::size_t budget, std::uint64_t rejected_lines) {
    if (budget == 0) {
        return ticket{this, 0};  // unlimited: admitted, ledger untouched
    }
    const std::uint64_t before =
        inflight_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    if (before != 0 && before + bytes > budget) {
        // Over budget with other work in flight: roll back and refuse.
        // An oversized-but-alone request is admitted (before == 0) so a
        // budget smaller than one batch still makes progress.
        inflight_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
        note_rejection(reject_reason::overloaded, rejected_lines);
        return ticket{};
    }
    return ticket{this, bytes};
}

std::uint64_t admission_controller::rejected_total() const noexcept {
    std::uint64_t total = 0;
    for (const std::atomic<std::uint64_t>& r : rejected_) {
        total += r.load(std::memory_order_relaxed);
    }
    return total;
}

namespace {

/// Appends a fixed-shape error envelope without heap allocation (the
/// caller's buffer capacity is reused; numbers go through to_chars).
/// `trace_raw` is already-escaped string bytes from scan_trace_id, so
/// it splices verbatim between quotes; empty emits the historical
/// trace-free bytes.
void append_reject(std::string_view code, std::string_view message,
                   std::size_t limit, bool with_limit,
                   std::string_view trace_raw, std::string& out) {
    out += '{';
    if (!trace_raw.empty()) {
        out += "\"trace_id\":\"";
        out += trace_raw;
        out += "\",";
    }
    out += "\"ok\":false,\"error\":{\"code\":\"";
    out += code;
    out += "\",\"message\":\"";
    out += message;
    if (with_limit) {
        char digits[24];
        const auto [end, ec] = std::to_chars(
            digits, digits + sizeof digits, static_cast<std::uint64_t>(limit));
        out.append(digits, static_cast<std::size_t>(end - digits));
    }
    out += "\"}}";
}

}  // namespace

void append_line_too_large(std::size_t limit, std::string& out) {
    append_reject("too_large", "line exceeds max_line_bytes ", limit, true,
                  {}, out);
}

void append_batch_too_large(std::size_t limit, std::string_view trace_raw,
                            std::string& out) {
    append_reject("too_large", "batch exceeds max_batch_lines ", limit, true,
                  trace_raw, out);
}

void append_overloaded(std::string_view trace_raw, std::string& out) {
    append_reject("overloaded", "server over byte budget, retry", 0, false,
                  trace_raw, out);
}

std::string_view scan_trace_id(std::string_view line) noexcept {
    // Bounded: envelope-level fields live at the front of a request
    // line, and shed paths must stay O(small) even for huge lines.
    constexpr std::size_t scan_cap = 4096;
    constexpr std::string_view key = "\"trace_id\"";
    const std::string_view window =
        line.substr(0, line.size() < scan_cap ? line.size() : scan_cap);
    const std::size_t at = window.find(key);
    if (at == std::string_view::npos) {
        return {};
    }
    const auto is_ws = [](char c) noexcept {
        return c == ' ' || c == '\t' || c == '\n' || c == '\r';
    };
    std::size_t i = at + key.size();
    while (i < window.size() && is_ws(window[i])) {
        ++i;
    }
    if (i >= window.size() || window[i] != ':') {
        return {};
    }
    ++i;
    while (i < window.size() && is_ws(window[i])) {
        ++i;
    }
    if (i >= window.size() || window[i] != '"') {
        return {};
    }
    ++i;
    const std::size_t begin = i;
    const auto is_hex = [](char c) noexcept {
        return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
               (c >= 'A' && c <= 'F');
    };
    while (i < window.size()) {
        const unsigned char c = static_cast<unsigned char>(window[i]);
        if (c == '"') {
            return window.substr(begin, i - begin);
        }
        if (c < 0x20) {
            return {};  // raw control byte: not a valid JSON string
        }
        if (c == '\\') {
            if (i + 1 >= window.size()) {
                return {};
            }
            const char e = window[i + 1];
            if (e == 'u') {
                if (i + 5 >= window.size() || !is_hex(window[i + 2]) ||
                    !is_hex(window[i + 3]) || !is_hex(window[i + 4]) ||
                    !is_hex(window[i + 5])) {
                    return {};
                }
                i += 6;
            } else if (e == '"' || e == '\\' || e == '/' || e == 'b' ||
                       e == 'f' || e == 'n' || e == 'r' || e == 't') {
                i += 2;
            } else {
                return {};
            }
        } else {
            ++i;
        }
    }
    return {};  // unterminated within the scan window
}

}  // namespace silicon::serve
