#include "serve/limits.hpp"

#include <charconv>

namespace silicon::serve {

std::string_view to_string(reject_reason reason) {
    switch (reason) {
        case reject_reason::line_too_large: return "line_too_large";
        case reject_reason::batch_too_large: return "batch_too_large";
        case reject_reason::sweep_too_large: return "sweep_too_large";
        case reject_reason::mc_too_large: return "mc_too_large";
        case reject_reason::overloaded: return "overloaded";
        case reject_reason::explore_too_large: return "explore_too_large";
    }
    return "unknown";
}

void admission_controller::ticket::release() noexcept {
    if (owner_ != nullptr) {
        owner_->inflight_bytes_.fetch_sub(bytes_,
                                          std::memory_order_relaxed);
        owner_ = nullptr;
        bytes_ = 0;
    }
}

admission_controller::ticket admission_controller::admit(
    std::size_t bytes, std::size_t budget, std::uint64_t rejected_lines) {
    if (budget == 0) {
        return ticket{this, 0};  // unlimited: admitted, ledger untouched
    }
    const std::uint64_t before =
        inflight_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    if (before != 0 && before + bytes > budget) {
        // Over budget with other work in flight: roll back and refuse.
        // An oversized-but-alone request is admitted (before == 0) so a
        // budget smaller than one batch still makes progress.
        inflight_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
        note_rejection(reject_reason::overloaded, rejected_lines);
        return ticket{};
    }
    return ticket{this, bytes};
}

std::uint64_t admission_controller::rejected_total() const noexcept {
    std::uint64_t total = 0;
    for (const std::atomic<std::uint64_t>& r : rejected_) {
        total += r.load(std::memory_order_relaxed);
    }
    return total;
}

namespace {

/// Appends a fixed-shape error envelope without heap allocation (the
/// caller's buffer capacity is reused; numbers go through to_chars).
void append_reject(std::string_view code, std::string_view message,
                   std::size_t limit, bool with_limit, std::string& out) {
    out += "{\"ok\":false,\"error\":{\"code\":\"";
    out += code;
    out += "\",\"message\":\"";
    out += message;
    if (with_limit) {
        char digits[24];
        const auto [end, ec] = std::to_chars(
            digits, digits + sizeof digits, static_cast<std::uint64_t>(limit));
        out.append(digits, static_cast<std::size_t>(end - digits));
    }
    out += "\"}}";
}

}  // namespace

void append_line_too_large(std::size_t limit, std::string& out) {
    append_reject("too_large", "line exceeds max_line_bytes ", limit, true,
                  out);
}

void append_batch_too_large(std::size_t limit, std::string& out) {
    append_reject("too_large", "batch exceeds max_batch_lines ", limit, true,
                  out);
}

void append_overloaded(std::string& out) {
    append_reject("overloaded", "server over byte budget, retry", 0, false,
                  out);
}

}  // namespace silicon::serve
