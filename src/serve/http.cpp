#include "serve/http.hpp"

#include <algorithm>
#include <cctype>

namespace silicon::serve::http {

namespace {

[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept {
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

/// RFC 7230 token characters (header names, methods).
[[nodiscard]] bool is_token_char(char c) noexcept {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
        return true;
    }
    switch (c) {
        case '!': case '#': case '$': case '%': case '&': case '\'':
        case '*': case '+': case '-': case '.': case '^': case '_':
        case '`': case '|': case '~':
            return true;
        default:
            return false;
    }
}

[[nodiscard]] bool is_token(std::string_view s) noexcept {
    return !s.empty() &&
           std::all_of(s.begin(), s.end(),
                       [](char c) { return is_token_char(c); });
}

[[nodiscard]] std::string_view trim_ows(std::string_view s) noexcept {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
        s.remove_prefix(1);
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
        s.remove_suffix(1);
    }
    return s;
}

/// Case-insensitive comma-list membership test (Connection header).
[[nodiscard]] bool list_contains(std::string_view list,
                                 std::string_view token) noexcept {
    while (!list.empty()) {
        const std::size_t comma = list.find(',');
        const std::string_view item =
            trim_ows(comma == std::string_view::npos ? list
                                                     : list.substr(0, comma));
        if (iequals(item, token)) {
            return true;
        }
        if (comma == std::string_view::npos) {
            break;
        }
        list.remove_prefix(comma + 1);
    }
    return false;
}

}  // namespace

const std::string* request::header(std::string_view name) const {
    for (const auto& [key, value] : headers) {
        if (iequals(key, name)) {
            return &value;
        }
    }
    return nullptr;
}

bool is_request_line(std::string_view line) noexcept {
    // METHOD SP target SP HTTP/1.x — the version suffix is what keeps a
    // JSON request from ever matching.
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string_view::npos || sp1 == 0) {
        return false;
    }
    if (!is_token(line.substr(0, sp1))) {
        return false;
    }
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos || sp2 == sp1 + 1) {
        return false;
    }
    const std::string_view version = line.substr(sp2 + 1);
    return version.size() == 8 && version.rfind("HTTP/", 0) == 0;
}

void parser::fail(int status_code, std::string_view reason) {
    state_ = status::error;
    error_status_ = status_code;
    error_reason_.assign(reason.data(), reason.size());
}

void parser::reset() {
    state_ = status::need_more;
    phase_ = phase::headers;
    buffer_.clear();
    scanned_ = 0;
    content_length_ = 0;
    saw_content_length_ = false;
    error_status_ = 0;
    error_reason_.clear();
    request_ = request{};
}

std::size_t parser::consume(std::string_view data) {
    if (state_ != status::need_more) {
        return 0;  // caller must reset() first
    }
    if (phase_ == phase::headers) {
        buffer_.append(data.data(), data.size());
        // Find the end of the header block ("\r\n\r\n", tolerating bare
        // "\n\n").  Resume the scan one byte back so a terminator split
        // across feeds is still found.
        std::size_t head_end = std::string_view::npos;
        std::size_t body_start = 0;
        const std::size_t from = scanned_ > 3 ? scanned_ - 3 : 0;
        for (std::size_t i = from; i < buffer_.size(); ++i) {
            if (buffer_[i] != '\n') {
                continue;
            }
            if (i + 1 < buffer_.size() && buffer_[i + 1] == '\n') {
                head_end = i + 1;
                body_start = i + 2;
                break;
            }
            if (i + 2 < buffer_.size() && buffer_[i + 1] == '\r' &&
                buffer_[i + 2] == '\n') {
                head_end = i + 2;
                body_start = i + 3;
                break;
            }
        }
        if (head_end == std::string_view::npos) {
            scanned_ = buffer_.size();
            if (buffer_.size() > config_.max_header_bytes) {
                fail(431, "request header block too large");
            }
            return data.size();
        }
        if (head_end > config_.max_header_bytes) {
            fail(431, "request header block too large");
            return data.size();
        }
        const std::size_t surplus = buffer_.size() - body_start;
        const std::size_t consumed = data.size() - surplus;
        parse_head(std::string_view{buffer_}.substr(0, head_end));
        if (state_ == status::error) {
            return data.size();  // stream is desynced; caller closes
        }
        buffer_.clear();
        scanned_ = 0;
        if (content_length_ == 0) {
            finalize();
            return consumed;
        }
        phase_ = phase::body;
        // Fall through: the surplus bytes belong to the body.
        data = data.substr(consumed);
        return consumed + consume_body_bytes(data);
    }
    return consume_body_bytes(data);
}

/// Body phase: take up to the remaining Content-Length bytes.
std::size_t parser::consume_body_bytes(std::string_view data) {
    const std::size_t need = content_length_ - request_.body.size();
    const std::size_t take = std::min(need, data.size());
    request_.body.append(data.data(), take);
    if (request_.body.size() == content_length_) {
        finalize();
    }
    return take;
}

void parser::parse_head(std::string_view head) {
    bool first = true;
    while (!head.empty()) {
        std::size_t nl = head.find('\n');
        std::string_view line =
            nl == std::string_view::npos ? head : head.substr(0, nl);
        head = nl == std::string_view::npos ? std::string_view{}
                                            : head.substr(nl + 1);
        if (!line.empty() && line.back() == '\r') {
            line.remove_suffix(1);
        }
        if (line.empty()) {
            break;  // blank line ends the header block
        }
        if (first) {
            if (!parse_request_line(line)) {
                return;
            }
            first = false;
        } else if (!parse_header_line(line)) {
            return;
        }
    }
    if (first) {
        fail(400, "empty request");
    }
}

bool parser::parse_request_line(std::string_view line) {
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        line.find(' ', sp2 + 1) != std::string_view::npos) {
        fail(400, "malformed request line");
        return false;
    }
    const std::string_view method = line.substr(0, sp1);
    const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string_view version = line.substr(sp2 + 1);
    if (!is_token(method) || target.empty()) {
        fail(400, "malformed request line");
        return false;
    }
    if (version == "HTTP/1.1") {
        request_.minor_version = 1;
    } else if (version == "HTTP/1.0") {
        request_.minor_version = 0;
    } else if (version.rfind("HTTP/", 0) == 0 && version.size() >= 6) {
        fail(505, "HTTP version not supported");
        return false;
    } else {
        fail(400, "malformed request line");
        return false;
    }
    request_.method.assign(method.data(), method.size());
    request_.target.assign(target.data(), target.size());
    return true;
}

bool parser::parse_header_line(std::string_view line) {
    if (line.front() == ' ' || line.front() == '\t') {
        // obs-fold: a folded continuation of the previous header.  A
        // classic smuggling vector; RFC 7230 §3.2.4 says reject.
        fail(400, "header folding rejected");
        return false;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
        fail(400, "header line lacks ':'");
        return false;
    }
    const std::string_view name = line.substr(0, colon);
    const std::string_view value = trim_ows(line.substr(colon + 1));
    if (!is_token(name)) {
        // Covers empty names and whitespace before the colon (another
        // smuggling vector per RFC 7230 §3.2.4).
        fail(400, "malformed header name");
        return false;
    }
    if (iequals(name, "Content-Length")) {
        if (saw_content_length_) {
            // Even agreeing duplicates are rejected: two sources of
            // truth for the body length is how desyncs start.
            fail(400, "duplicate Content-Length");
            return false;
        }
        if (value.empty() || value.size() > 19 ||
            !std::all_of(value.begin(), value.end(), [](char c) {
                return c >= '0' && c <= '9';
            })) {
            fail(400, "malformed Content-Length");
            return false;
        }
        std::size_t n = 0;
        for (const char c : value) {
            n = n * 10 + static_cast<std::size_t>(c - '0');
        }
        if (n > config_.max_body_bytes) {
            fail(413, "body exceeds max_body_bytes");
            return false;
        }
        saw_content_length_ = true;
        content_length_ = n;
    } else if (iequals(name, "Transfer-Encoding")) {
        fail(501, "Transfer-Encoding not supported");
        return false;
    }
    request_.headers.emplace_back(std::string{name}, std::string{value});
    return true;
}

void parser::finalize() {
    bool keep_alive = request_.minor_version >= 1;
    if (const std::string* connection = request_.header("Connection")) {
        if (list_contains(*connection, "close")) {
            keep_alive = false;
        } else if (list_contains(*connection, "keep-alive")) {
            keep_alive = true;
        }
    }
    request_.keep_alive = keep_alive;
    state_ = status::complete;
}

std::string simple_response(int status_code, std::string_view reason,
                            std::string_view content_type,
                            std::string_view body, bool keep_alive,
                            bool head_only) {
    std::string out = "HTTP/1.1 ";
    out += std::to_string(status_code);
    out += ' ';
    out += reason;
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: ";
    out += keep_alive ? "keep-alive" : "close";
    out += "\r\n\r\n";
    if (!head_only) {
        out += body;
    }
    return out;
}

}  // namespace silicon::serve::http
