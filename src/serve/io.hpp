// io.hpp — EINTR-safe stream I/O and bounded line framing for silicond.
//
// The JSONL transport has two classic robustness holes this module
// closes in one testable place:
//
//   * Partial/interrupted writes.  `write(2)` may return short or fail
//     with EINTR (signal delivery without SA_RESTART — exactly what our
//     SIGTERM handler does); treating either as fatal drops replies.
//     `write_all` retries both against a pluggable `write_fn`, so the
//     retry logic is unit-testable with shims and fault-injectable
//     without a real socket.
//
//   * Unbounded line buffering.  A client that never sends a newline
//     used to grow the per-connection std::string without limit.
//     `line_splitter` frames incoming bytes into lines under a byte
//     budget: an over-budget line is *discarded* (bytes dropped until
//     its terminating newline) and surfaced once as an oversized event,
//     so the transport can answer a `too_large` envelope instead of
//     OOMing.  Completed in-budget lines queued before the oversized
//     one are still delivered first — replies stay in request order.
//
// Framing matches the previous transport exactly for in-budget input:
// lines split on '\n', a single trailing '\r' stripped (CRLF
// tolerance), final unterminated line delivered by `finish()`.

#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

namespace silicon::serve::io {

/// One write attempt: returns bytes written (> 0), 0/negative on error.
/// `errno` is consulted for EINTR when the result is negative.
using write_fn = std::function<long(const char* data, std::size_t size)>;

/// Write all of `data`, retrying short writes and EINTR.  Returns false
/// on any other error (connection dead).  Never throws.  Assumes a
/// *blocking* write_fn: EAGAIN is treated as fatal here, because a
/// non-blocking sink would busy-spin — non-blocking callers use
/// `write_some_fd` (below) and park the rest behind poll/epoll.
bool write_all(std::string_view data, const write_fn& write);

/// EINTR-safe `write_all` over a file descriptor (uses send with
/// MSG_NOSIGNAL when `is_socket`, plain write otherwise, so a dead peer
/// yields EPIPE instead of killing the process with SIGPIPE).
///
/// Safe on non-blocking fds too: EAGAIN/EWOULDBLOCK parks in poll(2)
/// until the fd is writable instead of reporting the peer dead (the
/// PR 5 retry loop assumed blocking sockets and dropped the connection
/// on the first full socket buffer — regression-tested with a tiny
/// SO_SNDBUF in tests/serve/test_event_loop.cpp).
bool write_all_fd(int fd, std::string_view data, bool is_socket);

/// Result of one best-effort write pass on a (possibly non-blocking)
/// fd: `written` bytes left the process; `would_block` reports a clean
/// EAGAIN/EWOULDBLOCK stop (caller re-arms for writability); `dead`
/// reports a real error (EPIPE, ECONNRESET, ...).  At most one of
/// would_block/dead is set.
struct write_result {
    std::size_t written = 0;
    bool would_block = false;
    bool dead = false;
};

/// Write as much of `data` as the fd accepts without blocking: retries
/// EINTR, stops on EAGAIN/EWOULDBLOCK, never busy-waits.  Honors the
/// `silicond.write` fault sites (eintr / short_write) exactly like
/// `write_all_fd`, so the chaos switchboard covers the event-loop
/// write queue too.
[[nodiscard]] write_result write_some_fd(int fd, std::string_view data,
                                         bool is_socket);

/// Incremental newline framer with a per-line byte budget.
class line_splitter {
public:
    /// `max_line_bytes` = 0 means unbounded (legacy behavior).
    explicit line_splitter(std::size_t max_line_bytes = 0)
        : max_line_bytes_{max_line_bytes} {}

    /// Feed a chunk of received bytes.  For each framed event, calls
    /// `on_line(line, oversized)` in arrival order: `oversized` false
    /// delivers a complete in-budget line ('\n' removed, one trailing
    /// '\r' stripped); `oversized` true reports a line whose byte count
    /// exceeded the budget (its content is dropped, the event fires
    /// once per offending line, at the position the line occupied).
    void feed(std::string_view chunk,
              const std::function<void(std::string_view line, bool oversized)>&
                  on_line);

    /// Like `feed`, but the callback returns false to stop framing: the
    /// bytes after that event's newline are left unconsumed and the
    /// number of consumed `chunk` bytes is returned.  The event-loop
    /// connection uses this to hand the rest of the stream to the HTTP
    /// parser when a line turns out to be an HTTP request line.
    std::size_t feed_some(
        std::string_view chunk,
        const std::function<bool(std::string_view line, bool oversized)>&
            on_line);

    /// Deliver the final unterminated line, if any (end of stream).
    void finish(const std::function<void(std::string_view line,
                                         bool oversized)>& on_line);

    /// Bytes currently buffered for the in-progress line.
    [[nodiscard]] std::size_t buffered_bytes() const noexcept {
        return buffer_.size();
    }

private:
    std::size_t max_line_bytes_;
    std::string buffer_;
    bool discarding_ = false;  ///< dropping bytes until the next '\n'
};

}  // namespace silicon::serve::io
