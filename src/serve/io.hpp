// io.hpp — EINTR-safe stream I/O and bounded line framing for silicond.
//
// The JSONL transport has two classic robustness holes this module
// closes in one testable place:
//
//   * Partial/interrupted writes.  `write(2)` may return short or fail
//     with EINTR (signal delivery without SA_RESTART — exactly what our
//     SIGTERM handler does); treating either as fatal drops replies.
//     `write_all` retries both against a pluggable `write_fn`, so the
//     retry logic is unit-testable with shims and fault-injectable
//     without a real socket.
//
//   * Unbounded line buffering.  A client that never sends a newline
//     used to grow the per-connection std::string without limit.
//     `line_splitter` frames incoming bytes into lines under a byte
//     budget: an over-budget line is *discarded* (bytes dropped until
//     its terminating newline) and surfaced once as an oversized event,
//     so the transport can answer a `too_large` envelope instead of
//     OOMing.  Completed in-budget lines queued before the oversized
//     one are still delivered first — replies stay in request order.
//
// Framing matches the previous transport exactly for in-budget input:
// lines split on '\n', a single trailing '\r' stripped (CRLF
// tolerance), final unterminated line delivered by `finish()`.

#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

namespace silicon::serve::io {

/// One write attempt: returns bytes written (> 0), 0/negative on error.
/// `errno` is consulted for EINTR when the result is negative.
using write_fn = std::function<long(const char* data, std::size_t size)>;

/// Write all of `data`, retrying short writes and EINTR.  Returns false
/// on any other error (connection dead).  Never throws.
bool write_all(std::string_view data, const write_fn& write);

/// EINTR-safe `write_all` over a file descriptor (uses send with
/// MSG_NOSIGNAL when `is_socket`, plain write otherwise, so a dead peer
/// yields EPIPE instead of killing the process with SIGPIPE).
bool write_all_fd(int fd, std::string_view data, bool is_socket);

/// Incremental newline framer with a per-line byte budget.
class line_splitter {
public:
    /// `max_line_bytes` = 0 means unbounded (legacy behavior).
    explicit line_splitter(std::size_t max_line_bytes = 0)
        : max_line_bytes_{max_line_bytes} {}

    /// Feed a chunk of received bytes.  For each framed event, calls
    /// `on_line(line, oversized)` in arrival order: `oversized` false
    /// delivers a complete in-budget line ('\n' removed, one trailing
    /// '\r' stripped); `oversized` true reports a line whose byte count
    /// exceeded the budget (its content is dropped, the event fires
    /// once per offending line, at the position the line occupied).
    void feed(std::string_view chunk,
              const std::function<void(std::string_view line, bool oversized)>&
                  on_line);

    /// Deliver the final unterminated line, if any (end of stream).
    void finish(const std::function<void(std::string_view line,
                                         bool oversized)>& on_line);

    /// Bytes currently buffered for the in-progress line.
    [[nodiscard]] std::size_t buffered_bytes() const noexcept {
        return buffer_.size();
    }

private:
    std::size_t max_line_bytes_;
    std::string buffer_;
    bool discarding_ = false;  ///< dropping bytes until the next '\n'
};

}  // namespace silicon::serve::io
