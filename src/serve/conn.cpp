#include "serve/conn.hpp"

#include "serve/faults.hpp"

#include <cerrno>
#include <unistd.h>

namespace silicon::serve {

namespace {

[[nodiscard]] std::string_view reason_phrase(int status_code) {
    switch (status_code) {
        case 200: return "OK";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 413: return "Payload Too Large";
        case 431: return "Request Header Fields Too Large";
        case 501: return "Not Implemented";
        case 503: return "Service Unavailable";
        case 505: return "HTTP Version Not Supported";
        default:  return "Error";
    }
}

[[nodiscard]] bool is_legacy_metrics_line(std::string_view line) noexcept {
    return line.rfind("GET /metrics", 0) == 0;
}

}  // namespace

conn_shared::conn_shared(engine& engine_ref, conn_config cfg)
    : eng{engine_ref},
      config{cfg},
      flushes{obs::metrics_registry::global().get_counter(
          "silicond_flushes_total",
          "Gathered response flushes written to the transport")},
      flushed_bytes{obs::metrics_registry::global().get_counter(
          "silicond_flushed_bytes_total",
          "Response bytes written through gathered flushes")},
      oversized_lines{obs::metrics_registry::global().get_counter(
          "silicond_oversized_lines_total",
          "Transport lines rejected by the max-line-bytes bound")},
      http_requests{obs::metrics_registry::global().get_counter(
          "silicond_http_requests_total",
          "HTTP/1.x requests parsed on the multiplexed port")},
      queue_overflow_drops{obs::metrics_registry::global().get_counter(
          "silicond_queue_overflow_drops_total",
          "Connections dropped because the response-queue byte budget "
          "refused their reply")},
      queue_bytes_gauge{obs::metrics_registry::global().get_gauge(
          "silicond_write_queue_bytes",
          "Response bytes buffered across all connections")} {}

conn::conn(int fd, conn_shared& shared)
    : fd_{fd},
      shared_{shared},
      splitter_{shared.config.max_line_bytes},
      http_{shared.config.http} {
    lines_.reserve(shared_.config.batch < 256 ? shared_.config.batch : 256);
    shared_.open_conns.fetch_add(1, std::memory_order_relaxed);
}

conn::~conn() {
    shared_.open_conns.fetch_sub(1, std::memory_order_relaxed);
    set_paused(false);
    if (queued_bytes_ != 0) {
        shared_.queued_bytes.fetch_sub(queued_bytes_,
                                       std::memory_order_relaxed);
        shared_.queue_bytes_gauge.add(
            -static_cast<double>(queued_bytes_));
    }
    ::close(fd_);
}

void conn::set_paused(bool paused) {
    if (paused == paused_) {
        return;
    }
    paused_ = paused;
    if (paused) {
        shared_.paused_conns.fetch_add(1, std::memory_order_relaxed);
    } else {
        shared_.paused_conns.fetch_sub(1, std::memory_order_relaxed);
    }
}

void conn::on_readable() {
    char chunk[16384];
    while (wants_read()) {
        if (faults::enabled() && faults::take_eintr("silicond.read")) {
            // Injected EINTR: with level-triggered epoll the readable
            // event re-fires on the next wait, which is the retry.
            break;
        }
        const ssize_t got = ::read(fd_, chunk, sizeof chunk);
        if (got < 0) {
            if (errno == EINTR) {
                continue;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                break;
            }
            dead_ = true;
            return;
        }
        if (got == 0) {
            // Peer half-closed (or closed).  A torn final line is still
            // a line: answer it, then flush and close — the write side
            // may outlive the read side (shutdown(SHUT_WR) clients).
            eof_seen_ = true;
            if (mode_ == mode::jsonl) {
                splitter_.finish([this](std::string_view line,
                                        bool oversized) {
                    (void)on_jsonl_line(line, oversized);
                });
            }
            flush_pending_batch();
            close_after_flush_ = true;
            break;
        }
        consume({chunk, static_cast<std::size_t>(got)});
        if (dead_) {
            return;
        }
        // Answer everything complete in this chunk: a client that sends
        // one request and waits must not stall behind the batch bound.
        flush_pending_batch();
        if (static_cast<std::size_t>(got) < sizeof chunk) {
            break;  // socket drained (level-triggered re-arms otherwise)
        }
    }
    on_writable();
}

void conn::consume(std::string_view data) {
    while (!data.empty() && !dead_ && !close_after_flush_) {
        if (mode_ == mode::http) {
            data.remove_prefix(http_.consume(data));
            if (http_.state() == http::parser::status::complete) {
                respond_http(http_.result());
                http_.reset();
                mode_ = mode::jsonl;
            } else if (http_.state() == http::parser::status::error) {
                respond_http_error();
                close_after_flush_ = true;
            }
            continue;
        }
        data.remove_prefix(splitter_.feed_some(
            data, [this](std::string_view line, bool oversized) {
                return on_jsonl_line(line, oversized);
            }));
        if (switch_to_http_) {
            switch_to_http_ = false;
            // JSONL replies already queued stay ahead of the HTTP
            // response; the request line re-enters through the parser.
            flush_pending_batch();
            if (dead_) {
                return;
            }
            mode_ = mode::http;
            pending_http_line_ += "\r\n";
            (void)http_.consume(pending_http_line_);
            pending_http_line_.clear();
            if (http_.state() == http::parser::status::error) {
                respond_http_error();
                close_after_flush_ = true;
            }
        }
    }
}

bool conn::on_jsonl_line(std::string_view line, bool oversized) {
    if (oversized) {
        // Answer pending work first so the rejection lands at the
        // position the oversized line occupied.
        flush_pending_batch();
        if (dead_) {
            return false;
        }
        shared_.oversized_lines.add(1);
        reject_.clear();
        append_line_too_large(shared_.config.max_line_bytes, reject_);
        reject_ += '\n';
        enqueue(reject_);
        if (shared_.config.close_on_oversize) {
            close_after_flush_ = true;  // framing is suspect: drop the peer
            return false;
        }
        return !dead_;
    }
    if (line.empty()) {
        return true;  // blank lines are keep-alives, not requests
    }
    if (http::is_request_line(line)) {
        pending_http_line_.assign(line.data(), line.size());
        switch_to_http_ = true;
        return false;  // the rest of the stream belongs to the parser
    }
    if (is_legacy_metrics_line(line)) {
        // PR 5 compatibility: a bare `GET /metrics` line (no HTTP
        // version, so not a real request line) gets the one-shot
        // HTTP/1.0 response and a close, exactly as before.
        flush_pending_batch();
        if (dead_) {
            return false;
        }
        const std::string body = shared_.eng.prometheus_text();
        std::string response =
            "HTTP/1.0 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4\r\n"
            "Content-Length: " +
            std::to_string(body.size()) + "\r\n\r\n";
        response += body;
        enqueue(response);
        close_after_flush_ = true;
        return false;
    }
    lines_.emplace_back(line);
    if (lines_.size() >= shared_.config.batch) {
        flush_pending_batch();
    }
    return !dead_;
}

void conn::flush_pending_batch() {
    if (lines_.empty() || dead_) {
        return;
    }
    gather_.clear();
    for (const std::string& response : shared_.eng.handle_batch(lines_)) {
        gather_ += response;
        gather_ += '\n';
    }
    lines_.clear();
    shared_.flushes.add(1);
    shared_.flushed_bytes.add(gather_.size());
    enqueue(gather_);
}

void conn::respond_http(const http::request& req) {
    shared_.http_requests.add(1);
    const bool keep_alive = req.keep_alive;
    std::string response;
    if (req.method == "GET" || req.method == "HEAD") {
        const bool head_only = req.method == "HEAD";
        std::string_view target = req.target;
        target = target.substr(0, target.find('?'));
        if (target == "/metrics") {
            response = http::simple_response(
                200, reason_phrase(200), "text/plain; version=0.0.4",
                shared_.eng.prometheus_text(), keep_alive, head_only);
        } else if (target == "/healthz") {
            // Liveness stays cheap on purpose (no JSON, no engine
            // walk): it must answer within its deadline even while the
            // engine sheds work.  Admission state is reflected in the
            // status: over the in-flight byte budget = 503.
            const std::size_t budget =
                shared_.eng.config().limits.max_inflight_bytes;
            const bool overloaded =
                budget != 0 &&
                shared_.eng.admission().inflight_bytes() >= budget;
            response = overloaded
                           ? http::simple_response(
                                 503, reason_phrase(503), "text/plain",
                                 "overloaded\n", keep_alive, head_only)
                           : http::simple_response(
                                 200, reason_phrase(200), "text/plain",
                                 "ok\n", keep_alive, head_only);
        } else if (target == "/statusz") {
            json::value status = shared_.eng.statusz_json();
            json::object transport;
            const double uptime =
                std::chrono::duration_cast<std::chrono::duration<double>>(
                    std::chrono::steady_clock::now() - shared_.started)
                    .count();
            transport.set("uptime_seconds", uptime);
            transport.set("open_conns",
                          static_cast<double>(shared_.open_conns.load(
                              std::memory_order_relaxed)));
            transport.set("queued_bytes",
                          static_cast<double>(shared_.queued_bytes.load(
                              std::memory_order_relaxed)));
            transport.set("paused_conns",
                          static_cast<double>(shared_.paused_conns.load(
                              std::memory_order_relaxed)));
            status.as_object().set("transport",
                                   json::value{std::move(transport)});
            std::string body = json::dump(status);
            body += '\n';
            response = http::simple_response(200, reason_phrase(200),
                                             "application/json", body,
                                             keep_alive, head_only);
        } else if (target == "/flightz") {
            std::string body;
            obs::flight_recorder::instance().export_jsonl(body);
            response = http::simple_response(200, reason_phrase(200),
                                             "application/x-ndjson", body,
                                             keep_alive, head_only);
        } else {
            response = http::simple_response(404, reason_phrase(404),
                                             "text/plain", "not found\n",
                                             keep_alive, head_only);
        }
    } else {
        response = http::simple_response(405, reason_phrase(405),
                                         "text/plain",
                                         "method not allowed\n", keep_alive);
    }
    enqueue(response);
    if (!keep_alive) {
        close_after_flush_ = true;
    }
}

void conn::respond_http_error() {
    shared_.http_requests.add(1);
    const int status_code = http_.error_status();
    std::string body{http_.error_reason()};
    body += '\n';
    enqueue(http::simple_response(status_code, reason_phrase(status_code),
                                  "text/plain", body,
                                  /*keep_alive=*/false));
}

void conn::enqueue(std::string_view bytes) {
    if (bytes.empty() || dead_) {
        return;
    }
    std::size_t offset = 0;
    if (queue_.empty()) {
        // Common case: the socket takes the whole reply immediately and
        // nothing is buffered.
        const io::write_result r = io::write_some_fd(fd_, bytes, true);
        if (r.dead) {
            dead_ = true;
            return;
        }
        offset = r.written;
        if (offset == bytes.size()) {
            return;
        }
    }
    const std::string_view rest = bytes.substr(offset);
    admission_controller::ticket ticket =
        shared_.ledger.admit(rest.size(), shared_.config.queue_budget_bytes);
    if (shared_.config.queue_budget_bytes != 0 && !ticket) {
        // The loop-wide buffer budget is exhausted: shedding this
        // connection (whole, never mid-line) is the only move that
        // keeps memory bounded.
        shared_.queue_overflow_drops.add(1);
        dead_ = true;
        return;
    }
    out_buf buf;
    buf.data.assign(rest.data(), rest.size());
    buf.ticket = std::move(ticket);
    queue_.push_back(std::move(buf));
    queued_bytes_ += rest.size();
    shared_.queued_bytes.fetch_add(rest.size(), std::memory_order_relaxed);
    shared_.queue_bytes_gauge.add(static_cast<double>(rest.size()));
    if (shared_.config.queue_high_bytes != 0 &&
        queued_bytes_ > shared_.config.queue_high_bytes) {
        set_paused(true);
    }
}

void conn::on_writable() {
    while (!queue_.empty() && !dead_) {
        out_buf& front = queue_.front();
        const std::string_view rest =
            std::string_view{front.data}.substr(front.offset);
        const io::write_result r = io::write_some_fd(fd_, rest, true);
        if (r.written != 0) {
            front.offset += r.written;
            queued_bytes_ -= r.written;
            shared_.queued_bytes.fetch_sub(r.written,
                                           std::memory_order_relaxed);
            shared_.queue_bytes_gauge.add(-static_cast<double>(r.written));
        }
        if (r.dead) {
            dead_ = true;
            return;
        }
        if (front.offset == front.data.size()) {
            queue_.pop_front();  // releases the admission ticket
            continue;
        }
        if (r.would_block) {
            break;
        }
    }
    if (paused_ && queued_bytes_ < shared_.config.queue_low_bytes) {
        set_paused(false);
    }
}

}  // namespace silicon::serve
