// json.hpp — minimal dependency-free JSON document model, parser and
// writer for the serving layer.
//
// The serve subsystem speaks newline-delimited JSON (one request or
// response per line), and the memoization cache keys on a *canonical*
// serialization of the request, so this module provides three things:
//
//   1. a small value type (`json::value`) covering the full JSON data
//      model — null, bool, number (double), string, array, object —
//      with objects preserving insertion order for readable output;
//   2. a strict recursive-descent parser (`json::parse`) with
//      position-carrying errors and a nesting-depth guard;
//   3. two writers: `dump` (compact, insertion order) and `canonical`
//      (compact, object keys sorted bytewise at every level) — the
//      latter is what cache keys are built from, so two requests that
//      differ only in member order hash identically.
//
// Numbers are IEEE doubles formatted with std::to_chars shortest
// round-trip form, so serialization is bit-deterministic across runs
// and thread counts (a core requirement of the serve determinism
// contract).  Non-finite doubles have no JSON representation and
// serialize as null.

#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace silicon::serve::json {

class value;

/// JSON array: heterogeneous ordered list.
using array = std::vector<value>;

/// JSON object: key/value members in insertion order (keys unique;
/// `set` on an existing key replaces in place).  Lookup is a linear
/// scan — serve objects have a handful of members.
class object {
public:
    using member = std::pair<std::string, value>;

    object() = default;

    /// Member value for `key`, or nullptr when absent.
    [[nodiscard]] const value* find(std::string_view key) const;
    [[nodiscard]] value* find(std::string_view key);

    /// Insert or replace `key`; returns the stored value.
    value& set(std::string key, value v);

    [[nodiscard]] std::size_t size() const noexcept;
    [[nodiscard]] bool empty() const noexcept;
    [[nodiscard]] const std::vector<member>& members() const noexcept {
        return members_;
    }

private:
    std::vector<member> members_;
};

/// Error thrown by the typed accessors on a kind mismatch.
class type_error : public std::runtime_error {
public:
    explicit type_error(const std::string& what) : std::runtime_error{what} {}
};

/// A JSON document node.
class value {
public:
    value() noexcept : v_{nullptr} {}
    value(std::nullptr_t) noexcept : v_{nullptr} {}
    value(bool b) noexcept : v_{b} {}
    value(double d) noexcept : v_{d} {}
    value(int i) noexcept : v_{static_cast<double>(i)} {}
    value(long l) noexcept : v_{static_cast<double>(l)} {}
    value(unsigned u) noexcept : v_{static_cast<double>(u)} {}
    value(unsigned long u) noexcept : v_{static_cast<double>(u)} {}
    value(const char* s) : v_{std::string{s}} {}
    value(std::string s) noexcept : v_{std::move(s)} {}
    value(array a) noexcept : v_{std::move(a)} {}
    value(object o) noexcept : v_{std::move(o)} {}

    [[nodiscard]] bool is_null() const noexcept;
    [[nodiscard]] bool is_bool() const noexcept;
    [[nodiscard]] bool is_number() const noexcept;
    [[nodiscard]] bool is_string() const noexcept;
    [[nodiscard]] bool is_array() const noexcept;
    [[nodiscard]] bool is_object() const noexcept;

    /// Typed accessors; throw type_error on kind mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const array& as_array() const;
    [[nodiscard]] array& as_array();
    [[nodiscard]] const object& as_object() const;
    [[nodiscard]] object& as_object();

    friend bool operator==(const value& a, const value& b);

private:
    std::variant<std::nullptr_t, bool, double, std::string, array, object> v_;
};

/// Parse failure: `offset` is the byte position in the input where the
/// problem was detected (useful for pinpointing malformed batch lines).
class parse_error : public std::runtime_error {
public:
    parse_error(const std::string& what, std::size_t offset)
        : std::runtime_error{what + " at offset " + std::to_string(offset)},
          offset_{offset} {}

    [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

private:
    std::size_t offset_;
};

/// Parse one complete JSON document (leading/trailing whitespace
/// allowed, anything else after the document is an error).  Strict per
/// RFC 8259: no comments, no trailing commas, no leading zeros, \uXXXX
/// escapes (including surrogate pairs) decoded to UTF-8.  Nesting
/// deeper than 128 levels throws (stack-overflow guard for adversarial
/// inputs on the wire).
[[nodiscard]] value parse(std::string_view text);

/// Compact serialization, object members in insertion order.
[[nodiscard]] std::string dump(const value& v);

/// Compact serialization with object keys sorted bytewise at every
/// nesting level — the canonical form used for cache keys.  Number and
/// string formatting is identical to `dump`.
[[nodiscard]] std::string canonical(const value& v);

/// Append-style `canonical` (same bytes, appended to `out`).
void canonical_into(const value& v, std::string& out);

/// Shortest round-trip formatting of a double (std::to_chars); the
/// single number formatter used by both writers.  Non-finite values
/// return "null".
[[nodiscard]] std::string format_number(double d);

/// Append-style variants used by the allocation-free hot path: same bytes
/// as `format_number` / the writers' string escaping, appended to `out`
/// (which only allocates if it must grow).
void format_number_into(double d, std::string& out);
void write_string_into(std::string& out, std::string_view s);

}  // namespace silicon::serve::json
