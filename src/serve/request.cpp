#include "serve/request.hpp"

#include <cmath>
#include <initializer_list>
#include <string>
#include <vector>

namespace silicon::serve {

std::string_view to_string(op_code op) {
    switch (op) {
        case op_code::cost_tr: return "cost_tr";
        case op_code::gross_die: return "gross_die";
        case op_code::yield: return "yield";
        case op_code::scenario1: return "scenario1";
        case op_code::scenario2: return "scenario2";
        case op_code::table3: return "table3";
        case op_code::mc_yield: return "mc_yield";
        case op_code::sweep: return "sweep";
        case op_code::stats: return "stats";
        case op_code::chiplet: return "chiplet";
        case op_code::partition_explore: return "partition_explore";
    }
    return "unknown";
}

std::optional<op_code> op_from_string(std::string_view name) {
    for (int i = 0; i < op_count; ++i) {
        const op_code op = static_cast<op_code>(i);
        if (to_string(op) == name) {
            return op;
        }
    }
    return std::nullopt;
}

const char* primary_metric(op_code op) {
    switch (op) {
        case op_code::cost_tr: return "cost_per_transistor_usd";
        case op_code::gross_die: return "count";
        case op_code::yield: return "yield";
        case op_code::scenario1: return "cost_per_transistor_usd";
        case op_code::scenario2: return "cost_per_transistor_usd";
        case op_code::mc_yield: return "yield";
        case op_code::chiplet: return "cost_per_good_system_usd";
        case op_code::table3:
        case op_code::sweep:
        case op_code::stats:
        case op_code::partition_explore:
            return nullptr;
    }
    return nullptr;
}

namespace {

// ---------------------------------------------------------------------------
// Validating field access
// ---------------------------------------------------------------------------

/// Reads typed members out of a request object, remembering which keys
/// were touched so `forbid_unknown` can reject typos ("lamda_um") with
/// a precise error instead of silently evaluating defaults.
class field_reader {
public:
    field_reader(const json::object& o, std::string context)
        : o_{o}, context_{std::move(context)} {}

    [[nodiscard]] double number(const char* key, double fallback) {
        const json::value* v = get(key);
        if (v == nullptr) {
            return fallback;
        }
        if (!v->is_number()) {
            fail_type(key, "a number");
        }
        return v->as_number();
    }

    [[nodiscard]] int integer(const char* key, int fallback) {
        const json::value* v = get(key);
        if (v == nullptr) {
            return fallback;
        }
        if (!v->is_number() || v->as_number() != std::floor(v->as_number()) ||
            std::abs(v->as_number()) > 2147483647.0) {
            fail_type(key, "an integer");
        }
        return static_cast<int>(v->as_number());
    }

    [[nodiscard]] std::uint64_t uinteger(const char* key,
                                         std::uint64_t fallback) {
        const json::value* v = get(key);
        if (v == nullptr) {
            return fallback;
        }
        if (!v->is_number() || v->as_number() != std::floor(v->as_number()) ||
            v->as_number() < 0.0 || v->as_number() > 9007199254740992.0) {
            fail_type(key, "a non-negative integer (<= 2^53)");
        }
        return static_cast<std::uint64_t>(v->as_number());
    }

    [[nodiscard]] std::string text(const char* key, const char* fallback) {
        const json::value* v = get(key);
        if (v == nullptr) {
            return fallback;
        }
        if (!v->is_string()) {
            fail_type(key, "a string");
        }
        return v->as_string();
    }

    /// Raw member access (marks the key consumed); nullptr when absent.
    [[nodiscard]] const json::value* raw(const char* key) {
        return get(key);
    }

    /// Reject every member that no accessor consumed.
    void forbid_unknown() const {
        for (const json::object::member& m : o_.members()) {
            bool known = false;
            for (const std::string_view seen : consumed_) {
                if (seen == m.first) {
                    known = true;
                    break;
                }
            }
            if (!known) {
                throw request_error(
                    "unknown_field",
                    context_ + ": unknown field '" + m.first + "'");
            }
        }
    }

private:
    const json::value* get(const char* key) {
        consumed_.push_back(key);
        return o_.find(key);
    }

    [[noreturn]] void fail_type(const char* key, const char* wanted) const {
        throw request_error("bad_param", context_ + ": field '" +
                                             std::string{key} +
                                             "' must be " + wanted);
    }

    const json::object& o_;
    std::string context_;
    std::vector<std::string_view> consumed_;
};

const json::object& require_object(const json::value& v,
                                   const std::string& context) {
    if (!v.is_object()) {
        throw request_error("bad_param", context + " must be a JSON object");
    }
    return v.as_object();
}

// ---------------------------------------------------------------------------
// Parameter block parse / serialize pairs
// ---------------------------------------------------------------------------

/// Parse-time name registries: a typo'd model/method name fails the
/// request before anything is evaluated (or cached inside a sweep).
void validate_gross_die_method(const std::string& name, const char* context) {
    for (const char* known :
         {"maly_rows", "maly_rows_best_orient", "area_ratio", "circumference",
          "ferris_prabhu", "exact"}) {
        if (name == known) {
            return;
        }
    }
    throw request_error(
        "bad_param",
        std::string{context} + ": unknown gross-die method '" + name +
            "' (maly_rows | maly_rows_best_orient | area_ratio | "
            "circumference | ferris_prabhu | exact)");
}

void validate_yield_model(const std::string& name) {
    for (const char* known :
         {"poisson", "murphy", "seeds", "bose_einstein", "neg_binomial",
          "scaled_poisson", "reference"}) {
        if (name == known) {
            return;
        }
    }
    throw request_error(
        "bad_param",
        "yield.model: unknown model '" + name +
            "' (poisson | murphy | seeds | bose_einstein | neg_binomial | "
            "scaled_poisson | reference)");
}

void validate_substrate(const std::string& name) {
    for (const char* known : {"organic", "rdl", "interposer"}) {
        if (name == known) {
            return;
        }
    }
    throw request_error("bad_param",
                        "substrate: unknown substrate '" + name +
                            "' (organic | rdl | interposer)");
}

/// Strict `splits` grammar: comma-separated decimal split counts with
/// no spaces, signs or leading zeros, at most 8 entries, each in
/// [1, 16], strictly ascending, and the monolithic baseline 1 must be
/// present.  The strictness makes the string its own canonical form,
/// so equivalent grids never split the memoization cache over
/// formatting.
void validate_splits(const std::string& s) {
    static constexpr const char* bad_splits =
        "partition_explore: splits must be a strictly ascending "
        "comma-separated list of split counts in [1, 16] including 1 "
        "(e.g. '1,2,4')";
    int entries = 0;
    int prev = 0;
    bool has_one = false;
    std::size_t i = 0;
    while (true) {
        if (i >= s.size() || s[i] < '1' || s[i] > '9') {
            throw request_error("bad_param", bad_splits);
        }
        int value = 0;
        while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
            value = value * 10 + (s[i] - '0');
            if (value > 16) {
                throw request_error("bad_param", bad_splits);
            }
            ++i;
        }
        if (value <= prev || ++entries > 8) {
            throw request_error("bad_param", bad_splits);
        }
        if (value == 1) {
            has_one = true;
        }
        prev = value;
        if (i == s.size()) {
            break;
        }
        if (s[i] != ',') {
            throw request_error("bad_param", bad_splits);
        }
        ++i;
    }
    if (!has_one) {
        throw request_error("bad_param", bad_splits);
    }
}

yield_spec_params parse_yield_spec(const json::value* v) {
    yield_spec_params out;
    if (v == nullptr) {
        return out;
    }
    field_reader r{require_object(*v, "process.yield"), "process.yield"};
    const std::string model = r.text("model", "reference");
    if (model == "reference") {
        out.model = yield_spec_params::kind::reference;
    } else if (model == "scaled") {
        out.model = yield_spec_params::kind::scaled;
    } else if (model == "fixed") {
        out.model = yield_spec_params::kind::fixed;
    } else {
        throw request_error("bad_param",
                            "process.yield.model: unknown model '" + model +
                                "' (reference | scaled | fixed)");
    }
    out.y0 = r.number("y0", out.y0);
    out.a0_cm2 = r.number("a0_cm2", out.a0_cm2);
    out.d = r.number("d", out.d);
    out.p = r.number("p", out.p);
    out.fixed = r.number("fixed", out.fixed);
    r.forbid_unknown();
    return out;
}

json::value yield_spec_to_json(const yield_spec_params& y) {
    json::object o;
    switch (y.model) {
        case yield_spec_params::kind::reference:
            o.set("model", "reference");
            break;
        case yield_spec_params::kind::scaled:
            o.set("model", "scaled");
            break;
        case yield_spec_params::kind::fixed:
            o.set("model", "fixed");
            break;
    }
    o.set("y0", y.y0);
    o.set("a0_cm2", y.a0_cm2);
    o.set("d", y.d);
    o.set("p", y.p);
    o.set("fixed", y.fixed);
    return json::value{std::move(o)};
}

process_params parse_process(const json::value* v) {
    process_params out;
    if (v == nullptr) {
        return out;
    }
    field_reader r{require_object(*v, "process"), "process"};
    out.c0_usd = r.number("c0_usd", out.c0_usd);
    out.x = r.number("x", out.x);
    out.generation_step_um =
        r.number("generation_step_um", out.generation_step_um);
    out.wafer_radius_cm = r.number("wafer_radius_cm", out.wafer_radius_cm);
    out.edge_exclusion_cm =
        r.number("edge_exclusion_cm", out.edge_exclusion_cm);
    out.gross_die_method =
        r.text("gross_die_method", out.gross_die_method.c_str());
    validate_gross_die_method(out.gross_die_method,
                              "process.gross_die_method");
    out.yield = parse_yield_spec(r.raw("yield"));
    r.forbid_unknown();
    return out;
}

json::value process_to_json(const process_params& p) {
    json::object o;
    o.set("c0_usd", p.c0_usd);
    o.set("x", p.x);
    o.set("generation_step_um", p.generation_step_um);
    o.set("wafer_radius_cm", p.wafer_radius_cm);
    o.set("edge_exclusion_cm", p.edge_exclusion_cm);
    o.set("gross_die_method", p.gross_die_method);
    o.set("yield", yield_spec_to_json(p.yield));
    return json::value{std::move(o)};
}

product_params parse_product(const json::value* v) {
    product_params out;
    if (v == nullptr) {
        return out;
    }
    field_reader r{require_object(*v, "product"), "product"};
    out.name = r.text("name", out.name.c_str());
    out.transistors = r.number("transistors", out.transistors);
    out.design_density = r.number("design_density", out.design_density);
    out.feature_size_um = r.number("feature_size_um", out.feature_size_um);
    out.die_aspect_ratio = r.number("die_aspect_ratio", out.die_aspect_ratio);
    r.forbid_unknown();
    return out;
}

json::value product_to_json(const product_params& p) {
    json::object o;
    o.set("name", p.name);
    o.set("transistors", p.transistors);
    o.set("design_density", p.design_density);
    o.set("feature_size_um", p.feature_size_um);
    o.set("die_aspect_ratio", p.die_aspect_ratio);
    return json::value{std::move(o)};
}

economics_params parse_economics(const json::value* v) {
    economics_params out;
    if (v == nullptr) {
        return out;
    }
    field_reader r{require_object(*v, "economics"), "economics"};
    out.overhead_usd = r.number("overhead_usd", out.overhead_usd);
    out.volume_wafers = r.number("volume_wafers", out.volume_wafers);
    r.forbid_unknown();
    return out;
}

json::value economics_to_json(const economics_params& e) {
    json::object o;
    o.set("overhead_usd", e.overhead_usd);
    o.set("volume_wafers", e.volume_wafers);
    return json::value{std::move(o)};
}

// ---------------------------------------------------------------------------
// Endpoint payload parsers (operate on the top-level request object;
// `r` already has "op" and "id" consumed)
// ---------------------------------------------------------------------------

cost_tr_request parse_cost_tr(field_reader& r) {
    cost_tr_request out;
    out.process = parse_process(r.raw("process"));
    out.product = parse_product(r.raw("product"));
    out.economics = parse_economics(r.raw("economics"));
    return out;
}

gross_die_request parse_gross_die(field_reader& r) {
    gross_die_request out;
    out.wafer_radius_cm = r.number("wafer_radius_cm", out.wafer_radius_cm);
    out.edge_exclusion_cm =
        r.number("edge_exclusion_cm", out.edge_exclusion_cm);
    out.die_width_mm = r.number("die_width_mm", out.die_width_mm);
    out.die_height_mm = r.number("die_height_mm", out.die_height_mm);
    out.method = r.text("method", out.method.c_str());
    validate_gross_die_method(out.method, "method");
    out.scribe_mm = r.number("scribe_mm", out.scribe_mm);
    return out;
}

yield_request parse_yield(field_reader& r) {
    yield_request out;
    out.model = r.text("model", out.model.c_str());
    validate_yield_model(out.model);
    out.expected_faults = r.number("expected_faults", out.expected_faults);
    out.die_area_cm2 = r.number("die_area_cm2", out.die_area_cm2);
    out.defects_per_cm2 = r.number("defects_per_cm2", out.defects_per_cm2);
    out.critical_steps = r.integer("critical_steps", out.critical_steps);
    out.alpha = r.number("alpha", out.alpha);
    out.d = r.number("d", out.d);
    out.p = r.number("p", out.p);
    out.lambda_um = r.number("lambda_um", out.lambda_um);
    out.y0 = r.number("y0", out.y0);
    out.a0_cm2 = r.number("a0_cm2", out.a0_cm2);
    return out;
}

scenario1_request parse_scenario1(field_reader& r) {
    scenario1_request out;
    out.lambda_um = r.number("lambda_um", out.lambda_um);
    out.c0_usd = r.number("c0_usd", out.c0_usd);
    out.x = r.number("x", out.x);
    out.wafer_radius_cm = r.number("wafer_radius_cm", out.wafer_radius_cm);
    out.design_density = r.number("design_density", out.design_density);
    return out;
}

scenario2_request parse_scenario2(field_reader& r) {
    scenario2_request out;
    out.lambda_um = r.number("lambda_um", out.lambda_um);
    out.c0_usd = r.number("c0_usd", out.c0_usd);
    out.x = r.number("x", out.x);
    out.wafer_radius_cm = r.number("wafer_radius_cm", out.wafer_radius_cm);
    out.design_density = r.number("design_density", out.design_density);
    out.y0 = r.number("y0", out.y0);
    return out;
}

table3_request parse_table3(field_reader& r) {
    table3_request out;
    out.row = r.integer("row", out.row);
    if (out.row < 0 || out.row > 17) {
        throw request_error("bad_param",
                            "table3: row must be 0 (all) or 1-17");
    }
    return out;
}

mc_yield_request parse_mc_yield(field_reader& r) {
    mc_yield_request out;
    out.line_width_um = r.number("line_width_um", out.line_width_um);
    out.line_spacing_um = r.number("line_spacing_um", out.line_spacing_um);
    out.line_length_um = r.number("line_length_um", out.line_length_um);
    out.line_count = r.integer("line_count", out.line_count);
    out.defect_r0_um = r.number("defect_r0_um", out.defect_r0_um);
    out.defect_p = r.number("defect_p", out.defect_p);
    out.defect_q = r.number("defect_q", out.defect_q);
    out.dies = r.integer("dies", out.dies);
    out.defects_per_um2 = r.number("defects_per_um2", out.defects_per_um2);
    out.extra_material_fraction =
        r.number("extra_material_fraction", out.extra_material_fraction);
    out.seed = r.uinteger("seed", out.seed);
    if (out.dies < 1 || out.dies > 100000000) {
        throw request_error("bad_param",
                            "mc_yield: dies must be in [1, 1e8]");
    }
    return out;
}

/// Walk a dotted path ("product.feature_size_um") through nested
/// objects; returns the addressed value or nullptr.
json::value* walk_path(json::value& root, std::string_view path) {
    json::value* node = &root;
    std::size_t begin = 0;
    while (begin <= path.size()) {
        const std::size_t dot = path.find('.', begin);
        const std::string_view segment =
            path.substr(begin, dot == std::string_view::npos ? path.size() - begin
                                                             : dot - begin);
        if (segment.empty() || !node->is_object()) {
            return nullptr;
        }
        node = node->as_object().find(segment);
        if (node == nullptr) {
            return nullptr;
        }
        if (dot == std::string_view::npos) {
            return node;
        }
        begin = dot + 1;
    }
    return nullptr;
}

sweep_request parse_sweep(field_reader& r) {
    sweep_request out;
    const json::value* target = r.raw("target");
    if (target == nullptr) {
        throw request_error("bad_param", "sweep: 'target' is required");
    }
    const json::object& target_obj = require_object(*target, "sweep.target");
    if (target_obj.find("id") != nullptr) {
        throw request_error("bad_param",
                            "sweep.target: must not carry an 'id'");
    }
    if (target_obj.find("deadline_ms") != nullptr) {
        throw request_error("bad_param",
                            "sweep.target: must not carry a 'deadline_ms'");
    }
    if (target_obj.find("trace_id") != nullptr) {
        throw request_error("bad_param",
                            "sweep.target: must not carry a 'trace_id'");
    }

    auto parsed = std::make_shared<request>(parse_request(*target));
    if (parsed->op == op_code::sweep || parsed->op == op_code::stats ||
        primary_metric(parsed->op) == nullptr) {
        throw request_error(
            "bad_param",
            "sweep: target op '" + std::string{to_string(parsed->op)} +
                "' has no sweepable scalar metric");
    }

    const json::value* param = r.raw("param");
    if (param == nullptr || !param->is_string()) {
        throw request_error("bad_param",
                            "sweep: 'param' must be a string path");
    }
    out.param = param->as_string();

    // The canonical target (defaults filled in) is what points are
    // rebound against, so the swept path always resolves.
    json::value canonical_target = request_to_json(*parsed);
    json::value* addressed = walk_path(canonical_target, out.param);
    if (addressed == nullptr || !addressed->is_number()) {
        throw request_error("bad_param",
                            "sweep: param '" + out.param +
                                "' does not address a numeric parameter of "
                                "the target");
    }
    out.target_params = canonical_target.as_object();
    out.target = std::move(parsed);

    const json::value* from = r.raw("from");
    const json::value* to_v = r.raw("to");
    if (from == nullptr || !from->is_number() || to_v == nullptr ||
        !to_v->is_number()) {
        throw request_error("bad_param",
                            "sweep: 'from' and 'to' must be numbers");
    }
    out.from = from->as_number();
    out.to = to_v->as_number();
    if (!std::isfinite(out.from) || !std::isfinite(out.to)) {
        throw request_error("bad_param",
                            "sweep: 'from'/'to' must be finite");
    }

    out.count = r.integer("count", out.count);
    if (out.count < 1 || out.count > 65536) {
        throw request_error("bad_param",
                            "sweep: count must be in [1, 65536]");
    }
    out.scale = r.text("scale", out.scale.c_str());
    if (out.scale != "linear" && out.scale != "log") {
        throw request_error("bad_param",
                            "sweep: scale must be 'linear' or 'log'");
    }
    if (out.scale == "log" && (!(out.from > 0.0) || !(out.to > 0.0))) {
        throw request_error(
            "bad_param", "sweep: log scale requires positive 'from'/'to'");
    }
    return out;
}

/// The shared chiplet configuration block: everything except
/// `chiplets` (a `chiplet` request reads it, `partition_explore` takes
/// split counts from `splits` instead).  Numeric-range validation is
/// deliberately left to the model layer at eval time (library
/// constructor throws map to bad_param/domain_error), matching the
/// other endpoints.
void parse_chiplet_base(field_reader& r, chiplet_request& out) {
    out.logic_area_mm2 = r.number("logic_area_mm2", out.logic_area_mm2);
    out.memory_area_mm2 = r.number("memory_area_mm2", out.memory_area_mm2);
    out.io_area_mm2 = r.number("io_area_mm2", out.io_area_mm2);
    out.d2d_area_mm2 = r.number("d2d_area_mm2", out.d2d_area_mm2);
    out.lambda_um = r.number("lambda_um", out.lambda_um);
    out.c0_usd = r.number("c0_usd", out.c0_usd);
    out.x = r.number("x", out.x);
    out.generation_step_um =
        r.number("generation_step_um", out.generation_step_um);
    out.wafer_radius_cm = r.number("wafer_radius_cm", out.wafer_radius_cm);
    out.edge_exclusion_cm =
        r.number("edge_exclusion_cm", out.edge_exclusion_cm);
    out.defects_per_cm2 = r.number("defects_per_cm2", out.defects_per_cm2);
    out.memory_defect_factor =
        r.number("memory_defect_factor", out.memory_defect_factor);
    out.io_defect_factor = r.number("io_defect_factor", out.io_defect_factor);
    out.clustering_alpha = r.number("clustering_alpha", out.clustering_alpha);
    out.test_coverage = r.number("test_coverage", out.test_coverage);
    out.tester_rate_per_hour =
        r.number("tester_rate_per_hour", out.tester_rate_per_hour);
    out.test_seconds_fixed =
        r.number("test_seconds_fixed", out.test_seconds_fixed);
    out.test_seconds_per_cm2 =
        r.number("test_seconds_per_cm2", out.test_seconds_per_cm2);
    out.substrate = r.text("substrate", out.substrate.c_str());
    validate_substrate(out.substrate);
    out.substrate_cost_per_cm2 =
        r.number("substrate_cost_per_cm2", out.substrate_cost_per_cm2);
    out.rdl_cost_per_cm2 = r.number("rdl_cost_per_cm2", out.rdl_cost_per_cm2);
    out.rdl_defects_per_cm2 =
        r.number("rdl_defects_per_cm2", out.rdl_defects_per_cm2);
    out.interposer_cost_per_cm2 =
        r.number("interposer_cost_per_cm2", out.interposer_cost_per_cm2);
    out.interposer_defects_per_cm2 =
        r.number("interposer_defects_per_cm2", out.interposer_defects_per_cm2);
    out.package_area_factor =
        r.number("package_area_factor", out.package_area_factor);
    out.bond_yield = r.number("bond_yield", out.bond_yield);
    out.bonding_cost_per_chiplet =
        r.number("bonding_cost_per_chiplet", out.bonding_cost_per_chiplet);
}

chiplet_request parse_chiplet(field_reader& r) {
    chiplet_request out;
    out.chiplets = r.integer("chiplets", out.chiplets);
    if (out.chiplets < 1 || out.chiplets > 16) {
        throw request_error("bad_param",
                            "chiplet: chiplets must be in [1, 16]");
    }
    parse_chiplet_base(r, out);
    return out;
}

partition_explore_request parse_partition_explore(field_reader& r) {
    partition_explore_request out;
    parse_chiplet_base(r, out.base);
    out.splits = r.text("splits", out.splits.c_str());
    validate_splits(out.splits);
    out.area_from_mm2 = r.number("area_from_mm2", out.area_from_mm2);
    out.area_to_mm2 = r.number("area_to_mm2", out.area_to_mm2);
    if (!std::isfinite(out.area_from_mm2) || !(out.area_from_mm2 > 0.0) ||
        !std::isfinite(out.area_to_mm2) || !(out.area_to_mm2 > 0.0)) {
        throw request_error("bad_param",
                            "partition_explore: area_from_mm2/area_to_mm2 "
                            "must be finite and positive");
    }
    out.count = r.integer("count", out.count);
    if (out.count < 1 || out.count > 65536) {
        throw request_error("bad_param",
                            "partition_explore: count must be in [1, 65536]");
    }
    out.scale = r.text("scale", out.scale.c_str());
    if (out.scale != "linear" && out.scale != "log") {
        throw request_error(
            "bad_param", "partition_explore: scale must be 'linear' or 'log'");
    }
    return out;
}

// ---------------------------------------------------------------------------
// Payload serializers (fields appended onto the top-level object)
// ---------------------------------------------------------------------------

void cost_tr_to_json(const cost_tr_request& q, json::object& o) {
    o.set("process", process_to_json(q.process));
    o.set("product", product_to_json(q.product));
    o.set("economics", economics_to_json(q.economics));
}

void gross_die_to_json(const gross_die_request& q, json::object& o) {
    o.set("wafer_radius_cm", q.wafer_radius_cm);
    o.set("edge_exclusion_cm", q.edge_exclusion_cm);
    o.set("die_width_mm", q.die_width_mm);
    o.set("die_height_mm", q.die_height_mm);
    o.set("method", q.method);
    o.set("scribe_mm", q.scribe_mm);
}

void yield_to_json(const yield_request& q, json::object& o) {
    o.set("model", q.model);
    o.set("expected_faults", q.expected_faults);
    o.set("die_area_cm2", q.die_area_cm2);
    o.set("defects_per_cm2", q.defects_per_cm2);
    o.set("critical_steps", q.critical_steps);
    o.set("alpha", q.alpha);
    o.set("d", q.d);
    o.set("p", q.p);
    o.set("lambda_um", q.lambda_um);
    o.set("y0", q.y0);
    o.set("a0_cm2", q.a0_cm2);
}

void scenario1_to_json(const scenario1_request& q, json::object& o) {
    o.set("lambda_um", q.lambda_um);
    o.set("c0_usd", q.c0_usd);
    o.set("x", q.x);
    o.set("wafer_radius_cm", q.wafer_radius_cm);
    o.set("design_density", q.design_density);
}

void scenario2_to_json(const scenario2_request& q, json::object& o) {
    o.set("lambda_um", q.lambda_um);
    o.set("c0_usd", q.c0_usd);
    o.set("x", q.x);
    o.set("wafer_radius_cm", q.wafer_radius_cm);
    o.set("design_density", q.design_density);
    o.set("y0", q.y0);
}

void table3_to_json(const table3_request& q, json::object& o) {
    o.set("row", q.row);
}

void mc_yield_to_json(const mc_yield_request& q, json::object& o) {
    o.set("line_width_um", q.line_width_um);
    o.set("line_spacing_um", q.line_spacing_um);
    o.set("line_length_um", q.line_length_um);
    o.set("line_count", q.line_count);
    o.set("defect_r0_um", q.defect_r0_um);
    o.set("defect_p", q.defect_p);
    o.set("defect_q", q.defect_q);
    o.set("dies", q.dies);
    o.set("defects_per_um2", q.defects_per_um2);
    o.set("extra_material_fraction", q.extra_material_fraction);
    o.set("seed", static_cast<double>(q.seed));
}

void sweep_to_json(const sweep_request& q, json::object& o) {
    o.set("target", json::value{q.target_params});
    o.set("param", q.param);
    o.set("from", q.from);
    o.set("to", q.to);
    o.set("count", q.count);
    o.set("scale", q.scale);
}

void chiplet_base_to_json(const chiplet_request& q, json::object& o) {
    o.set("logic_area_mm2", q.logic_area_mm2);
    o.set("memory_area_mm2", q.memory_area_mm2);
    o.set("io_area_mm2", q.io_area_mm2);
    o.set("d2d_area_mm2", q.d2d_area_mm2);
    o.set("lambda_um", q.lambda_um);
    o.set("c0_usd", q.c0_usd);
    o.set("x", q.x);
    o.set("generation_step_um", q.generation_step_um);
    o.set("wafer_radius_cm", q.wafer_radius_cm);
    o.set("edge_exclusion_cm", q.edge_exclusion_cm);
    o.set("defects_per_cm2", q.defects_per_cm2);
    o.set("memory_defect_factor", q.memory_defect_factor);
    o.set("io_defect_factor", q.io_defect_factor);
    o.set("clustering_alpha", q.clustering_alpha);
    o.set("test_coverage", q.test_coverage);
    o.set("tester_rate_per_hour", q.tester_rate_per_hour);
    o.set("test_seconds_fixed", q.test_seconds_fixed);
    o.set("test_seconds_per_cm2", q.test_seconds_per_cm2);
    o.set("substrate", q.substrate);
    o.set("substrate_cost_per_cm2", q.substrate_cost_per_cm2);
    o.set("rdl_cost_per_cm2", q.rdl_cost_per_cm2);
    o.set("rdl_defects_per_cm2", q.rdl_defects_per_cm2);
    o.set("interposer_cost_per_cm2", q.interposer_cost_per_cm2);
    o.set("interposer_defects_per_cm2", q.interposer_defects_per_cm2);
    o.set("package_area_factor", q.package_area_factor);
    o.set("bond_yield", q.bond_yield);
    o.set("bonding_cost_per_chiplet", q.bonding_cost_per_chiplet);
}

void chiplet_to_json(const chiplet_request& q, json::object& o) {
    o.set("chiplets", q.chiplets);
    chiplet_base_to_json(q, o);
}

void partition_explore_to_json(const partition_explore_request& q,
                               json::object& o) {
    chiplet_base_to_json(q.base, o);
    o.set("splits", q.splits);
    o.set("area_from_mm2", q.area_from_mm2);
    o.set("area_to_mm2", q.area_to_mm2);
    o.set("count", q.count);
    o.set("scale", q.scale);
}

}  // namespace

// ---------------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------------

request parse_request(const json::value& doc) {
    if (!doc.is_object()) {
        throw request_error("bad_request", "request must be a JSON object");
    }
    field_reader r{doc.as_object(), "request"};

    const json::value* op_member = r.raw("op");
    if (op_member == nullptr || !op_member->is_string()) {
        throw request_error("bad_request",
                            "request: 'op' must be a string");
    }
    const std::optional<op_code> op = op_from_string(op_member->as_string());
    if (!op.has_value()) {
        throw request_error("unknown_op", "request: unknown op '" +
                                              op_member->as_string() + "'");
    }

    request out;
    out.op = *op;
    if (const json::value* id = r.raw("id")) {
        out.id = *id;
        out.has_id = true;
    }
    if (r.raw("deadline_ms") != nullptr) {
        // Envelope-level like `id`: validated here, excluded from the
        // canonical key (request_to_json) so deadlines never split the
        // memoization cache.
        out.deadline_ms = r.uinteger("deadline_ms", 0);
        out.has_deadline = true;
    }
    if (r.raw("trace_id") != nullptr) {
        // Envelope-level like `id` and `deadline_ms`: echoed in the
        // response, never part of the canonical key.
        out.trace_id = r.text("trace_id", "");
        out.has_trace = true;
    }

    switch (*op) {
        case op_code::cost_tr: out.payload = parse_cost_tr(r); break;
        case op_code::gross_die: out.payload = parse_gross_die(r); break;
        case op_code::yield: out.payload = parse_yield(r); break;
        case op_code::scenario1: out.payload = parse_scenario1(r); break;
        case op_code::scenario2: out.payload = parse_scenario2(r); break;
        case op_code::table3: out.payload = parse_table3(r); break;
        case op_code::mc_yield: out.payload = parse_mc_yield(r); break;
        case op_code::sweep: out.payload = parse_sweep(r); break;
        case op_code::stats: out.payload = stats_request{}; break;
        case op_code::chiplet: out.payload = parse_chiplet(r); break;
        case op_code::partition_explore:
            out.payload = parse_partition_explore(r);
            break;
    }
    r.forbid_unknown();

    out.canonical_key = json::canonical(request_to_json(out));
    return out;
}

json::value request_to_json(const request& r) {
    json::object o;
    o.set("op", std::string{to_string(r.op)});
    std::visit(
        [&o](const auto& payload) {
            using T = std::decay_t<decltype(payload)>;
            if constexpr (std::is_same_v<T, cost_tr_request>) {
                cost_tr_to_json(payload, o);
            } else if constexpr (std::is_same_v<T, gross_die_request>) {
                gross_die_to_json(payload, o);
            } else if constexpr (std::is_same_v<T, yield_request>) {
                yield_to_json(payload, o);
            } else if constexpr (std::is_same_v<T, scenario1_request>) {
                scenario1_to_json(payload, o);
            } else if constexpr (std::is_same_v<T, scenario2_request>) {
                scenario2_to_json(payload, o);
            } else if constexpr (std::is_same_v<T, table3_request>) {
                table3_to_json(payload, o);
            } else if constexpr (std::is_same_v<T, mc_yield_request>) {
                mc_yield_to_json(payload, o);
            } else if constexpr (std::is_same_v<T, sweep_request>) {
                sweep_to_json(payload, o);
            } else if constexpr (std::is_same_v<T, chiplet_request>) {
                chiplet_to_json(payload, o);
            } else if constexpr (std::is_same_v<T,
                                                partition_explore_request>) {
                partition_explore_to_json(payload, o);
            }
            // stats_request: no parameters.
        },
        r.payload);
    return json::value{std::move(o)};
}

}  // namespace silicon::serve
