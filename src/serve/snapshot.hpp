// snapshot.hpp — crash-safe persistence for the serve memoization cache.
//
// A snapshot is a single file capturing every resident cache entry, so
// a restart (deploy, crash, overload shed gone wrong) warms back up in
// one read instead of recomputing the same Maly-model grids cold.  The
// format is versioned and checksummed end to end; the *restore* side is
// strictly defensive: any truncation, bit flip, stale format version or
// engine-fingerprint mismatch degrades to a counted cold start — never
// a crash, never a partially-visible or poisoned entry.
//
// On-disk layout (all integers little-endian, naturally aligned within
// the fixed-size headers so the file can be mmap'd and walked without
// copying):
//
//   file header (48 bytes)
//     [ 0] char     magic[8]      "SILSNAP\x01"
//     [ 8] u32      version       format_version (currently 1)
//     [12] u32      shard_count   shard sections that follow
//     [16] u64      fingerprint   engine-config fingerprint (see below)
//     [24] u64      entry_count   total records across all shards
//     [32] u64      payload_bytes file size minus this header
//     [40] u32      header_crc    CRC32C of bytes [0, 40)
//     [44] u32      reserved      0
//   then, per shard, a shard section:
//     shard header (24 bytes)
//       u64 entry_count   records in this section
//       u64 record_bytes  bytes of the record region that follows
//       u32 record_crc    CRC32C of the record region
//       u32 reserved      0
//     record region: per entry
//       u32 key_len, u32 value_len, key bytes, value bytes
//
// Records within a shard are ordered least- to most-recently-used, so
// replaying them through memo_cache::put() reproduces the eviction
// order, not just the contents.
//
// Atomicity protocol (DESIGN.md §16): the whole image is serialized
// into memory first — counts and CRCs are computed from the bytes that
// were actually captured, so a concurrent `shed_shards` (overload) or
// `put` can make the image *stale* but never torn or double-counted —
// then written to `path + ".tmp"`, fsync'd, rename(2)'d over `path`,
// and the directory fsync'd best-effort.  A crash at any point leaves
// either the previous complete snapshot or a stray .tmp the restore
// path never looks at.
//
// The engine-config fingerprint binds a snapshot to the cache-contents
// contract of the engine that wrote it.  Today that is the `fast_math`
// flag (fast lanes never enter the cache, and scalar bytes must never
// be served from a fast-math engine's snapshot or vice versa); bumping
// `format_version` is the escape hatch for layout changes.
//
// Fault injection: the writer honors `serve.snapshot_write` and the
// reader `serve.snapshot_read` on the process-global switchboard
// (faults.hpp) — `alloc_fail@` fails the operation cleanly,
// `slow_task@` stretches the in-progress window for race batteries.

#pragma once

#include "serve/cache.hpp"

#include <cstddef>
#include <cstdint>
#include <string>

namespace silicon::serve::snapshot {

inline constexpr char magic[8] = {'S', 'I', 'L', 'S', 'N', 'A', 'P', '\x01'};
inline constexpr std::uint32_t format_version = 1;

/// Software CRC32C (Castagnoli), the checksum of every header and
/// record region.  `seed` chains partial computations.
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t size,
                                   std::uint32_t seed = 0);

/// FNV-1a fingerprint of the engine-side cache-contents contract.  Two
/// engines whose fingerprints differ must not exchange snapshots.
[[nodiscard]] std::uint64_t config_fingerprint(bool fast_math);

struct write_result {
    bool ok = false;
    std::string error;            ///< empty when ok
    std::uint64_t entries = 0;    ///< records captured
    std::uint64_t bytes = 0;      ///< file size written
};

/// Serialize every resident entry of `cache` and atomically replace
/// `path` with the image.  Shards are captured one at a time under
/// their own locks; concurrent mutation yields a stale-but-consistent
/// snapshot.  Never throws.
[[nodiscard]] write_result write_file(const memo_cache& cache,
                                      std::uint64_t fingerprint,
                                      const std::string& path);

enum class restore_outcome {
    restored,      ///< entries loaded, cache warm
    cold_missing,  ///< no snapshot file — normal first boot
    cold_corrupt,  ///< validation failed — counted cold start
};

struct restore_result {
    restore_outcome outcome = restore_outcome::cold_missing;
    std::string reason;           ///< human-readable failure detail
    std::uint64_t entries = 0;    ///< records inserted (restored only)
    std::uint64_t bytes = 0;      ///< file size read
};

/// Load `path` into `cache`.  The whole file is parsed and every
/// checksum, bound and count verified *before* the first insertion, so
/// a failed restore leaves the cache exactly as it was (no partial
/// entries).  Never throws.
[[nodiscard]] restore_result restore_file(memo_cache& cache,
                                          std::uint64_t fingerprint,
                                          const std::string& path);

/// Serialize to bytes / load from bytes — the pure-format halves of
/// write_file/restore_file, exposed for the corruption fuzz battery
/// (tests patch bytes and recompute CRCs without touching disk).
[[nodiscard]] std::string serialize(const memo_cache& cache,
                                    std::uint64_t fingerprint,
                                    std::uint64_t* entries_out = nullptr);
[[nodiscard]] restore_result deserialize_into(memo_cache& cache,
                                              std::uint64_t fingerprint,
                                              const std::string& image);

}  // namespace silicon::serve::snapshot
