#include "serve/io.hpp"

#include "serve/faults.hpp"

#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>

namespace silicon::serve::io {

bool write_all(std::string_view data, const write_fn& write) {
    std::size_t offset = 0;
    while (offset < data.size()) {
        const long n = write(data.data() + offset, data.size() - offset);
        if (n > 0) {
            offset += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) {
            continue;  // interrupted before any byte moved: retry
        }
        return false;  // 0 or a real error: peer is gone
    }
    return true;
}

bool write_all_fd(int fd, std::string_view data, bool is_socket) {
    return write_all(data, [fd, is_socket](const char* p, std::size_t size) {
        if (faults::enabled()) {
            if (faults::take_eintr("silicond.write")) {
                errno = EINTR;
                return -1L;
            }
            const std::size_t cap = faults::write_cap("silicond.write");
            if (cap != 0 && cap < size) {
                size = cap;  // injected short write; write_all resumes
            }
        }
        if (is_socket) {
            return static_cast<long>(::send(fd, p, size, MSG_NOSIGNAL));
        }
        return static_cast<long>(::write(fd, p, size));
    });
}

void line_splitter::feed(
    std::string_view chunk,
    const std::function<void(std::string_view line, bool oversized)>& on_line) {
    while (!chunk.empty()) {
        const std::size_t nl = chunk.find('\n');
        if (discarding_) {
            // Drop bytes of the already-condemned line up to its '\n'.
            if (nl == std::string_view::npos) {
                return;
            }
            discarding_ = false;
            chunk.remove_prefix(nl + 1);
            continue;
        }
        if (nl == std::string_view::npos) {
            buffer_.append(chunk.data(), chunk.size());
            if (max_line_bytes_ != 0 && buffer_.size() > max_line_bytes_) {
                buffer_.clear();
                buffer_.shrink_to_fit();  // do not hold the spike
                discarding_ = true;
                on_line({}, true);
            }
            return;
        }
        std::string_view line = chunk.substr(0, nl);
        chunk.remove_prefix(nl + 1);
        if (!buffer_.empty()) {
            buffer_.append(line.data(), line.size());
            line = buffer_;
        }
        if (max_line_bytes_ != 0 && line.size() > max_line_bytes_) {
            on_line({}, true);
        } else {
            if (!line.empty() && line.back() == '\r') {
                line.remove_suffix(1);
            }
            on_line(line, false);
        }
        buffer_.clear();
    }
}

void line_splitter::finish(
    const std::function<void(std::string_view line, bool oversized)>& on_line) {
    if (discarding_) {
        // The oversized event already fired when the budget broke.
        discarding_ = false;
        return;
    }
    if (!buffer_.empty()) {
        std::string_view line = buffer_;
        if (max_line_bytes_ != 0 && line.size() > max_line_bytes_) {
            on_line({}, true);
        } else {
            on_line(line, false);
        }
        buffer_.clear();
    }
}

}  // namespace silicon::serve::io
