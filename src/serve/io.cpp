#include "serve/io.hpp"

#include "serve/faults.hpp"

#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace silicon::serve::io {

bool write_all(std::string_view data, const write_fn& write) {
    std::size_t offset = 0;
    while (offset < data.size()) {
        const long n = write(data.data() + offset, data.size() - offset);
        if (n > 0) {
            offset += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) {
            continue;  // interrupted before any byte moved: retry
        }
        return false;  // 0 or a real error: peer is gone
    }
    return true;
}

namespace {

/// One raw write attempt with the silicond.write fault sites applied.
long write_attempt(int fd, const char* p, std::size_t size, bool is_socket) {
    if (faults::enabled()) {
        if (faults::take_eintr("silicond.write")) {
            errno = EINTR;
            return -1;
        }
        const std::size_t cap = faults::write_cap("silicond.write");
        if (cap != 0 && cap < size) {
            size = cap;  // injected short write; the caller resumes
        }
    }
    if (is_socket) {
        return static_cast<long>(::send(fd, p, size, MSG_NOSIGNAL));
    }
    return static_cast<long>(::write(fd, p, size));
}

}  // namespace

write_result write_some_fd(int fd, std::string_view data, bool is_socket) {
    write_result r;
    while (r.written < data.size()) {
        const long n = write_attempt(fd, data.data() + r.written,
                                     data.size() - r.written, is_socket);
        if (n > 0) {
            r.written += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            r.would_block = true;
            return r;
        }
        r.dead = true;  // 0 or a real error: peer is gone
        return r;
    }
    return r;
}

bool write_all_fd(int fd, std::string_view data, bool is_socket) {
    std::size_t offset = 0;
    while (offset < data.size()) {
        const write_result r =
            write_some_fd(fd, data.substr(offset), is_socket);
        offset += r.written;
        if (r.dead) {
            return false;
        }
        if (r.would_block) {
            // Non-blocking fd with a full buffer: park in poll(2) until
            // writable instead of declaring the peer dead (the PR 5 bug
            // class) or busy-spinning.
            pollfd p{fd, POLLOUT, 0};
            while (::poll(&p, 1, -1) < 0) {
                if (errno != EINTR) {
                    return false;
                }
            }
        }
    }
    return true;
}

std::size_t line_splitter::feed_some(
    std::string_view chunk,
    const std::function<bool(std::string_view line, bool oversized)>&
        on_line) {
    std::size_t consumed = 0;
    while (consumed < chunk.size()) {
        std::string_view rest = chunk.substr(consumed);
        const std::size_t nl = rest.find('\n');
        if (discarding_) {
            // Drop bytes of the already-condemned line up to its '\n'.
            if (nl == std::string_view::npos) {
                return chunk.size();
            }
            discarding_ = false;
            consumed += nl + 1;
            continue;
        }
        if (nl == std::string_view::npos) {
            buffer_.append(rest.data(), rest.size());
            consumed = chunk.size();
            if (max_line_bytes_ != 0 && buffer_.size() > max_line_bytes_) {
                buffer_.clear();
                buffer_.shrink_to_fit();  // do not hold the spike
                discarding_ = true;
                if (!on_line({}, true)) {
                    return consumed;
                }
            }
            return consumed;
        }
        std::string_view line = rest.substr(0, nl);
        consumed += nl + 1;
        if (!buffer_.empty()) {
            buffer_.append(line.data(), line.size());
            line = buffer_;
        }
        bool keep_going = true;
        if (max_line_bytes_ != 0 && line.size() > max_line_bytes_) {
            keep_going = on_line({}, true);
        } else {
            if (!line.empty() && line.back() == '\r') {
                line.remove_suffix(1);
            }
            keep_going = on_line(line, false);
        }
        buffer_.clear();
        if (!keep_going) {
            return consumed;
        }
    }
    return consumed;
}

void line_splitter::feed(
    std::string_view chunk,
    const std::function<void(std::string_view line, bool oversized)>& on_line) {
    (void)feed_some(chunk, [&on_line](std::string_view line, bool oversized) {
        on_line(line, oversized);
        return true;
    });
}

void line_splitter::finish(
    const std::function<void(std::string_view line, bool oversized)>& on_line) {
    if (discarding_) {
        // The oversized event already fired when the budget broke.
        discarding_ = false;
        return;
    }
    if (!buffer_.empty()) {
        std::string_view line = buffer_;
        if (max_line_bytes_ != 0 && line.size() > max_line_bytes_) {
            on_line({}, true);
        } else {
            on_line(line, false);
        }
        buffer_.clear();
    }
}

}  // namespace silicon::serve::io
