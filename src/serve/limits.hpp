// limits.hpp — admission control and resource budgets for the engine.
//
// The engine serves untrusted byte streams; without budgets a single
// client can pin memory and the thread pool indefinitely (a
// newline-free gigabyte line, a 65536-point sweep of 10^8-die
// Monte-Carlo runs, a firehose of concurrent batches).  This module
// gives every axis a configurable budget and a *principled* rejection:
// an over-budget request is answered with a well-formed JSONL error
// envelope — never an abort, never an OOM — and counted under a stable
// reason label (DESIGN.md §11).
//
// Two error codes split the taxonomy by determinism:
//
//   * `too_large`  — a structural property of the request itself (line
//     bytes, batch line count, sweep grid points, MC die count).  The
//     same request is rejected every time, so these are golden-testable.
//   * `overloaded` — a property of the moment (bytes-in-flight budget
//     exhausted).  Retryable; deliberately excluded from goldens.
//
// The bytes-in-flight ledger is a single relaxed atomic; admission is
// O(1), lock-free and allocation-free (the fast-reject path is gated
// by bench_overload).  Rejection counters per reason feed the
// `silicon_serve_rejected_total{reason=...}` exposition.
//
// All budgets default to 0 = unlimited, so an engine without a
// limits_config behaves exactly as before this module existed.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace silicon::serve {

/// Per-engine resource budgets.  0 always means "unlimited / off".
struct limits_config {
    /// Longest accepted request line in bytes (also the transport's
    /// per-connection buffer bound in silicond).
    std::size_t max_line_bytes = 0;
    /// Most lines accepted in one handle_batch call.
    std::size_t max_batch_lines = 0;
    /// Largest accepted sweep grid (sweep_request::count).
    std::size_t max_sweep_points = 0;
    /// Largest accepted Monte-Carlo die count (mc_yield_request::dies).
    std::size_t max_mc_dies = 0;
    /// Total request bytes admitted concurrently across all callers;
    /// beyond it new lines/batches are rejected `overloaded`.
    std::size_t max_inflight_bytes = 0;
    /// Default per-batch deadline in milliseconds applied when a
    /// request carries no `deadline_ms` of its own.
    std::uint64_t default_deadline_ms = 0;
    /// Hot-path arena budget: when a thread's parse arena holds more
    /// reserved chunk bytes than this, the hot path releases it and
    /// declines to the legacy allocator path (graceful degradation).
    std::size_t max_arena_reserved_bytes = 0;
    /// Shed half the memoization-cache shards on every `overloaded`
    /// rejection (reclaims memory exactly when pressure is observed).
    bool shed_on_overload = false;

    [[nodiscard]] bool any_enabled() const noexcept {
        return max_line_bytes != 0 || max_batch_lines != 0 ||
               max_sweep_points != 0 || max_mc_dies != 0 ||
               max_inflight_bytes != 0 || default_deadline_ms != 0 ||
               max_arena_reserved_bytes != 0;
    }
};

/// Stable rejection reason labels (metrics + tests index by these;
/// append only — the order is the counter-array index).
enum class reject_reason {
    line_too_large,
    batch_too_large,
    sweep_too_large,
    mc_too_large,
    overloaded,
    explore_too_large,
};

inline constexpr int reject_reason_count = 6;

/// The Prometheus label value ("line_too_large", ...).
[[nodiscard]] std::string_view to_string(reject_reason reason);

/// Bytes-in-flight ledger + per-reason rejection counters.
///
/// Admission is a relaxed fetch_add with rollback on over-budget — the
/// counter may transiently overshoot by one in-flight request per racing
/// caller, which errs on the side of shedding (never of admitting past
/// roughly budget + one batch).  Thread-safe throughout.
class admission_controller {
public:
    /// RAII admission: releases its bytes on destruction.  A
    /// default-constructed (or rejected) ticket holds nothing.
    class ticket {
    public:
        ticket() = default;
        ticket(ticket&& other) noexcept
            : owner_{other.owner_}, bytes_{other.bytes_} {
            other.owner_ = nullptr;
            other.bytes_ = 0;
        }
        ticket& operator=(ticket&& other) noexcept {
            if (this != &other) {
                release();
                owner_ = other.owner_;
                bytes_ = other.bytes_;
                other.owner_ = nullptr;
                other.bytes_ = 0;
            }
            return *this;
        }
        ticket(const ticket&) = delete;
        ticket& operator=(const ticket&) = delete;
        ~ticket() { release(); }

        /// True when the bytes were admitted.
        [[nodiscard]] explicit operator bool() const noexcept {
            return owner_ != nullptr;
        }

        void release() noexcept;

    private:
        friend class admission_controller;
        ticket(admission_controller* owner, std::size_t bytes) noexcept
            : owner_{owner}, bytes_{bytes} {}

        admission_controller* owner_ = nullptr;
        std::size_t bytes_ = 0;
    };

    /// Try to admit `bytes` against `max_inflight_bytes`; an engaged
    /// ticket on success, a disengaged one (and an `overloaded`
    /// rejection count of `rejected_lines`) on refusal.  A budget of 0
    /// admits everything without touching the ledger.
    [[nodiscard]] ticket admit(std::size_t bytes, std::size_t budget,
                               std::uint64_t rejected_lines = 1);

    /// Count a structural rejection (too_large family).
    void note_rejection(reject_reason reason,
                        std::uint64_t lines = 1) noexcept {
        rejected_[static_cast<std::size_t>(reason)].fetch_add(
            lines, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t rejected(reject_reason reason) const noexcept {
        return rejected_[static_cast<std::size_t>(reason)].load(
            std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t rejected_total() const noexcept;
    [[nodiscard]] std::uint64_t inflight_bytes() const noexcept {
        return inflight_bytes_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> inflight_bytes_{0};
    std::array<std::atomic<std::uint64_t>, reject_reason_count> rejected_{};
};

// ---------------------------------------------------------------------------
// Rejection envelopes
// ---------------------------------------------------------------------------
// Fast rejections happen before (or instead of) parsing, so they carry
// no `id`; the bytes depend only on the configured budget, which keeps
// the deterministic family golden-testable.  `append_*` variants write
// into a reused buffer without allocating (steady state) — the property
// bench_overload gates.

/// {"ok":false,"error":{"code":"too_large","message":"line exceeds
/// max_line_bytes <limit>"}} appended to `out`.  Deliberately never
/// carries a trace_id: an over-long line's framing is suspect, so
/// nothing scanned out of it is trustworthy.
void append_line_too_large(std::size_t limit, std::string& out);

/// Same shape for an over-count batch.  `trace_raw` (from
/// scan_trace_id; may be empty) echoes as a leading
/// `"trace_id":"<raw>"` member — empty keeps the bytes identical to
/// the pre-trace envelope.
void append_batch_too_large(std::size_t limit, std::string_view trace_raw,
                            std::string& out);

/// {"ok":false,"error":{"code":"overloaded","message":"server over
/// byte budget, retry"}} appended to `out`, with the same optional
/// trace echo as append_batch_too_large.
void append_overloaded(std::string_view trace_raw, std::string& out);

/// Best-effort, allocation-free scan for a `"trace_id":"..."` member in
/// a raw (unparsed) request line, used to keep trace correlation alive
/// on shed paths that never parse.  Returns the *still-escaped* string
/// bytes (a subview of `line`) so they can be spliced verbatim between
/// quotes, or empty when absent/malformed/beyond the first 4 KiB.
[[nodiscard]] std::string_view scan_trace_id(std::string_view line) noexcept;

}  // namespace silicon::serve
