#include "serve/snapshot.hpp"

#include "serve/faults.hpp"

#include <array>
#include <cerrno>
#include <cstring>
#include <memory>
#include <new>
#include <string_view>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace silicon::serve::snapshot {

namespace {

// ---------------------------------------------------------------------------
// Little-endian scalar packing.  The headers are written field by field
// (not by struct memcpy) so the layout is the documented one on every
// host, independent of padding or endianness.
// ---------------------------------------------------------------------------

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
}

std::uint32_t get_u32(const char* p) {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
        v = (v << 8) | static_cast<unsigned char>(p[i]);
    }
    return v;
}

std::uint64_t get_u64(const char* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
        v = (v << 8) | static_cast<unsigned char>(p[i]);
    }
    return v;
}

constexpr std::size_t kFileHeaderBytes = 48;
constexpr std::size_t kShardHeaderBytes = 24;
constexpr std::size_t kRecordHeaderBytes = 8;  // key_len + value_len

std::array<std::uint32_t, 256> make_crc32c_table() {
    // Castagnoli polynomial, reflected.
    constexpr std::uint32_t poly = 0x82f63b78u;
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc & 1u) != 0 ? (crc >> 1) ^ poly : crc >> 1;
        }
        table[i] = crc;
    }
    return table;
}

restore_result corrupt(std::string reason, std::uint64_t bytes) {
    restore_result r;
    r.outcome = restore_outcome::cold_corrupt;
    r.reason = std::move(reason);
    r.bytes = bytes;
    return r;
}

/// Write the whole buffer to `fd`, retrying EINTR and short writes.
bool write_all(int fd, std::string_view data) {
    while (!data.empty()) {
        const ssize_t n = ::write(fd, data.data(), data.size());
        if (n > 0) {
            data.remove_prefix(static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        return false;
    }
    return true;
}

write_result write_error(std::string what, const std::string& tmp_path) {
    if (!tmp_path.empty()) {
        ::unlink(tmp_path.c_str());
    }
    write_result r;
    r.error = std::move(what);
    return r;
}

/// Best-effort fsync of the directory containing `path`, so the
/// rename itself is durable.  Failure is ignored: the data file is
/// already synced and renamed, and some filesystems reject dir fsync.
void sync_parent_dir(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string{"."}
                                : path.substr(0, slash == 0 ? 1 : slash);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
    static const std::array<std::uint32_t, 256> table = make_crc32c_table();
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < size; ++i) {
        crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    }
    return ~crc;
}

std::uint64_t config_fingerprint(bool fast_math) {
    // FNV-1a over a contract string; anything that changes what bytes
    // are legal cache contents must be folded in here.
    constexpr std::uint64_t offset = 0xcbf29ce484222325ull;
    constexpr std::uint64_t prime = 0x100000001b3ull;
    std::uint64_t h = offset;
    const std::string_view contract =
        fast_math ? std::string_view{"silicon.serve.cache.v1+fast_math"}
                  : std::string_view{"silicon.serve.cache.v1"};
    for (const char c : contract) {
        h = (h ^ static_cast<unsigned char>(c)) * prime;
    }
    return h;
}

std::string serialize(const memo_cache& cache, std::uint64_t fingerprint,
                      std::uint64_t* entries_out) {
    const std::size_t shard_count = cache.shard_count();
    std::string payload;
    std::uint64_t total_entries = 0;
    std::string records;
    for (std::size_t i = 0; i < shard_count; ++i) {
        // One shard at a time under its own lock: a concurrent put or
        // shed makes this image stale, never torn — the shard header's
        // count and CRC describe exactly the records captured below.
        const auto entries = cache.shard_snapshot(i);
        faults::maybe_delay("serve.snapshot_write");
        records.clear();
        for (const auto& [key, value] : entries) {
            put_u32(records, static_cast<std::uint32_t>(key.size()));
            put_u32(records,
                    static_cast<std::uint32_t>(value ? value->size() : 0));
            records.append(key);
            if (value) {
                records.append(*value);
            }
        }
        put_u64(payload, entries.size());
        put_u64(payload, records.size());
        put_u32(payload, crc32c(records.data(), records.size()));
        put_u32(payload, 0);  // reserved
        payload.append(records);
        total_entries += entries.size();
    }

    std::string image;
    image.reserve(kFileHeaderBytes + payload.size());
    image.append(magic, sizeof magic);
    put_u32(image, format_version);
    put_u32(image, static_cast<std::uint32_t>(shard_count));
    put_u64(image, fingerprint);
    put_u64(image, total_entries);
    put_u64(image, payload.size());
    put_u32(image, crc32c(image.data(), image.size()));
    put_u32(image, 0);  // reserved
    image.append(payload);
    if (entries_out != nullptr) {
        *entries_out = total_entries;
    }
    return image;
}

write_result write_file(const memo_cache& cache, std::uint64_t fingerprint,
                        const std::string& path) {
    std::uint64_t entries = 0;
    std::string image;
    try {
        image = serialize(cache, fingerprint, &entries);
    } catch (const std::bad_alloc&) {
        return write_error("out of memory serializing snapshot", "");
    }
    if (faults::should_fail("serve.snapshot_write")) {
        return write_error("injected snapshot write failure", "");
    }
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        return write_error("open " + tmp + ": " + std::strerror(errno), "");
    }
    if (!write_all(fd, image)) {
        const int err = errno;
        ::close(fd);
        return write_error("write " + tmp + ": " + std::strerror(err), tmp);
    }
    if (::fsync(fd) != 0) {
        const int err = errno;
        ::close(fd);
        return write_error("fsync " + tmp + ": " + std::strerror(err), tmp);
    }
    if (::close(fd) != 0) {
        return write_error("close " + tmp + ": " + std::strerror(errno), tmp);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        return write_error("rename " + tmp + ": " + std::strerror(errno),
                           tmp);
    }
    sync_parent_dir(path);
    write_result r;
    r.ok = true;
    r.entries = entries;
    r.bytes = image.size();
    return r;
}

restore_result deserialize_into(memo_cache& cache, std::uint64_t fingerprint,
                                const std::string& image) {
    const std::uint64_t size = image.size();
    if (size < kFileHeaderBytes) {
        return corrupt("truncated header (" + std::to_string(size) +
                           " bytes)",
                       size);
    }
    const char* p = image.data();
    if (std::memcmp(p, magic, sizeof magic) != 0) {
        return corrupt("bad magic", size);
    }
    const std::uint32_t header_crc = get_u32(p + 40);
    if (crc32c(p, 40) != header_crc) {
        return corrupt("header checksum mismatch", size);
    }
    const std::uint32_t version = get_u32(p + 8);
    if (version != format_version) {
        return corrupt("format version " + std::to_string(version) +
                           ", want " + std::to_string(format_version),
                       size);
    }
    const std::uint64_t file_fingerprint = get_u64(p + 16);
    if (file_fingerprint != fingerprint) {
        return corrupt("engine-config fingerprint mismatch", size);
    }
    const std::uint32_t shard_count = get_u32(p + 12);
    const std::uint64_t entry_count = get_u64(p + 24);
    const std::uint64_t payload_bytes = get_u64(p + 32);
    if (payload_bytes != size - kFileHeaderBytes) {
        return corrupt("payload length mismatch", size);
    }

    // Stage every record before the first insertion: a failure anywhere
    // below must leave the cache untouched.  Views point into `image`.
    std::vector<std::pair<std::string_view, std::string_view>> staged;
    if (entry_count > size / kRecordHeaderBytes) {
        return corrupt("entry count exceeds file size", size);
    }
    staged.reserve(entry_count);
    std::uint64_t at = kFileHeaderBytes;
    for (std::uint32_t s = 0; s < shard_count; ++s) {
        if (size - at < kShardHeaderBytes) {
            return corrupt("truncated shard header", size);
        }
        const std::uint64_t shard_entries = get_u64(p + at);
        const std::uint64_t record_bytes = get_u64(p + at + 8);
        const std::uint32_t record_crc = get_u32(p + at + 16);
        at += kShardHeaderBytes;
        if (record_bytes > size - at) {
            return corrupt("shard record region exceeds file size", size);
        }
        if (crc32c(p + at, record_bytes) != record_crc) {
            return corrupt("shard " + std::to_string(s) +
                               " checksum mismatch",
                           size);
        }
        const std::uint64_t region_end = at + record_bytes;
        std::uint64_t parsed = 0;
        while (at < region_end) {
            if (region_end - at < kRecordHeaderBytes) {
                return corrupt("truncated record header", size);
            }
            const std::uint32_t key_len = get_u32(p + at);
            const std::uint32_t value_len = get_u32(p + at + 4);
            at += kRecordHeaderBytes;
            if (key_len == 0 || value_len == 0) {
                return corrupt("zero-length record field", size);
            }
            if (key_len > region_end - at ||
                value_len > region_end - at - key_len) {
                return corrupt("record length exceeds shard region", size);
            }
            staged.emplace_back(std::string_view{p + at, key_len},
                                std::string_view{p + at + key_len,
                                                 value_len});
            at += key_len;
            at += value_len;
            ++parsed;
        }
        if (parsed != shard_entries) {
            return corrupt("shard " + std::to_string(s) + " entry count " +
                               std::to_string(parsed) + ", header says " +
                               std::to_string(shard_entries),
                           size);
        }
    }
    if (at != size) {
        return corrupt("trailing bytes after last shard", size);
    }
    if (staged.size() != entry_count) {
        return corrupt("total entry count mismatch", size);
    }

    // Everything validated: replay in file order (LRU -> MRU per shard)
    // so put() reproduces the recency order of the snapshotted cache.
    for (const auto& [key, value] : staged) {
        cache.put(key, std::string{value});
    }
    restore_result r;
    r.outcome = restore_outcome::restored;
    r.entries = staged.size();
    r.bytes = size;
    return r;
}

restore_result restore_file(memo_cache& cache, std::uint64_t fingerprint,
                            const std::string& path) {
    if (faults::should_fail("serve.snapshot_read")) {
        return corrupt("injected snapshot read failure", 0);
    }
    faults::maybe_delay("serve.snapshot_read");
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        if (errno == ENOENT) {
            return restore_result{};  // cold_missing: normal first boot
        }
        return corrupt("open " + path + ": " + std::strerror(errno), 0);
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        return corrupt("snapshot is not a regular file", 0);
    }
    std::string image;
    try {
        image.resize(static_cast<std::size_t>(st.st_size));
    } catch (const std::bad_alloc&) {
        ::close(fd);
        return corrupt("out of memory reading snapshot", 0);
    }
    std::size_t got = 0;
    while (got < image.size()) {
        const ssize_t n =
            ::read(fd, image.data() + got, image.size() - got);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        break;  // EOF early (file shrank) or read error
    }
    ::close(fd);
    if (got != image.size()) {
        return corrupt("short read (" + std::to_string(got) + " of " +
                           std::to_string(image.size()) + " bytes)",
                       got);
    }
    try {
        return deserialize_into(cache, fingerprint, image);
    } catch (const std::bad_alloc&) {
        return corrupt("out of memory restoring snapshot", image.size());
    }
}

}  // namespace silicon::serve::snapshot
