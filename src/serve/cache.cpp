#include "serve/cache.hpp"

#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace silicon::serve {

struct memo_cache::shard {
    using entry = std::pair<std::string, std::shared_ptr<const std::string>>;

    mutable std::mutex mutex;
    std::list<entry> lru;  ///< front = most recently used
    std::unordered_map<std::string_view, std::list<entry>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
};

namespace {

std::size_t shard_for(std::string_view key, std::size_t shard_count) {
    return std::hash<std::string_view>{}(key) % shard_count;
}

}  // namespace

memo_cache::memo_cache(std::size_t capacity, std::size_t shards)
    : capacity_{capacity} {
    if (capacity_ == 0) {
        return;
    }
    shard_count_ = shards == 0 ? 1 : shards;
    if (shard_count_ > capacity_) {
        shard_count_ = capacity_;
    }
    per_shard_capacity_ = (capacity_ + shard_count_ - 1) / shard_count_;
    shards_ = new shard[shard_count_];
}

memo_cache::~memo_cache() { delete[] shards_; }

std::shared_ptr<const std::string> memo_cache::get(std::string_view key) {
    if (shards_ == nullptr) {
        disabled_misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    shard& s = shards_[shard_for(key, shard_count_)];
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.index.find(key);
    if (it == s.index.end()) {
        ++s.misses;
        return nullptr;
    }
    ++s.hits;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return it->second->second;
}

std::shared_ptr<const std::string> memo_cache::get_if_present(
    std::string_view key) {
    if (shards_ == nullptr) {
        return nullptr;
    }
    shard& s = shards_[shard_for(key, shard_count_)];
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.index.find(key);
    if (it == s.index.end()) {
        return nullptr;
    }
    ++s.hits;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return it->second->second;
}

void memo_cache::put(std::string_view key, std::string value) {
    if (shards_ == nullptr) {
        return;
    }
    shard& s = shards_[shard_for(key, shard_count_)];
    auto stored = std::make_shared<const std::string>(std::move(value));
    const std::lock_guard<std::mutex> lock(s.mutex);
    if (const auto it = s.index.find(key); it != s.index.end()) {
        it->second->second = std::move(stored);
        s.lru.splice(s.lru.begin(), s.lru, it->second);
        return;
    }
    if (s.lru.size() >= per_shard_capacity_) {
        // The index keys view into the list node's string, so erase the
        // index entry before destroying the node.
        s.index.erase(s.lru.back().first);
        s.lru.pop_back();
        ++s.evictions;
    }
    s.lru.emplace_front(std::string{key}, std::move(stored));
    s.index.emplace(s.lru.front().first, s.lru.begin());
}

std::size_t memo_cache::shed_shards(std::size_t count) {
    if (shards_ == nullptr) {
        return 0;
    }
    if (count > shard_count_) {
        count = shard_count_;
    }
    std::size_t dropped = 0;
    for (std::size_t i = 0; i < count; ++i) {
        shard& s = shards_[i];
        const std::lock_guard<std::mutex> lock(s.mutex);
        dropped += s.lru.size();
        s.evictions += s.lru.size();
        s.index.clear();
        s.lru.clear();
    }
    return dropped;
}

void memo_cache::clear() {
    for (std::size_t i = 0; i < shard_count_; ++i) {
        shard& s = shards_[i];
        const std::lock_guard<std::mutex> lock(s.mutex);
        s.index.clear();
        s.lru.clear();
    }
}

std::vector<std::pair<std::string, std::shared_ptr<const std::string>>>
memo_cache::shard_snapshot(std::size_t index) const {
    std::vector<std::pair<std::string, std::shared_ptr<const std::string>>>
        out;
    if (shards_ == nullptr || index >= shard_count_) {
        return out;
    }
    const shard& s = shards_[index];
    const std::lock_guard<std::mutex> lock(s.mutex);
    out.reserve(s.lru.size());
    for (auto it = s.lru.rbegin(); it != s.lru.rend(); ++it) {
        out.emplace_back(it->first, it->second);
    }
    return out;
}

memo_cache::stats memo_cache::snapshot() const {
    stats out;
    out.capacity = capacity_;
    out.shards = shard_count_;
    out.misses = disabled_misses_.load(std::memory_order_relaxed);
    out.shard_entries.reserve(shard_count_);
    for (std::size_t i = 0; i < shard_count_; ++i) {
        const shard& s = shards_[i];
        const std::lock_guard<std::mutex> lock(s.mutex);
        out.hits += s.hits;
        out.misses += s.misses;
        out.evictions += s.evictions;
        out.entries += s.lru.size();
        out.shard_entries.push_back(s.lru.size());
    }
    return out;
}

}  // namespace silicon::serve
