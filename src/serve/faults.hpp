// faults.hpp — deterministic fault injection for overload testing.
//
// Production serving stacks earn their overload behavior through
// failure injection: you cannot claim "never crashes, never OOMs, every
// line gets exactly one reply" without making allocators fail, tasks
// stall, writes return short, and syscalls take EINTR storms on
// purpose.  This module is the single switchboard: named *sites* in the
// serving stack ask it whether to misbehave, and a spec string —
// usually the `SILICON_FAULTS` environment variable, or
// `faults::configure` in tests — arms rules against those sites.
//
// Spec grammar (comma-separated rules):
//
//     kind@site[:arg][,kind@site:arg...]
//
//     alloc_fail@SITE:N    every Nth arrival at SITE fails (throws
//                          std::bad_alloc at the call site); default 1
//     slow_task@SITE:MS    every arrival at SITE sleeps MS ms; default 1
//     short_write@SITE:CAP writes at SITE are capped to CAP bytes;
//                          default 1
//     eintr@SITE:N         each write/read attempt at SITE fails with
//                          EINTR N times before succeeding once
//                          (cycling); default 1
//
// Example:
//
//     SILICON_FAULTS='alloc_fail@serve.arena:3,eintr@silicond.write:2'
//
// Sites in this repo: serve.line, serve.eval, serve.arena,
// serve.snapshot_write (fail or delay cache-snapshot serialization),
// serve.snapshot_read (fail or delay snapshot restore),
// silicond.write, silicond.read (DESIGN.md §11 keeps the registry).
//
// Determinism: triggering is counter-based (no RNG), so with period 1
// every arrival misbehaves and chaos runs are reproducible per line.
// Periods > 1 under parallel batches trigger by *arrival order*, which
// is deliberately racy — that is the chaos.  `enabled()` is a single
// relaxed atomic load, so the un-injected hot path pays one branch and
// the zero-allocation warm-hit gate is untouched.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace silicon::serve::faults {

/// Arm the given spec (replacing any previous one).  An empty spec
/// disarms everything.  Throws std::invalid_argument on a malformed
/// spec — a typo'd chaos run must fail loudly, not silently test
/// nothing.
void configure(std::string_view spec);

/// `configure(getenv("SILICON_FAULTS"))`; absent/empty disarms.
void configure_from_env();

/// Disarm all rules (equivalent to configure("")).
void reset();

/// True when any rule is armed — the one-branch hot-path guard; all
/// site queries below are meaningful (but safe) either way.
[[nodiscard]] bool enabled() noexcept;

/// alloc_fail: true when this arrival at `site` should fail; the call
/// site is expected to throw std::bad_alloc (or decline its fast path).
[[nodiscard]] bool should_fail(std::string_view site);

/// slow_task: sleep this arrival's configured delay (no-op unarmed).
void maybe_delay(std::string_view site);

/// short_write: byte cap for writes at `site`; 0 = uncapped.
[[nodiscard]] std::size_t write_cap(std::string_view site);

/// eintr: true when this attempt at `site` must fail with EINTR.
[[nodiscard]] bool take_eintr(std::string_view site);

/// Total faults injected at `site` since the last configure/reset
/// (asserted by the chaos tests to prove the fault actually fired).
[[nodiscard]] std::uint64_t injected(std::string_view site);

/// Total across all sites.
[[nodiscard]] std::uint64_t injected_total();

}  // namespace silicon::serve::faults
