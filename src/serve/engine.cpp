#include "serve/engine.hpp"

#include "chiplet/batch.hpp"
#include "chiplet/model.hpp"
#include "core/cost_model.hpp"
#include "cost/batch.hpp"
#include "exec/arena.hpp"
#include "obs/trace.hpp"
#include "core/scenario.hpp"
#include "core/table3.hpp"
#include "exec/thread_pool.hpp"
#include "geometry/gross_die.hpp"
#include "opt/partition.hpp"
#include "serve/faults.hpp"
#include "serve/json_arena.hpp"
#include "serve/request_fast.hpp"
#include "simd/dispatch.hpp"
#include "yield/batch.hpp"
#include "yield/models.hpp"
#include "yield/monte_carlo.hpp"
#include "yield/scaled.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstring>
#include <exception>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace silicon::serve {

namespace {

// ---------------------------------------------------------------------------
// Endpoint evaluators: typed request -> result JSON.  Each routes into
// the library exactly as a direct caller would; invalid/infeasible
// inputs surface as the library's own exceptions and become error
// responses upstream.
// ---------------------------------------------------------------------------

geometry::gross_die_method method_from_string(const std::string& name) {
    using geometry::gross_die_method;
    for (const gross_die_method m :
         {gross_die_method::maly_rows, gross_die_method::maly_rows_best_orient,
          gross_die_method::area_ratio, gross_die_method::circumference,
          gross_die_method::ferris_prabhu, gross_die_method::exact}) {
        if (geometry::to_string(m) == name) {
            return m;
        }
    }
    throw request_error("bad_param",
                        "unknown gross-die method '" + name + "'");
}

core::process_spec build_process(const process_params& p) {
    core::yield_spec yield{probability{1.0}};
    switch (p.yield.model) {
        case yield_spec_params::kind::reference:
            yield = yield::reference_die_yield{
                probability{p.yield.y0},
                square_centimeters{p.yield.a0_cm2}};
            break;
        case yield_spec_params::kind::scaled:
            yield = yield::scaled_poisson_model{p.yield.d, p.yield.p};
            break;
        case yield_spec_params::kind::fixed:
            yield = probability{p.yield.fixed};
            break;
    }
    return core::process_spec{
        cost::wafer_cost_model{dollars{p.c0_usd}, p.x,
                               microns{p.generation_step_um}},
        geometry::wafer{centimeters{p.wafer_radius_cm},
                        centimeters{p.edge_exclusion_cm}},
        std::move(yield),
        method_from_string(p.gross_die_method),
    };
}

json::value eval_cost_tr(const cost_tr_request& q) {
    const core::cost_model model{build_process(q.process)};

    core::product_spec product;
    product.name = q.product.name;
    product.transistors = q.product.transistors;
    product.design_density = q.product.design_density;
    product.feature_size = microns{q.product.feature_size_um};
    product.die_aspect_ratio = q.product.die_aspect_ratio;

    core::economics_spec economics;
    economics.overhead = dollars{q.economics.overhead_usd};
    economics.volume_wafers = q.economics.volume_wafers;

    const core::cost_breakdown b = model.evaluate(product, economics);

    json::object o;
    o.set("product", b.product_name);
    o.set("feature_size_um", b.feature_size.value());
    o.set("die_area_mm2", b.die_area.value());
    o.set("gross_dies_per_wafer", static_cast<double>(b.gross_dies_per_wafer));
    o.set("yield", b.yield.value());
    o.set("good_dies_per_wafer", b.good_dies_per_wafer);
    o.set("wafer_cost_usd", b.wafer_cost.value());
    o.set("cost_per_good_die_usd", b.cost_per_good_die.value());
    o.set("cost_per_transistor_usd", b.cost_per_transistor.value());
    o.set("cost_per_transistor_micro_usd",
          b.cost_per_transistor_micro_dollars());
    return json::value{std::move(o)};
}

json::value eval_gross_die(const gross_die_request& q) {
    const geometry::wafer w{centimeters{q.wafer_radius_cm},
                            centimeters{q.edge_exclusion_cm}};
    const geometry::die d{millimeters{q.die_width_mm},
                          millimeters{q.die_height_mm}};
    const long count = geometry::gross_dies(w, d, method_from_string(q.method),
                                            millimeters{q.scribe_mm});
    json::object o;
    o.set("count", static_cast<double>(count));
    o.set("method", q.method);
    o.set("die_area_mm2", d.area().value());
    o.set("wafer_area_cm2", w.area().value());
    return json::value{std::move(o)};
}

json::value eval_yield(const yield_request& q) {
    json::object o;
    o.set("model", q.model);

    if (q.model == "scaled_poisson") {
        const yield::scaled_poisson_model model{q.d, q.p};
        o.set("yield", model.yield(square_centimeters{q.die_area_cm2},
                                   microns{q.lambda_um})
                           .value());
        o.set("effective_defects_per_cm2",
              model.effective_defect_density(microns{q.lambda_um}));
        return json::value{std::move(o)};
    }
    if (q.model == "reference") {
        const yield::reference_die_yield model{probability{q.y0},
                                               square_centimeters{q.a0_cm2}};
        o.set("yield",
              model.yield(square_centimeters{q.die_area_cm2}).value());
        o.set("equivalent_defects_per_cm2",
              model.equivalent_defect_density());
        return json::value{std::move(o)};
    }

    const double faults = q.expected_faults >= 0.0
                              ? q.expected_faults
                              : q.die_area_cm2 * q.defects_per_cm2;
    if (!(faults >= 0.0) || !std::isfinite(faults)) {
        throw request_error("bad_param",
                            "yield: expected fault count must be finite "
                            "and non-negative");
    }
    probability y{0.0};
    if (q.model == "poisson") {
        y = yield::poisson_model{}.yield(faults);
    } else if (q.model == "murphy") {
        y = yield::murphy_model{}.yield(faults);
    } else if (q.model == "seeds") {
        y = yield::seeds_model{}.yield(faults);
    } else if (q.model == "bose_einstein") {
        y = yield::bose_einstein_model{q.critical_steps}.yield(faults);
    } else if (q.model == "neg_binomial") {
        y = yield::negative_binomial_model{q.alpha}.yield(faults);
    } else {
        throw request_error("bad_param",
                            "yield: unknown model '" + q.model + "'");
    }
    o.set("expected_faults", faults);
    o.set("yield", y.value());
    return json::value{std::move(o)};
}

json::value eval_scenario1(const scenario1_request& q) {
    core::scenario1 s;
    s.wafer_cost = cost::wafer_cost_model{dollars{q.c0_usd}, q.x};
    s.wafer = geometry::wafer{centimeters{q.wafer_radius_cm}};
    s.design_density = q.design_density;
    const dollars ctr = s.cost_per_transistor(microns{q.lambda_um});

    json::object o;
    o.set("cost_per_transistor_usd", ctr.value());
    o.set("cost_per_transistor_micro_usd", ctr.value() * 1e6);
    return json::value{std::move(o)};
}

json::value eval_scenario2(const scenario2_request& q) {
    core::scenario2 s;
    s.wafer_cost = cost::wafer_cost_model{dollars{q.c0_usd}, q.x};
    s.wafer = geometry::wafer{centimeters{q.wafer_radius_cm}};
    s.design_density = q.design_density;
    s.yield = yield::reference_die_yield{probability{q.y0}};
    const microns lambda{q.lambda_um};
    const dollars ctr = s.cost_per_transistor(lambda);

    json::object o;
    o.set("cost_per_transistor_usd", ctr.value());
    o.set("cost_per_transistor_micro_usd", ctr.value() * 1e6);
    o.set("die_area_cm2", s.die_area(lambda).value());
    o.set("transistors", s.transistors(lambda));
    return json::value{std::move(o)};
}

json::value comparison_to_json(const core::table3_comparison& c) {
    json::object o;
    o.set("row", c.row.index);
    o.set("ic_type", c.row.ic_type);
    o.set("printed_ctr_micro", c.row.printed_ctr_micro);
    o.set("computed_ctr_micro", c.computed_ctr_micro);
    o.set("ratio", c.ratio);
    o.set("reconstructed", c.row.reconstructed);
    return json::value{std::move(o)};
}

json::value eval_table3(const table3_request& q) {
    const std::vector<core::table3_comparison> all = core::reproduce_table3();
    if (q.row != 0) {
        for (const core::table3_comparison& c : all) {
            if (c.row.index == q.row) {
                return comparison_to_json(c);
            }
        }
        throw request_error("bad_param", "table3: no row " +
                                             std::to_string(q.row));
    }
    json::array rows;
    rows.reserve(all.size());
    for (const core::table3_comparison& c : all) {
        rows.push_back(comparison_to_json(c));
    }
    json::object o;
    o.set("rows", std::move(rows));
    o.set("memory_logic_separation", core::memory_logic_separation());
    return json::value{std::move(o)};
}

json::value eval_mc_yield(const mc_yield_request& q, unsigned parallelism,
                          const exec::cancel_token* cancel) {
    yield::wire_array_layout layout;
    layout.line_width = q.line_width_um;
    layout.line_spacing = q.line_spacing_um;
    layout.line_length = q.line_length_um;
    layout.line_count = q.line_count;

    const yield::defect_size_distribution sizes{q.defect_r0_um, q.defect_p,
                                                q.defect_q};

    yield::monte_carlo_config config;
    config.dies = static_cast<std::size_t>(q.dies);
    config.defects_per_um2 = q.defects_per_um2;
    config.extra_material_fraction = q.extra_material_fraction;
    config.seed = q.seed;
    config.parallelism = parallelism;
    config.cancel = cancel;

    const yield::monte_carlo_result r =
        yield::simulate_layout_yield(layout, sizes, config);

    json::object o;
    o.set("dies", static_cast<double>(r.dies));
    o.set("good_dies", static_cast<double>(r.good_dies));
    o.set("defects_thrown", static_cast<double>(r.defects_thrown));
    o.set("shorts", static_cast<double>(r.shorts));
    o.set("opens", static_cast<double>(r.opens));
    o.set("yield", r.yield);
    o.set("std_error", r.std_error);
    o.set("observed_faults_per_die", r.observed_faults_per_die());
    return json::value{std::move(o)};
}

chiplet::substrate_kind substrate_from_string(const std::string& name) {
    if (name == "rdl") {
        return chiplet::substrate_kind::rdl;
    }
    if (name == "interposer") {
        return chiplet::substrate_kind::interposer;
    }
    return chiplet::substrate_kind::organic;  // parse validated the enum
}

chiplet::chiplet_spec spec_from(const chiplet_request& q) {
    chiplet::chiplet_spec s;
    s.logic_area_mm2 = q.logic_area_mm2;
    s.memory_area_mm2 = q.memory_area_mm2;
    s.io_area_mm2 = q.io_area_mm2;
    s.chiplets = q.chiplets;
    s.d2d_area_mm2 = q.d2d_area_mm2;
    s.lambda_um = q.lambda_um;
    s.c0_usd = q.c0_usd;
    s.x = q.x;
    s.generation_step_um = q.generation_step_um;
    s.wafer_radius_cm = q.wafer_radius_cm;
    s.edge_exclusion_cm = q.edge_exclusion_cm;
    s.defects_per_cm2 = q.defects_per_cm2;
    s.memory_defect_factor = q.memory_defect_factor;
    s.io_defect_factor = q.io_defect_factor;
    s.clustering_alpha = q.clustering_alpha;
    s.test_coverage = q.test_coverage;
    s.tester_rate_per_hour = q.tester_rate_per_hour;
    s.test_seconds_fixed = q.test_seconds_fixed;
    s.test_seconds_per_cm2 = q.test_seconds_per_cm2;
    s.substrate = substrate_from_string(q.substrate);
    s.substrate_cost_per_cm2 = q.substrate_cost_per_cm2;
    s.rdl_cost_per_cm2 = q.rdl_cost_per_cm2;
    s.rdl_defects_per_cm2 = q.rdl_defects_per_cm2;
    s.interposer_cost_per_cm2 = q.interposer_cost_per_cm2;
    s.interposer_defects_per_cm2 = q.interposer_defects_per_cm2;
    s.package_area_factor = q.package_area_factor;
    s.bond_yield = q.bond_yield;
    s.bonding_cost_per_chiplet = q.bonding_cost_per_chiplet;
    return s;
}

/// The chiplet endpoint's result object from a computed breakdown.
/// Shared by eval_chiplet and the explore-lane cache population, so a
/// cached explore cell is byte-identical to a fresh point evaluation.
json::value chiplet_result_json(const chiplet::chiplet_breakdown& b,
                                const std::string& substrate) {
    json::object o;
    o.set("chiplets", static_cast<double>(b.chiplets));
    o.set("total_area_mm2", b.total_area_mm2);
    o.set("chiplet_area_mm2", b.chiplet_area_mm2);
    o.set("die_yield", b.die_yield);
    o.set("gross_dies_per_wafer", b.gross_dies_per_wafer);
    o.set("wafer_cost_usd", b.wafer_cost_usd);
    o.set("die_cost_usd", b.die_cost_usd);
    o.set("test_cost_per_die_usd", b.test_cost_per_die_usd);
    o.set("defect_level", b.defect_level);
    o.set("substrate", substrate);
    o.set("package_area_cm2", b.package_area_cm2);
    o.set("substrate_cost_usd", b.substrate_cost_usd);
    o.set("substrate_yield", b.substrate_yield);
    o.set("assembly_yield", b.assembly_yield);
    o.set("module_yield", b.module_yield);
    o.set("bonding_cost_usd", b.bonding_cost_usd);
    o.set("cost_per_system_usd", b.cost_per_system_usd);
    o.set("cost_per_good_system_usd", b.cost_per_good_system_usd);
    return json::value{std::move(o)};
}

json::value eval_chiplet(const chiplet_request& q) {
    return chiplet_result_json(chiplet::evaluate_chiplet(spec_from(q)),
                               q.substrate);
}

/// The split counts of a validated partition_explore `splits` list
/// ("1,2,4" -> {1, 2, 4}).  Parse already enforced the grammar, so
/// this cannot fail.
std::vector<int> parse_splits(const std::string& splits) {
    std::vector<int> out;
    int value = 0;
    for (const char c : splits) {
        if (c == ',') {
            out.push_back(value);
            value = 0;
        } else {
            value = value * 10 + (c - '0');
        }
    }
    out.push_back(value);
    return out;
}

/// Grid cells a partition_explore request evaluates (splits x points);
/// the structural budget check charges against max_sweep_points.
std::size_t explore_cells(const partition_explore_request& q) {
    std::size_t split_count = 1;
    for (const char c : q.splits) {
        split_count += c == ',' ? 1 : 0;
    }
    return static_cast<std::size_t>(q.count) * split_count;
}

/// Grid points on [from, to], endpoints inclusive, linear or geometric.
/// Shared by sweep and partition_explore so both produce bit-identical
/// grids for the same bounds.
std::vector<double> grid_points(double from, double to, int count,
                                bool log_scale) {
    std::vector<double> xs;
    xs.reserve(static_cast<std::size_t>(count));
    if (count == 1) {
        xs.push_back(from);
        return xs;
    }
    for (int i = 0; i < count; ++i) {
        const double t = static_cast<double>(i) /
                         static_cast<double>(count - 1);
        if (log_scale) {
            xs.push_back(from * std::exp(t * std::log(to / from)));
        } else {
            xs.push_back(from + t * (to - from));
        }
    }
    return xs;
}

/// Grid points of a sweep: linear or geometric, endpoints inclusive.
std::vector<double> sweep_grid(const sweep_request& q) {
    return grid_points(q.from, q.to, q.count, q.scale == "log");
}

/// Find the dotted-path member in a (mutable) document.
json::value* walk(json::value& root, std::string_view path) {
    json::value* node = &root;
    std::size_t begin = 0;
    for (;;) {
        const std::size_t dot = path.find('.', begin);
        const std::string_view segment =
            path.substr(begin,
                        dot == std::string_view::npos ? path.size() - begin
                                                      : dot - begin);
        if (!node->is_object()) {
            return nullptr;
        }
        node = node->as_object().find(segment);
        if (node == nullptr || dot == std::string_view::npos) {
            return node;
        }
        begin = dot + 1;
    }
}

std::string error_code_for(const std::exception& e) {
    if (const auto* schema = dynamic_cast<const request_error*>(&e)) {
        return schema->code();
    }
    if (dynamic_cast<const exec::cancelled_error*>(&e) != nullptr) {
        // Before the generic buckets: cancelled_error is a
        // runtime_error, and its fixed what() keeps the envelope
        // byte-deterministic.
        return "deadline_exceeded";
    }
    if (dynamic_cast<const std::domain_error*>(&e) != nullptr) {
        return "domain_error";
    }
    if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) {
        return "bad_param";
    }
    return "internal_error";
}

/// Assemble a response line.  The envelope is built by concatenation so
/// a cache-hit result splices in verbatim and the bytes are identical
/// to a fresh evaluation's.  `trace` (the client's trace_id, nullptr =
/// none) echoes right after the id, so envelopes without one are
/// byte-identical to the pre-trace format.
std::string envelope(const json::value* id, const std::string* trace,
                     bool ok, std::string_view body_key,
                     std::string_view body) {
    std::string out = "{";
    if (id != nullptr) {
        out += "\"id\":";
        out += json::dump(*id);
        out += ",";
    }
    if (trace != nullptr) {
        out += "\"trace_id\":";
        json::write_string_into(out, *trace);
        out += ",";
    }
    out += "\"ok\":";
    out += ok ? "true" : "false";
    out += ",\"";
    out += body_key;
    out += "\":";
    out += body;
    out += "}";
    return out;
}

std::string error_body(std::string_view code, std::string_view message) {
    json::object e;
    e.set("code", std::string{code});
    e.set("message", std::string{message});
    return json::dump(json::value{std::move(e)});
}

/// `envelope` for the allocation-free path: identical bytes, appended
/// to a reused buffer, with the `id` and `trace_id` spliced straight
/// from the arena document views (write_string_into escapes exactly
/// like json::dump, so both paths echo identical trace bytes).
void envelope_into(const json::aview* id, const json::aview* trace, bool ok,
                   std::string_view body_key, std::string_view body,
                   std::string& out) {
    out += '{';
    if (id != nullptr) {
        out += "\"id\":";
        json::dump_into(*id, out);
        out += ',';
    }
    if (trace != nullptr) {
        out += "\"trace_id\":";
        json::write_string_into(out, trace->string);
        out += ',';
    }
    out += "\"ok\":";
    out += ok ? "true" : "false";
    out += ",\"";
    out += body_key;
    out += "\":";
    out += body;
    out += '}';
}

/// Best-effort `id` rendering for a flight record: strings verbatim,
/// numbers via shortest-round-trip to_chars (no allocation — the hot
/// path fills records too), everything else elided (records are
/// fixed-size; a composite id would truncate arbitrarily).
void flight_number_field(char (&dst)[32], double v) noexcept {
    char buf[40];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
    if (ec == std::errc{}) {
        obs::assign_field(
            dst, std::string_view{buf, static_cast<std::size_t>(end - buf)});
    }
}

void flight_id_field(char (&dst)[32], const json::value* id) {
    if (id == nullptr) {
        return;
    }
    if (id->is_string()) {
        obs::assign_field(dst, id->as_string());
    } else if (id->is_number()) {
        flight_number_field(dst, id->as_number());
    }
}

void flight_id_field_view(char (&dst)[32], const json::aview* id) {
    if (id == nullptr) {
        return;
    }
    if (id->is_string()) {
        obs::assign_field(dst, id->string);
    } else if (id->is_number()) {
        flight_number_field(dst, id->number);
    }
}

std::uint32_t ns_to_us_u32(std::uint64_t ns) noexcept {
    const std::uint64_t us = ns / 1000;
    return us > UINT32_MAX ? UINT32_MAX
                           : static_cast<std::uint32_t>(us);
}

std::uint64_t ns_between(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// Anomaly trigger set (DESIGN.md §14): transient failures worth a
/// flight dump.  deadline_exceeded and overloaded are self-describing;
/// internal_error is how an injected (or real) allocation failure
/// surfaces, so "fault fired" lands here.
bool anomalous_code(std::string_view code) noexcept {
    return code == "deadline_exceeded" || code == "overloaded" ||
           code == "internal_error";
}

/// Deadline instant for a request that started at `start`.  The budget
/// is clamped far below the time_point's representable range (~31
/// years) so arithmetic never overflows; a clamped deadline never
/// expires in practice, which is the right reading of an absurd value.
std::chrono::steady_clock::time_point deadline_from(
    std::chrono::steady_clock::time_point start, std::uint64_t budget_ms) {
    constexpr std::uint64_t max_ms = 1'000'000'000'000;
    if (budget_ms > max_ms) {
        budget_ms = max_ms;
    }
    return start +
           std::chrono::milliseconds{static_cast<std::int64_t>(budget_ms)};
}

/// Per-thread hot-path scratch: the parse arena, the arena-view parser
/// and the reused request.  Engine instances share it safely — it holds
/// no engine state, only per-line storage that is fully rewritten by
/// each parse.
struct line_state {
    exec::arena arena;
    json::arena_parser parser;
    fast_parse_state parsed;
    /// Cold-miss result body, serialized in place (capacity reused).
    std::string cold;
};

line_state& tls_line_state() {
    thread_local line_state state;
    return state;
}

/// Allocation-free twin of method_from_string for the cold-miss fast
/// path (the generic helper builds std::strings while matching).
bool method_from_view(std::string_view name, geometry::gross_die_method& m) {
    using geometry::gross_die_method;
    if (name == "maly_rows") {
        m = gross_die_method::maly_rows;
    } else if (name == "maly_rows_best_orient") {
        m = gross_die_method::maly_rows_best_orient;
    } else if (name == "area_ratio") {
        m = gross_die_method::area_ratio;
    } else if (name == "circumference") {
        m = gross_die_method::circumference;
    } else if (name == "ferris_prabhu") {
        m = gross_die_method::ferris_prabhu;
    } else if (name == "exact") {
        m = gross_die_method::exact;
    } else {
        return false;
    }
    return true;
}

/// Cold-miss fast path: evaluate a closed-form point op straight from
/// the typed payload and serialize the result body into `out` —
/// byte-identical to json::dump(eval_*(q)) (same field order, same
/// format_number_into/write_string_into bytes) without building a
/// json::value tree, so a warm-capacity serve performs zero heap
/// allocations end to end.  Returns false for ops whose evaluation
/// allocates or needs the engine (the slow path serves those); inputs
/// the scalar library rejects throw out of here exactly like eval_*,
/// and the caller declines to the slow path for authoritative error
/// accounting.
bool cold_result_into(const request& req, std::string& out) {
    switch (req.op) {
        case op_code::scenario1: {
            const auto& q = std::get<scenario1_request>(req.payload);
            core::scenario1 s;
            s.wafer_cost = cost::wafer_cost_model{dollars{q.c0_usd}, q.x};
            s.wafer = geometry::wafer{centimeters{q.wafer_radius_cm}};
            s.design_density = q.design_density;
            const dollars ctr = s.cost_per_transistor(microns{q.lambda_um});
            out += "{\"cost_per_transistor_usd\":";
            json::format_number_into(ctr.value(), out);
            out += ",\"cost_per_transistor_micro_usd\":";
            json::format_number_into(ctr.value() * 1e6, out);
            out += '}';
            return true;
        }
        case op_code::scenario2: {
            const auto& q = std::get<scenario2_request>(req.payload);
            core::scenario2 s;
            s.wafer_cost = cost::wafer_cost_model{dollars{q.c0_usd}, q.x};
            s.wafer = geometry::wafer{centimeters{q.wafer_radius_cm}};
            s.design_density = q.design_density;
            s.yield = yield::reference_die_yield{probability{q.y0}};
            const microns lambda{q.lambda_um};
            const dollars ctr = s.cost_per_transistor(lambda);
            out += "{\"cost_per_transistor_usd\":";
            json::format_number_into(ctr.value(), out);
            out += ",\"cost_per_transistor_micro_usd\":";
            json::format_number_into(ctr.value() * 1e6, out);
            out += ",\"die_area_cm2\":";
            json::format_number_into(s.die_area(lambda).value(), out);
            out += ",\"transistors\":";
            json::format_number_into(s.transistors(lambda), out);
            out += '}';
            return true;
        }
        case op_code::yield: {
            const auto& q = std::get<yield_request>(req.payload);
            out += "{\"model\":";
            json::write_string_into(out, q.model);
            if (q.model == "scaled_poisson") {
                const yield::scaled_poisson_model model{q.d, q.p};
                out += ",\"yield\":";
                json::format_number_into(
                    model.yield(square_centimeters{q.die_area_cm2},
                                microns{q.lambda_um})
                        .value(),
                    out);
                out += ",\"effective_defects_per_cm2\":";
                json::format_number_into(
                    model.effective_defect_density(microns{q.lambda_um}),
                    out);
                out += '}';
                return true;
            }
            if (q.model == "reference") {
                const yield::reference_die_yield model{
                    probability{q.y0}, square_centimeters{q.a0_cm2}};
                out += ",\"yield\":";
                json::format_number_into(
                    model.yield(square_centimeters{q.die_area_cm2}).value(),
                    out);
                out += ",\"equivalent_defects_per_cm2\":";
                json::format_number_into(model.equivalent_defect_density(),
                                         out);
                out += '}';
                return true;
            }
            const double faults = q.expected_faults >= 0.0
                                      ? q.expected_faults
                                      : q.die_area_cm2 * q.defects_per_cm2;
            if (!(faults >= 0.0) || !std::isfinite(faults)) {
                return false;  // slow path owns the bad_param error
            }
            probability y{0.0};
            if (q.model == "poisson") {
                y = yield::poisson_model{}.yield(faults);
            } else if (q.model == "murphy") {
                y = yield::murphy_model{}.yield(faults);
            } else if (q.model == "seeds") {
                y = yield::seeds_model{}.yield(faults);
            } else if (q.model == "bose_einstein") {
                y = yield::bose_einstein_model{q.critical_steps}.yield(
                    faults);
            } else if (q.model == "neg_binomial") {
                y = yield::negative_binomial_model{q.alpha}.yield(faults);
            } else {
                return false;  // unknown model: slow path owns the error
            }
            out += ",\"expected_faults\":";
            json::format_number_into(faults, out);
            out += ",\"yield\":";
            json::format_number_into(y.value(), out);
            out += '}';
            return true;
        }
        case op_code::gross_die: {
            const auto& q = std::get<gross_die_request>(req.payload);
            geometry::gross_die_method m{};
            if (!method_from_view(q.method, m)) {
                return false;  // slow path owns the bad_param error
            }
            const geometry::wafer w{centimeters{q.wafer_radius_cm},
                                    centimeters{q.edge_exclusion_cm}};
            const geometry::die d{millimeters{q.die_width_mm},
                                  millimeters{q.die_height_mm}};
            const long count =
                geometry::gross_dies(w, d, m, millimeters{q.scribe_mm});
            out += "{\"count\":";
            json::format_number_into(static_cast<double>(count), out);
            out += ",\"method\":";
            json::write_string_into(out, q.method);
            out += ",\"die_area_mm2\":";
            json::format_number_into(d.area().value(), out);
            out += ",\"wafer_area_cm2\":";
            json::format_number_into(w.area().value(), out);
            out += '}';
            return true;
        }
        default:
            return false;
    }
}

}  // namespace

// ---------------------------------------------------------------------------
// engine
// ---------------------------------------------------------------------------

engine::engine(engine_config config)
    : config_{config},
      cache_{config.cache_capacity, config.cache_shards} {}

json::value engine::evaluate(const request& req) {
    return evaluate_impl(req, nullptr);
}

json::value engine::evaluate_impl(const request& req,
                                  const exec::cancel_token* cancel) {
    // Structural budget checks (too_large): properties of the request
    // alone, so the same request is rejected identically every time —
    // the deterministic half of the rejection taxonomy.
    if (req.op == op_code::sweep && config_.limits.max_sweep_points != 0) {
        const auto& q = std::get<sweep_request>(req.payload);
        if (static_cast<std::size_t>(q.count) >
            config_.limits.max_sweep_points) {
            admission_.note_rejection(reject_reason::sweep_too_large);
            throw request_error(
                "too_large",
                "sweep: count exceeds max_sweep_points " +
                    std::to_string(config_.limits.max_sweep_points));
        }
    }
    if (req.op == op_code::mc_yield && config_.limits.max_mc_dies != 0) {
        const auto& q = std::get<mc_yield_request>(req.payload);
        if (static_cast<std::size_t>(q.dies) > config_.limits.max_mc_dies) {
            admission_.note_rejection(reject_reason::mc_too_large);
            throw request_error(
                "too_large",
                "mc_yield: dies exceeds max_mc_dies " +
                    std::to_string(config_.limits.max_mc_dies));
        }
    }
    if (req.op == op_code::partition_explore &&
        config_.limits.max_sweep_points != 0) {
        const auto& q = std::get<partition_explore_request>(req.payload);
        if (explore_cells(q) > config_.limits.max_sweep_points) {
            admission_.note_rejection(reject_reason::explore_too_large);
            throw request_error(
                "too_large",
                "partition_explore: grid cells exceed max_sweep_points " +
                    std::to_string(config_.limits.max_sweep_points));
        }
    }

    switch (req.op) {
        case op_code::cost_tr:
            return eval_cost_tr(std::get<cost_tr_request>(req.payload));
        case op_code::gross_die:
            return eval_gross_die(std::get<gross_die_request>(req.payload));
        case op_code::yield:
            return eval_yield(std::get<yield_request>(req.payload));
        case op_code::scenario1:
            return eval_scenario1(std::get<scenario1_request>(req.payload));
        case op_code::scenario2:
            return eval_scenario2(std::get<scenario2_request>(req.payload));
        case op_code::table3:
            return eval_table3(std::get<table3_request>(req.payload));
        case op_code::mc_yield:
            return eval_mc_yield(std::get<mc_yield_request>(req.payload),
                                 config_.parallelism, cancel);
        case op_code::sweep:
            return eval_sweep(std::get<sweep_request>(req.payload), cancel);
        case op_code::stats:
            return stats_json();
        case op_code::chiplet:
            return eval_chiplet(std::get<chiplet_request>(req.payload));
        case op_code::partition_explore:
            return eval_partition_explore(
                std::get<partition_explore_request>(req.payload), cancel);
    }
    throw std::logic_error("engine: unhandled op");
}

std::shared_ptr<const std::string> engine::result_for(
    const request& req, const exec::cancel_token* cancel,
    line_probe* probe) {
    {
        const obs::trace_span span{"serve.cache", "serve"};
        const auto t0 = std::chrono::steady_clock::now();
        auto hit = cache_.get(req.canonical_key);
        if (probe != nullptr) {
            probe->cache_probed = true;
            probe->cache_ns =
                ns_between(t0, std::chrono::steady_clock::now());
            probe->cache_hit = hit != nullptr;
        }
        if (hit) {
            metrics_.at(req.op).cache_hits.fetch_add(
                1, std::memory_order_relaxed);
            return hit;
        }
    }
    if (faults::enabled()) {
        faults::maybe_delay("serve.eval");
        if (faults::should_fail("serve.eval")) {
            throw std::bad_alloc{};
        }
    }
    std::shared_ptr<const std::string> result;
    {
        const obs::trace_span span{"serve.exec", "serve"};
        const auto t0 = std::chrono::steady_clock::now();
        if (probe != nullptr) {
            probe->exec_ran = true;
        }
        result = std::make_shared<const std::string>(
            json::dump(evaluate_impl(req, cancel)));
        if (probe != nullptr) {
            probe->exec_ns =
                ns_between(t0, std::chrono::steady_clock::now());
        }
    }
    // A cancelled evaluation threw above, so deadline errors are never
    // cached; a result that *did* complete is bit-identical to an
    // uncancelled run (shard-boundary cancellation) and safe to keep.
    cache_.put(req.canonical_key, *result);
    return result;
}

bool engine::eval_sweep_fast(const sweep_request& q,
                             const std::vector<double>& xs,
                             std::vector<json::value>& ys,
                             const exec::cancel_token* cancel) {
    if (q.target == nullptr) {
        return false;
    }
    const request& tgt = *q.target;
    // mc_yield points are expensive and benefit from per-point
    // memoization + nested parallelism; table3/stats/sweep targets
    // have no double parameters worth kernelizing.
    if (tgt.op == op_code::mc_yield || tgt.op == op_code::table3 ||
        tgt.op == op_code::sweep || tgt.op == op_code::stats) {
        return false;
    }

    const std::size_t n = xs.size();
    const bool fm = config_.fast_math;
    request tmp = tgt;
    double* slot = numeric_param_ptr(tmp, q.param);
    if (slot == nullptr) {
        return false;  // integer-typed parameter: generic path
    }

    // Cache-aware planning for the SoA-kernel targets: compute each
    // lane's canonical point key once, splice lanes the point cache
    // already holds, and run the kernel over the missing lanes only.
    // Lanes are independent and sub-range kernel calls are bit-exact
    // (batch contract), so a gathered evaluation produces the very
    // bytes a full-grid run would; cached lanes carry bytes a fresh
    // scalar evaluation wrote, so the spliced response is identical at
    // --threads 1/4/0 and to an empty-cache run.  fast_math is
    // excluded both ways: fast lanes never enter the point cache and
    // must never be answered from it.
    const bool kernel_op = tgt.op == op_code::scenario1 ||
                           tgt.op == op_code::scenario2 ||
                           tgt.op == op_code::yield;
    const bool lane_cache =
        config_.cache_capacity != 0 && !config_.fast_math && kernel_op;
    std::vector<std::string> keys;  // lane i -> canonical point key
    std::vector<std::shared_ptr<const std::string>> hit;
    std::vector<double> missing_xs;      // kernel input (cache misses)
    std::vector<std::size_t> lane_of;    // kernel lane j -> grid lane i
    if (lane_cache) {
        keys.resize(n);
        exec::parallel_for(
            n, config_.parallelism,
            [&](const exec::shard_range& r) {
                request local = tgt;
                double* lslot = numeric_param_ptr(local, q.param);
                for (std::size_t i = r.begin; i < r.end; ++i) {
                    *lslot = xs[i];
                    keys[i] = json::canonical(request_to_json(local));
                }
            },
            cancel);
        hit.resize(n);
        missing_xs.reserve(n);
        lane_of.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            // get_if_present: a hit counts, a planning miss does not —
            // the authoritative misses stay wherever evaluation runs,
            // so hit/miss accounting matches the pre-planning engine.
            hit[i] = cache_.get_if_present(keys[i]);
            if (hit[i] == nullptr) {
                missing_xs.push_back(xs[i]);
                lane_of.push_back(i);
            }
        }
    }
    const std::vector<double>& kxs = lane_cache ? missing_xs : xs;
    const std::size_t m = kxs.size();

    // Expand one payload member into a parameter column: the swept
    // member carries the (cache-missing) grid, everything else is a
    // constant lane.
    const auto col = [&](const double& member) {
        std::vector<double> v(m, member);
        if (&member == slot) {
            std::copy(kxs.begin(), kxs.end(), v.begin());
        }
        return v;
    };
    const auto shard = [&](auto&& body) {
        exec::parallel_for(
            m, config_.parallelism,
            [&](const exec::shard_range& r) {
                body(r.begin, r.end - r.begin);
            },
            cancel);
    };
    const auto emit = [&](const std::vector<double>& out) {
        for (std::size_t j = 0; j < m; ++j) {
            const std::size_t i = lane_cache ? lane_of[j] : j;
            ys[i] = std::isnan(out[j]) ? json::value{nullptr}
                                       : json::value{out[j]};
        }
        if (!lane_cache) {
            return;
        }
        // Splice cached lanes back in lane order.  The cached bytes
        // are a fresh scalar evaluation's result object; doubles print
        // shortest-round-trip, so parse -> primary metric reproduces
        // the lane value bit for bit.  NaN lanes are never cached, so
        // a hit always carries the metric.
        for (std::size_t i = 0; i < n; ++i) {
            if (hit[i] == nullptr) {
                continue;
            }
            try {
                const json::value res = json::parse(*hit[i]);
                const json::value* metric =
                    res.as_object().find(primary_metric(tgt.op));
                ys[i] = metric != nullptr ? *metric : json::value{};
            } catch (const std::exception&) {
                ys[i] = json::value{nullptr};  // defensive: cached JSON
            }
        }
    };
    // Share kernel lanes with the point cache: each successful lane is
    // stored under the canonical key of its point request with bytes
    // identical to a fresh scalar evaluation (`lane_result` rebuilds
    // the endpoint's exact result object from kernel output + lane
    // parameters), so a post-sweep point query is a warm hit.  NaN
    // (scalar-throw) lanes are never cached — errors never are.
    const auto populate = [&](const std::vector<double>& out,
                              auto&& lane_result) {
        // fast_math lanes never enter the point cache: point queries
        // always evaluate the scalar library, and a fast lane's bytes
        // can differ within the documented ULP bounds.
        if (!lane_cache) {
            return;
        }
        for (std::size_t j = 0; j < m; ++j) {
            if (std::isnan(out[j])) {
                continue;
            }
            if (cancel != nullptr && cancel->expired()) {
                return;  // best effort: the response needs no cache
            }
            try {
                cache_.put(keys[lane_of[j]], json::dump(lane_result(j)));
            } catch (const std::exception&) {
                // Side values threw where the metric did not: skip.
            }
        }
    };

    switch (tgt.op) {
        case op_code::scenario1: {
            const auto& t = std::get<scenario1_request>(tmp.payload);
            const auto lambda = col(t.lambda_um), c0 = col(t.c0_usd),
                       x = col(t.x), r = col(t.wafer_radius_cm),
                       dd = col(t.design_density);
            std::vector<double> out(m);
            shard([&](std::size_t b, std::size_t len) {
                cost::batch::scenario_columns cols;
                cols.lambda_um = lambda.data() + b;
                cols.c0_usd = c0.data() + b;
                cols.x = x.data() + b;
                cols.wafer_radius_cm = r.data() + b;
                cols.design_density = dd.data() + b;
                (fm ? cost::batch::scenario1_cost_per_transistor_fast
                    : cost::batch::scenario1_cost_per_transistor)(
                    cols, out.data() + b, len);
            });
            emit(out);
            populate(out, [&](std::size_t i) {
                json::object o;
                o.set("cost_per_transistor_usd", out[i]);
                o.set("cost_per_transistor_micro_usd", out[i] * 1e6);
                return json::value{std::move(o)};
            });
            return true;
        }
        case op_code::scenario2: {
            const auto& t = std::get<scenario2_request>(tmp.payload);
            const auto lambda = col(t.lambda_um), c0 = col(t.c0_usd),
                       x = col(t.x), r = col(t.wafer_radius_cm),
                       dd = col(t.design_density), y0 = col(t.y0);
            std::vector<double> out(m);
            shard([&](std::size_t b, std::size_t len) {
                cost::batch::scenario_columns cols;
                cols.lambda_um = lambda.data() + b;
                cols.c0_usd = c0.data() + b;
                cols.x = x.data() + b;
                cols.wafer_radius_cm = r.data() + b;
                cols.design_density = dd.data() + b;
                cols.y0 = y0.data() + b;
                (fm ? cost::batch::scenario2_cost_per_transistor_fast
                    : cost::batch::scenario2_cost_per_transistor)(
                    cols, out.data() + b, len);
            });
            emit(out);
            populate(out, [&](std::size_t i) {
                core::scenario2 s;
                s.wafer_cost =
                    cost::wafer_cost_model{dollars{c0[i]}, x[i]};
                s.wafer = geometry::wafer{centimeters{r[i]}};
                s.design_density = dd[i];
                s.yield = yield::reference_die_yield{probability{y0[i]}};
                const microns l{lambda[i]};
                json::object o;
                o.set("cost_per_transistor_usd", out[i]);
                o.set("cost_per_transistor_micro_usd", out[i] * 1e6);
                o.set("die_area_cm2", s.die_area(l).value());
                o.set("transistors", s.transistors(l));
                return json::value{std::move(o)};
            });
            return true;
        }
        case op_code::yield: {
            const auto& t = std::get<yield_request>(tmp.payload);
            if (t.model == "poisson" || t.model == "murphy" ||
                t.model == "seeds" || t.model == "bose_einstein" ||
                t.model == "neg_binomial") {
                const auto ef = col(t.expected_faults),
                           area = col(t.die_area_cm2),
                           dpc = col(t.defects_per_cm2);
                const std::vector<double> alpha =
                    t.model == "neg_binomial" ? col(t.alpha)
                                              : std::vector<double>{};
                std::vector<double> out(m);
                shard([&](std::size_t b, std::size_t len) {
                    // Serve-level fault derivation (eval_yield): the
                    // explicit count wins, else area * density, both
                    // gated by the finite/non-negative request check.
                    std::vector<double> faults(len);
                    for (std::size_t i = 0; i < len; ++i) {
                        const double f = ef[b + i] >= 0.0
                                             ? ef[b + i]
                                             : area[b + i] * dpc[b + i];
                        faults[i] =
                            (!(f >= 0.0) || !std::isfinite(f))
                                ? std::numeric_limits<
                                      double>::quiet_NaN()
                                : f;
                    }
                    if (t.model == "poisson") {
                        (fm ? yield::batch::poisson_yield_fast
                            : yield::batch::poisson_yield)(
                            faults.data(), out.data() + b, len);
                    } else if (t.model == "murphy") {
                        (fm ? yield::batch::murphy_yield_fast
                            : yield::batch::murphy_yield)(
                            faults.data(), out.data() + b, len);
                    } else if (t.model == "seeds") {
                        yield::batch::seeds_yield(faults.data(),
                                                  out.data() + b, len);
                    } else if (t.model == "bose_einstein") {
                        (fm ? yield::batch::bose_einstein_yield_fast
                            : yield::batch::bose_einstein_yield)(
                            faults.data(), t.critical_steps,
                            out.data() + b, len);
                    } else {
                        (fm ? yield::batch::negative_binomial_yield_fast
                            : yield::batch::negative_binomial_yield)(
                            faults.data(), alpha.data() + b,
                            out.data() + b, len);
                    }
                });
                emit(out);
                populate(out, [&](std::size_t i) {
                    const double f = ef[i] >= 0.0 ? ef[i]
                                                  : area[i] * dpc[i];
                    json::object o;
                    o.set("model", t.model);
                    o.set("expected_faults", f);
                    o.set("yield", out[i]);
                    return json::value{std::move(o)};
                });
                return true;
            }
            if (t.model == "scaled_poisson") {
                const auto area = col(t.die_area_cm2),
                           lambda = col(t.lambda_um), d = col(t.d),
                           p = col(t.p);
                std::vector<double> out(m);
                shard([&](std::size_t b, std::size_t len) {
                    (fm ? yield::batch::scaled_poisson_yield_fast
                        : yield::batch::scaled_poisson_yield)(
                        area.data() + b, lambda.data() + b, d.data() + b,
                        p.data() + b, out.data() + b, len);
                });
                emit(out);
                populate(out, [&](std::size_t i) {
                    const yield::scaled_poisson_model model{d[i], p[i]};
                    json::object o;
                    o.set("model", t.model);
                    o.set("yield", out[i]);
                    o.set("effective_defects_per_cm2",
                          model.effective_defect_density(
                              microns{lambda[i]}));
                    return json::value{std::move(o)};
                });
                return true;
            }
            if (t.model == "reference") {
                const auto area = col(t.die_area_cm2), y0 = col(t.y0),
                           a0 = col(t.a0_cm2);
                std::vector<double> out(m);
                shard([&](std::size_t b, std::size_t len) {
                    (fm ? yield::batch::reference_yield_fast
                        : yield::batch::reference_yield)(
                        area.data() + b, y0.data() + b, a0.data() + b,
                        out.data() + b, len);
                });
                emit(out);
                populate(out, [&](std::size_t i) {
                    const yield::reference_die_yield model{
                        probability{y0[i]}, square_centimeters{a0[i]}};
                    json::object o;
                    o.set("model", t.model);
                    o.set("yield", out[i]);
                    o.set("equivalent_defects_per_cm2",
                          model.equivalent_defect_density());
                    return json::value{std::move(o)};
                });
                return true;
            }
            break;  // unreachable: every validated model has a lane
        }
        default:
            break;
    }

    // Typed per-lane evaluation (cost_tr, gross_die, chiplet,
    // swept-integer parameters): skips the per-point JSON clone/parse
    // round trip; each shard pokes its own copy of the target request.
    // Successful lanes still land in the point cache under their
    // canonical key, same as the generic path, so post-sweep point
    // queries are warm hits.  The per-point catch never swallows
    // cancellation: mc_yield targets were excluded above, so nothing
    // inside a point can throw cancelled_error — the cancellable
    // parallel_for owns the deadline.
    exec::parallel_for(
        n, config_.parallelism,
        [&](const exec::shard_range& r) {
            request local = tgt;
            double* lslot = numeric_param_ptr(local, q.param);
            std::string key;
            for (std::size_t i = r.begin; i < r.end; ++i) {
                *lslot = xs[i];
                try {
                    if (config_.cache_capacity != 0) {
                        // Cache-aware lane: a point the cache already
                        // holds is spliced instead of re-evaluated —
                        // cached bytes are a fresh scalar evaluation's,
                        // so the response is byte-identical either way.
                        key = json::canonical(request_to_json(local));
                        if (const auto cached = cache_.get_if_present(key)) {
                            const json::value res = json::parse(*cached);
                            const json::value* metric = res.as_object().find(
                                primary_metric(local.op));
                            ys[i] = metric != nullptr ? *metric
                                                      : json::value{};
                            continue;
                        }
                    }
                    const json::value res = evaluate(local);
                    const json::value* metric =
                        res.as_object().find(primary_metric(local.op));
                    ys[i] = metric != nullptr ? *metric : json::value{};
                    if (config_.cache_capacity != 0) {
                        cache_.put(key, json::dump(res));
                    }
                } catch (const std::exception&) {
                    ys[i] = json::value{nullptr};
                }
            }
        },
        cancel);
    return true;
}

json::value engine::eval_sweep(const sweep_request& q,
                               const exec::cancel_token* cancel) {
    const std::vector<double> xs = sweep_grid(q);
    std::vector<json::value> ys(xs.size());

    // Grid points are independent; inside a batch worker this degrades
    // to serial with the identical decomposition (exec contract), so
    // sweep responses are byte-stable at every nesting/thread level.
    // The SoA kernel path is lane-for-lane bit-identical to the
    // per-point path below (tests/serve/test_engine.cpp pins this) and
    // populates the same per-point memoization cache.
    if (!config_.sweep_kernels || !eval_sweep_fast(q, xs, ys, cancel)) {
        // A point's catch may swallow a cancelled_error thrown by a
        // nested mc_yield evaluation (null slot), but the cancellable
        // parallel_for re-raises after the join — the expired token is
        // sticky — so a deadline always surfaces as deadline_exceeded,
        // never as a response with nondeterministic nulls.
        exec::parallel_for(
            xs.size(), config_.parallelism,
            [&](const exec::shard_range& r) {
                for (std::size_t i = r.begin; i < r.end; ++i) {
                    json::value doc{q.target_params};
                    json::value* slot = walk(doc, q.param);
                    if (slot == nullptr) {
                        continue;  // validated at parse time; cannot happen
                    }
                    *slot = json::value{xs[i]};
                    try {
                        const request point = parse_request(doc);
                        const std::shared_ptr<const std::string> result =
                            result_for(point, cancel);
                        const json::value parsed = json::parse(*result);
                        const json::value* metric =
                            parsed.as_object().find(primary_metric(point.op));
                        if (metric != nullptr) {
                            ys[i] = *metric;
                        }
                    } catch (const std::exception&) {
                        // Infeasible point (die does not fit, yield
                        // underflow, negative parameter): null slot.
                        ys[i] = json::value{nullptr};
                    }
                }
            },
            cancel);
    }

    json::array xs_json;
    xs_json.reserve(xs.size());
    for (const double x : xs) {
        xs_json.emplace_back(x);
    }
    json::object o;
    o.set("target_op", std::string{to_string(q.target->op)});
    o.set("param", q.param);
    o.set("metric", primary_metric(q.target->op));
    o.set("scale", q.scale);
    o.set("xs", std::move(xs_json));
    o.set("ys", std::move(ys));
    return json::value{std::move(o)};
}

json::value engine::eval_partition_explore(
    const partition_explore_request& q, const exec::cancel_token* cancel) {
    const std::vector<double> xs = grid_points(
        q.area_from_mm2, q.area_to_mm2, q.count, q.scale == "log");
    const std::vector<int> splits = parse_splits(q.splits);
    const chiplet::chiplet_spec base = spec_from(q.base);
    const std::size_t n = xs.size();

    // One cost matrix, filled split-by-split (the outer list is <= 8
    // entries; the per-split grid is where the work is).  Both default
    // paths run the identical scalar core per cell — the kernel only
    // batches lanes — so the matrix is bit-identical for either flag
    // value and any thread count, and infeasible cells are NaN, never
    // a throw.  Under fast_math the transcendental tail runs on the
    // vector math instead (cells drift within DESIGN.md §15 bounds,
    // same NaN classification, still thread-count deterministic).
    std::vector<std::vector<double>> cost(splits.size(),
                                          std::vector<double>(n));
    // Explore cells share the point cache with the chiplet endpoint
    // (kernel path, scalar math, cache enabled): each feasible cell is
    // exactly the chiplet point request for the scaled spec at that
    // split, so cells land in — and are answered from — the same
    // per-point memoization as a direct `op:chiplet` query.  Cached
    // bytes are a fresh scalar evaluation's result object, so splicing
    // the metric back keeps the response byte-identical to an
    // empty-cache run at every thread count and either kernel flag.
    const bool lane_cache = config_.sweep_kernels &&
                            config_.cache_capacity != 0 &&
                            !config_.fast_math;
    for (std::size_t s = 0; s < splits.size(); ++s) {
        double* out = cost[s].data();
        const int split = splits[s];
        if (lane_cache) {
            std::vector<std::string> keys(n);
            std::vector<std::shared_ptr<const std::string>> hit(n);
            exec::parallel_for(
                n, config_.parallelism,
                [&](const exec::shard_range& r) {
                    request cell;
                    cell.op = op_code::chiplet;
                    chiplet_request point = q.base;
                    point.chiplets = split;
                    for (std::size_t i = r.begin; i < r.end; ++i) {
                        const chiplet::chiplet_spec spec =
                            chiplet::scaled_to_total(base, xs[i]);
                        point.logic_area_mm2 = spec.logic_area_mm2;
                        point.memory_area_mm2 = spec.memory_area_mm2;
                        point.io_area_mm2 = spec.io_area_mm2;
                        cell.payload = point;
                        keys[i] = json::canonical(request_to_json(cell));
                    }
                },
                cancel);
            std::vector<double> missing_xs;
            std::vector<std::size_t> lane_of;
            missing_xs.reserve(n);
            lane_of.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                hit[i] = cache_.get_if_present(keys[i]);
                if (hit[i] == nullptr) {
                    missing_xs.push_back(xs[i]);
                    lane_of.push_back(i);
                }
            }
            const std::size_t m = missing_xs.size();
            std::vector<double> missing_out(m);
            std::vector<chiplet::chiplet_breakdown> breakdowns(m);
            exec::parallel_for(
                m, config_.parallelism,
                [&](const exec::shard_range& r) {
                    chiplet::batch::cost_per_good_system(
                        base, split, missing_xs.data() + r.begin,
                        missing_out.data() + r.begin,
                        breakdowns.data() + r.begin, r.end - r.begin);
                },
                cancel);
            for (std::size_t j = 0; j < m; ++j) {
                out[lane_of[j]] = missing_out[j];
                if (std::isnan(missing_out[j])) {
                    continue;  // infeasible cells are never cached
                }
                try {
                    cache_.put(keys[lane_of[j]],
                               json::dump(chiplet_result_json(
                                   breakdowns[j], q.base.substrate)));
                } catch (const std::exception&) {
                    // Allocation failure caching a side value: skip.
                }
            }
            for (std::size_t i = 0; i < n; ++i) {
                if (hit[i] == nullptr) {
                    continue;
                }
                // NaN cells never enter the cache, so a hit always
                // carries a finite metric; shortest-round-trip doubles
                // make parse -> metric the identical cell value.
                out[i] = std::numeric_limits<double>::quiet_NaN();
                try {
                    const json::value res = json::parse(*hit[i]);
                    const json::value* metric = res.as_object().find(
                        "cost_per_good_system_usd");
                    if (metric != nullptr && metric->is_number()) {
                        out[i] = metric->as_number();
                    }
                } catch (const std::exception&) {
                    // Defensive: cached values always parse.
                }
            }
        } else if (config_.sweep_kernels) {
            const bool fm = config_.fast_math;
            exec::parallel_for(
                n, config_.parallelism,
                [&](const exec::shard_range& r) {
                    if (fm) {
                        chiplet::batch::cost_per_good_system_fast(
                            base, split, xs.data() + r.begin,
                            out + r.begin, r.end - r.begin);
                    } else {
                        chiplet::batch::cost_per_good_system(
                            base, split, xs.data() + r.begin,
                            out + r.begin, r.end - r.begin);
                    }
                },
                cancel);
        } else {
            exec::parallel_for(
                n, config_.parallelism,
                [&](const exec::shard_range& r) {
                    for (std::size_t i = r.begin; i < r.end; ++i) {
                        try {
                            chiplet::chiplet_spec spec =
                                chiplet::scaled_to_total(base, xs[i]);
                            spec.chiplets = split;
                            out[i] = chiplet::evaluate_chiplet(spec)
                                         .cost_per_good_system_usd;
                        } catch (const std::exception&) {
                            out[i] = std::numeric_limits<
                                double>::quiet_NaN();
                        }
                    }
                },
                cancel);
        }
    }

    // Shared post-processing: per grid point, the cheapest feasible
    // split (ties break to the coarser split, so the monolithic
    // baseline wins exact draws), and the first area where a real
    // multi-die split beats it — the published crossover.
    json::array best_split;
    best_split.reserve(n);
    json::value crossover{nullptr};
    for (std::size_t i = 0; i < n; ++i) {
        int best = 0;
        double best_cost = 0.0;
        for (std::size_t s = 0; s < splits.size(); ++s) {
            const double c = cost[s][i];
            if (std::isnan(c)) {
                continue;
            }
            if (best == 0 || c < best_cost) {
                best = splits[s];
                best_cost = c;
            }
        }
        best_split.push_back(best == 0
                                 ? json::value{nullptr}
                                 : json::value{static_cast<double>(best)});
        if (crossover.is_null() && best > 1) {
            crossover = json::value{xs[i]};
        }
    }

    json::array xs_json;
    xs_json.reserve(n);
    for (const double x : xs) {
        xs_json.emplace_back(x);
    }
    json::array splits_json;
    splits_json.reserve(splits.size());
    for (const int split : splits) {
        splits_json.emplace_back(static_cast<double>(split));
    }
    json::array ys;
    ys.reserve(splits.size());
    for (std::size_t s = 0; s < splits.size(); ++s) {
        json::array row;
        row.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            row.push_back(std::isnan(cost[s][i])
                              ? json::value{nullptr}
                              : json::value{cost[s][i]});
        }
        ys.emplace_back(std::move(row));
    }

    json::object o;
    o.set("metric", "cost_per_good_system_usd");
    o.set("scale", q.scale);
    o.set("splits", std::move(splits_json));
    o.set("xs", std::move(xs_json));
    o.set("ys", std::move(ys));
    o.set("best_split", std::move(best_split));
    o.set("crossover_area_mm2", std::move(crossover));
    return json::value{std::move(o)};
}

namespace {

/// Snapshot observability object shared by stats and /statusz.
json::value snapshot_stats_json(const engine::snapshot_stats& s) {
    json::object o;
    o.set("writes", static_cast<double>(s.writes));
    o.set("write_failures", static_cast<double>(s.write_failures));
    o.set("restores", static_cast<double>(s.restores));
    o.set("restore_failures", static_cast<double>(s.restore_failures));
    o.set("restored_entries", static_cast<double>(s.restored_entries));
    o.set("last_entries", static_cast<double>(s.last_entries));
    o.set("last_bytes", static_cast<double>(s.last_bytes));
    o.set("last_write_seconds", s.last_write_seconds);
    o.set("last_restore_seconds", s.last_restore_seconds);
    o.set("age_seconds", s.age_seconds);
    return json::value{std::move(o)};
}

}  // namespace

json::value engine::stats_json() {
    const memo_cache::stats c = cache_.snapshot();
    json::object cache;
    cache.set("hits", static_cast<double>(c.hits));
    cache.set("misses", static_cast<double>(c.misses));
    cache.set("evictions", static_cast<double>(c.evictions));
    cache.set("entries", static_cast<double>(c.entries));
    cache.set("capacity", static_cast<double>(c.capacity));
    cache.set("shards", static_cast<double>(c.shards));

    json::object o;
    o.set("cache", json::value{std::move(cache)});
    o.set("endpoints", metrics_.to_json());
    o.set("parallelism",
          static_cast<double>(exec::resolve_parallelism(config_.parallelism)));
    o.set("parse_errors",
          static_cast<double>(parse_errors_.load(std::memory_order_relaxed)));
    o.set("dedup_hits",
          static_cast<double>(dedup_hits_.load(std::memory_order_relaxed)));
    o.set("arena_bytes",
          static_cast<double>(arena_bytes_.load(std::memory_order_relaxed)));

    // Mask-memoization statistics of the 2^n - 1 partition pricer
    // (process-global, like the exec gauges: the optimizer is a
    // library-level component, not per-engine).
    json::object pricer;
    pricer.set("hits", static_cast<double>(opt::partition_pricer_hits()));
    pricer.set("entries",
               static_cast<double>(opt::partition_pricer_entries()));
    o.set("partition_pricer", json::value{std::move(pricer)});

    json::object rejected;
    for (int i = 0; i < reject_reason_count; ++i) {
        const auto reason = static_cast<reject_reason>(i);
        rejected.set(std::string{to_string(reason)},
                     static_cast<double>(admission_.rejected(reason)));
    }
    json::object overload;
    overload.set("rejected", json::value{std::move(rejected)});
    overload.set("inflight_bytes",
                 static_cast<double>(admission_.inflight_bytes()));
    overload.set("deadline_exceeded",
                 static_cast<double>(
                     deadline_exceeded_.load(std::memory_order_relaxed)));
    overload.set("hot_declines",
                 static_cast<double>(
                     hot_declines_.load(std::memory_order_relaxed)));
    overload.set("cache_shed_entries",
                 static_cast<double>(
                     cache_shed_entries_.load(std::memory_order_relaxed)));
    o.set("overload", json::value{std::move(overload)});

    const obs::flight_recorder::stats f =
        obs::flight_recorder::instance().snapshot();
    json::object flight;
    flight.set("enabled", f.enabled);
    flight.set("capacity", static_cast<double>(f.capacity));
    flight.set("threads", static_cast<double>(f.threads));
    flight.set("appended", static_cast<double>(f.appended));
    flight.set("dropped", static_cast<double>(f.dropped));
    flight.set("anomalies", static_cast<double>(f.anomalies));
    o.set("flight", json::value{std::move(flight)});
    o.set("snapshot", snapshot_stats_json(snapshot_info()));
    return json::value{std::move(o)};
}

snapshot::write_result engine::snapshot_write(const std::string& path) {
    // One writer at a time: the periodic tick, a SIGUSR2 trigger and
    // the shutdown write may race; whichever loses the lock simply
    // writes a fresher image.  Serving and overload sheds are NOT
    // blocked — the serializer captures shards one at a time under
    // their own locks, so a concurrent shed yields a stale-but-
    // consistent image (counts and CRCs are computed from the bytes
    // actually captured), never a torn or double-counted one.
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    const auto t0 = std::chrono::steady_clock::now();
    const snapshot::write_result r = snapshot::write_file(
        cache_, snapshot::config_fingerprint(config_.fast_math), path);
    const auto t1 = std::chrono::steady_clock::now();
    if (r.ok) {
        snap_writes_.fetch_add(1, std::memory_order_relaxed);
        snap_last_entries_.store(r.entries, std::memory_order_relaxed);
        snap_last_bytes_.store(r.bytes, std::memory_order_relaxed);
        snap_last_write_ns_.store(ns_between(t0, t1),
                                  std::memory_order_relaxed);
        snap_last_write_at_ns_.store(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    t1.time_since_epoch())
                    .count()),
            std::memory_order_relaxed);
    } else {
        snap_write_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    return r;
}

snapshot::restore_result engine::snapshot_restore(const std::string& path) {
    const auto t0 = std::chrono::steady_clock::now();
    const snapshot::restore_result r = snapshot::restore_file(
        cache_, snapshot::config_fingerprint(config_.fast_math), path);
    snap_last_restore_ns_.store(
        ns_between(t0, std::chrono::steady_clock::now()),
        std::memory_order_relaxed);
    switch (r.outcome) {
        case snapshot::restore_outcome::restored:
            snap_restores_.fetch_add(1, std::memory_order_relaxed);
            snap_restored_entries_.fetch_add(r.entries,
                                             std::memory_order_relaxed);
            break;
        case snapshot::restore_outcome::cold_corrupt:
            snap_restore_failures_.fetch_add(1, std::memory_order_relaxed);
            break;
        case snapshot::restore_outcome::cold_missing:
            break;  // normal first boot, not a failure
    }
    return r;
}

engine::snapshot_stats engine::snapshot_info() const {
    snapshot_stats s;
    s.writes = snap_writes_.load(std::memory_order_relaxed);
    s.write_failures =
        snap_write_failures_.load(std::memory_order_relaxed);
    s.restores = snap_restores_.load(std::memory_order_relaxed);
    s.restore_failures =
        snap_restore_failures_.load(std::memory_order_relaxed);
    s.restored_entries =
        snap_restored_entries_.load(std::memory_order_relaxed);
    s.last_entries = snap_last_entries_.load(std::memory_order_relaxed);
    s.last_bytes = snap_last_bytes_.load(std::memory_order_relaxed);
    s.last_write_seconds =
        static_cast<double>(
            snap_last_write_ns_.load(std::memory_order_relaxed)) *
        1e-9;
    s.last_restore_seconds =
        static_cast<double>(
            snap_last_restore_ns_.load(std::memory_order_relaxed)) *
        1e-9;
    const std::uint64_t at =
        snap_last_write_at_ns_.load(std::memory_order_relaxed);
    if (at != 0) {
        const auto now = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
        s.age_seconds =
            now > at ? static_cast<double>(now - at) * 1e-9 : 0.0;
    }
    return s;
}

json::value engine::statusz_json() const {
    json::object config;
    config.set("parallelism",
               static_cast<double>(
                   exec::resolve_parallelism(config_.parallelism)));
    config.set("cache_capacity",
               static_cast<double>(config_.cache_capacity));
    config.set("cache_shards", static_cast<double>(config_.cache_shards));
    config.set("hot_path", config_.hot_path);
    config.set("batch_dedup", config_.batch_dedup);
    config.set("sweep_kernels", config_.sweep_kernels);
    config.set("fast_math", config_.fast_math);
    config.set("simd_target",
               std::string{simd::to_string(simd::active_target())});

    const limits_config& l = config_.limits;
    json::object limits;
    limits.set("max_line_bytes", static_cast<double>(l.max_line_bytes));
    limits.set("max_batch_lines", static_cast<double>(l.max_batch_lines));
    limits.set("max_sweep_points", static_cast<double>(l.max_sweep_points));
    limits.set("max_mc_dies", static_cast<double>(l.max_mc_dies));
    limits.set("max_inflight_bytes",
               static_cast<double>(l.max_inflight_bytes));
    limits.set("default_deadline_ms",
               static_cast<double>(l.default_deadline_ms));
    limits.set("max_arena_reserved_bytes",
               static_cast<double>(l.max_arena_reserved_bytes));
    limits.set("shed_on_overload", l.shed_on_overload);

    const memo_cache::stats c = cache_.snapshot();
    json::object cache;
    cache.set("entries", static_cast<double>(c.entries));
    cache.set("capacity", static_cast<double>(c.capacity));
    cache.set("hits", static_cast<double>(c.hits));
    cache.set("misses", static_cast<double>(c.misses));
    cache.set("evictions", static_cast<double>(c.evictions));

    json::object overload;
    overload.set("inflight_bytes",
                 static_cast<double>(admission_.inflight_bytes()));
    overload.set("rejected_total",
                 static_cast<double>(admission_.rejected_total()));
    overload.set("deadline_exceeded",
                 static_cast<double>(
                     deadline_exceeded_.load(std::memory_order_relaxed)));

    const obs::flight_recorder::stats f =
        obs::flight_recorder::instance().snapshot();
    json::object flight;
    flight.set("enabled", f.enabled);
    flight.set("capacity", static_cast<double>(f.capacity));
    flight.set("threads", static_cast<double>(f.threads));
    flight.set("appended", static_cast<double>(f.appended));
    flight.set("dropped", static_cast<double>(f.dropped));
    flight.set("anomalies", static_cast<double>(f.anomalies));

    json::object o;
    o.set("config", json::value{std::move(config)});
    o.set("limits", json::value{std::move(limits)});
    o.set("cache", json::value{std::move(cache)});
    o.set("overload", json::value{std::move(overload)});
    o.set("flight", json::value{std::move(flight)});
    o.set("snapshot", snapshot_stats_json(snapshot_info()));
    o.set("parse_errors",
          static_cast<double>(parse_errors_.load(std::memory_order_relaxed)));
    return json::value{std::move(o)};
}

std::string engine::prometheus_text() const {
    std::string out;
    metrics_.to_prometheus(out);

    // Build/dispatch identity, info-style gauge: constant 1, the
    // payload is the labels (which vector lane the one-time runtime
    // dispatch picked, and whether this engine serves fast_math
    // kernels).
    obs::prometheus_header(out, "silicon_build_info", "gauge",
                           "SIMD dispatch target and fast_math mode");
    {
        std::string name = "silicon_build_info{simd_target=\"";
        name += simd::to_string(simd::active_target());
        name += "\",fast_math=\"";
        name += config_.fast_math ? "on" : "off";
        name += "\"}";
        obs::prometheus_sample(out, name, std::uint64_t{1});
    }

    const memo_cache::stats c = cache_.snapshot();
    obs::prometheus_header(out, "silicon_cache_hits_total", "counter",
                           "Memoization-cache hits");
    obs::prometheus_sample(out, "silicon_cache_hits_total", c.hits);
    obs::prometheus_header(out, "silicon_cache_misses_total", "counter",
                           "Memoization-cache misses");
    obs::prometheus_sample(out, "silicon_cache_misses_total", c.misses);
    obs::prometheus_header(out, "silicon_cache_evictions_total", "counter",
                           "Memoization-cache LRU evictions");
    obs::prometheus_sample(out, "silicon_cache_evictions_total",
                           c.evictions);
    obs::prometheus_header(out, "silicon_cache_entries", "gauge",
                           "Resident memoization-cache entries");
    obs::prometheus_sample(out, "silicon_cache_entries",
                           static_cast<std::uint64_t>(c.entries));
    obs::prometheus_header(out, "silicon_cache_capacity", "gauge",
                           "Configured memoization-cache entry budget");
    obs::prometheus_sample(out, "silicon_cache_capacity",
                           static_cast<std::uint64_t>(c.capacity));
    obs::prometheus_header(out, "silicon_cache_hit_ratio", "gauge",
                           "hits / (hits + misses) since start");
    const std::uint64_t lookups = c.hits + c.misses;
    obs::prometheus_sample(
        out, "silicon_cache_hit_ratio",
        lookups == 0 ? 0.0
                     : static_cast<double>(c.hits) /
                           static_cast<double>(lookups));
    obs::prometheus_header(out, "silicon_cache_shard_entries", "gauge",
                           "Resident entries per cache shard");
    for (std::size_t i = 0; i < c.shard_entries.size(); ++i) {
        std::string name = "silicon_cache_shard_entries{shard=\"";
        name += std::to_string(i);
        name += "\"}";
        obs::prometheus_sample(
            out, name, static_cast<std::uint64_t>(c.shard_entries[i]));
    }

    obs::prometheus_header(out, "silicon_serve_parse_errors_total",
                           "counter", "Lines that failed JSON parsing");
    obs::prometheus_sample(out, "silicon_serve_parse_errors_total",
                           parse_errors_.load(std::memory_order_relaxed));
    obs::prometheus_header(out, "silicon_serve_dedup_hits_total", "counter",
                           "In-batch duplicate lines coalesced behind a "
                           "representative evaluation");
    obs::prometheus_sample(out, "silicon_serve_dedup_hits_total",
                           dedup_hits_.load(std::memory_order_relaxed));
    obs::prometheus_header(out, "silicon_serve_arena_bytes_total", "counter",
                           "Arena bytes consumed by hot-path cache hits");
    obs::prometheus_sample(out, "silicon_serve_arena_bytes_total",
                           arena_bytes_.load(std::memory_order_relaxed));
    obs::prometheus_header(out, "silicon_serve_parallelism", "gauge",
                           "Resolved batch fan-out width");
    obs::prometheus_sample(
        out, "silicon_serve_parallelism",
        static_cast<std::uint64_t>(
            exec::resolve_parallelism(config_.parallelism)));

    obs::prometheus_header(out, "silicon_serve_rejected_total", "counter",
                           "Lines rejected by admission control, by reason");
    for (int i = 0; i < reject_reason_count; ++i) {
        const auto reason = static_cast<reject_reason>(i);
        std::string name = "silicon_serve_rejected_total{reason=\"";
        name += to_string(reason);
        name += "\"}";
        obs::prometheus_sample(out, name, admission_.rejected(reason));
    }
    obs::prometheus_header(out, "silicon_serve_deadline_exceeded_total",
                           "counter",
                           "Lines answered deadline_exceeded");
    obs::prometheus_sample(out, "silicon_serve_deadline_exceeded_total",
                           deadline_exceeded_.load(std::memory_order_relaxed));
    obs::prometheus_header(out, "silicon_serve_inflight_bytes", "gauge",
                           "Request bytes currently admitted against the "
                           "in-flight budget");
    obs::prometheus_sample(out, "silicon_serve_inflight_bytes",
                           admission_.inflight_bytes());
    obs::prometheus_header(out, "silicon_serve_hot_declines_total", "counter",
                           "Hot-path declines forced by the arena byte "
                           "budget");
    obs::prometheus_sample(out, "silicon_serve_hot_declines_total",
                           hot_declines_.load(std::memory_order_relaxed));
    obs::prometheus_header(out, "silicon_serve_cache_shed_entries_total",
                           "counter",
                           "Memoization-cache entries shed under overload");
    obs::prometheus_sample(
        out, "silicon_serve_cache_shed_entries_total",
        cache_shed_entries_.load(std::memory_order_relaxed));

    const snapshot_stats snap = snapshot_info();
    obs::prometheus_header(out, "silicon_cache_snapshot_writes_total",
                           "counter",
                           "Cache snapshots written successfully");
    obs::prometheus_sample(out, "silicon_cache_snapshot_writes_total",
                           snap.writes);
    obs::prometheus_header(out,
                           "silicon_cache_snapshot_write_failures_total",
                           "counter", "Cache snapshot write attempts that "
                                      "failed (file kept intact)");
    obs::prometheus_sample(out,
                           "silicon_cache_snapshot_write_failures_total",
                           snap.write_failures);
    obs::prometheus_header(out, "silicon_cache_snapshot_restores_total",
                           "counter",
                           "Cache snapshots restored at boot");
    obs::prometheus_sample(out, "silicon_cache_snapshot_restores_total",
                           snap.restores);
    obs::prometheus_header(
        out, "silicon_cache_snapshot_restore_failures_total", "counter",
        "Snapshot restores that degraded to a cold start (corruption, "
        "version or fingerprint mismatch)");
    obs::prometheus_sample(out,
                           "silicon_cache_snapshot_restore_failures_total",
                           snap.restore_failures);
    obs::prometheus_header(out, "silicon_cache_snapshot_restored_entries",
                           "gauge", "Entries loaded from snapshots");
    obs::prometheus_sample(out, "silicon_cache_snapshot_restored_entries",
                           snap.restored_entries);
    obs::prometheus_header(out, "silicon_cache_snapshot_last_bytes",
                           "gauge", "Size of the last written snapshot");
    obs::prometheus_sample(out, "silicon_cache_snapshot_last_bytes",
                           snap.last_bytes);
    obs::prometheus_header(out, "silicon_cache_snapshot_last_entries",
                           "gauge", "Entries in the last written snapshot");
    obs::prometheus_sample(out, "silicon_cache_snapshot_last_entries",
                           snap.last_entries);
    obs::prometheus_header(
        out, "silicon_cache_snapshot_last_write_seconds", "gauge",
        "Duration of the last snapshot write (serialize + fsync + rename)");
    obs::prometheus_sample(out, "silicon_cache_snapshot_last_write_seconds",
                           snap.last_write_seconds);
    obs::prometheus_header(out,
                           "silicon_cache_snapshot_last_restore_seconds",
                           "gauge",
                           "Duration of the last snapshot restore attempt");
    obs::prometheus_sample(out,
                           "silicon_cache_snapshot_last_restore_seconds",
                           snap.last_restore_seconds);
    obs::prometheus_header(out, "silicon_cache_snapshot_age_seconds",
                           "gauge",
                           "Seconds since the last successful snapshot "
                           "write (-1 = never)");
    obs::prometheus_sample(out, "silicon_cache_snapshot_age_seconds",
                           snap.age_seconds);

    obs::prometheus_header(out, "silicon_partition_pricer_hits_total",
                           "counter",
                           "Partition-pricer mask-memo lookups served "
                           "from the priced table");
    obs::prometheus_sample(out, "silicon_partition_pricer_hits_total",
                           opt::partition_pricer_hits());
    obs::prometheus_header(out, "silicon_partition_pricer_entries_total",
                           "counter",
                           "Subset masks priced into the memo table");
    obs::prometheus_sample(out, "silicon_partition_pricer_entries_total",
                           opt::partition_pricer_entries());

    // Process-global metrics (exec pool counters/gauges).
    out += obs::metrics_registry::global().to_prometheus();
    return out;
}

std::string engine::handle_line(std::string_view line) {
    std::string out;
    handle_line_into(line, out);
    return out;
}

void engine::handle_line_into(std::string_view line, std::string& out) {
    out.clear();
    obs::flight_recorder& flight = obs::flight_recorder::instance();
    const bool record_flight = flight.enabled() && flight.capacity() != 0;
    // Admission against the in-flight byte budget happens only at the
    // public entry points (here and handle_batch), never per batch
    // line, so a batch is admitted exactly once.
    admission_controller::ticket ticket =
        admission_.admit(line.size(), config_.limits.max_inflight_bytes);
    if (!ticket) {
        on_overload();
        // Shed without parsing, but keep trace correlation alive: the
        // raw-scan echo costs O(4 KiB) on a path that is already
        // answering "go away".
        const std::string_view trace_raw = scan_trace_id(line);
        append_overloaded(trace_raw, out);
        if (record_flight) {
            obs::flight_record rec;
            obs::assign_field(rec.trace, trace_raw);
            obs::assign_field(rec.code, "overloaded");
            rec.anomaly = true;
            flight.append(rec);
            flight.note_anomaly();
        }
        return;
    }
    if (!record_flight) {
        serve_line(line, out, nullptr, nullptr);
        return;
    }
    obs::flight_record rec;
    serve_line(line, out, nullptr, &rec);
    if (rec.code[0] != '\0') {
        flight.append(rec);
        if (rec.anomaly) {
            flight.note_anomaly();
        }
    }
}

void engine::on_overload() {
    if (config_.limits.shed_on_overload) {
        // Reclaim memory exactly when pressure is observed: drop the
        // resident entries of half the cache shards (counted as
        // evictions); capacity is untouched, so the cache refills.
        const std::size_t dropped =
            cache_.shed_shards((config_.cache_shards + 1) / 2);
        cache_shed_entries_.fetch_add(dropped, std::memory_order_relaxed);
    }
}

void engine::serve_line(
    std::string_view line, std::string& out,
    const std::chrono::steady_clock::time_point* batch_deadline,
    obs::flight_record* rec) {
    const obs::trace_span line_span{"serve.handle_line", "serve"};
    const auto start = std::chrono::steady_clock::now();
    out.clear();
    if (config_.limits.max_line_bytes != 0 &&
        line.size() > config_.limits.max_line_bytes) {
        admission_.note_rejection(reject_reason::line_too_large);
        append_line_too_large(config_.limits.max_line_bytes, out);
        if (rec != nullptr) {
            // No endpoint/id/trace: an over-long line's framing is
            // suspect, so nothing scanned out of it is trustworthy.
            obs::assign_field(rec->code, "too_large");
        }
        return;
    }
    if (faults::enabled()) {
        faults::maybe_delay("serve.line");
    }
    if (config_.hot_path &&
        try_handle_line_hot(line, start, batch_deadline, out, rec)) {
        return;
    }
    handle_line_slow(line, start, batch_deadline, out, rec);
}

bool engine::try_handle_line_hot(
    std::string_view line, std::chrono::steady_clock::time_point start,
    const std::chrono::steady_clock::time_point* batch_deadline,
    std::string& out, obs::flight_record* rec) {
    line_state& st = tls_line_state();
    if (config_.limits.max_arena_reserved_bytes != 0 &&
        st.arena.bytes_reserved() > config_.limits.max_arena_reserved_bytes) {
        // Graceful degradation under memory pressure: hand the arena's
        // chunks back and let the legacy allocator path serve this
        // line.  The next hot line starts over with a small arena.
        st.arena.release();
        hot_declines_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (faults::enabled() && faults::should_fail("serve.arena")) {
        // Injected arena allocation failure: same decline, no throw.
        hot_declines_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    try {
        st.arena.reset();
        const json::aview* doc = nullptr;
        {
            const obs::trace_span span{"serve.parse", "serve"};
            doc = &st.parser.parse(line, st.arena);
        }
        {
            const obs::trace_span span{"serve.canonicalize", "serve"};
            parse_request_fast(*doc, st.parsed);
        }
        const auto t_parsed = std::chrono::steady_clock::now();
        const request& req = st.parsed.req;
        if (req.op == op_code::stats) {
            return false;  // live snapshot: never cached, never hot
        }
        bool have_deadline = false;
        std::chrono::steady_clock::time_point deadline_at{};
        if (req.has_deadline || batch_deadline != nullptr ||
            config_.limits.default_deadline_ms != 0) {
            // A warm hit under a live deadline is fine; an expired one
            // (deadline_ms: 0 always is) declines so the slow path
            // produces the authoritative deadline_exceeded error.
            if (req.has_deadline) {
                deadline_at = deadline_from(start, req.deadline_ms);
            } else if (batch_deadline != nullptr) {
                deadline_at = *batch_deadline;
            } else {
                deadline_at =
                    deadline_from(start, config_.limits.default_deadline_ms);
            }
            have_deadline = true;
            exec::cancel_token deadline;
            deadline.set_deadline(deadline_at);
            if (deadline.expired()) {
                return false;
            }
        }
        std::shared_ptr<const std::string> hit;
        {
            const obs::trace_span span{"serve.cache", "serve"};
            // Probe only: a miss is *not* counted here — whichever
            // cold path serves it (the closed-form evaluation below or
            // the legacy pipeline) re-probes with get() and owns the
            // authoritative miss.
            hit = cache_.get_if_present(req.canonical_key);
        }
        const auto t_probed = std::chrono::steady_clock::now();
        auto t_evaluated = t_probed;
        bool cold = false;
        if (hit == nullptr) {
            // Cold-miss fast path: closed-form point ops evaluate the
            // scalar library straight from the typed payload and
            // serialize into the reused TLS buffer, so a cold serve
            // allocates only for the cache insert (and not even that
            // when caching is disabled — the zero-alloc gate in
            // tests/serve/test_hotpath.cpp runs with cache_capacity
            // 0).  Fault injection stays on the slow path, which owns
            // every error site.
            if (faults::enabled()) {
                return false;
            }
            st.cold.clear();
            {
                const obs::trace_span span{"serve.exec", "serve"};
                if (!cold_result_into(req, st.cold)) {
                    return false;  // ineligible op or slow-path error
                }
            }
            t_evaluated = std::chrono::steady_clock::now();
            // get() owns the authoritative miss count, exactly like
            // result_for; a racing writer's bytes win (they are
            // identical — both paths serialize the scalar library).
            hit = cache_.get(req.canonical_key);
            if (hit == nullptr && config_.cache_capacity != 0) {
                cache_.put(req.canonical_key, st.cold);
            }
            cold = true;
        }
        arena_bytes_.fetch_add(st.arena.bytes_allocated(),
                               std::memory_order_relaxed);
        {
            const obs::trace_span span{"serve.serialize", "serve"};
            envelope_into(st.parsed.id_view, st.parsed.trace_view, true,
                          "result", hit != nullptr ? *hit : st.cold, out);
        }
        const auto t_done = std::chrono::steady_clock::now();
        endpoint_metrics& m = metrics_.at(req.op);
        m.requests.fetch_add(1, std::memory_order_relaxed);
        if (!cold) {
            m.cache_hits.fetch_add(1, std::memory_order_relaxed);
        }
        const std::uint64_t total_ns = ns_between(start, t_done);
        m.latency.record(total_ns);
        // Stage breakdown (all allocation-free): parse covers
        // parse+canonicalize, cache the probe, exec the cold
        // evaluation (warm hits skip it), serialize the splice.
        m.stage_parse.record(ns_between(start, t_parsed));
        m.stage_cache.record(ns_between(t_parsed, t_probed));
        if (cold) {
            m.stage_exec.record(ns_between(t_probed, t_evaluated));
        }
        m.stage_serialize.record(ns_between(t_evaluated, t_done));
        if (st.parsed.trace_view != nullptr) {
            note_tail_exemplar(m, total_ns, st.parsed.trace_view->string);
        }
        if (rec != nullptr) {
            obs::assign_field(rec->endpoint, to_string(req.op));
            flight_id_field_view(rec->id, st.parsed.id_view);
            if (st.parsed.trace_view != nullptr) {
                obs::assign_field(rec->trace, st.parsed.trace_view->string);
            }
            obs::assign_field(rec->code, "ok");
            rec->cache_hit = !cold;
            rec->parse_us = ns_to_us_u32(ns_between(start, t_parsed));
            rec->cache_us = ns_to_us_u32(ns_between(t_parsed, t_probed));
            if (cold) {
                rec->exec_us =
                    ns_to_us_u32(ns_between(t_probed, t_evaluated));
            }
            rec->serialize_us =
                ns_to_us_u32(ns_between(t_evaluated, t_done));
            rec->total_us = ns_to_us_u32(total_ns);
            if (have_deadline) {
                rec->deadline_slack_us =
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        deadline_at - t_done)
                        .count();
            }
        }
        return true;
    } catch (...) {
        // Unsupported shape, schema error, anything: the legacy path
        // re-parses from scratch and produces the authoritative
        // response (and error accounting).
        out.clear();
        return false;
    }
}

void engine::handle_line_slow(
    std::string_view line, std::chrono::steady_clock::time_point start,
    const std::chrono::steady_clock::time_point* batch_deadline,
    std::string& out, obs::flight_record* rec) {
    const json::value* id = nullptr;
    json::value id_storage;
    const std::string* trace = nullptr;
    std::string trace_storage;
    std::string response;
    op_code op = op_code::stats;
    bool op_known = false;
    bool failed = false;
    std::string err_code;
    line_probe probe;
    bool parsed = false;
    std::chrono::steady_clock::time_point t_parsed{};
    std::uint64_t serialize_ns = 0;
    bool serialized = false;
    bool have_deadline = false;
    std::chrono::steady_clock::time_point deadline_at{};

    try {
        if (faults::enabled() && faults::should_fail("serve.line")) {
            // Injected allocation failure while handling the line: the
            // generic catch below answers internal_error — one valid
            // reply per line even when memory is gone.
            throw std::bad_alloc{};
        }
        json::value doc;
        {
            const obs::trace_span span{"serve.parse", "serve"};
            doc = json::parse(line);
        }
        // Best-effort id/op/trace extraction so even schema errors echo
        // the caller's correlation id and trace_id.
        if (doc.is_object()) {
            if (const json::value* raw_id = doc.as_object().find("id")) {
                id_storage = *raw_id;
                id = &id_storage;
            }
            if (const json::value* raw_trace =
                    doc.as_object().find("trace_id")) {
                if (raw_trace->is_string()) {
                    trace_storage = raw_trace->as_string();
                    trace = &trace_storage;
                }
            }
            if (const json::value* raw_op = doc.as_object().find("op")) {
                if (raw_op->is_string()) {
                    if (const auto known =
                            op_from_string(raw_op->as_string())) {
                        op = *known;
                        op_known = true;
                    }
                }
            }
        }
        request req;
        {
            // Schema validation + canonical cache-key serialization.
            const obs::trace_span span{"serve.canonicalize", "serve"};
            req = parse_request(doc);
        }
        t_parsed = std::chrono::steady_clock::now();
        parsed = true;
        op = req.op;
        op_known = true;

        // Arm the deadline: the request's own budget (from its line
        // start) wins; otherwise the batch-level deadline; otherwise
        // the configured default.  Checked here (so a zero budget
        // deterministically errors even on a warm cache) and at every
        // task boundary inside cancellable endpoints.
        exec::cancel_token deadline;
        const exec::cancel_token* cancel = nullptr;
        if (req.has_deadline || batch_deadline != nullptr ||
            config_.limits.default_deadline_ms != 0) {
            if (req.has_deadline) {
                deadline_at = deadline_from(start, req.deadline_ms);
            } else if (batch_deadline != nullptr) {
                deadline_at = *batch_deadline;
            } else {
                deadline_at =
                    deadline_from(start, config_.limits.default_deadline_ms);
            }
            have_deadline = true;
            deadline.set_deadline(deadline_at);
            cancel = &deadline;
            if (deadline.expired()) {
                throw exec::cancelled_error{};
            }
        }

        if (req.op == op_code::stats) {
            // Stats are a live snapshot: never cached, never golden.
            response = envelope(id, trace, true, "result",
                                json::dump(stats_json()));
        } else {
            const std::shared_ptr<const std::string> result =
                result_for(req, cancel, &probe);
            const obs::trace_span span{"serve.serialize", "serve"};
            const auto t0 = std::chrono::steady_clock::now();
            response = envelope(id, trace, true, "result", *result);
            serialize_ns = ns_between(t0, std::chrono::steady_clock::now());
            serialized = true;
        }
    } catch (const json::parse_error& e) {
        parse_errors_.fetch_add(1, std::memory_order_relaxed);
        failed = true;
        err_code = "parse_error";
        response = envelope(id, trace, false, "error",
                            error_body("parse_error", e.what()));
    } catch (const std::exception& e) {
        if (dynamic_cast<const exec::cancelled_error*>(&e) != nullptr) {
            deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        }
        failed = true;
        err_code = error_code_for(e);
        response = envelope(id, trace, false, "error",
                            error_body(err_code, e.what()));
    }

    const auto t_done = std::chrono::steady_clock::now();
    const std::uint64_t total_ns = ns_between(start, t_done);
    if (op_known || !failed) {
        endpoint_metrics& m = metrics_.at(op);
        m.requests.fetch_add(1, std::memory_order_relaxed);
        if (failed) {
            m.errors.fetch_add(1, std::memory_order_relaxed);
        }
        m.latency.record(total_ns);
        if (parsed) {
            m.stage_parse.record(ns_between(start, t_parsed));
        }
        if (probe.cache_probed) {
            m.stage_cache.record(probe.cache_ns);
        }
        if (probe.exec_ran) {
            m.stage_exec.record(probe.exec_ns);
        }
        if (serialized) {
            m.stage_serialize.record(serialize_ns);
        }
        if (trace != nullptr) {
            note_tail_exemplar(m, total_ns, *trace);
        }
    }
    if (rec != nullptr) {
        if (op_known) {
            obs::assign_field(rec->endpoint, to_string(op));
        }
        flight_id_field(rec->id, id);
        if (trace != nullptr) {
            obs::assign_field(rec->trace, *trace);
        }
        obs::assign_field(rec->code, failed ? std::string_view{err_code}
                                            : std::string_view{"ok"});
        rec->cache_hit = probe.cache_hit;
        if (parsed) {
            rec->parse_us = ns_to_us_u32(ns_between(start, t_parsed));
        }
        rec->cache_us = ns_to_us_u32(probe.cache_ns);
        rec->exec_us = ns_to_us_u32(probe.exec_ns);
        rec->serialize_us = ns_to_us_u32(serialize_ns);
        rec->total_us = ns_to_us_u32(total_ns);
        if (have_deadline) {
            rec->deadline_slack_us =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    deadline_at - t_done)
                    .count();
        }
        rec->anomaly = failed && anomalous_code(err_code);
    }
    out = std::move(response);
}

std::vector<std::string> engine::handle_batch(
    const std::vector<std::string>& lines) {
    const obs::trace_span span{"serve.batch", "serve"};
    std::vector<std::string> responses(lines.size());

    obs::flight_recorder& flight = obs::flight_recorder::instance();
    const bool record_flight = flight.enabled() && flight.capacity() != 0;
    // One record slot per line, filled wherever the line completes and
    // appended *in line order* afterwards — that ordering (plus the
    // deterministic timing mode) is what makes dumps byte-identical at
    // every thread count.  An unfilled slot (code "") is skipped.
    std::vector<obs::flight_record> recs;
    if (record_flight) {
        recs.resize(lines.size());
    }
    const auto flush_records = [&] {
        if (!record_flight) {
            return;
        }
        std::uint64_t anomalies = 0;
        for (obs::flight_record& r : recs) {
            if (r.code[0] == '\0') {
                continue;
            }
            if (r.anomaly) {
                ++anomalies;
            }
            flight.append(r);
        }
        // Triggers fire after every record landed, so an armed dump
        // always contains the batch that tripped it.
        for (std::uint64_t a = 0; a < anomalies; ++a) {
            flight.note_anomaly();
        }
    };

    // Batch-level budgets first: every line still gets exactly one
    // well-formed reply, without parsing a byte of an over-budget batch.
    if (config_.limits.max_batch_lines != 0 &&
        lines.size() > config_.limits.max_batch_lines) {
        admission_.note_rejection(reject_reason::batch_too_large,
                                  lines.size());
        for (std::size_t i = 0; i < lines.size(); ++i) {
            const std::string_view trace_raw = scan_trace_id(lines[i]);
            append_batch_too_large(config_.limits.max_batch_lines, trace_raw,
                                   responses[i]);
            if (record_flight) {
                obs::assign_field(recs[i].trace, trace_raw);
                obs::assign_field(recs[i].code, "too_large");
            }
        }
        flush_records();
        return responses;
    }
    std::size_t batch_bytes = 0;
    for (const std::string& l : lines) {
        batch_bytes += l.size();
    }
    admission_controller::ticket ticket = admission_.admit(
        batch_bytes, config_.limits.max_inflight_bytes, lines.size());
    if (!ticket) {
        on_overload();
        for (std::size_t i = 0; i < lines.size(); ++i) {
            const std::string_view trace_raw = scan_trace_id(lines[i]);
            append_overloaded(trace_raw, responses[i]);
            if (record_flight) {
                obs::assign_field(recs[i].trace, trace_raw);
                obs::assign_field(recs[i].code, "overloaded");
                recs[i].anomaly = true;
            }
        }
        flush_records();
        return responses;
    }

    // One deadline instant for the whole batch (a request's own
    // deadline_ms still wins per line): lines evaluated late in an
    // overlong batch are cancelled at task boundaries, not stretched.
    const std::chrono::steady_clock::time_point* batch_deadline = nullptr;
    std::chrono::steady_clock::time_point batch_deadline_storage;
    if (config_.limits.default_deadline_ms != 0) {
        batch_deadline_storage = deadline_from(
            std::chrono::steady_clock::now(),
            config_.limits.default_deadline_ms);
        batch_deadline = &batch_deadline_storage;
    }

    const auto rec_at = [&](std::size_t i) -> obs::flight_record* {
        return record_flight ? &recs[i] : nullptr;
    };

    if (!config_.batch_dedup || config_.cache_capacity == 0 ||
        lines.size() < 2) {
        exec::parallel_for(lines.size(), config_.parallelism,
                           [&](const exec::shard_range& r) {
                               for (std::size_t i = r.begin; i < r.end; ++i) {
                                   serve_line(lines[i], responses[i],
                                              batch_deadline, rec_at(i));
                               }
                           });
        flush_records();
        return responses;
    }

    // Phase A: canonicalize every line with the fast parser — no
    // metrics or cache side effects.  Lines the fast parser declines
    // (malformed, unsupported shape, stats) are simply not dedupable
    // and evaluate individually.
    constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();
    std::vector<std::string> keys(lines.size());
    std::vector<char> dedupable(lines.size(), 0);
    exec::parallel_for(
        lines.size(), config_.parallelism, [&](const exec::shard_range& r) {
            line_state& st = tls_line_state();
            for (std::size_t i = r.begin; i < r.end; ++i) {
                try {
                    st.arena.reset();
                    const json::aview& doc =
                        st.parser.parse(lines[i], st.arena);
                    parse_request_fast(doc, st.parsed);
                    if (st.parsed.req.op != op_code::stats) {
                        keys[i] = st.parsed.req.canonical_key;
                        dedupable[i] = 1;
                    }
                } catch (...) {
                    // Not dedupable; the real parse error (if any) is
                    // produced when the line evaluates below.
                }
            }
        });

    // The first occurrence of each canonical key is the representative;
    // later twins wait for it and answer from the cache.  Sequential in
    // line order so the choice is deterministic.
    std::vector<std::size_t> rep(lines.size(), npos);
    std::unordered_map<std::string_view, std::size_t> first;
    first.reserve(lines.size());
    std::uint64_t twins = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (dedupable[i] == 0) {
            continue;
        }
        const auto [it, inserted] =
            first.try_emplace(std::string_view{keys[i]}, i);
        if (!inserted) {
            rep[i] = it->second;
            ++twins;
        }
    }
    dedup_hits_.fetch_add(twins, std::memory_order_relaxed);

    // Phase B: evaluate representatives and non-dedupable lines.
    exec::parallel_for(lines.size(), config_.parallelism,
                       [&](const exec::shard_range& r) {
                           for (std::size_t i = r.begin; i < r.end; ++i) {
                               if (rep[i] == npos) {
                                   serve_line(lines[i], responses[i],
                                              batch_deadline, rec_at(i));
                               }
                           }
                       });

    // Phase C: twins.  A successful representative left its result in
    // the cache, so these are warm (with hot_path: allocation-free)
    // hits that splice each line's own id; a representative that
    // *errored* cached nothing and each twin re-evaluates individually
    // — error responses are never coalesced.
    exec::parallel_for(lines.size(), config_.parallelism,
                       [&](const exec::shard_range& r) {
                           for (std::size_t i = r.begin; i < r.end; ++i) {
                               if (rep[i] != npos) {
                                   serve_line(lines[i], responses[i],
                                              batch_deadline, rec_at(i));
                               }
                           }
                       });
    flush_records();
    return responses;
}

}  // namespace silicon::serve
