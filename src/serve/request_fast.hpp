// request_fast.hpp — allocation-free request parsing for the serve hot path.
//
// `parse_request` (request.hpp) builds heap-owned `json::value` trees and
// strings per line; that cost dominates a warm cache hit.  This module is
// its allocation-free twin: it parses an arena-backed `json::aview`
// document into a *reused* `request` (string members keep their capacity,
// the payload variant keeps its alternative when the op repeats) and emits
// the canonical cache key directly into a reused buffer through
// hand-ordered sorted-key emitters — no DOM, no sort, no temporaries.
//
// Equivalence contract (pinned by tests/serve/test_hotpath.cpp): for every
// input document, `parse_request_fast` either
//   - succeeds producing the byte-identical `canonical_key` that
//     `parse_request(json::parse(line))` would produce, or
//   - throws a `request_error` with the same code and message.
// The engine additionally tolerates divergence defensively: any hot-path
// failure falls back to the legacy pipeline, so a bug here can cost
// speed, never bytes.
//
// `numeric_param_exists` / `numeric_param_ptr` are compile-time member
// tables mirroring parse_sweep's walk over the canonical target JSON; the
// pointer variant is what the engine's batched sweep evaluation pokes per
// grid point instead of cloning and re-parsing a JSON document.

#pragma once

#include "serve/json_arena.hpp"
#include "serve/request.hpp"

#include <string>
#include <string_view>

namespace silicon::serve {

/// Reusable parse storage; keep one per thread (the engine embeds it in
/// its thread-local line state).
struct fast_parse_state {
    /// Parsed result: op, payload, has_id and canonical_key are filled.
    /// `id` is NOT copied into `req.id` (that would allocate) — the raw
    /// view is left in `id_view` for the caller to serialize directly.
    request req;
    const json::aview* id_view = nullptr;
    /// Like `id_view`: `req.trace_id` is NOT assigned on the fast path
    /// (that could allocate) — the envelope echo serializes this view.
    /// Non-null iff `req.has_trace`.
    const json::aview* trace_view = nullptr;

    /// Sweep scratch: the parsed target and its canonical key.  A fast-
    /// parsed sweep carries no evaluable payload (`sweep_request::target`
    /// stays null) — the hot path only needs its canonical key; a cache
    /// miss re-parses through the legacy path before evaluating.
    request target_req;
    std::string target_key;
};

/// Parse and validate one arena-view document into `st` (in place,
/// allocation-free once warm).  Throws request_error exactly like
/// parse_request; leaves `st` in an unspecified (but reusable) state on
/// throw.
void parse_request_fast(const json::aview& doc, fast_parse_state& st);

/// Appends the canonical cache key of a fully-parsed non-sweep request.
/// (Sweeps need the target key; parse_request_fast splices it inline.)
void canonical_key_into(const request& r, std::string& out);

/// True when dotted `path` addresses a numeric parameter of `r`'s
/// canonical serialization — the exact acceptance set of parse_sweep's
/// walk over request_to_json (integer-typed parameters included).
[[nodiscard]] bool numeric_param_exists(const request& r,
                                        std::string_view path);

/// Pointer to the double member of `r` addressed by `path`; nullptr when
/// the path is invalid or addresses an integer-typed parameter (those
/// sweeps take the generic path).
[[nodiscard]] double* numeric_param_ptr(request& r, std::string_view path);

}  // namespace silicon::serve
