#include "serve/event_loop.hpp"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <system_error>
#include <unistd.h>

namespace silicon::serve {

namespace {

void make_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) {
        (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
}

[[nodiscard]] std::uint64_t ms_to_ticks(std::uint64_t ms,
                                        std::uint64_t tick_ms) noexcept {
    return (ms + tick_ms - 1) / tick_ms;  // round up: never fire early
}

}  // namespace

event_loop::event_loop(engine& eng, int listen_fd, event_loop_config config)
    : eng_{eng},
      config_{config},
      shared_{eng, config.conn},
      listen_fd_{listen_fd},
      open_conns_gauge_{obs::metrics_registry::global().get_gauge(
          "silicond_open_connections",
          "Connections currently multiplexed by the event loop")},
      accepts_{obs::metrics_registry::global().get_counter(
          "silicond_accepts_total", "Connections accepted")},
      accept_drops_{obs::metrics_registry::global().get_counter(
          "silicond_accept_drops_total",
          "Connections closed at accept because max-conns was reached")},
      timeouts_{obs::metrics_registry::global().get_counter(
          "silicond_conn_timeouts_total",
          "Connections closed by the idle or write-stall deadline")} {
    if (config_.tick_ms == 0) {
        config_.tick_ms = 100;
    }
    idle_ticks_ = ms_to_ticks(config_.idle_timeout_ms, config_.tick_ms);
    write_ticks_ = ms_to_ticks(config_.write_timeout_ms, config_.tick_ms);
    if (config_.periodic_ms != 0 && config_.on_periodic) {
        periodic_ticks_ = ms_to_ticks(config_.periodic_ms, config_.tick_ms);
        next_periodic_tick_ = now_tick_ + periodic_ticks_;
    }

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
        throw std::system_error{errno, std::generic_category(),
                                "epoll_create1"};
    }
    stop_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (stop_fd_ < 0) {
        throw std::system_error{errno, std::generic_category(), "eventfd"};
    }
    make_nonblocking(listen_fd_);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
    ev.data.fd = stop_fd_;
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, stop_fd_, &ev);

    if (idle_ticks_ != 0 || write_ticks_ != 0 || periodic_ticks_ != 0) {
        timer_fd_ =
            ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
        if (timer_fd_ < 0) {
            throw std::system_error{errno, std::generic_category(),
                                    "timerfd_create"};
        }
        itimerspec spec{};
        spec.it_interval.tv_sec =
            static_cast<time_t>(config_.tick_ms / 1000);
        spec.it_interval.tv_nsec =
            static_cast<long>((config_.tick_ms % 1000) * 1000000);
        spec.it_value = spec.it_interval;
        (void)::timerfd_settime(timer_fd_, 0, &spec, nullptr);
        ev.data.fd = timer_fd_;
        (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev);
    }
}

event_loop::~event_loop() {
    conns_.clear();  // each conn closes its fd
    if (timer_fd_ >= 0) {
        ::close(timer_fd_);
    }
    if (stop_fd_ >= 0) {
        ::close(stop_fd_);
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
    }
    if (epoll_fd_ >= 0) {
        ::close(epoll_fd_);
    }
}

void event_loop::stop() noexcept {
    const std::uint64_t one = 1;
    // Async-signal-safe: a single write(2).  EAGAIN means the counter is
    // already non-zero, i.e. a stop is already pending — fine.
    [[maybe_unused]] const ssize_t n =
        ::write(stop_fd_, &one, sizeof one);
}

void event_loop::run(const std::function<bool()>& should_stop) {
    std::array<epoll_event, 128> events{};
    bool stopping = false;
    while (!stopping) {
        if (should_stop && should_stop()) {
            break;
        }
        const int n = ::epoll_wait(epoll_fd_, events.data(),
                                   static_cast<int>(events.size()), -1);
        if (n < 0) {
            if (errno == EINTR) {
                continue;  // signal: the should_stop check above decides
            }
            break;
        }
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == stop_fd_) {
                std::uint64_t drain = 0;
                (void)!::read(stop_fd_, &drain, sizeof drain);
                stopping = true;
            } else if (fd == listen_fd_) {
                handle_listener();
            } else if (fd == timer_fd_) {
                std::uint64_t expirations = 0;
                if (::read(timer_fd_, &expirations, sizeof expirations) ==
                        static_cast<ssize_t>(sizeof expirations) &&
                    expirations > 0) {
                    advance_wheel(expirations);
                }
            } else {
                handle_conn(fd, events[i].events);
            }
        }
    }
}

void event_loop::handle_listener() {
    for (;;) {
        const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR) {
                continue;
            }
            return;  // EAGAIN, or a transient accept error: wait again
        }
        if (config_.max_conns != 0 && conns_.size() >= config_.max_conns) {
            // Shedding at accept keeps established clients healthy; the
            // refused client sees an orderly close, not a hang.
            accept_drops_.add(1);
            ::close(fd);
            continue;
        }
        accepts_.add(1);
        auto c = std::make_unique<conn>(fd, shared_);
        c->last_activity_tick = now_tick_;
        conn& ref = *c;
        conns_.emplace(fd, std::move(c));
        interest_.emplace(fd, 0u);
        epoll_event ev{};
        ev.data.fd = fd;
        (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
        open_conns_gauge_.set(static_cast<double>(conns_.size()));
        settle(ref);
    }
}

void event_loop::handle_conn(int fd, std::uint32_t events) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) {
        return;  // closed earlier in this same wakeup batch
    }
    conn& c = *it->second;
    c.last_activity_tick = now_tick_;
    if ((events & EPOLLOUT) != 0) {
        c.on_writable();
    }
    if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0) {
        // HUP/ERR flow through the read path: read(2) reports 0 or the
        // real errno, which is how the conn learns the peer is gone even
        // mid-pending-write (the EPOLLHUP chaos scenario).
        c.on_readable();
    }
    settle(c);
}

void event_loop::settle(conn& c) {
    const int fd = c.fd();
    if (c.finished()) {
        close_conn(fd);
        return;
    }
    if (c.wants_write()) {
        if (c.write_pending_since_tick == 0) {
            c.write_pending_since_tick = now_tick_;
        }
    } else {
        c.write_pending_since_tick = 0;
    }
    std::uint32_t want = 0;
    if (c.wants_read()) {
        want |= EPOLLIN;
    }
    if (c.wants_write()) {
        want |= EPOLLOUT;
    }
    std::uint32_t& have = interest_[fd];
    if (want != have) {
        epoll_event ev{};
        ev.events = want;
        ev.data.fd = fd;
        (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
        have = want;
    }
    if (timer_fd_ >= 0 && !c.wheel_scheduled) {
        schedule(c);
    }
}

void event_loop::close_conn(int fd) {
    // Stale wheel entries for this fd are harmless: expiry revalidates
    // against whatever connection (if any) owns the fd by then.
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    interest_.erase(fd);
    conns_.erase(fd);  // ~conn closes the fd and releases its tickets
    open_conns_gauge_.set(static_cast<double>(conns_.size()));
}

std::uint64_t event_loop::deadline_tick(const conn& c) const noexcept {
    std::uint64_t deadline = 0;
    if (idle_ticks_ != 0) {
        deadline = c.last_activity_tick + idle_ticks_;
    }
    if (write_ticks_ != 0 && c.write_pending_since_tick != 0) {
        const std::uint64_t write_deadline =
            c.write_pending_since_tick + write_ticks_;
        if (deadline == 0 || write_deadline < deadline) {
            deadline = write_deadline;
        }
    }
    return deadline;
}

void event_loop::schedule(conn& c) {
    const std::uint64_t deadline = deadline_tick(c);
    if (deadline == 0) {
        return;
    }
    const std::uint64_t at = deadline > now_tick_ ? deadline : now_tick_ + 1;
    wheel_[at % wheel_slots].push_back(c.fd());
    c.wheel_scheduled = true;
}

void event_loop::advance_wheel(std::uint64_t ticks) {
    std::vector<int> due;
    for (std::uint64_t t = 0; t < ticks; ++t) {
        ++now_tick_;
        std::vector<int>& slot = wheel_[now_tick_ % wheel_slots];
        due.insert(due.end(), slot.begin(), slot.end());
        slot.clear();
    }
    if (periodic_ticks_ != 0 && now_tick_ >= next_periodic_tick_) {
        // Fire once per due window even if the loop slept through several
        // periods (timerfd coalesces missed ticks the same way).
        next_periodic_tick_ = now_tick_ + periodic_ticks_;
        config_.on_periodic();
    }
    for (const int fd : due) {
        const auto it = conns_.find(fd);
        if (it == conns_.end()) {
            continue;  // stale entry: connection already gone
        }
        conn& c = *it->second;
        c.wheel_scheduled = false;
        const std::uint64_t deadline = deadline_tick(c);
        if (deadline != 0 && deadline <= now_tick_) {
            // A slot is revisited every wheel_slots ticks, so an entry
            // can surface before its (rescheduled) deadline — only the
            // recomputed deadline decides.
            timeouts_.add(1);
            close_conn(fd);
            continue;
        }
        schedule(c);
    }
}

}  // namespace silicon::serve
