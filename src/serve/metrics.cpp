#include "serve/metrics.hpp"

namespace silicon::serve {

namespace {

/// Bucket index for a latency: floor(log2(us)), clamped to the range.
int bucket_for(std::uint64_t nanoseconds) noexcept {
    const std::uint64_t us = nanoseconds / 1000;
    if (us == 0) {
        return 0;
    }
    int b = 0;
    std::uint64_t v = us;
    while (v > 1 && b < latency_histogram::bucket_count - 1) {
        v >>= 1;
        ++b;
    }
    return b;
}

}  // namespace

void latency_histogram::record(std::uint64_t nanoseconds) noexcept {
    buckets_[static_cast<std::size_t>(bucket_for(nanoseconds))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(nanoseconds, std::memory_order_relaxed);
    std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (nanoseconds > seen &&
           !max_ns_.compare_exchange_weak(seen, nanoseconds,
                                          std::memory_order_relaxed)) {
    }
}

std::uint64_t latency_histogram::count() const noexcept {
    return count_.load(std::memory_order_relaxed);
}

std::uint64_t latency_histogram::total_nanoseconds() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
}

std::uint64_t latency_histogram::max_nanoseconds() const noexcept {
    return max_ns_.load(std::memory_order_relaxed);
}

json::value latency_histogram::to_json() const {
    const std::uint64_t n = count();
    json::object o;
    o.set("count", static_cast<double>(n));
    o.set("mean_us",
          n == 0 ? 0.0
                 : static_cast<double>(total_nanoseconds()) /
                       (1000.0 * static_cast<double>(n)));
    o.set("max_us", static_cast<double>(max_nanoseconds()) / 1000.0);

    int last_nonzero = -1;
    for (int b = 0; b < bucket_count; ++b) {
        if (buckets_[static_cast<std::size_t>(b)].load(
                std::memory_order_relaxed) != 0) {
            last_nonzero = b;
        }
    }
    json::array buckets;
    for (int b = 0; b <= last_nonzero; ++b) {
        buckets.emplace_back(static_cast<double>(
            buckets_[static_cast<std::size_t>(b)].load(
                std::memory_order_relaxed)));
    }
    o.set("buckets_us", std::move(buckets));
    return json::value{std::move(o)};
}

json::value metrics_registry::to_json() const {
    json::object o;
    for (int i = 0; i < op_count; ++i) {
        const op_code op = static_cast<op_code>(i);
        const endpoint_metrics& m = at(op);
        const std::uint64_t requests =
            m.requests.load(std::memory_order_relaxed);
        if (requests == 0) {
            continue;
        }
        json::object endpoint;
        endpoint.set("requests", static_cast<double>(requests));
        endpoint.set("errors", static_cast<double>(m.errors.load(
                                   std::memory_order_relaxed)));
        endpoint.set("cache_hits", static_cast<double>(m.cache_hits.load(
                                       std::memory_order_relaxed)));
        endpoint.set("latency", m.latency.to_json());
        o.set(std::string{to_string(op)}, json::value{std::move(endpoint)});
    }
    return json::value{std::move(o)};
}

}  // namespace silicon::serve
