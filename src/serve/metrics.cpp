#include "serve/metrics.hpp"

#include <cmath>
#include <cstring>

namespace silicon::serve {

namespace {

json::value histogram_to_json(const latency_histogram& h) {
    const std::uint64_t n = h.count();
    json::object o;
    o.set("count", static_cast<double>(n));
    o.set("mean_us",
          n == 0 ? 0.0
                 : static_cast<double>(h.total_nanoseconds()) /
                       (1000.0 * static_cast<double>(n)));
    o.set("max_us", static_cast<double>(h.max_nanoseconds()) / 1000.0);

    int last_nonzero = -1;
    for (int b = 0; b < latency_histogram::bucket_count; ++b) {
        if (h.bucket(b) != 0) {
            last_nonzero = b;
        }
    }
    json::array buckets;
    for (int b = 0; b <= last_nonzero; ++b) {
        buckets.emplace_back(static_cast<double>(h.bucket(b)));
    }
    o.set("buckets_us", std::move(buckets));
    return json::value{std::move(o)};
}

/// "silicon_serve_requests_total{op=\"cost_tr\"}" and friends.
std::string labeled(std::string_view family, op_code op) {
    std::string name{family};
    name += "{op=\"";
    name += to_string(op);
    name += "\"}";
    return name;
}

/// Prometheus label-value escaping (client-supplied trace_ids).
void append_label_value(std::string& out, std::string_view v) {
    for (const char c : v) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
}

using bucket_snapshot =
    std::array<std::uint64_t, latency_histogram::bucket_count>;

/// Interpolated quantile in seconds over a bucket-delta window.
/// Bucket 0 spans [0, 2) us, bucket b >= 1 spans [2^b, 2^(b+1)) us;
/// linear interpolation within the winning bucket.
double window_quantile(const bucket_snapshot& delta, std::uint64_t total,
                       double q) {
    std::uint64_t need =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
    if (need == 0) {
        need = 1;
    }
    std::uint64_t cumulative = 0;
    for (int b = 0; b < latency_histogram::bucket_count; ++b) {
        const std::uint64_t n = delta[static_cast<std::size_t>(b)];
        if (n == 0) {
            continue;
        }
        if (cumulative + n >= need) {
            const double lower_us =
                b == 0 ? 0.0
                       : static_cast<double>(std::uint64_t{1} << b);
            const double upper_us = static_cast<double>(
                latency_histogram::bucket_upper_us(b));
            const double frac = static_cast<double>(need - cumulative) /
                                static_cast<double>(n);
            return (lower_us + frac * (upper_us - lower_us)) / 1e6;
        }
        cumulative += n;
    }
    return static_cast<double>(latency_histogram::bucket_upper_us(
               latency_histogram::bucket_count - 1)) /
           1e6;
}

}  // namespace

void note_tail_exemplar(endpoint_metrics& m, std::uint64_t nanoseconds,
                        std::string_view trace) noexcept {
    if (trace.empty() ||
        nanoseconds <= m.tail_ns.load(std::memory_order_relaxed)) {
        return;
    }
    if (m.tail_lock.test_and_set(std::memory_order_acquire)) {
        return;  // contended: drop — exemplars are best-effort
    }
    if (nanoseconds > m.tail_ns.load(std::memory_order_relaxed)) {
        const std::size_t cap = sizeof m.tail_trace - 1;
        const std::size_t n = trace.size() < cap ? trace.size() : cap;
        std::memcpy(m.tail_trace, trace.data(), n);
        m.tail_trace[n] = '\0';
        m.tail_ns.store(nanoseconds, std::memory_order_relaxed);
    }
    m.tail_lock.clear(std::memory_order_release);
}

json::value metrics_registry::to_json() const {
    json::object o;
    for (int i = 0; i < op_count; ++i) {
        const op_code op = static_cast<op_code>(i);
        const endpoint_metrics& m = at(op);
        const std::uint64_t requests =
            m.requests.load(std::memory_order_relaxed);
        if (requests == 0) {
            continue;
        }
        json::object endpoint;
        endpoint.set("requests", static_cast<double>(requests));
        endpoint.set("errors", static_cast<double>(m.errors.load(
                                   std::memory_order_relaxed)));
        endpoint.set("cache_hits", static_cast<double>(m.cache_hits.load(
                                       std::memory_order_relaxed)));
        endpoint.set("latency", histogram_to_json(m.latency));
        if (m.stage_parse.count() != 0 || m.stage_cache.count() != 0 ||
            m.stage_exec.count() != 0 || m.stage_serialize.count() != 0) {
            json::object stages;
            stages.set("parse", histogram_to_json(m.stage_parse));
            stages.set("cache", histogram_to_json(m.stage_cache));
            stages.set("exec", histogram_to_json(m.stage_exec));
            stages.set("serialize", histogram_to_json(m.stage_serialize));
            endpoint.set("stages", json::value{std::move(stages)});
        }
        o.set(std::string{to_string(op)}, json::value{std::move(endpoint)});
    }
    return json::value{std::move(o)};
}

void metrics_registry::to_prometheus(std::string& out) const {
    // Family-major so each # TYPE header precedes all of its samples.
    const auto each_active = [&](const auto& fn) {
        for (int i = 0; i < op_count; ++i) {
            const op_code op = static_cast<op_code>(i);
            const endpoint_metrics& m = at(op);
            if (m.requests.load(std::memory_order_relaxed) != 0) {
                fn(op, m);
            }
        }
    };

    bool any = false;
    each_active([&](op_code, const endpoint_metrics&) { any = true; });
    if (!any) {
        return;
    }

    obs::prometheus_header(out, "silicon_serve_requests_total", "counter",
                           "Requests handled per endpoint");
    each_active([&](op_code op, const endpoint_metrics& m) {
        obs::prometheus_sample(
            out, labeled("silicon_serve_requests_total", op),
            m.requests.load(std::memory_order_relaxed));
    });

    obs::prometheus_header(out, "silicon_serve_errors_total", "counter",
                           "Error responses per endpoint");
    each_active([&](op_code op, const endpoint_metrics& m) {
        obs::prometheus_sample(out, labeled("silicon_serve_errors_total", op),
                               m.errors.load(std::memory_order_relaxed));
    });

    obs::prometheus_header(out, "silicon_serve_cache_hits_total", "counter",
                           "Memoization-cache hits per endpoint");
    each_active([&](op_code op, const endpoint_metrics& m) {
        obs::prometheus_sample(
            out, labeled("silicon_serve_cache_hits_total", op),
            m.cache_hits.load(std::memory_order_relaxed));
    });

    obs::prometheus_header(out, "silicon_serve_latency_seconds", "histogram",
                           "Request service time per endpoint");
    each_active([&](op_code op, const endpoint_metrics& m) {
        obs::prometheus_histogram(
            out, labeled("silicon_serve_latency_seconds", op), m.latency);
    });

    struct stage_family {
        const char* name;
        latency_histogram endpoint_metrics::*member;
    };
    static constexpr stage_family stages[] = {
        {"parse", &endpoint_metrics::stage_parse},
        {"cache", &endpoint_metrics::stage_cache},
        {"exec", &endpoint_metrics::stage_exec},
        {"serialize", &endpoint_metrics::stage_serialize},
    };
    obs::prometheus_header(out, "silicon_serve_stage_seconds", "histogram",
                           "Dispatcher stage time per endpoint");
    each_active([&](op_code op, const endpoint_metrics& m) {
        for (const stage_family& s : stages) {
            const latency_histogram& h = m.*(s.member);
            if (h.count() == 0) {
                continue;
            }
            std::string name = "silicon_serve_stage_seconds{op=\"";
            name += to_string(op);
            name += "\",stage=\"";
            name += s.name;
            name += "\"}";
            obs::prometheus_histogram(out, name, h);
        }
    });

    // Sliding-window quantiles + tail exemplars.  Each scrape closes
    // one window: quantiles interpolate over the bucket deltas since
    // the previous scrape, and the exemplar (slowest trace-carrying
    // request in the window) is consumed.
    const std::lock_guard<std::mutex> lock(scrape_mutex_);
    bool window_headed = false;
    each_active([&](op_code op, const endpoint_metrics& m) {
        window_state& w = windows_[static_cast<std::size_t>(op)];
        bucket_snapshot delta{};
        std::uint64_t total = 0;
        for (int b = 0; b < latency_histogram::bucket_count; ++b) {
            const auto i = static_cast<std::size_t>(b);
            const std::uint64_t now = m.latency.bucket(b);
            delta[i] = now - w.last[i];
            total += delta[i];
            w.last[i] = now;
        }
        if (total == 0) {
            return;  // idle endpoint: no samples this window
        }
        if (!window_headed) {
            obs::prometheus_header(
                out, "silicon_serve_latency_window_seconds", "gauge",
                "Latency quantiles over the window since the last scrape");
            window_headed = true;
        }
        static constexpr struct {
            double q;
            const char* text;
        } quantiles[] = {{0.5, "0.5"}, {0.99, "0.99"}, {0.999, "0.999"}};
        for (const auto& q : quantiles) {
            std::string name = "silicon_serve_latency_window_seconds{op=\"";
            name += to_string(op);
            name += "\",quantile=\"";
            name += q.text;
            name += "\"}";
            obs::prometheus_sample(out, name,
                                   window_quantile(delta, total, q.q));
        }
    });
    bool exemplar_headed = false;
    each_active([&](op_code op, const endpoint_metrics& m) {
        if (m.tail_ns.load(std::memory_order_relaxed) == 0) {
            return;
        }
        while (m.tail_lock.test_and_set(std::memory_order_acquire)) {
            // Writers only hold the flag for a bounded copy.
        }
        const std::uint64_t ns = m.tail_ns.load(std::memory_order_relaxed);
        char trace[sizeof m.tail_trace];
        std::memcpy(trace, m.tail_trace, sizeof trace);
        m.tail_ns.store(0, std::memory_order_relaxed);
        m.tail_trace[0] = '\0';
        m.tail_lock.clear(std::memory_order_release);
        if (ns == 0 || trace[0] == '\0') {
            return;
        }
        if (!exemplar_headed) {
            obs::prometheus_header(
                out, "silicon_serve_latency_tail_exemplar_seconds", "gauge",
                "Slowest trace-carrying request since the last scrape");
            exemplar_headed = true;
        }
        std::string name =
            "silicon_serve_latency_tail_exemplar_seconds{op=\"";
        name += to_string(op);
        name += "\",trace_id=\"";
        append_label_value(name, trace);
        name += "\"}";
        obs::prometheus_sample(out, name, static_cast<double>(ns) / 1e9);
    });
}

}  // namespace silicon::serve
