#include "serve/metrics.hpp"

namespace silicon::serve {

namespace {

json::value histogram_to_json(const latency_histogram& h) {
    const std::uint64_t n = h.count();
    json::object o;
    o.set("count", static_cast<double>(n));
    o.set("mean_us",
          n == 0 ? 0.0
                 : static_cast<double>(h.total_nanoseconds()) /
                       (1000.0 * static_cast<double>(n)));
    o.set("max_us", static_cast<double>(h.max_nanoseconds()) / 1000.0);

    int last_nonzero = -1;
    for (int b = 0; b < latency_histogram::bucket_count; ++b) {
        if (h.bucket(b) != 0) {
            last_nonzero = b;
        }
    }
    json::array buckets;
    for (int b = 0; b <= last_nonzero; ++b) {
        buckets.emplace_back(static_cast<double>(h.bucket(b)));
    }
    o.set("buckets_us", std::move(buckets));
    return json::value{std::move(o)};
}

/// "silicon_serve_requests_total{op=\"cost_tr\"}" and friends.
std::string labeled(std::string_view family, op_code op) {
    std::string name{family};
    name += "{op=\"";
    name += to_string(op);
    name += "\"}";
    return name;
}

}  // namespace

json::value metrics_registry::to_json() const {
    json::object o;
    for (int i = 0; i < op_count; ++i) {
        const op_code op = static_cast<op_code>(i);
        const endpoint_metrics& m = at(op);
        const std::uint64_t requests =
            m.requests.load(std::memory_order_relaxed);
        if (requests == 0) {
            continue;
        }
        json::object endpoint;
        endpoint.set("requests", static_cast<double>(requests));
        endpoint.set("errors", static_cast<double>(m.errors.load(
                                   std::memory_order_relaxed)));
        endpoint.set("cache_hits", static_cast<double>(m.cache_hits.load(
                                       std::memory_order_relaxed)));
        endpoint.set("latency", histogram_to_json(m.latency));
        o.set(std::string{to_string(op)}, json::value{std::move(endpoint)});
    }
    return json::value{std::move(o)};
}

void metrics_registry::to_prometheus(std::string& out) const {
    // Family-major so each # TYPE header precedes all of its samples.
    const auto each_active = [&](const auto& fn) {
        for (int i = 0; i < op_count; ++i) {
            const op_code op = static_cast<op_code>(i);
            const endpoint_metrics& m = at(op);
            if (m.requests.load(std::memory_order_relaxed) != 0) {
                fn(op, m);
            }
        }
    };

    bool any = false;
    each_active([&](op_code, const endpoint_metrics&) { any = true; });
    if (!any) {
        return;
    }

    obs::prometheus_header(out, "silicon_serve_requests_total", "counter",
                           "Requests handled per endpoint");
    each_active([&](op_code op, const endpoint_metrics& m) {
        obs::prometheus_sample(
            out, labeled("silicon_serve_requests_total", op),
            m.requests.load(std::memory_order_relaxed));
    });

    obs::prometheus_header(out, "silicon_serve_errors_total", "counter",
                           "Error responses per endpoint");
    each_active([&](op_code op, const endpoint_metrics& m) {
        obs::prometheus_sample(out, labeled("silicon_serve_errors_total", op),
                               m.errors.load(std::memory_order_relaxed));
    });

    obs::prometheus_header(out, "silicon_serve_cache_hits_total", "counter",
                           "Memoization-cache hits per endpoint");
    each_active([&](op_code op, const endpoint_metrics& m) {
        obs::prometheus_sample(
            out, labeled("silicon_serve_cache_hits_total", op),
            m.cache_hits.load(std::memory_order_relaxed));
    });

    obs::prometheus_header(out, "silicon_serve_latency_seconds", "histogram",
                           "Request service time per endpoint");
    each_active([&](op_code op, const endpoint_metrics& m) {
        obs::prometheus_histogram(
            out, labeled("silicon_serve_latency_seconds", op), m.latency);
    });
}

}  // namespace silicon::serve
