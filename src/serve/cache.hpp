// cache.hpp — sharded LRU memoization cache for serve results.
//
// The engine memoizes evaluated responses keyed by the *canonical*
// serialization of the request (see json::canonical and
// request::canonical_key), so a repeated query — byte-identical or
// merely member-order-shuffled — is answered from memory.  Correctness
// rests on every endpoint being a pure function of its canonical
// request: the cached bytes are exactly what a fresh evaluation would
// produce, so cache hits can never change a response, only its
// latency.
//
// Concurrency: the key space is split across `shards` independent
// LRU structures (shard = hash(key) % shards), each behind its own
// mutex, so parallel batch workers rarely contend.  Values are
// returned as shared_ptr<const string> — a hit stays valid even if the
// entry is evicted a microsecond later by another thread.
//
// Capacity is interpreted as a total entry budget distributed evenly
// across shards (per-shard ceil(capacity/shards), so the effective
// total may exceed `capacity` by up to shards-1 entries).  A capacity
// of 0 disables caching entirely (every get misses, puts are dropped).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace silicon::serve {

/// Sharded least-recently-used string -> string cache.
class memo_cache {
public:
    /// Aggregate statistics across all shards (counters are cumulative
    /// since construction, never reset by eviction).
    struct stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;   ///< current resident entries
        std::size_t capacity = 0;  ///< configured total budget
        std::size_t shards = 0;    ///< shard count actually in use
        /// Resident entries per shard (size == shards) — the occupancy
        /// skew the Prometheus exposition reports per shard.
        std::vector<std::size_t> shard_entries;
    };

    /// @param capacity total entry budget; 0 disables the cache.
    /// @param shards   requested shard count (clamped to [1, capacity]).
    explicit memo_cache(std::size_t capacity, std::size_t shards = 16);
    ~memo_cache();

    memo_cache(const memo_cache&) = delete;
    memo_cache& operator=(const memo_cache&) = delete;

    /// The cached value for `key`, or nullptr on a miss.  A hit moves
    /// the entry to most-recently-used position.
    [[nodiscard]] std::shared_ptr<const std::string> get(
        std::string_view key);

    /// Speculative probe used by the engine's hot path: behaves like
    /// `get` on a hit (counts it, promotes to MRU) but does NOT count a
    /// miss — the hot path falls back to the legacy pipeline whose `get`
    /// records the single authoritative miss, keeping hit/miss stats
    /// identical whether or not the fast path is enabled.
    [[nodiscard]] std::shared_ptr<const std::string> get_if_present(
        std::string_view key);

    /// Insert or refresh `key`; evicts the least-recently-used entry of
    /// the key's shard when that shard is full.
    void put(std::string_view key, std::string value);

    /// Drop every entry (counters are preserved).
    void clear();

    /// Memory-pressure shedding: drop every resident entry of the first
    /// `count` shards (clamped to the shard count) and return how many
    /// entries were released.  Shed entries count as evictions; shards
    /// stay usable, so this trades hit rate for immediate memory, not
    /// capacity.  Safe under concurrent get/put.
    std::size_t shed_shards(std::size_t count);

    [[nodiscard]] stats snapshot() const;

    /// Shards actually in use (0 when the cache is disabled).
    [[nodiscard]] std::size_t shard_count() const noexcept {
        return shard_count_;
    }

    /// Copy of shard `index`'s resident entries in least- to
    /// most-recently-used order, so replaying them through put()
    /// reproduces the recency order.  Values are shared, not copied.
    /// The shard lock is held only for the duration of the copy — the
    /// snapshot writer walks shards one at a time, staying out of the
    /// way of concurrent get/put/shed.
    [[nodiscard]] std::vector<
        std::pair<std::string, std::shared_ptr<const std::string>>>
    shard_snapshot(std::size_t index) const;

private:
    struct shard;
    shard* shards_ = nullptr;
    std::size_t shard_count_ = 0;
    std::size_t capacity_ = 0;
    std::size_t per_shard_capacity_ = 0;
    /// Miss count when the cache is disabled (capacity 0): there are no
    /// shards to carry the counter, but every get() is still a miss and
    /// the stats must say so.
    std::atomic<std::uint64_t> disabled_misses_{0};
};

}  // namespace silicon::serve
