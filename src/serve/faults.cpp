#include "serve/faults.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace silicon::serve::faults {

namespace {

enum class fault_kind { alloc_fail, slow_task, short_write, eintr };

struct rule {
    fault_kind kind{};
    std::string site;
    std::uint64_t arg = 1;      ///< period / millis / byte cap
    std::uint64_t arrivals = 0; ///< calls seen (under the registry mutex)
    std::uint64_t injected = 0; ///< faults actually fired
};

/// One-branch hot-path guard; flipped by configure()/reset().
std::atomic<bool> g_enabled{false};

/// Rule registry.  Site queries are off the warm hot path (guarded by
/// g_enabled) and chaos runs are not performance runs, so a plain mutex
/// keeps arrival counting exact — which is what makes period-based
/// triggering reproducible in serial runs.
std::mutex g_mutex;
std::vector<rule>& registry() {
    static std::vector<rule> rules;
    return rules;
}

[[noreturn]] void bad_spec(std::string_view spec, const char* what) {
    throw std::invalid_argument("SILICON_FAULTS: " + std::string{what} +
                                " in '" + std::string{spec} + "'");
}

std::uint64_t parse_arg(std::string_view text, std::string_view spec) {
    if (text.empty()) {
        bad_spec(spec, "empty argument");
    }
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') {
            bad_spec(spec, "non-numeric argument");
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
}

rule parse_rule(std::string_view text, std::string_view spec) {
    const std::size_t at = text.find('@');
    if (at == std::string_view::npos || at == 0) {
        bad_spec(spec, "missing 'kind@site'");
    }
    const std::string_view kind_name = text.substr(0, at);
    std::string_view rest = text.substr(at + 1);
    rule out;
    const std::size_t colon = rest.find(':');
    if (colon != std::string_view::npos) {
        out.arg = parse_arg(rest.substr(colon + 1), spec);
        rest = rest.substr(0, colon);
    }
    if (rest.empty()) {
        bad_spec(spec, "empty site");
    }
    out.site = std::string{rest};

    if (kind_name == "alloc_fail") {
        out.kind = fault_kind::alloc_fail;
    } else if (kind_name == "slow_task") {
        out.kind = fault_kind::slow_task;
    } else if (kind_name == "short_write") {
        out.kind = fault_kind::short_write;
    } else if (kind_name == "eintr") {
        out.kind = fault_kind::eintr;
    } else {
        bad_spec(spec, "unknown fault kind");
    }
    if (out.arg == 0) {
        bad_spec(spec, "argument must be >= 1");
    }
    return out;
}

/// Finds the armed rule of `kind` for `site` (first match wins) and
/// advances its arrival counter; returns the fired argument via `arg`.
/// Caller decides what "fired" means per kind.
bool fire(fault_kind kind, std::string_view site, std::uint64_t& arg) {
    const std::lock_guard<std::mutex> lock(g_mutex);
    for (rule& r : registry()) {
        if (r.kind != kind || r.site != site) {
            continue;
        }
        const std::uint64_t arrival = r.arrivals++;
        bool fired = false;
        switch (kind) {
            case fault_kind::alloc_fail:
                fired = arrival % r.arg == r.arg - 1;
                break;
            case fault_kind::slow_task:
            case fault_kind::short_write:
                fired = true;
                break;
            case fault_kind::eintr:
                // N failures, then one success, cycling: a storm that
                // always lets a retry loop through eventually.
                fired = arrival % (r.arg + 1) < r.arg;
                break;
        }
        if (fired) {
            ++r.injected;
            arg = r.arg;
            return true;
        }
        return false;
    }
    return false;
}

}  // namespace

void configure(std::string_view spec) {
    std::vector<rule> rules;
    if (!spec.empty() && spec.back() == ',') {
        bad_spec(spec, "empty rule");  // trailing comma: a typo'd spec
    }
    std::size_t begin = 0;
    while (begin < spec.size()) {
        std::size_t end = spec.find(',', begin);
        if (end == std::string_view::npos) {
            end = spec.size();
        }
        const std::string_view part = spec.substr(begin, end - begin);
        if (part.empty()) {
            // "a,,b" or a trailing comma: almost certainly a typo'd rule
            // — failing loudly beats silently testing less than asked.
            bad_spec(spec, "empty rule");
        }
        rules.push_back(parse_rule(part, spec));
        begin = end + 1;
    }
    {
        const std::lock_guard<std::mutex> lock(g_mutex);
        registry() = std::move(rules);
    }
    g_enabled.store(!registry().empty(), std::memory_order_release);
}

void configure_from_env() {
    const char* spec = std::getenv("SILICON_FAULTS");
    configure(spec == nullptr ? std::string_view{} : std::string_view{spec});
}

void reset() { configure({}); }

bool enabled() noexcept {
    return g_enabled.load(std::memory_order_acquire);
}

bool should_fail(std::string_view site) {
    if (!enabled()) {
        return false;
    }
    std::uint64_t arg = 0;
    return fire(fault_kind::alloc_fail, site, arg);
}

void maybe_delay(std::string_view site) {
    if (!enabled()) {
        return;
    }
    std::uint64_t millis = 0;
    if (fire(fault_kind::slow_task, site, millis)) {
        std::this_thread::sleep_for(std::chrono::milliseconds{millis});
    }
}

std::size_t write_cap(std::string_view site) {
    if (!enabled()) {
        return 0;
    }
    std::uint64_t cap = 0;
    if (fire(fault_kind::short_write, site, cap)) {
        return static_cast<std::size_t>(cap);
    }
    return 0;
}

bool take_eintr(std::string_view site) {
    if (!enabled()) {
        return false;
    }
    std::uint64_t arg = 0;
    return fire(fault_kind::eintr, site, arg);
}

std::uint64_t injected(std::string_view site) {
    const std::lock_guard<std::mutex> lock(g_mutex);
    std::uint64_t total = 0;
    for (const rule& r : registry()) {
        if (r.site == site) {
            total += r.injected;
        }
    }
    return total;
}

std::uint64_t injected_total() {
    const std::lock_guard<std::mutex> lock(g_mutex);
    std::uint64_t total = 0;
    for (const rule& r : registry()) {
        total += r.injected;
    }
    return total;
}

}  // namespace silicon::serve::faults
