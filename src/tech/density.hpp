// density.hpp — design density catalog (paper Tables 1 and 2).
//
// Design density d_d is the number of minimum-feature-size squares
// (lambda^2) of die area consumed per "average" transistor — Eq. (5)
// inverted:
//
//     d_d = A_ch / (N_tr * lambda^2)
//
// It varies by two orders of magnitude across design styles (Table 2:
// DRAM ~20 to PLD ~2600), which is the quantitative heart of the paper's
// "what is cost-effective for memories is not beneficial for non-memory
// products" message.
//
// Table 1 digitizes the functional blocks of the 3.1M-transistor 0.8 um
// BiCMOS microprocessor of [22]; Table 2 the IC spectrum of [23,24].
// Table 2 prints lambda and d_d only; transistor counts (used by a few
// benches to reconstruct die areas) are the published figures for the
// named parts and are documented per entry.

#pragma once

#include "core/units.hpp"

#include <string>
#include <vector>

namespace silicon::tech {

/// Eq. (5) solved for d_d: lambda-squares per transistor.
/// Throws std::invalid_argument on non-positive inputs.
[[nodiscard]] double design_density(square_millimeters area,
                                    double transistors, microns lambda);

/// Eq. (5): transistors that fit in `area` at the given density.
[[nodiscard]] double transistors_for_area(square_millimeters area,
                                          double density, microns lambda);

/// Eq. (5) solved for area: A_ch = N_tr * d_d * lambda^2.
[[nodiscard]] square_millimeters area_for_transistors(double transistors,
                                                      double density,
                                                      microns lambda);

/// A row of Table 1: one functional block of the uP of [22] (0.8 um).
struct functional_block {
    std::string name;
    double area_mm2;      ///< block area as printed
    double transistors;   ///< transistor count as printed
    double printed_dd;    ///< d_d column as printed in the paper

    /// d_d recomputed from area and count at the given feature size.
    [[nodiscard]] double computed_dd(microns lambda) const;
};

/// Table 1 rows, in paper order.  All blocks are at 0.8 um.
[[nodiscard]] const std::vector<functional_block>& table1_blocks();

/// The feature size Table 1's printed densities correspond to.
[[nodiscard]] microns table1_feature_size();

/// IC categories of Table 2.
enum class ic_category {
    microprocessor,
    sram,
    dram,
    gate_array,
    sea_of_gates,
    pld,
};

/// A row of Table 2: a product and its design density.
struct ic_product {
    std::string name;       ///< as printed (part name or description)
    ic_category category;
    double feature_um;      ///< F. size column
    int metal_layers;       ///< from the description string
    double printed_dd;      ///< d_d column as printed
    double transistors;     ///< published count for the named part
                            ///< (reconstruction input, not printed)
};

/// Table 2 rows, in paper order.
[[nodiscard]] const std::vector<ic_product>& table2_products();

/// Category name for table output.
[[nodiscard]] std::string to_string(ic_category category);

/// Mean printed d_d of the Table 2 rows in a category — e.g. "memory d_d
/// is ~10-20x denser than logic", the paper's Sec. IV.D argument.
[[nodiscard]] double mean_density(ic_category category);

}  // namespace silicon::tech
