// process.hpp — process step catalog and X-factor derivation.
//
// Section III.A.b of the paper explains *why* wafer cost escalates with
// shrinking feature size: more manufacturing steps on more expensive
// equipment, plus tighter contamination control.  The X factor of Eq. (3)
// bundles all of that into one per-generation escalation rate, which the
// paper treats as an input (quoting Intel X=1.6, Mitsubishi 1.6-2.4,
// Hitachi 1.5-2.0, the IEDM-93 study 1.79, and 1.2-1.4 extracted from
// Fig. 2).
//
// This module opens the bundle: it synthesizes a step-level CMOS process
// recipe per technology generation (step counts consistent with Fig. 4)
// and derives an X estimate from the ratio of step counts weighted by
// per-category equipment cost escalation.  The result landing inside the
// quoted 1.2-2.4 envelope is one of the reproduction checks.

#pragma once

#include "core/units.hpp"

#include <string>
#include <vector>

namespace silicon::tech {

/// Equipment category a step runs on.
enum class step_category {
    lithography,
    etch,
    implant,
    deposition,
    diffusion,
    cmp,
    clean,
    metrology,
};

/// One manufacturing step.
struct process_step {
    std::string name;
    step_category category;
    double relative_cost;  ///< cost weight relative to a clean step (=1)
};

/// A full wafer process recipe.
struct process_recipe {
    std::string name;          ///< e.g. "CMOS 0.8um 2LM"
    double feature_um = 1.0;
    int metal_layers = 2;
    std::vector<process_step> steps;

    [[nodiscard]] int step_count() const noexcept {
        return static_cast<int>(steps.size());
    }

    /// Sum of relative step costs: the recipe's cost index.
    [[nodiscard]] double cost_index() const;

    /// Steps in a category.
    [[nodiscard]] int count(step_category category) const;
};

/// Synthesize a generic CMOS recipe for the given feature size and metal
/// stack.  Step counts scale the way Fig. 4 shows: roughly 60 steps per
/// mask layer at 1 um and growing as features shrink (extra spacer,
/// LDD — the paper's hot-electron example — silicide, and planarization
/// steps enter below 1 um).  Deterministic.
[[nodiscard]] process_recipe synthesize_cmos_recipe(microns feature,
                                                    int metal_layers);

/// Per-category equipment cost escalation factor from one generation to
/// the next (e.g. a new-generation litho tool costs `lithography` times
/// its predecessor).  Defaults follow early-90s equipment pricing:
/// lithography escalates fastest.
struct equipment_escalation {
    double lithography = 1.5;
    double etch = 1.25;
    double implant = 1.2;
    double deposition = 1.25;
    double diffusion = 1.1;
    double cmp = 1.3;
    double clean = 1.15;
    double metrology = 1.3;

    [[nodiscard]] double factor(step_category category) const;
};

/// Estimate the Eq. (3) X factor between two recipes: the ratio of
/// escalated cost indices.  `previous` must be the older (larger feature)
/// recipe.  Throws std::invalid_argument when the order is reversed.
[[nodiscard]] double estimate_x_factor(
    const process_recipe& previous, const process_recipe& next,
    const equipment_escalation& escalation = {});

/// The X calibration points quoted in Sec. III.A.b, for reporting.
struct x_calibration_point {
    std::string source;
    double x_low;
    double x_high;
};

[[nodiscard]] const std::vector<x_calibration_point>& quoted_x_values();

}  // namespace silicon::tech
