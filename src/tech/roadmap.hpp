// roadmap.hpp — technology generation roadmap (paper Figs. 1-4).
//
// Section II of the paper frames the cost discussion with four trend
// charts: minimum feature size vs. year (Fig. 1), fabline and wafer cost
// vs. year (Fig. 2), die size vs. feature size (Fig. 3), and process step
// count plus required defect density per generation (Fig. 4).  The paper
// plots survey data from [1,6,7,8,9]; this module carries the equivalent
// public trend values (DRAM-generation cadence, one row per generation)
// and the analytical fits the paper itself uses:
//
//   * A_ch(lambda) = 16.5 * exp(-5.3 * lambda) cm^2  (microprocessor die
//     size fit extracted from Fig. 3 and used in Eq. (9)), and
//   * exponential feature-size and fab-cost trends, recovered from the
//     table by log-linear regression (analysis::fit_exponential).
//
// Substitution note (DESIGN.md Sec. 4): the numeric columns are the widely
// published industry values for each DRAM generation, not the paper's
// exact (unlabeled) plot points; the benches reproduce the *trends*, which
// is what the cost model consumes.

#pragma once

#include "core/units.hpp"

#include <optional>
#include <string>
#include <vector>

namespace silicon::tech {

/// One technology generation (DRAM cadence).
struct technology_generation {
    int year;                      ///< volume production year
    double feature_um;             ///< minimum feature size, microns
    std::string dram_generation;   ///< e.g. "4Mb"
    double wafer_diameter_mm;      ///< mainstream wafer size
    int mask_layers;               ///< lithography mask count
    int process_steps;             ///< total manufacturing steps (Fig. 4)
    double fab_cost_musd;          ///< fabline cost, millions of dollars
    double wafer_cost_usd;         ///< processed wafer cost, dollars
    double dram_die_mm2;           ///< representative DRAM die size
    double microprocessor_die_mm2; ///< representative leading uP die size
};

/// The standard roadmap, 1971 (4 Kb) through 2001 (1 Gb), one row per
/// DRAM generation, ordered by year.
[[nodiscard]] const std::vector<technology_generation>& standard_roadmap();

/// The paper's Fig. 3 microprocessor die size fit used in Eq. (9):
/// A_ch(lambda) = 16.5 * exp(-5.3 * lambda) square centimetres.
[[nodiscard]] square_centimeters microprocessor_die_area(microns lambda);

/// Earliest (cheapest) generation whose minimum feature size is fine
/// enough to print a design drawn at `lambda`; nullopt when lambda is
/// finer than the roadmap's last entry.
[[nodiscard]] std::optional<technology_generation> generation_for_feature(
    microns lambda);

/// Generation in production during `year` (the last generation whose year
/// is <= `year`); nullopt before the roadmap starts.
[[nodiscard]] std::optional<technology_generation> generation_for_year(
    int year);

/// Exponential trend parameters y = a * exp(b * (year - year0)) recovered
/// from a roadmap column; used by the Fig. 1 and Fig. 2 benches.
struct trend {
    int year0 = 0;       ///< reference year (first roadmap year)
    double a = 0.0;      ///< value at year0 according to the fit
    double b = 0.0;      ///< exponential rate per year
    double r_squared = 0.0;

    /// Evaluate the trend at a year.
    [[nodiscard]] double at(int year) const;

    /// Doubling (b > 0) or halving (b < 0) time in years.
    [[nodiscard]] double doubling_time_years() const;
};

/// Fit the feature-size column: Fig. 1's straight line on a log axis.
[[nodiscard]] trend feature_size_trend();

/// Fit the fabline-cost column: Fig. 2's exponential facility cost growth.
[[nodiscard]] trend fab_cost_trend();

/// Fit the wafer-cost column of Fig. 2.
[[nodiscard]] trend wafer_cost_trend();

}  // namespace silicon::tech
