#include "tech/roadmap.hpp"

#include "analysis/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::tech {

const std::vector<technology_generation>& standard_roadmap() {
    // Columns: year, feature, DRAM, wafer mm, masks, steps, fab M$,
    // wafer $, DRAM die mm^2, uP die mm^2.  Values are the public
    // per-generation industry figures current in the early 1990s
    // ([1,6,7,8,9] of the paper; ICE "Status" reports); die areas are at
    // introduction.
    static const std::vector<technology_generation> roadmap = {
        {1971, 8.00, "1Kb",   51, 5,   60,    4,    30,  10,  13},
        {1974, 6.00, "4Kb",   76, 6,   70,    8,    45,  15,  20},
        {1977, 4.00, "16Kb",  76, 7,   85,   15,    70,  20,  25},
        {1980, 3.00, "64Kb", 100, 8,  100,   40,   110,  25,  35},
        {1983, 2.00, "256Kb",125, 9,  130,   85,   170,  35,  50},
        {1986, 1.20, "1Mb",  125, 10, 180,  150,   280,  50,  75},
        {1989, 0.80, "4Mb",  150, 12, 250,  300,   500,  90, 120},
        {1992, 0.50, "16Mb", 150, 14, 350,  600,   900, 130, 200},
        {1995, 0.35, "64Mb", 200, 16, 450, 1000,  1400, 190, 300},
        {1998, 0.25, "256Mb",200, 18, 550, 1700,  2000, 280, 400},
        {2001, 0.18, "1Gb",  300, 20, 650, 2800,  2800, 400, 520},
    };
    return roadmap;
}

square_centimeters microprocessor_die_area(microns lambda) {
    if (lambda.value() <= 0.0) {
        throw std::invalid_argument(
            "microprocessor_die_area: lambda must be positive");
    }
    return square_centimeters{16.5 * std::exp(-5.3 * lambda.value())};
}

std::optional<technology_generation> generation_for_feature(microns lambda) {
    // A design drawn at `lambda` needs a process whose minimum feature is
    // at least as fine; return the *earliest* (cheapest) such generation.
    for (const technology_generation& g : standard_roadmap()) {
        if (g.feature_um <= lambda.value()) {
            return g;  // roadmap is ordered by shrinking feature size
        }
    }
    return std::nullopt;
}

std::optional<technology_generation> generation_for_year(int year) {
    std::optional<technology_generation> found;
    for (const technology_generation& g : standard_roadmap()) {
        if (g.year <= year) {
            found = g;
        }
    }
    return found;
}

double trend::at(int year) const {
    return a * std::exp(b * static_cast<double>(year - year0));
}

double trend::doubling_time_years() const {
    if (b == 0.0) {
        throw std::domain_error("trend: flat trend has no doubling time");
    }
    return std::log(2.0) / std::abs(b);
}

namespace {

trend fit_column(double technology_generation::*column) {
    const auto& roadmap = standard_roadmap();
    std::vector<double> years;
    std::vector<double> values;
    years.reserve(roadmap.size());
    values.reserve(roadmap.size());
    const int year0 = roadmap.front().year;
    for (const technology_generation& g : roadmap) {
        years.push_back(static_cast<double>(g.year - year0));
        values.push_back(g.*column);
    }
    const analysis::linear_fit fit = analysis::fit_exponential(years, values);
    trend t;
    t.year0 = year0;
    t.a = std::exp(fit.intercept);
    t.b = fit.slope;
    t.r_squared = fit.r_squared;
    return t;
}

}  // namespace

trend feature_size_trend() {
    return fit_column(&technology_generation::feature_um);
}

trend fab_cost_trend() {
    return fit_column(&technology_generation::fab_cost_musd);
}

trend wafer_cost_trend() {
    return fit_column(&technology_generation::wafer_cost_usd);
}

}  // namespace silicon::tech
