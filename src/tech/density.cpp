#include "tech/density.hpp"

#include <stdexcept>

namespace silicon::tech {

double design_density(square_millimeters area, double transistors,
                      microns lambda) {
    if (!(transistors > 0.0)) {
        throw std::invalid_argument(
            "design_density: transistor count must be positive");
    }
    if (!(lambda.value() > 0.0)) {
        throw std::invalid_argument(
            "design_density: lambda must be positive");
    }
    if (!(area.value() > 0.0)) {
        throw std::invalid_argument("design_density: area must be positive");
    }
    // mm^2 -> um^2 is 1e6.
    const double area_um2 = area.value() * 1e6;
    return area_um2 / (transistors * lambda.value() * lambda.value());
}

double transistors_for_area(square_millimeters area, double density,
                            microns lambda) {
    if (!(density > 0.0) || !(lambda.value() > 0.0)) {
        throw std::invalid_argument(
            "transistors_for_area: density and lambda must be positive");
    }
    const double area_um2 = area.value() * 1e6;
    return area_um2 / (density * lambda.value() * lambda.value());
}

square_millimeters area_for_transistors(double transistors, double density,
                                        microns lambda) {
    if (!(transistors >= 0.0) || !(density > 0.0) ||
        !(lambda.value() > 0.0)) {
        throw std::invalid_argument(
            "area_for_transistors: invalid inputs");
    }
    const double area_um2 =
        transistors * density * lambda.value() * lambda.value();
    return square_millimeters{area_um2 * 1e-6};
}

double functional_block::computed_dd(microns lambda) const {
    return design_density(square_millimeters{area_mm2}, transistors, lambda);
}

const std::vector<functional_block>& table1_blocks() {
    static const std::vector<functional_block> blocks = {
        {"I-cache",       33.2, 1200e3,  43.2},
        {"D-cache",       35.7, 1100e3,  50.7},
        {"F. point unit", 45.9,  323e3, 222.3},
        {"Integer unit",  38.3,  232e3, 257.9},
        {"MMU",           20.4,  118e3, 270.5},
        {"Bus unit",      12.7,   50e3, 399.0},
    };
    return blocks;
}

microns table1_feature_size() {
    return microns{0.8};
}

const std::vector<ic_product>& table2_products() {
    // Transistor counts are the published figures for the named parts
    // (ISSCC 1991-1993 digests, IEEE Spectrum Dec. 1993):
    //   Alpha 21064 1.68M, R4400SC 2.3M, PA7100 0.85M, Pentium 3.1M,
    //   PowerPC 601 2.8M, SuperSPARC 3.1M, 68040 1.2M.  Memory counts
    //   include cell transistors (6T SRAM, 1T+periphery DRAM).  Gate
    //   arrays/PLDs: usable-gate counts times ~4 transistors/gate scaled
    //   by stated utilization.
    static const std::vector<ic_product> products = {
        {"uP, BiCMOS, 3M",            ic_category::microprocessor, 0.30, 3,  907.95, 2.0e6},
        {"uP, CMOS, 3M, Alpha 21064", ic_category::microprocessor, 0.68, 3,  250.13, 1.68e6},
        {"uP, CMOS, 2M, R4400SC",     ic_category::microprocessor, 0.60, 2,  224.64, 2.3e6},
        {"uP, CMOS, 3M, PA7100",      ic_category::microprocessor, 0.80, 3,  370.66, 0.85e6},
        {"uP, BiCMOS, 3M, Pentium",   ic_category::microprocessor, 0.80, 3,  149.11, 3.1e6},
        {"uP, CMOS, 4M, PowerPC601",  ic_category::microprocessor, 0.65, 4,  102.28, 2.8e6},
        {"uP, BiCMOS, 3M, 2P, SuperSparc", ic_category::microprocessor, 0.70, 3, 168.53, 3.1e6},
        {"uP, CMOS, 2M, 68040",       ic_category::microprocessor, 0.65, 2,  249.23, 1.2e6},
        {"1Mb SRAM, 2M, 2P",          ic_category::sram, 0.35, 2,   36.00, 6.2e6},
        {"16Mb SRAM, 2M, 4P",         ic_category::sram, 0.25, 2,   17.80, 100e6},
        {"64Mb DRAM, 2M",             ic_category::dram, 0.40, 2,   22.29, 70e6},
        {"256Mb DRAM, 3M",            ic_category::dram, 0.25, 3,   20.18, 264e6},
        {"GateArray, 53Kg, BiCMOS, 50%", ic_category::gate_array, 0.80, 2, 507.66, 106e3},
        {"GateArray, BiCMOS",         ic_category::gate_array, 0.50, 2,  403.20, 300e3},
        {"SOG, 177Kg, 35-70%, CMOS, 3M", ic_category::sea_of_gates, 0.80, 3, 249.44, 0.7e6},
        {"SOG, 235Kg, 70%, CMOS, 3M", ic_category::sea_of_gates, 0.80, 3,  117.19, 0.66e6},
        {"PLD, 1.2Kg, EEPROM, 2M, 2P", ic_category::pld, 0.80, 2, 2631.04, 7.2e3},
    };
    return products;
}

std::string to_string(ic_category category) {
    switch (category) {
        case ic_category::microprocessor: return "microprocessor";
        case ic_category::sram:           return "SRAM";
        case ic_category::dram:           return "DRAM";
        case ic_category::gate_array:     return "gate array";
        case ic_category::sea_of_gates:   return "sea of gates";
        case ic_category::pld:            return "PLD";
    }
    return "unknown";
}

double mean_density(ic_category category) {
    double sum = 0.0;
    int count = 0;
    for (const ic_product& p : table2_products()) {
        if (p.category == category) {
            sum += p.printed_dd;
            ++count;
        }
    }
    if (count == 0) {
        throw std::invalid_argument(
            "mean_density: no Table 2 rows in this category");
    }
    return sum / count;
}

}  // namespace silicon::tech
