#include "tech/process.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::tech {

double process_recipe::cost_index() const {
    double index = 0.0;
    for (const process_step& step : steps) {
        index += step.relative_cost;
    }
    return index;
}

int process_recipe::count(step_category category) const {
    int n = 0;
    for (const process_step& step : steps) {
        if (step.category == category) {
            ++n;
        }
    }
    return n;
}

namespace {

void add_steps(process_recipe& recipe, const std::string& base_name,
               step_category category, int count, double relative_cost) {
    for (int i = 0; i < count; ++i) {
        recipe.steps.push_back({base_name + " #" + std::to_string(i + 1),
                                category, relative_cost});
    }
}

}  // namespace

process_recipe synthesize_cmos_recipe(microns feature, int metal_layers) {
    const double f = feature.value();
    if (!(f > 0.0)) {
        throw std::invalid_argument(
            "synthesize_cmos_recipe: feature size must be positive");
    }
    if (metal_layers < 1 || metal_layers > 8) {
        throw std::invalid_argument(
            "synthesize_cmos_recipe: metal layers must be in [1,8]");
    }

    process_recipe recipe;
    recipe.feature_um = f;
    recipe.metal_layers = metal_layers;
    {
        char name[64];
        std::snprintf(name, sizeof name, "CMOS %.2fum %dLM", f,
                      metal_layers);
        recipe.name = name;
    }

    // Front end: mask layers for wells, active, poly, implants.  Finer
    // features add LDD spacers (the paper's hot-electron example),
    // silicide and extra implants.
    const bool sub_micron = f < 1.0;
    const bool deep_sub_micron = f < 0.5;
    const int front_end_masks =
        8 + (sub_micron ? 3 : 0) + (deep_sub_micron ? 3 : 0);
    // Back end: each metal layer is roughly via + metal mask.
    const int back_end_masks = 2 * metal_layers;

    // Per mask layer: litho (resist, expose, develop counted as one
    // weighted step), etch, strip/clean, metrology sample.
    add_steps(recipe, "litho", step_category::lithography,
              front_end_masks + back_end_masks, 4.0);
    add_steps(recipe, "etch", step_category::etch,
              front_end_masks + back_end_masks, 2.0);
    add_steps(recipe, "clean", step_category::clean,
              2 * (front_end_masks + back_end_masks), 1.0);
    add_steps(recipe, "inspect", step_category::metrology,
              (front_end_masks + back_end_masks + 1) / 2, 1.5);

    // Implants: wells, channel stops, S/D, LDD below 1 um, halo below 0.5.
    add_steps(recipe, "implant", step_category::implant,
              6 + (sub_micron ? 4 : 0) + (deep_sub_micron ? 4 : 0), 2.5);

    // Depositions: gate oxide, poly, dielectric and metal per layer,
    // plus spacer and silicide films below 1 um.
    add_steps(recipe, "deposition", step_category::deposition,
              4 + 2 * metal_layers + (sub_micron ? 3 : 0) +
                  (deep_sub_micron ? 2 : 0),
              2.0);

    // Thermal: anneals and drives; count shrinks slightly with RTP at
    // finer nodes but stays roughly constant.
    add_steps(recipe, "thermal", step_category::diffusion, 6, 1.2);

    // Planarization: CMP enters below 0.8 um, one pass per metal level.
    if (f <= 0.8) {
        add_steps(recipe, "cmp", step_category::cmp, metal_layers, 2.2);
    }

    return recipe;
}

double equipment_escalation::factor(step_category category) const {
    switch (category) {
        case step_category::lithography: return lithography;
        case step_category::etch:        return etch;
        case step_category::implant:     return implant;
        case step_category::deposition:  return deposition;
        case step_category::diffusion:   return diffusion;
        case step_category::cmp:         return cmp;
        case step_category::clean:       return clean;
        case step_category::metrology:   return metrology;
    }
    throw std::invalid_argument("equipment_escalation: unknown category");
}

double estimate_x_factor(const process_recipe& previous,
                         const process_recipe& next,
                         const equipment_escalation& escalation) {
    if (!(previous.feature_um > next.feature_um)) {
        throw std::invalid_argument(
            "estimate_x_factor: `previous` must be the older, larger "
            "feature-size recipe");
    }
    const double base = previous.cost_index();
    if (base <= 0.0) {
        throw std::invalid_argument(
            "estimate_x_factor: previous recipe has no cost");
    }
    // The next generation runs its (larger) step set on escalated
    // equipment: weight each step by its category's escalation.
    double escalated = 0.0;
    for (const process_step& step : next.steps) {
        escalated += step.relative_cost * escalation.factor(step.category);
    }
    return escalated / base;
}

const std::vector<x_calibration_point>& quoted_x_values() {
    static const std::vector<x_calibration_point> values = {
        {"Intel [14]",            1.6, 1.6},
        {"Mitsubishi [1]",        1.6, 2.4},
        {"Hitachi [18]",          1.5, 2.0},
        {"IEDM-93 study [12]",    1.79, 1.79},
        {"Fig. 2 extraction",     1.2, 1.4},
    };
    return values;
}

}  // namespace silicon::tech
