#include "exec/arena.hpp"

#include <cstdint>
#include <cstring>

namespace silicon::exec {

namespace {

[[nodiscard]] std::uintptr_t align_up(std::uintptr_t p,
                                      std::size_t alignment) noexcept {
    return (p + alignment - 1) & ~(static_cast<std::uintptr_t>(alignment) - 1);
}

}  // namespace

void* arena::allocate(std::size_t bytes, std::size_t alignment) {
    if (bytes == 0) {
        bytes = 1;  // distinct non-null pointers, like operator new
    }
    if (active_ < chunks_.size()) {
        // Alignment is on the *address* (chunk bases only carry the
        // default operator-new alignment), so compute the padded offset
        // from the actual base pointer.
        const chunk& c = chunks_[active_];
        const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
        const std::size_t aligned =
            static_cast<std::size_t>(align_up(base + cursor_, alignment) -
                                     base);
        if (aligned <= c.size && bytes <= c.size - aligned) {
            cursor_ = aligned + bytes;
            allocated_since_reset_ += bytes;
            lifetime_bytes_ += bytes;
            return chunks_[active_].data.get() + aligned;
        }
    }
    return allocate_slow(bytes, alignment);
}

void* arena::allocate_slow(std::size_t bytes, std::size_t alignment) {
    // Advance through retained chunks first; a chunk created earlier as an
    // oversize fallback is reused here like any other.
    while (active_ + 1 < chunks_.size()) {
        ++active_;
        cursor_ = 0;
        const chunk& c = chunks_[active_];
        const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
        const std::size_t aligned =
            static_cast<std::size_t>(align_up(base, alignment) - base);
        if (aligned <= c.size && bytes <= c.size - aligned) {
            cursor_ = aligned + bytes;
            allocated_since_reset_ += bytes;
            lifetime_bytes_ += bytes;
            return chunks_[active_].data.get() + aligned;
        }
    }
    // No retained chunk fits: reserve a new one.  Oversize requests get a
    // dedicated chunk sized for the request (plus alignment slack).
    std::size_t want = bytes + alignment;
    if (want < chunk_bytes_) {
        want = chunk_bytes_;
    }
    chunk c;
    c.data = std::make_unique<std::byte[]>(want);
    c.size = want;
    reserved_ += want;
    chunks_.push_back(std::move(c));
    active_ = chunks_.size() - 1;
    const auto base =
        reinterpret_cast<std::uintptr_t>(chunks_[active_].data.get());
    const std::size_t aligned =
        static_cast<std::size_t>(align_up(base, alignment) - base);
    cursor_ = aligned + bytes;
    allocated_since_reset_ += bytes;
    lifetime_bytes_ += bytes;
    return chunks_[active_].data.get() + aligned;
}

const char* arena::copy(const char* data, std::size_t n) {
    char* dst = static_cast<char*>(allocate(n == 0 ? 1 : n, 1));
    if (n != 0) {
        std::memcpy(dst, data, n);
    }
    return dst;
}

}  // namespace silicon::exec
