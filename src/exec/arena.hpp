#pragma once

/// \file
/// Monotonic per-batch arena allocator.
///
/// The serve hot path parses a request, canonicalizes it, probes the memo
/// cache, and assembles a response.  All transient storage for one line is
/// bump-allocated from an arena owned by the worker thread; between lines the
/// arena is reset (cursor rewind, chunks retained), so a warm request touches
/// no global allocator at all.  The arena is strictly monotonic: allocations
/// never free individually, destructors never run, and `reset()` recycles the
/// memory wholesale.
///
/// Design points:
///  - Chunked: memory is grabbed from `operator new` in chunks (default
///    64 KiB).  `reset()` rewinds to the first chunk but keeps every chunk
///    alive, so a steady-state workload stops allocating after warm-up.
///  - Oversize fallback: a request larger than the chunk size gets a
///    dedicated chunk sized exactly for it; subsequent allocations continue
///    from the following chunks (the dedicated chunk is retained and reused
///    on later passes like any other).
///  - Alignment: every allocation is aligned to the caller's requirement
///    (power of two, up to `alignof(std::max_align_t)` guaranteed by the
///    underlying `new`; stricter requests are honoured by over-aligning the
///    cursor within the chunk).
///  - Counters: bytes handed out since the last reset, bytes reserved in
///    chunks, chunk count, and lifetime totals for observability.
///
/// Not thread-safe: one arena per thread (the engine keeps one in a
/// `thread_local` line state).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace silicon::exec {

class arena {
  public:
    static constexpr std::size_t default_chunk_bytes = 64 * 1024;

    explicit arena(std::size_t chunk_bytes = default_chunk_bytes)
        : chunk_bytes_{chunk_bytes == 0 ? default_chunk_bytes : chunk_bytes} {}

    arena(const arena&) = delete;
    arena& operator=(const arena&) = delete;

    /// Returns `bytes` of storage aligned to `alignment` (a power of two).
    /// Never returns nullptr; throws std::bad_alloc on exhaustion like `new`.
    void* allocate(std::size_t bytes,
                   std::size_t alignment = alignof(std::max_align_t));

    /// Rewinds the cursor to the start of the first chunk.  All previously
    /// returned pointers become invalid; every chunk stays allocated so a
    /// warmed arena serves the next batch without touching the heap.
    void reset() noexcept {
        allocated_since_reset_ = 0;
        active_ = 0;
        cursor_ = 0;
    }

    /// Frees every chunk (used by tests; normal operation only resets).
    void release() noexcept {
        chunks_.clear();
        reserved_ = 0;
        reset();
    }

    /// Constructs a trivially-destructible T inside the arena.
    template <class T, class... Args>
    T* make(Args&&... args) {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena never runs destructors");
        void* p = allocate(sizeof(T), alignof(T));
        return ::new (p) T(std::forward<Args>(args)...);
    }

    /// Uninitialized array of trivially-destructible T.
    template <class T>
    T* make_array(std::size_t n) {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena never runs destructors");
        if (n == 0) {
            return nullptr;
        }
        return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    }

    /// Copies `[data, data+n)` into the arena and returns the copy.
    const char* copy(const char* data, std::size_t n);

    /// User bytes handed out since the last reset (excludes alignment pad).
    [[nodiscard]] std::size_t bytes_allocated() const noexcept {
        return allocated_since_reset_;
    }
    /// Total chunk capacity currently reserved from the heap.
    [[nodiscard]] std::size_t bytes_reserved() const noexcept {
        return reserved_;
    }
    [[nodiscard]] std::size_t chunk_count() const noexcept {
        return chunks_.size();
    }
    /// Lifetime total of user bytes handed out (monotonic; survives reset).
    [[nodiscard]] std::uint64_t lifetime_bytes() const noexcept {
        return lifetime_bytes_;
    }

  private:
    struct chunk {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
    };

    /// Finds or creates a chunk able to hold `bytes` and points the cursor
    /// at it.  Out-of-line so the fast bump path stays inlineable.
    void* allocate_slow(std::size_t bytes, std::size_t alignment);

    std::size_t chunk_bytes_;
    std::vector<chunk> chunks_;
    std::size_t active_ = 0;  // index of the chunk the cursor lives in
    std::size_t cursor_ = 0;  // offset into chunks_[active_]
    std::size_t reserved_ = 0;
    std::size_t allocated_since_reset_ = 0;
    std::uint64_t lifetime_bytes_ = 0;
};

}  // namespace silicon::exec
