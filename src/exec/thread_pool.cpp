#include "exec/thread_pool.hpp"

#include "exec/cancel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace silicon::exec {

namespace {

/// Set while the current thread executes a pool task (any pool); used to
/// reject nested thread_pool::run and to degrade nested parallel_for to
/// serial execution.
thread_local bool in_pool_task = false;

/// RAII flag for in_pool_task so exceptions unwind it correctly.
struct task_scope {
    task_scope() noexcept { in_pool_task = true; }
    ~task_scope() { in_pool_task = false; }
    task_scope(const task_scope&) = delete;
    task_scope& operator=(const task_scope&) = delete;
};

// Pool metrics live in the global obs registry: tasks ever executed,
// instantaneous queued-but-unclaimed tasks, and the pool width.  All
// lazily registered so a program that never runs parallel work never
// creates them.
obs::counter& tasks_total() {
    static obs::counter& c = obs::metrics_registry::global().get_counter(
        "silicon_exec_tasks_total",
        "Tasks executed by the exec thread pool");
    return c;
}

obs::gauge& queue_depth() {
    static obs::gauge& g = obs::metrics_registry::global().get_gauge(
        "silicon_exec_queue_depth",
        "Submitted pool tasks not yet claimed by a worker");
    return g;
}

obs::gauge& pool_threads() {
    static obs::gauge& g = obs::metrics_registry::global().get_gauge(
        "silicon_exec_pool_threads",
        "Execution width of the most recently constructed pool");
    return g;
}

}  // namespace

std::size_t shard_count_for(std::size_t items) noexcept {
    constexpr std::size_t max_shards = 64;
    return std::min(items, max_shards);
}

shard_range shard_of(std::size_t items, std::size_t shards,
                     std::size_t index) {
    if (shards == 0) {
        throw std::invalid_argument("shard_of: need at least one shard");
    }
    if (index >= shards) {
        throw std::invalid_argument("shard_of: shard index out of range");
    }
    const std::size_t base = items / shards;
    const std::size_t extra = items % shards;
    const std::size_t begin = index * base + std::min(index, extra);
    const std::size_t size = base + (index < extra ? 1 : 0);
    return {begin, begin + size, index, shards};
}

unsigned resolve_parallelism(unsigned requested) noexcept {
    return requested == 0 ? thread_pool::hardware_threads() : requested;
}

/// One run() invocation.  Heap-allocated and shared with the workers so
/// a worker that wakes late (or drains the counter after completion) only
/// ever touches its own job's state, never a successor's.
struct thread_pool::job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t total = 0;
    std::uint64_t submit_ns = 0;   ///< tracer timestamp; 0 = untraced
    std::atomic<std::size_t> next{0};
    std::size_t completed = 0;     // guarded by impl::mutex
    std::exception_ptr error;      // guarded by impl::mutex
};

struct thread_pool::impl {
    std::vector<std::thread> workers;
    unsigned thread_count = 1;

    std::mutex mutex;
    std::condition_variable work_cv;
    std::condition_variable done_cv;
    std::shared_ptr<job> current;  // guarded by mutex
    std::uint64_t generation = 0;  // guarded by mutex
    bool stop = false;             // guarded by mutex

    std::mutex submit_mutex;       // serializes concurrent run() callers
};

thread_pool::thread_pool(unsigned threads) : impl_{new impl} {
    const unsigned resolved = resolve_parallelism(threads);
    impl_->thread_count = resolved;
    pool_threads().set(static_cast<double>(resolved));
    impl_->workers.reserve(resolved - 1);
    try {
        for (unsigned i = 0; i + 1 < resolved; ++i) {
            impl_->workers.emplace_back([this] { worker_loop(); });
        }
    } catch (...) {
        {
            const std::lock_guard<std::mutex> lock(impl_->mutex);
            impl_->stop = true;
        }
        impl_->work_cv.notify_all();
        for (std::thread& t : impl_->workers) {
            t.join();
        }
        delete impl_;
        throw;
    }
}

thread_pool::~thread_pool() {
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stop = true;
    }
    impl_->work_cv.notify_all();
    for (std::thread& t : impl_->workers) {
        t.join();
    }
    delete impl_;
}

unsigned thread_pool::thread_count() const noexcept {
    return impl_->thread_count;
}

unsigned thread_pool::hardware_threads() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
}

bool thread_pool::on_worker_thread() noexcept { return in_pool_task; }

thread_pool& thread_pool::shared() {
    static thread_pool pool{hardware_threads()};
    return pool;
}

void thread_pool::execute(job& j) {
    const task_scope scope;
    obs::tracer& tracer = obs::tracer::instance();
    for (;;) {
        const std::size_t i = j.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= j.total) {
            break;
        }
        if (j.submit_ns != 0 && tracer.enabled()) {
            // Queue wait: submission until this worker claimed the task.
            tracer.record("exec.queue_wait", "exec", j.submit_ns,
                          tracer.now_ns() - j.submit_ns);
        }
        queue_depth().add(-1.0);
        std::exception_ptr err;
        try {
            const obs::trace_span span{"exec.task", "exec"};
            (*j.fn)(i);
        } catch (...) {
            err = std::current_exception();
        }
        tasks_total().add(1);
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        if (err && !j.error) {
            j.error = err;
        }
        if (++j.completed == j.total) {
            impl_->done_cv.notify_all();
        }
    }
}

void thread_pool::worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<job> j;
        {
            std::unique_lock<std::mutex> lock(impl_->mutex);
            impl_->work_cv.wait(lock, [&] {
                return impl_->stop || impl_->generation != seen;
            });
            if (impl_->stop) {
                return;
            }
            seen = impl_->generation;
            j = impl_->current;
        }
        if (j) {
            execute(*j);
        }
    }
}

void thread_pool::run(std::size_t tasks,
                      const std::function<void(std::size_t)>& fn) {
    if (in_pool_task) {
        throw std::logic_error(
            "thread_pool::run: nested use from inside a pool task");
    }
    if (tasks == 0) {
        return;
    }
    if (impl_->workers.empty()) {
        // Width-1 pool: execute inline, same nesting guard as workers.
        const task_scope scope;
        for (std::size_t i = 0; i < tasks; ++i) {
            const obs::trace_span span{"exec.task", "exec"};
            fn(i);
            tasks_total().add(1);
        }
        return;
    }

    const std::lock_guard<std::mutex> submit(impl_->submit_mutex);
    auto j = std::make_shared<job>();
    j->fn = &fn;
    j->total = tasks;
    {
        obs::tracer& tracer = obs::tracer::instance();
        if (tracer.enabled()) {
            j->submit_ns = tracer.now_ns();
        }
    }
    queue_depth().add(static_cast<double>(tasks));
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->current = j;
        ++impl_->generation;
    }
    impl_->work_cv.notify_all();
    execute(*j);  // the caller participates
    {
        std::unique_lock<std::mutex> lock(impl_->mutex);
        impl_->done_cv.wait(lock, [&] { return j->completed == j->total; });
        impl_->current.reset();
    }
    if (j->error) {
        std::rethrow_exception(j->error);
    }
}

void parallel_for(std::size_t items, unsigned parallelism,
                  const std::function<void(const shard_range&)>& body) {
    const std::size_t shards = shard_count_for(items);
    if (shards == 0) {
        return;
    }
    const unsigned threads = resolve_parallelism(parallelism);
    if (threads <= 1 || shards == 1 || thread_pool::on_worker_thread()) {
        // Serial path — the SAME shard decomposition, run in index order
        // on the calling thread (also the nested-use safety fallback).
        for (std::size_t s = 0; s < shards; ++s) {
            const obs::trace_span span{"exec.task", "exec"};
            body(shard_of(items, shards, s));
            tasks_total().add(1);
        }
        return;
    }
    const std::function<void(std::size_t)> task = [&](std::size_t s) {
        body(shard_of(items, shards, s));
    };
    if (threads >= thread_pool::hardware_threads()) {
        thread_pool::shared().run(shards, task);
    } else {
        thread_pool local{threads};
        local.run(shards, task);
    }
}

void parallel_for(std::size_t items, unsigned parallelism,
                  const std::function<void(const shard_range&)>& body,
                  const cancel_token* cancel) {
    if (cancel == nullptr) {
        parallel_for(items, parallelism, body);
        return;
    }
    // Cancellation point at every shard boundary: a shard either runs
    // to completion or not at all, so whatever completed is identical
    // to the uncancelled run.  The throw happens after the join so no
    // worker is abandoned mid-task.
    parallel_for(items, parallelism, [&](const shard_range& r) {
        if (cancel->expired()) {
            return;
        }
        body(r);
    });
    if (cancel->expired()) {
        throw cancelled_error{};
    }
}

}  // namespace silicon::exec
