// thread_pool.hpp — deterministic parallel execution engine.
//
// Every stochastic hot path in the library (Monte-Carlo yield, the wafer
// simulator, the sweep/grid engines behind the figure benches) runs on
// this small chunk-sharded thread pool.  The design goal is *thread-count
// invariance*: a run with N threads and a run with 1 thread must produce
// bit-identical results, so the statistical tests stay meaningful no
// matter where they execute.
//
// The contract that guarantees it:
//
//   1. Work over `items` elements is split into `shard_count_for(items)`
//      contiguous shards.  The decomposition depends ONLY on the item
//      count — never on the thread count or the hardware.
//   2. Each shard owns a private RNG stream seeded with
//      `shard_seed(seed, shard_index)` (a double SplitMix64 finalizer of
//      the pair), so the streams are fixed by (seed, shard) regardless of
//      which thread executes the shard or in which order.
//   3. Shard results are merged by shard index (parallel_reduce folds in
//      index order; callers that write into preallocated slots index by
//      item).  No merge ever depends on completion order.
//
// Threads only decide *when* a shard runs, never *what* it computes, so
// `parallelism ∈ {1, 2, 7, hw}` all reproduce the same streams and the
// same merged result.  There is no work stealing and no dynamic
// re-chunking — determinism is bought with static sharding, and the 64x
// shard budget (see shard_count_for) keeps load balance good anyway.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace silicon::exec {

/// Derive the RNG seed of one shard from the run seed and the shard
/// index: two rounds of the SplitMix64 finalizer over the mixed pair,
/// so adjacent (seed, shard) pairs give decorrelated streams.  This is
/// the single seeding helper used by serial AND parallel code paths.
[[nodiscard]] constexpr std::uint64_t shard_seed(
    std::uint64_t seed, std::uint64_t shard_index) noexcept {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (shard_index + 1);
    for (int round = 0; round < 2; ++round) {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
    }
    return z;
}

/// One contiguous chunk of a sharded index range.
struct shard_range {
    std::size_t begin = 0;  ///< first item (inclusive)
    std::size_t end = 0;    ///< last item (exclusive)
    std::size_t index = 0;  ///< shard index in [0, count)
    std::size_t count = 0;  ///< total shards of the decomposition

    [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

/// Number of shards used for `items` work items: min(items, 64).  A
/// fixed budget (not a function of the thread count) is what makes the
/// decomposition hardware-independent; 64 shards give good load balance
/// for any realistic core count while keeping merge cost negligible.
[[nodiscard]] std::size_t shard_count_for(std::size_t items) noexcept;

/// The `index`-th of `shards` near-equal contiguous chunks of [0, items):
/// the first items % shards chunks hold one extra item.  More shards than
/// items is allowed (the tail shards are empty).  Throws
/// std::invalid_argument when shards == 0 or index >= shards.
[[nodiscard]] shard_range shard_of(std::size_t items, std::size_t shards,
                                   std::size_t index);

/// Resolve a `parallelism` knob: 0 means hardware concurrency, anything
/// else is taken literally.
[[nodiscard]] unsigned resolve_parallelism(unsigned requested) noexcept;

/// A fixed-size pool of worker threads executing indexed task batches.
///
/// `run(tasks, fn)` calls fn(0) … fn(tasks-1) exactly once each across
/// the workers plus the calling thread, blocks until all complete, and
/// rethrows the first exception thrown by any task (remaining tasks
/// still run).  Tasks are claimed from a shared atomic counter; callers
/// needing determinism must make each task independent of execution
/// order — the sharding helpers above exist for exactly that.
///
/// Nested use is rejected: calling run() from inside any pool task
/// throws std::logic_error (the higher-level parallel_for degrades to
/// serial instead, see below).
class thread_pool {
public:
    /// Spawns threads-1 workers (the caller participates in run()).
    /// threads == 0 means hardware concurrency.
    explicit thread_pool(unsigned threads = 0);
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Total execution width: workers + the calling thread.
    [[nodiscard]] unsigned thread_count() const noexcept;

    /// Execute fn(i) for i in [0, tasks); blocks until done.
    void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

    /// std::thread::hardware_concurrency(), never less than 1.
    [[nodiscard]] static unsigned hardware_threads() noexcept;

    /// True while the current thread is executing a pool task (of any
    /// pool) — used for nested-use detection.
    [[nodiscard]] static bool on_worker_thread() noexcept;

    /// Lazily constructed process-wide pool sized to the hardware.
    [[nodiscard]] static thread_pool& shared();

private:
    struct job;
    struct impl;
    void worker_loop();
    void execute(job& j);

    impl* impl_;
};

/// Run `body` over the deterministic shard decomposition of [0, items)
/// using up to `parallelism` threads (0 = hardware concurrency).  The
/// decomposition — and therefore any per-shard RNG stream seeded via
/// shard_seed — is identical for every parallelism value; only the
/// wall-clock changes.  parallelism <= 1 executes the same shards
/// serially on the calling thread.  Called from inside a pool task it
/// degrades to serial execution (nested-use safety).  Exceptions from
/// `body` propagate to the caller.
void parallel_for(std::size_t items, unsigned parallelism,
                  const std::function<void(const shard_range&)>& body);

class cancel_token;

/// Cancellable `parallel_for`: identical decomposition and semantics,
/// plus a cooperative cancellation point before each shard.  A shard
/// that has started always completes (so completed work is bit-identical
/// to an uncancelled run); once `cancel->expired()` the remaining shards
/// are skipped and `cancelled_error` is thrown after the join — a
/// cancelled call never returns normally with partial work.  A null
/// token degrades to the plain overload.
void parallel_for(std::size_t items, unsigned parallelism,
                  const std::function<void(const shard_range&)>& body,
                  const cancel_token* cancel);

/// Map/fold over the shard decomposition: `map(shard)` produces one
/// partial result per shard (in parallel), then `combine(acc, partial)`
/// folds the partials **in shard-index order** starting from `init`.
/// The fold order is fixed, so non-associative-in-floating-point merges
/// still give bit-identical results at every parallelism level.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(std::size_t items, unsigned parallelism,
                                T init, Map&& map, Combine&& combine) {
    const std::size_t shards = shard_count_for(items);
    std::vector<T> partial(shards);
    parallel_for(items, parallelism, [&](const shard_range& r) {
        partial[r.index] = map(r);
    });
    T acc = std::move(init);
    for (T& p : partial) {
        acc = combine(std::move(acc), std::move(p));
    }
    return acc;
}

}  // namespace silicon::exec
