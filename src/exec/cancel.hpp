// cancel.hpp — cooperative cancellation and deadlines for exec tasks.
//
// The serving layer needs a way to stop long sweeps and Monte-Carlo
// runs when a request's deadline expires, without giving up the
// determinism contract (DESIGN.md §7).  The resolution: cancellation
// is *cooperative* and only observed at task boundaries — a shard that
// has started always runs to completion, so every piece of completed
// work is bit-identical to an uncancelled run; cancellation only
// decides whether the remaining shards run at all.  A cancelled
// computation never returns partial results: the cancellable
// `parallel_for` overload (thread_pool.hpp) throws `cancelled_error`
// after the join, and callers surface that as a structured
// `deadline_exceeded` error.
//
// A token combines two triggers behind one `expired()` query:
//
//   * an explicit `cancel()` call (client disconnect, shutdown), and
//   * a steady-clock deadline set with `set_deadline`.
//
// Expiry is *sticky*: once `expired()` has observed the deadline in
// the past it latches the cancelled flag, so every later query agrees
// — a computation can never flip back to "not cancelled" because a
// clock read raced.  All state is relaxed atomics; tokens are safe to
// query from any number of worker threads concurrently.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace silicon::exec {

/// Thrown by cancellable operations after cooperative cancellation
/// took effect.  The message is deliberately fixed so the serving
/// layer's `deadline_exceeded` error envelopes are byte-deterministic.
class cancelled_error : public std::runtime_error {
public:
    cancelled_error() : std::runtime_error{"deadline exceeded"} {}
};

/// Cooperative cancellation token with an optional steady-clock
/// deadline.  One token per cancellable operation; reusable after
/// `reset()`.
class cancel_token {
public:
    cancel_token() = default;
    cancel_token(const cancel_token&) = delete;
    cancel_token& operator=(const cancel_token&) = delete;

    /// Request cancellation explicitly (idempotent, thread-safe).
    void cancel() noexcept {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    /// Arm the deadline; `expired()` latches once `when` has passed.
    void set_deadline(std::chrono::steady_clock::time_point when) noexcept {
        deadline_ns_.store(when.time_since_epoch().count(),
                           std::memory_order_relaxed);
    }

    /// True once a deadline is armed (used to skip clock reads).
    [[nodiscard]] bool has_deadline() const noexcept {
        return deadline_ns_.load(std::memory_order_relaxed) != 0;
    }

    /// Disarm and un-cancel (for token reuse between operations).
    void reset() noexcept {
        cancelled_.store(false, std::memory_order_relaxed);
        deadline_ns_.store(0, std::memory_order_relaxed);
    }

    /// True when cancelled explicitly or the deadline has passed.
    /// Sticky: the first expiry observation latches the token.
    [[nodiscard]] bool expired() const noexcept {
        if (cancelled_.load(std::memory_order_relaxed)) {
            return true;
        }
        const std::int64_t deadline =
            deadline_ns_.load(std::memory_order_relaxed);
        if (deadline != 0 &&
            std::chrono::steady_clock::now().time_since_epoch().count() >=
                deadline) {
            cancelled_.store(true, std::memory_order_relaxed);
            return true;
        }
        return false;
    }

    /// `expired()` minus the latch — for observability-only probes.
    [[nodiscard]] bool cancelled() const noexcept {
        return cancelled_.load(std::memory_order_relaxed);
    }

private:
    mutable std::atomic<bool> cancelled_{false};
    std::atomic<std::int64_t> deadline_ns_{0};  // 0 = no deadline armed
};

}  // namespace silicon::exec
