#include "analysis/svg_chart.hpp"

#include "analysis/contour.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace silicon::analysis {

namespace {

constexpr int margin_left = 64;
constexpr int margin_right = 16;
constexpr int margin_top = 36;
constexpr int margin_bottom = 52;

const char* palette(std::size_t i) {
    static constexpr const char* colors[] = {
        "#2266aa", "#cc4433", "#338844", "#886699",
        "#bb8822", "#117788", "#994455", "#556622",
    };
    return colors[i % 8];
}

std::string fmt(double v) {
    char buffer[48];
    std::snprintf(buffer, sizeof buffer, "%.2f", v);
    return buffer;
}

std::string fmt_tick(double v) {
    char buffer[48];
    std::snprintf(buffer, sizeof buffer, "%.3g", v);
    return buffer;
}

double axis_transform(double v, bool log_axis) {
    if (log_axis) {
        if (!(v > 0.0)) {
            throw std::invalid_argument(
                "svg_chart: log axis requires positive values");
        }
        return std::log10(v);
    }
    return v;
}

struct frame {
    double x_lo, x_hi, y_lo, y_hi;  // axis-space bounds
    int px_lo, px_hi, py_lo, py_hi; // pixel bounds (py_lo is top)
    bool x_log, y_log;

    [[nodiscard]] double px(double x) const {
        const double ax = axis_transform(x, x_log);
        return px_lo + (ax - x_lo) / (x_hi - x_lo) * (px_hi - px_lo);
    }
    [[nodiscard]] double py(double y) const {
        const double ay = axis_transform(y, y_log);
        return py_hi - (ay - y_lo) / (y_hi - y_lo) * (py_hi - py_lo);
    }
};

void append_axes(std::string& svg, const frame& f,
                 const svg_chart_options& options) {
    // Plot frame.
    svg += "<rect x=\"" + std::to_string(f.px_lo) + "\" y=\"" +
           std::to_string(f.py_lo) + "\" width=\"" +
           std::to_string(f.px_hi - f.px_lo) + "\" height=\"" +
           std::to_string(f.py_hi - f.py_lo) +
           "\" fill=\"none\" stroke=\"#444444\"/>\n";

    const int ticks = 5;
    for (int t = 0; t <= ticks; ++t) {
        const double fraction = static_cast<double>(t) / ticks;
        // X ticks.
        const double ax = f.x_lo + fraction * (f.x_hi - f.x_lo);
        const double x_val = f.x_log ? std::pow(10.0, ax) : ax;
        const double px = f.px_lo + fraction * (f.px_hi - f.px_lo);
        svg += "<line x1=\"" + fmt(px) + "\" y1=\"" +
               std::to_string(f.py_hi) + "\" x2=\"" + fmt(px) + "\" y2=\"" +
               std::to_string(f.py_hi + 4) + "\" stroke=\"#444444\"/>\n";
        svg += "<text x=\"" + fmt(px) + "\" y=\"" +
               std::to_string(f.py_hi + 18) +
               "\" font-size=\"11\" text-anchor=\"middle\" "
               "font-family=\"sans-serif\">" +
               fmt_tick(x_val) + "</text>\n";
        // Y ticks.
        const double ay = f.y_lo + fraction * (f.y_hi - f.y_lo);
        const double y_val = f.y_log ? std::pow(10.0, ay) : ay;
        const double py = f.py_hi - fraction * (f.py_hi - f.py_lo);
        svg += "<line x1=\"" + std::to_string(f.px_lo - 4) + "\" y1=\"" +
               fmt(py) + "\" x2=\"" + std::to_string(f.px_lo) + "\" y2=\"" +
               fmt(py) + "\" stroke=\"#444444\"/>\n";
        svg += "<text x=\"" + std::to_string(f.px_lo - 8) + "\" y=\"" +
               fmt(py + 4) +
               "\" font-size=\"11\" text-anchor=\"end\" "
               "font-family=\"sans-serif\">" +
               fmt_tick(y_val) + "</text>\n";
    }

    if (!options.title.empty()) {
        svg += "<text x=\"" +
               std::to_string((f.px_lo + f.px_hi) / 2) + "\" y=\"20\" "
               "font-size=\"14\" text-anchor=\"middle\" "
               "font-family=\"sans-serif\">" +
               options.title + "</text>\n";
    }
    if (!options.x_label.empty()) {
        svg += "<text x=\"" + std::to_string((f.px_lo + f.px_hi) / 2) +
               "\" y=\"" + std::to_string(f.py_hi + 38) +
               "\" font-size=\"12\" text-anchor=\"middle\" "
               "font-family=\"sans-serif\">" +
               options.x_label + "</text>\n";
    }
    if (!options.y_label.empty()) {
        const int cy = (f.py_lo + f.py_hi) / 2;
        svg += "<text x=\"14\" y=\"" + std::to_string(cy) +
               "\" font-size=\"12\" text-anchor=\"middle\" "
               "font-family=\"sans-serif\" transform=\"rotate(-90 14 " +
               std::to_string(cy) + ")\">" + options.y_label + "</text>\n";
    }
}

std::string polyline(const std::vector<point>& pts, const frame& f,
                     const char* color) {
    std::string path = "<polyline fill=\"none\" stroke=\"";
    path += color;
    path += "\" stroke-width=\"1.5\" points=\"";
    for (const point& p : pts) {
        path += fmt(f.px(p.x)) + "," + fmt(f.py(p.y)) + " ";
    }
    path += "\"/>\n";
    return path;
}

std::string svg_header(int width, int height) {
    return "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
           std::to_string(width) + "\" height=\"" + std::to_string(height) +
           "\" viewBox=\"0 0 " + std::to_string(width) + " " +
           std::to_string(height) +
           "\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
}

frame make_frame(double x_lo, double x_hi, double y_lo, double y_hi,
                 const svg_chart_options& options) {
    if (x_hi <= x_lo) {
        x_hi = x_lo + 1.0;
    }
    if (y_hi <= y_lo) {
        y_hi = y_lo + 1.0;
    }
    return {x_lo,
            x_hi,
            y_lo,
            y_hi,
            margin_left,
            options.width - margin_right,
            margin_top,
            options.height - margin_bottom,
            options.x_log,
            options.y_log};
}

}  // namespace

std::string render_svg_line_chart(const std::vector<series>& data,
                                  const svg_chart_options& options) {
    if (data.empty() ||
        std::all_of(data.begin(), data.end(),
                    [](const series& s) { return s.empty(); })) {
        throw std::invalid_argument("svg_chart: no data");
    }

    double x_lo = std::numeric_limits<double>::infinity();
    double x_hi = -x_lo;
    double y_lo = x_lo;
    double y_hi = -x_lo;
    for (const series& s : data) {
        for (const point& p : s.points()) {
            x_lo = std::min(x_lo, axis_transform(p.x, options.x_log));
            x_hi = std::max(x_hi, axis_transform(p.x, options.x_log));
            y_lo = std::min(y_lo, axis_transform(p.y, options.y_log));
            y_hi = std::max(y_hi, axis_transform(p.y, options.y_log));
        }
    }
    const frame f = make_frame(x_lo, x_hi, y_lo, y_hi, options);

    std::string svg = svg_header(options.width, options.height);
    append_axes(svg, f, options);
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (data[i].empty()) {
            continue;
        }
        svg += polyline(data[i].points(), f, palette(i));
        if (!data[i].name().empty()) {
            const int lx = f.px_lo + 10;
            const int ly = f.py_lo + 16 + static_cast<int>(i) * 16;
            svg += "<line x1=\"" + std::to_string(lx) + "\" y1=\"" +
                   std::to_string(ly - 4) + "\" x2=\"" +
                   std::to_string(lx + 18) + "\" y2=\"" +
                   std::to_string(ly - 4) + "\" stroke=\"" +
                   palette(i) + "\" stroke-width=\"2\"/>\n";
            svg += "<text x=\"" + std::to_string(lx + 24) + "\" y=\"" +
                   std::to_string(ly) +
                   "\" font-size=\"11\" font-family=\"sans-serif\">" +
                   data[i].name() + "</text>\n";
        }
    }
    svg += "</svg>\n";
    return svg;
}

std::string render_svg_contour_chart(const grid& g,
                                     const std::vector<double>& levels,
                                     const svg_chart_options& options) {
    if (levels.empty()) {
        throw std::invalid_argument("svg_chart: no contour levels");
    }
    const double x_lo = axis_transform(g.xs.front(), options.x_log);
    const double x_hi = axis_transform(g.xs.back(), options.x_log);
    const double y_lo = axis_transform(g.ys.front(), options.y_log);
    const double y_hi = axis_transform(g.ys.back(), options.y_log);
    const frame f = make_frame(x_lo, x_hi, y_lo, y_hi, options);

    std::string svg = svg_header(options.width, options.height);
    append_axes(svg, f, options);
    for (std::size_t li = 0; li < levels.size(); ++li) {
        const auto lines = extract_contours(g, levels[li]);
        for (const contour_line& line : lines) {
            svg += polyline(line.points, f, palette(li));
        }
        const int lx = f.px_lo + 10;
        const int ly = f.py_lo + 16 + static_cast<int>(li) * 16;
        svg += "<line x1=\"" + std::to_string(lx) + "\" y1=\"" +
               std::to_string(ly - 4) + "\" x2=\"" + std::to_string(lx + 18) +
               "\" y2=\"" + std::to_string(ly - 4) + "\" stroke=\"" +
               palette(li) + "\" stroke-width=\"2\"/>\n";
        svg += "<text x=\"" + std::to_string(lx + 24) + "\" y=\"" +
               std::to_string(ly) +
               "\" font-size=\"11\" font-family=\"sans-serif\">level " +
               fmt_tick(levels[li]) + "</text>\n";
    }
    svg += "</svg>\n";
    return svg;
}

void write_file(const std::string& path, const std::string& content) {
    std::ofstream out{path, std::ios::binary};
    if (!out) {
        throw std::runtime_error("write_file: cannot open " + path);
    }
    out << content;
    if (!out) {
        throw std::runtime_error("write_file: write failed for " + path);
    }
}

}  // namespace silicon::analysis
