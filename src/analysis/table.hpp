// table.hpp — fixed-width text table formatter.
//
// The benches print tables in the paper's style; this is the shared
// formatter: named columns, per-column alignment and numeric precision,
// box-drawing-free plain ASCII output so it diffs cleanly in logs.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace silicon::analysis {

/// Column alignment.
enum class align { left, right };

/// A text table builder.  Columns are declared first, then rows are added;
/// `to_string` lays everything out with two-space gutters.
class text_table {
public:
    /// Declare a column.  `precision` applies to `add_number` cells
    /// (negative means "use %g style shortest form").
    void add_column(std::string header, align alignment = align::right,
                    int precision = -1);

    /// Start a new row; subsequent add_* calls fill it left to right.
    void begin_row();

    /// Add a preformatted cell to the current row.
    void add_cell(std::string text);

    /// Add a numeric cell using the column's precision.
    void add_number(double value);

    /// Add an integer cell.
    void add_integer(long value);

    /// Number of data rows so far.
    [[nodiscard]] std::size_t row_count() const noexcept {
        return rows_.size();
    }

    /// Column headers, in declaration order.
    [[nodiscard]] std::vector<std::string> headers() const;

    /// Per-column alignments, parallel to headers().
    [[nodiscard]] std::vector<align> alignments() const;

    /// The formatted cell grid (rows of cells as added).
    [[nodiscard]] const std::vector<std::vector<std::string>>& cells()
        const noexcept {
        return rows_;
    }

    /// Render with header and a dash separator line.
    [[nodiscard]] std::string to_string() const;

    /// Render as CSV (no alignment, comma-separated, header row first).
    [[nodiscard]] std::string to_csv() const;

private:
    struct column {
        std::string header;
        align alignment;
        int precision;
    };

    std::vector<column> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format one number with the table's conventions ("%.*f" or "%g").
[[nodiscard]] std::string format_number(double value, int precision);

}  // namespace silicon::analysis
