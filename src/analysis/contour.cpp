#include "analysis/contour.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>

namespace silicon::analysis {

namespace {

struct segment {
    point a;
    point b;
    bool used = false;
};

/// Quantized endpoint key for chaining segments into polylines.
struct key {
    std::int64_t qx;
    std::int64_t qy;
    friend bool operator==(const key&, const key&) = default;
};

struct key_hash {
    std::size_t operator()(const key& k) const noexcept {
        const auto h1 = std::hash<std::int64_t>{}(k.qx);
        const auto h2 = std::hash<std::int64_t>{}(k.qy);
        return h1 ^ (h2 * 0x9e3779b97f4a7c15ULL);
    }
};

class endpoint_index {
public:
    endpoint_index(double x_span, double y_span)
        : x_quant_{x_span > 0.0 ? x_span * 1e-9 : 1e-12},
          y_quant_{y_span > 0.0 ? y_span * 1e-9 : 1e-12} {}

    [[nodiscard]] key make_key(const point& p) const {
        return {static_cast<std::int64_t>(std::llround(p.x / x_quant_)),
                static_cast<std::int64_t>(std::llround(p.y / y_quant_))};
    }

    void add(const point& p, std::size_t segment_id) {
        map_.emplace(make_key(p), segment_id);
    }

    /// Find an unused segment touching p, or npos.
    [[nodiscard]] std::size_t find_unused(const point& p,
                                          const std::vector<segment>& segs)
        const {
        auto [lo, hi] = map_.equal_range(make_key(p));
        for (auto it = lo; it != hi; ++it) {
            if (!segs[it->second].used) {
                return it->second;
            }
        }
        return npos;
    }

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

private:
    double x_quant_;
    double y_quant_;
    std::unordered_multimap<key, std::size_t, key_hash> map_;
};

enum class edge { bottom, right, top, left };

point interpolate_edge(double level, double xa, double ya, double va,
                       double xb, double yb, double vb) {
    const double denom = vb - va;
    const double t = denom == 0.0 ? 0.5 : (level - va) / denom;
    const double tc = std::clamp(t, 0.0, 1.0);
    return {xa + tc * (xb - xa), ya + tc * (yb - ya)};
}

}  // namespace

std::vector<contour_line> extract_contours(const grid& g, double level) {
    if (g.xs.size() < 2 || g.ys.size() < 2) {
        throw std::invalid_argument(
            "extract_contours: grid must be at least 2x2");
    }
    if (!std::is_sorted(g.xs.begin(), g.xs.end()) ||
        !std::is_sorted(g.ys.begin(), g.ys.end())) {
        throw std::invalid_argument(
            "extract_contours: grid axes must be increasing");
    }
    if (g.values.size() != g.xs.size() * g.ys.size()) {
        throw std::invalid_argument(
            "extract_contours: value count does not match axes");
    }

    // Marching squares degenerates when the level passes exactly through
    // grid vertices (zero-length segments, 4-way junctions that break the
    // chains).  Nudge the *working* level off any colliding sample; the
    // reported level stays the caller's.
    double working_level = level;
    {
        double lo = g.values.front();
        double hi = g.values.front();
        for (double v : g.values) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        const double span = hi - lo;
        const double nudge = span > 0.0 ? span * 1e-9 : 1e-12;
        bool collision = true;
        for (int attempt = 0; attempt < 8 && collision; ++attempt) {
            collision = false;
            for (double v : g.values) {
                if (std::abs(v - working_level) < 0.5 * nudge) {
                    collision = true;
                    break;
                }
            }
            if (collision) {
                working_level += nudge;
            }
        }
    }

    std::vector<segment> segments;

    for (std::size_t j = 0; j + 1 < g.ys.size(); ++j) {
        for (std::size_t i = 0; i + 1 < g.xs.size(); ++i) {
            const double x0 = g.xs[i];
            const double x1 = g.xs[i + 1];
            const double y0 = g.ys[j];
            const double y1 = g.ys[j + 1];
            const double v_bl = g.at(i, j);
            const double v_br = g.at(i + 1, j);
            const double v_tr = g.at(i + 1, j + 1);
            const double v_tl = g.at(i, j + 1);

            unsigned mask = 0;
            if (v_bl >= working_level) mask |= 1u;
            if (v_br >= working_level) mask |= 2u;
            if (v_tr >= working_level) mask |= 4u;
            if (v_tl >= working_level) mask |= 8u;
            if (mask == 0u || mask == 15u) {
                continue;
            }

            const auto edge_point = [&](edge e) {
                switch (e) {
                    case edge::bottom:
                        return interpolate_edge(working_level, x0, y0, v_bl,
                                                x1, y0, v_br);
                    case edge::right:
                        return interpolate_edge(working_level, x1, y0, v_br,
                                                x1, y1, v_tr);
                    case edge::top:
                        return interpolate_edge(working_level, x1, y1, v_tr,
                                                x0, y1, v_tl);
                    case edge::left:
                        return interpolate_edge(working_level, x0, y0, v_bl,
                                                x0, y1, v_tl);
                }
                return point{};
            };
            const auto emit = [&](edge ea, edge eb) {
                segments.push_back({edge_point(ea), edge_point(eb), false});
            };

            switch (mask) {
                case 1:  emit(edge::left, edge::bottom); break;
                case 2:  emit(edge::bottom, edge::right); break;
                case 3:  emit(edge::left, edge::right); break;
                case 4:  emit(edge::right, edge::top); break;
                case 6:  emit(edge::bottom, edge::top); break;
                case 7:  emit(edge::left, edge::top); break;
                case 8:  emit(edge::top, edge::left); break;
                case 9:  emit(edge::bottom, edge::top); break;
                case 11: emit(edge::right, edge::top); break;
                case 12: emit(edge::left, edge::right); break;
                case 13: emit(edge::bottom, edge::right); break;
                case 14: emit(edge::left, edge::bottom); break;
                case 5: {
                    const double center =
                        0.25 * (v_bl + v_br + v_tr + v_tl);
                    if (center >= working_level) {
                        emit(edge::bottom, edge::right);
                        emit(edge::top, edge::left);
                    } else {
                        emit(edge::left, edge::bottom);
                        emit(edge::right, edge::top);
                    }
                    break;
                }
                case 10: {
                    const double center =
                        0.25 * (v_bl + v_br + v_tr + v_tl);
                    if (center >= working_level) {
                        emit(edge::left, edge::bottom);
                        emit(edge::right, edge::top);
                    } else {
                        emit(edge::bottom, edge::right);
                        emit(edge::top, edge::left);
                    }
                    break;
                }
                default: break;
            }
        }
    }

    // Chain segments into polylines.
    endpoint_index index{g.xs.back() - g.xs.front(),
                         g.ys.back() - g.ys.front()};
    for (std::size_t s = 0; s < segments.size(); ++s) {
        index.add(segments[s].a, s);
        index.add(segments[s].b, s);
    }

    std::vector<contour_line> lines;
    for (std::size_t start = 0; start < segments.size(); ++start) {
        if (segments[start].used) {
            continue;
        }
        segments[start].used = true;
        std::vector<point> chain{segments[start].a, segments[start].b};

        // Extend forward from the back, then backward from the front.
        for (int direction = 0; direction < 2; ++direction) {
            for (;;) {
                const point& tip =
                    direction == 0 ? chain.back() : chain.front();
                const std::size_t next = index.find_unused(tip, segments);
                if (next == endpoint_index::npos) {
                    break;
                }
                segments[next].used = true;
                const key tip_key = index.make_key(tip);
                const point other =
                    index.make_key(segments[next].a) == tip_key
                        ? segments[next].b
                        : segments[next].a;
                if (direction == 0) {
                    chain.push_back(other);
                } else {
                    chain.insert(chain.begin(), other);
                }
            }
        }

        contour_line line;
        line.level = level;
        const bool closed =
            chain.size() > 2 &&
            index.make_key(chain.front()) == index.make_key(chain.back());
        line.closed = closed;
        line.points = std::move(chain);
        lines.push_back(std::move(line));
    }
    return lines;
}

std::vector<contour_line> extract_contours(const grid& g,
                                           const std::vector<double>& levels) {
    std::vector<contour_line> all;
    for (double level : levels) {
        auto lines = extract_contours(g, level);
        all.insert(all.end(), std::make_move_iterator(lines.begin()),
                   std::make_move_iterator(lines.end()));
    }
    return all;
}

}  // namespace silicon::analysis
