#include "analysis/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace silicon::analysis {

std::vector<double> linspace(double first, double last, int count) {
    if (count < 1) {
        throw std::invalid_argument("linspace: count must be >= 1");
    }
    if (count == 1) {
        if (first != last) {
            throw std::invalid_argument(
                "linspace: a single sample needs first == last");
        }
        return {first};
    }
    std::vector<double> xs;
    xs.reserve(static_cast<std::size_t>(count));
    const double step = (last - first) / (count - 1);
    for (int i = 0; i < count; ++i) {
        xs.push_back(i + 1 == count ? last : first + step * i);
    }
    return xs;
}

std::vector<double> logspace(double first, double last, int count) {
    if (!(first > 0.0) || !(last > 0.0)) {
        throw std::invalid_argument(
            "logspace: endpoints must be positive");
    }
    std::vector<double> xs =
        linspace(std::log(first), std::log(last), count);
    std::transform(xs.begin(), xs.end(), xs.begin(),
                   [](double v) { return std::exp(v); });
    if (!xs.empty()) {
        xs.front() = first;  // kill rounding on the endpoints
        xs.back() = last;
    }
    return xs;
}

series sweep(std::string name, const std::vector<double>& xs,
             const std::function<double(double)>& f) {
    series s{std::move(name)};
    for (double x : xs) {
        s.add(x, f(x));
    }
    return s;
}

double grid::min_value() const {
    if (values.empty()) {
        throw std::domain_error("grid: empty");
    }
    return *std::min_element(values.begin(), values.end());
}

double grid::max_value() const {
    if (values.empty()) {
        throw std::domain_error("grid: empty");
    }
    return *std::max_element(values.begin(), values.end());
}

grid evaluate_grid(const std::vector<double>& xs,
                   const std::vector<double>& ys,
                   const std::function<double(double, double)>& f) {
    if (xs.empty() || ys.empty()) {
        throw std::invalid_argument("evaluate_grid: empty axes");
    }
    grid g;
    g.xs = xs;
    g.ys = ys;
    g.values.reserve(xs.size() * ys.size());
    for (double y : ys) {
        for (double x : xs) {
            g.values.push_back(f(x, y));
        }
    }
    return g;
}

}  // namespace silicon::analysis
