#include "analysis/sweep.hpp"

#include "exec/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace silicon::analysis {

std::vector<double> linspace(double first, double last, int count) {
    if (count < 1) {
        throw std::invalid_argument("linspace: count must be >= 1");
    }
    if (count == 1) {
        if (first != last) {
            throw std::invalid_argument(
                "linspace: a single sample needs first == last");
        }
        return {first};
    }
    std::vector<double> xs;
    xs.reserve(static_cast<std::size_t>(count));
    const double step = (last - first) / (count - 1);
    for (int i = 0; i < count; ++i) {
        xs.push_back(i + 1 == count ? last : first + step * i);
    }
    return xs;
}

std::vector<double> logspace(double first, double last, int count) {
    if (!(first > 0.0) || !(last > 0.0)) {
        throw std::invalid_argument(
            "logspace: endpoints must be positive");
    }
    std::vector<double> xs =
        linspace(std::log(first), std::log(last), count);
    std::transform(xs.begin(), xs.end(), xs.begin(),
                   [](double v) { return std::exp(v); });
    if (!xs.empty()) {
        xs.front() = first;  // kill rounding on the endpoints
        xs.back() = last;
    }
    return xs;
}

series sweep(std::string name, const std::vector<double>& xs,
             const std::function<double(double)>& f,
             unsigned parallelism) {
    // Index-addressed slots keep the output ordering independent of
    // which thread evaluates which point.
    std::vector<double> ys(xs.size());
    exec::parallel_for(xs.size(), parallelism,
                       [&](const exec::shard_range& shard) {
                           for (std::size_t i = shard.begin;
                                i < shard.end; ++i) {
                               ys[i] = f(xs[i]);
                           }
                       });
    series s{std::move(name)};
    for (std::size_t i = 0; i < xs.size(); ++i) {
        s.add(xs[i], ys[i]);
    }
    return s;
}

series sweep_batch(std::string name, const std::vector<double>& xs,
                   const batch_evaluator& f, unsigned parallelism) {
    std::vector<double> ys(xs.size());
    exec::parallel_for(xs.size(), parallelism,
                       [&](const exec::shard_range& shard) {
                           if (shard.begin < shard.end) {
                               f(xs.data() + shard.begin,
                                 ys.data() + shard.begin,
                                 shard.end - shard.begin);
                           }
                       });
    series s{std::move(name)};
    for (std::size_t i = 0; i < xs.size(); ++i) {
        s.add(xs[i], ys[i]);
    }
    return s;
}

double grid::min_value() const {
    if (values.empty()) {
        throw std::domain_error("grid: empty");
    }
    return *std::min_element(values.begin(), values.end());
}

double grid::max_value() const {
    if (values.empty()) {
        throw std::domain_error("grid: empty");
    }
    return *std::max_element(values.begin(), values.end());
}

grid grid::evaluate(const std::vector<double>& xs,
                    const std::vector<double>& ys,
                    const std::function<double(double, double)>& f,
                    unsigned parallelism) {
    if (xs.empty() || ys.empty()) {
        throw std::invalid_argument("grid::evaluate: empty axes");
    }
    grid g;
    g.xs = xs;
    g.ys = ys;
    g.values.assign(xs.size() * ys.size(), 0.0);
    const std::size_t nx = xs.size();
    exec::parallel_for(g.values.size(), parallelism,
                       [&](const exec::shard_range& shard) {
                           for (std::size_t idx = shard.begin;
                                idx < shard.end; ++idx) {
                               g.values[idx] =
                                   f(g.xs[idx % nx], g.ys[idx / nx]);
                           }
                       });
    return g;
}

grid evaluate_grid(const std::vector<double>& xs,
                   const std::vector<double>& ys,
                   const std::function<double(double, double)>& f,
                   unsigned parallelism) {
    return grid::evaluate(xs, ys, f, parallelism);
}

}  // namespace silicon::analysis
