// svg_chart.hpp — standalone SVG renderer for line charts and contour maps.
//
// The repro hint for this paper flags "plotting/analysis less convenient"
// as the main C++ friction; this renderer removes it: benches and examples
// can emit publication-style SVG files with no external dependency.
// Output is deterministic (fixed palette, fixed decimal formatting) so
// golden tests can assert on it.

#pragma once

#include "analysis/series.hpp"
#include "analysis/sweep.hpp"

#include <string>
#include <vector>

namespace silicon::analysis {

/// Options shared by the SVG chart kinds.
struct svg_chart_options {
    int width = 640;    ///< total pixel width
    int height = 420;   ///< total pixel height
    std::string title;
    std::string x_label;
    std::string y_label;
    bool x_log = false; ///< log10 x axis (positive data required)
    bool y_log = false; ///< log10 y axis
};

/// Render a multi-series line chart.  Throws std::invalid_argument on
/// empty data or non-positive values on a log axis.
[[nodiscard]] std::string render_svg_line_chart(
    const std::vector<series>& data, const svg_chart_options& options = {});

/// Render iso-value contour polylines (e.g. Fig. 8's constant-cost curves)
/// on top of the grid's bounding box.  `levels` are the iso values; each
/// gets one color and a legend entry.
[[nodiscard]] std::string render_svg_contour_chart(
    const grid& g, const std::vector<double>& levels,
    const svg_chart_options& options = {});

/// Write `content` to `path`; throws std::runtime_error on I/O failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace silicon::analysis
