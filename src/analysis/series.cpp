#include "analysis/series.hpp"

#include <algorithm>

namespace silicon::analysis {

namespace {

void require_nonempty(const std::vector<point>& pts) {
    if (pts.empty()) {
        throw std::domain_error("series: operation requires points");
    }
}

}  // namespace

double series::min_x() const {
    require_nonempty(points_);
    return std::min_element(points_.begin(), points_.end(),
                            [](const point& a, const point& b) {
                                return a.x < b.x;
                            })
        ->x;
}

double series::max_x() const {
    require_nonempty(points_);
    return std::max_element(points_.begin(), points_.end(),
                            [](const point& a, const point& b) {
                                return a.x < b.x;
                            })
        ->x;
}

double series::min_y() const {
    require_nonempty(points_);
    return std::min_element(points_.begin(), points_.end(),
                            [](const point& a, const point& b) {
                                return a.y < b.y;
                            })
        ->y;
}

double series::max_y() const {
    require_nonempty(points_);
    return std::max_element(points_.begin(), points_.end(),
                            [](const point& a, const point& b) {
                                return a.y < b.y;
                            })
        ->y;
}

point series::argmin_y() const {
    require_nonempty(points_);
    return *std::min_element(points_.begin(), points_.end(),
                             [](const point& a, const point& b) {
                                 return a.y < b.y;
                             });
}

double series::interpolate(double x) const {
    require_nonempty(points_);
    if (!std::is_sorted(points_.begin(), points_.end(),
                        [](const point& a, const point& b) {
                            return a.x < b.x;
                        })) {
        throw std::domain_error("series: interpolate requires sorted x");
    }
    if (x < points_.front().x || x > points_.back().x) {
        throw std::domain_error("series: interpolation point out of range");
    }
    const auto upper = std::lower_bound(
        points_.begin(), points_.end(), x,
        [](const point& p, double value) { return p.x < value; });
    if (upper == points_.begin()) {
        return points_.front().y;
    }
    const auto lower = std::prev(upper);
    if (upper == points_.end()) {
        return points_.back().y;
    }
    const double span = upper->x - lower->x;
    if (span <= 0.0) {
        return lower->y;
    }
    const double t = (x - lower->x) / span;
    return lower->y + t * (upper->y - lower->y);
}

}  // namespace silicon::analysis
