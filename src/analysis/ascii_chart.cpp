#include "analysis/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace silicon::analysis {

namespace {

constexpr const char* glyphs = "*o+x#@%&";

double to_axis(double v, scale s) {
    if (s == scale::log10) {
        if (!(v > 0.0)) {
            throw std::invalid_argument(
                "ascii_chart: log axis requires positive values");
        }
        return std::log10(v);
    }
    return v;
}

std::string tick_label(double axis_value, scale s) {
    char buffer[32];
    const double v = s == scale::log10 ? std::pow(10.0, axis_value)
                                       : axis_value;
    std::snprintf(buffer, sizeof buffer, "%.3g", v);
    return buffer;
}

}  // namespace

std::string render_ascii_chart(const std::vector<series>& data,
                               const ascii_chart_options& options) {
    if (data.empty() ||
        std::all_of(data.begin(), data.end(),
                    [](const series& s) { return s.empty(); })) {
        throw std::invalid_argument("ascii_chart: no data");
    }
    if (options.width < 16 || options.height < 4) {
        throw std::invalid_argument("ascii_chart: plot area too small");
    }

    double x_lo = std::numeric_limits<double>::infinity();
    double x_hi = -std::numeric_limits<double>::infinity();
    double y_lo = std::numeric_limits<double>::infinity();
    double y_hi = -std::numeric_limits<double>::infinity();
    for (const series& s : data) {
        for (const point& p : s.points()) {
            x_lo = std::min(x_lo, to_axis(p.x, options.x_scale));
            x_hi = std::max(x_hi, to_axis(p.x, options.x_scale));
            y_lo = std::min(y_lo, to_axis(p.y, options.y_scale));
            y_hi = std::max(y_hi, to_axis(p.y, options.y_scale));
        }
    }
    if (x_hi <= x_lo) {
        x_hi = x_lo + 1.0;
        x_lo -= 1.0;
    }
    if (y_hi <= y_lo) {
        y_hi = y_lo + 1.0;
        y_lo -= 1.0;
    }

    const int w = options.width;
    const int h = options.height;
    std::vector<std::string> raster(static_cast<std::size_t>(h),
                                    std::string(static_cast<std::size_t>(w),
                                                ' '));

    for (std::size_t si = 0; si < data.size(); ++si) {
        const char glyph = glyphs[si % 8];
        for (const point& p : data[si].points()) {
            const double ax = to_axis(p.x, options.x_scale);
            const double ay = to_axis(p.y, options.y_scale);
            const int col = static_cast<int>(
                std::lround((ax - x_lo) / (x_hi - x_lo) * (w - 1)));
            const int row = static_cast<int>(
                std::lround((ay - y_lo) / (y_hi - y_lo) * (h - 1)));
            if (col >= 0 && col < w && row >= 0 && row < h) {
                raster[static_cast<std::size_t>(h - 1 - row)]
                      [static_cast<std::size_t>(col)] = glyph;
            }
        }
    }

    std::string out;
    if (!options.title.empty()) {
        out += options.title;
        out += '\n';
    }

    const std::string top_tick = tick_label(y_hi, options.y_scale);
    const std::string bottom_tick = tick_label(y_lo, options.y_scale);
    const std::size_t label_width =
        std::max(top_tick.size(), bottom_tick.size());

    for (int r = 0; r < h; ++r) {
        std::string label;
        if (r == 0) {
            label = top_tick;
        } else if (r == h - 1) {
            label = bottom_tick;
        }
        out += std::string(label_width - label.size(), ' ') + label;
        out += " |";
        out += raster[static_cast<std::size_t>(r)];
        out += '\n';
    }
    out += std::string(label_width + 1, ' ');
    out += '+';
    out += std::string(static_cast<std::size_t>(w), '-');
    out += '\n';

    const std::string left_tick = tick_label(x_lo, options.x_scale);
    const std::string right_tick = tick_label(x_hi, options.x_scale);
    std::string axis_line(label_width + 2, ' ');
    axis_line += left_tick;
    const std::size_t target =
        label_width + 2 + static_cast<std::size_t>(w) - right_tick.size();
    if (axis_line.size() < target) {
        axis_line += std::string(target - axis_line.size(), ' ');
    }
    axis_line += right_tick;
    out += axis_line;
    out += '\n';

    if (!options.x_label.empty()) {
        out += std::string(label_width + 2, ' ') + options.x_label + '\n';
    }

    bool any_name = false;
    std::string legend = "legend: ";
    for (std::size_t si = 0; si < data.size(); ++si) {
        if (data[si].name().empty()) {
            continue;
        }
        if (any_name) {
            legend += "   ";
        }
        legend += glyphs[si % 8];
        legend += " = ";
        legend += data[si].name();
        any_name = true;
    }
    if (any_name) {
        out += legend;
        out += '\n';
    }
    return out;
}

}  // namespace silicon::analysis
