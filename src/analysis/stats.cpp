#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace silicon::analysis {

summary summarize(const std::vector<double>& sample) {
    if (sample.empty()) {
        throw std::invalid_argument("summarize: empty sample");
    }
    summary s;
    s.count = sample.size();
    s.min = sample.front();
    s.max = sample.front();
    double sum = 0.0;
    for (double v : sample) {
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.mean = sum / static_cast<double>(sample.size());
    if (sample.size() > 1) {
        double ss = 0.0;
        for (double v : sample) {
            ss += (v - s.mean) * (v - s.mean);
        }
        s.stddev = std::sqrt(ss / static_cast<double>(sample.size() - 1));
    }
    return s;
}

linear_fit fit_line(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
    if (xs.size() != ys.size()) {
        throw std::invalid_argument("fit_line: size mismatch");
    }
    if (xs.size() < 2) {
        throw std::invalid_argument("fit_line: need at least two points");
    }
    const double n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
        syy += ys[i] * ys[i];
    }
    const double var_x = sxx - sx * sx / n;
    if (var_x <= 0.0) {
        throw std::invalid_argument("fit_line: x values are all equal");
    }
    linear_fit fit;
    fit.slope = (sxy - sx * sy / n) / var_x;
    fit.intercept = (sy - fit.slope * sx) / n;
    const double var_y = syy - sy * sy / n;
    if (var_y > 0.0) {
        const double cov = sxy - sx * sy / n;
        fit.r_squared = cov * cov / (var_x * var_y);
    } else {
        fit.r_squared = 1.0;  // constant y fitted exactly
    }
    return fit;
}

linear_fit fit_exponential(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
    std::vector<double> log_ys;
    log_ys.reserve(ys.size());
    for (double y : ys) {
        if (!(y > 0.0)) {
            throw std::invalid_argument(
                "fit_exponential: y values must be positive");
        }
        log_ys.push_back(std::log(y));
    }
    return fit_line(xs, log_ys);
}

double quantile(std::vector<double> sample, double q) {
    if (sample.empty()) {
        throw std::invalid_argument("quantile: empty sample");
    }
    if (!(q >= 0.0 && q <= 1.0)) {
        throw std::invalid_argument("quantile: q must be in [0,1]");
    }
    std::sort(sample.begin(), sample.end());
    const double idx = q * static_cast<double>(sample.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(idx));
    const double t = idx - static_cast<double>(lo);
    return sample[lo] + t * (sample[hi] - sample[lo]);
}

}  // namespace silicon::analysis
