// stats.hpp — small statistics toolkit.
//
// Used by the Monte-Carlo validation (confidence intervals), the roadmap
// trend fits (log-linear regression, as in the Fig. 1/Fig. 3 exponential
// fits) and the sensitivity reports.

#pragma once

#include <cstddef>
#include <vector>

namespace silicon::analysis {

/// Running summary of a sample.
struct summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;  ///< sample standard deviation (n-1)
    double min = 0.0;
    double max = 0.0;
};

/// Summarize a non-empty sample; throws std::invalid_argument when empty.
[[nodiscard]] summary summarize(const std::vector<double>& sample);

/// Result of an ordinary least squares line fit y = intercept + slope * x.
struct linear_fit {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;
};

/// OLS fit; requires at least two distinct x values.
[[nodiscard]] linear_fit fit_line(const std::vector<double>& xs,
                                  const std::vector<double>& ys);

/// Fit y = a * exp(b x) by regressing ln(y) on x; requires positive ys.
/// Returns {b, ln(a), r^2 of the log fit}; use exp(intercept) for a.
[[nodiscard]] linear_fit fit_exponential(const std::vector<double>& xs,
                                         const std::vector<double>& ys);

/// Quantile of a sample by linear interpolation on the sorted order
/// statistic (q in [0, 1]); throws std::invalid_argument on empty input.
[[nodiscard]] double quantile(std::vector<double> sample, double q);

}  // namespace silicon::analysis
