// series.hpp — a named sequence of (x, y) points.
//
// The common currency of the sweep engine, chart renderers and CSV writer.
// Deliberately a plain value type: benches build these, renderers consume
// them.

#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace silicon::analysis {

/// One point of a series.
struct point {
    double x = 0.0;
    double y = 0.0;

    friend constexpr bool operator==(const point&, const point&) = default;
};

/// A named polyline / sampled function.
class series {
public:
    series() = default;
    explicit series(std::string name) : name_{std::move(name)} {}
    series(std::string name, std::vector<point> points)
        : name_{std::move(name)}, points_{std::move(points)} {}

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::vector<point>& points() const noexcept {
        return points_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
    [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

    void add(double x, double y) { points_.push_back({x, y}); }

    /// Min/max over a coordinate; throws std::domain_error when empty.
    [[nodiscard]] double min_x() const;
    [[nodiscard]] double max_x() const;
    [[nodiscard]] double min_y() const;
    [[nodiscard]] double max_y() const;

    /// Point with the smallest y; throws std::domain_error when empty.
    [[nodiscard]] point argmin_y() const;

    /// Linear interpolation of y at x; requires points sorted by x and
    /// x within [min_x, max_x], throws std::domain_error otherwise.
    [[nodiscard]] double interpolate(double x) const;

private:
    std::string name_;
    std::vector<point> points_;
};

}  // namespace silicon::analysis
