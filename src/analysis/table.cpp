#include "analysis/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace silicon::analysis {

std::string format_number(double value, int precision) {
    char buffer[64];
    if (precision < 0) {
        std::snprintf(buffer, sizeof buffer, "%g", value);
    } else {
        std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
    }
    return buffer;
}

void text_table::add_column(std::string header, align alignment,
                            int precision) {
    if (!rows_.empty()) {
        throw std::logic_error(
            "text_table: declare all columns before adding rows");
    }
    columns_.push_back({std::move(header), alignment, precision});
}

void text_table::begin_row() {
    if (columns_.empty()) {
        throw std::logic_error("text_table: no columns declared");
    }
    if (!rows_.empty() && rows_.back().size() != columns_.size()) {
        throw std::logic_error("text_table: previous row is incomplete");
    }
    rows_.emplace_back();
    rows_.back().reserve(columns_.size());
}

void text_table::add_cell(std::string text) {
    if (rows_.empty()) {
        throw std::logic_error("text_table: begin_row first");
    }
    if (rows_.back().size() >= columns_.size()) {
        throw std::logic_error("text_table: row already full");
    }
    rows_.back().push_back(std::move(text));
}

void text_table::add_number(double value) {
    if (rows_.empty()) {
        throw std::logic_error("text_table: begin_row first");
    }
    const std::size_t index = rows_.back().size();
    if (index >= columns_.size()) {
        throw std::logic_error("text_table: row already full");
    }
    add_cell(format_number(value, columns_[index].precision));
}

void text_table::add_integer(long value) {
    add_cell(std::to_string(value));
}

std::vector<std::string> text_table::headers() const {
    std::vector<std::string> names;
    names.reserve(columns_.size());
    for (const column& c : columns_) {
        names.push_back(c.header);
    }
    return names;
}

std::vector<align> text_table::alignments() const {
    std::vector<align> result;
    result.reserve(columns_.size());
    for (const column& c : columns_) {
        result.push_back(c.alignment);
    }
    return result;
}

std::string text_table::to_string() const {
    if (!rows_.empty() && rows_.back().size() != columns_.size()) {
        throw std::logic_error("text_table: last row is incomplete");
    }
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        widths[c] = columns_[c].header.size();
        for (const auto& row : rows_) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    const auto pad = [](const std::string& text, std::size_t width,
                        align alignment) {
        const std::string fill(width - text.size(), ' ');
        return alignment == align::left ? text + fill : fill + text;
    };

    std::string out;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        if (c != 0) {
            out += "  ";
        }
        out += pad(columns_[c].header, widths[c], columns_[c].alignment);
    }
    out += '\n';
    std::size_t total = 0;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        total += widths[c] + (c != 0 ? 2 : 0);
    }
    out += std::string(total, '-');
    out += '\n';
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < columns_.size(); ++c) {
            if (c != 0) {
                out += "  ";
            }
            out += pad(row[c], widths[c], columns_[c].alignment);
        }
        out += '\n';
    }
    return out;
}

std::string text_table::to_csv() const {
    if (!rows_.empty() && rows_.back().size() != columns_.size()) {
        throw std::logic_error("text_table: last row is incomplete");
    }
    const auto escape = [](const std::string& cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos) {
            return cell;
        }
        std::string quoted = "\"";
        for (char ch : cell) {
            if (ch == '"') {
                quoted += '"';
            }
            quoted += ch;
        }
        quoted += '"';
        return quoted;
    };

    std::string out;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        if (c != 0) {
            out += ',';
        }
        out += escape(columns_[c].header);
    }
    out += '\n';
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < columns_.size(); ++c) {
            if (c != 0) {
                out += ',';
            }
            out += escape(row[c]);
        }
        out += '\n';
    }
    return out;
}

}  // namespace silicon::analysis
