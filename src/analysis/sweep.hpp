// sweep.hpp — parameter sweep helpers.
//
// Every figure reproduction is a sweep of a model over a parameter grid;
// these helpers generate the grids and evaluate callables into series.
//
// Sweeps and grid evaluations run on the exec engine: points are
// chunk-sharded, each point's value is written into its index-addressed
// slot, and the output ordering is fixed by construction — so results
// are identical for every `parallelism` value (0 = hardware concurrency,
// 1 = serial).  The callable is invoked concurrently when parallelism
// > 1 and must therefore be thread-safe (pure functions of their
// arguments, as all model evaluations in this library are).

#pragma once

#include "analysis/series.hpp"

#include <functional>
#include <vector>

namespace silicon::analysis {

/// `count` evenly spaced values from `first` to `last` inclusive
/// (count >= 2, or a single value when count == 1 and first == last).
[[nodiscard]] std::vector<double> linspace(double first, double last,
                                           int count);

/// `count` logarithmically spaced values from `first` to `last` inclusive;
/// both endpoints must be positive.
[[nodiscard]] std::vector<double> logspace(double first, double last,
                                           int count);

/// Evaluate f over xs into a named series (f must be thread-safe when
/// parallelism != 1; see the header comment).
[[nodiscard]] series sweep(std::string name, const std::vector<double>& xs,
                           const std::function<double(double)>& f,
                           unsigned parallelism = 0);

/// A batch evaluator: writes f(xs[i]) into ys[i] for i in [0, count).
/// The SoA kernels in yield/batch.hpp and cost/batch.hpp bind directly
/// (possibly with broadcast columns captured by the closure).
using batch_evaluator =
    std::function<void(const double* xs, double* ys, std::size_t count)>;

/// Sweep through a batch evaluator: each shard hands its contiguous
/// sub-range to `f` in one call, so a kernel processes whole lanes
/// instead of being re-entered per point.  Lanes must be independent
/// (every kernel in this library is), which keeps the result
/// bit-identical to the scalar `sweep` at every parallelism value.
[[nodiscard]] series sweep_batch(std::string name,
                                 const std::vector<double>& xs,
                                 const batch_evaluator& f,
                                 unsigned parallelism = 0);

/// A rectangular grid evaluation z(x, y): used by the Fig. 8 contour map.
struct grid {
    std::vector<double> xs;             ///< column coordinates
    std::vector<double> ys;             ///< row coordinates
    std::vector<double> values;         ///< row-major: values[j*xs.size()+i]

    [[nodiscard]] double at(std::size_t i, std::size_t j) const {
        return values.at(j * xs.size() + i);
    }
    [[nodiscard]] double min_value() const;
    [[nodiscard]] double max_value() const;

    /// Evaluate f over the cartesian product xs x ys (f must be
    /// thread-safe when parallelism != 1; see the header comment).
    [[nodiscard]] static grid evaluate(
        const std::vector<double>& xs, const std::vector<double>& ys,
        const std::function<double(double, double)>& f,
        unsigned parallelism = 0);
};

/// Evaluate f over the cartesian product xs x ys — alias of
/// grid::evaluate, kept for the established call sites.
[[nodiscard]] grid evaluate_grid(
    const std::vector<double>& xs, const std::vector<double>& ys,
    const std::function<double(double, double)>& f,
    unsigned parallelism = 0);

}  // namespace silicon::analysis
