#include "analysis/markdown.hpp"

#include <stdexcept>

namespace silicon::analysis {

markdown_document::markdown_document(std::string title) {
    body_ = "# " + std::move(title) + "\n\n";
}

void markdown_document::heading(const std::string& text, int level) {
    if (level < 2 || level > 4) {
        throw std::invalid_argument(
            "markdown_document: heading level must be 2..4");
    }
    body_ += std::string(static_cast<std::size_t>(level), '#') + " " +
             text + "\n\n";
}

void markdown_document::paragraph(const std::string& text) {
    body_ += text + "\n\n";
}

void markdown_document::key_value(const std::string& key,
                                  const std::string& value) {
    body_ += "- **" + key + "**: " + value + "\n";
}

void markdown_document::bullets(const std::vector<std::string>& items) {
    for (const std::string& item : items) {
        body_ += "- " + item + "\n";
    }
    body_ += "\n";
}

void markdown_document::table(const text_table& t) {
    body_ += to_markdown(t) + "\n";
}

void markdown_document::code_block(const std::string& content,
                                   const std::string& language) {
    body_ += "```" + language + "\n" + content;
    if (!content.empty() && content.back() != '\n') {
        body_ += '\n';
    }
    body_ += "```\n\n";
}

std::string to_markdown(const text_table& t) {
    const std::vector<std::string> headers = t.headers();
    const std::vector<align> alignments = t.alignments();
    if (headers.empty()) {
        throw std::invalid_argument("to_markdown: table has no columns");
    }
    const auto escape = [](const std::string& cell) {
        std::string out;
        for (char ch : cell) {
            if (ch == '|') {
                out += "\\|";
            } else {
                out += ch;
            }
        }
        return out;
    };

    std::string md = "|";
    for (const std::string& h : headers) {
        md += " " + escape(h) + " |";
    }
    md += "\n|";
    for (const align a : alignments) {
        md += a == align::right ? " ---: |" : " :--- |";
    }
    md += "\n";
    for (const auto& row : t.cells()) {
        md += "|";
        for (const std::string& cell : row) {
            md += " " + escape(cell) + " |";
        }
        md += "\n";
    }
    return md;
}

}  // namespace silicon::analysis
