// markdown.hpp — markdown document builder.
//
// The library's "cost study" deliverable (core/cost_study.hpp) renders a
// complete analysis document; this is the small, dependency-free builder
// it uses: headings, paragraphs, key-value lists, tables (rendered from
// text_table's CSV-free grid), and fenced code blocks for ASCII charts
// and wafer maps.

#pragma once

#include "analysis/table.hpp"

#include <string>
#include <vector>

namespace silicon::analysis {

/// Incremental markdown document.
class markdown_document {
public:
    explicit markdown_document(std::string title);

    /// `level` 2..4 (level 1 is the document title).
    void heading(const std::string& text, int level = 2);

    void paragraph(const std::string& text);

    /// A bold key / value line in a definition list.
    void key_value(const std::string& key, const std::string& value);

    /// Bullet list.
    void bullets(const std::vector<std::string>& items);

    /// Render a text_table as a markdown pipe table.
    void table(const text_table& t);

    /// Fenced code block (ASCII charts, wafer maps).
    void code_block(const std::string& content,
                    const std::string& language = "");

    [[nodiscard]] std::string str() const { return body_; }

private:
    std::string body_;
};

/// Markdown pipe-table rendering of a text_table (exposed for tests).
[[nodiscard]] std::string to_markdown(const text_table& t);

}  // namespace silicon::analysis
