// contour.hpp — iso-line extraction (marching squares).
//
// Fig. 8 of the paper plots constant-cost contours in the (lambda x N_tr)
// plane.  This module extracts such iso-lines from a sampled grid using
// the marching-squares algorithm with linear edge interpolation and joins
// the segments into polylines.

#pragma once

#include "analysis/series.hpp"
#include "analysis/sweep.hpp"

#include <vector>

namespace silicon::analysis {

/// One extracted contour: an open or closed polyline at a fixed level.
struct contour_line {
    double level = 0.0;
    std::vector<point> points;
    bool closed = false;
};

/// Extract all contours of `g` at `level`.  Grid axes must be strictly
/// monotonically increasing.  Saddle cells are resolved by the cell-center
/// average rule.
[[nodiscard]] std::vector<contour_line> extract_contours(const grid& g,
                                                         double level);

/// Extract contours for several levels (convenience for chart rendering).
[[nodiscard]] std::vector<contour_line> extract_contours(
    const grid& g, const std::vector<double>& levels);

}  // namespace silicon::analysis
