// ascii_chart.hpp — terminal line charts.
//
// The benches replot the paper's figures directly into the terminal so the
// shape claims (falling Fig. 6, rising Fig. 7, Fig. 8 valleys) can be
// eyeballed without leaving the shell.  Supports multiple series (one glyph
// each), linear or logarithmic axes, and axis tick labels.

#pragma once

#include "analysis/series.hpp"

#include <string>
#include <vector>

namespace silicon::analysis {

/// Axis scale.
enum class scale { linear, log10 };

/// Chart configuration.
struct ascii_chart_options {
    int width = 72;            ///< plot area columns (>= 16)
    int height = 20;           ///< plot area rows (>= 4)
    scale x_scale = scale::linear;
    scale y_scale = scale::linear;
    std::string title;
    std::string x_label;
    std::string y_label;
};

/// Render the series into a character raster with axes and a legend.
/// Throws std::invalid_argument on empty input, non-positive data on a log
/// axis, or degenerate options.
[[nodiscard]] std::string render_ascii_chart(
    const std::vector<series>& data, const ascii_chart_options& options = {});

}  // namespace silicon::analysis
