#include "chiplet/model.hpp"

#include "core/units.hpp"
#include "cost/test_cost.hpp"
#include "cost/wafer_cost.hpp"
#include "geometry/die.hpp"
#include "geometry/gross_die.hpp"
#include "geometry/wafer.hpp"
#include "yield/models.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace silicon::chiplet {

namespace {

void require_nonneg(double v, const char* what) {
    if (!std::isfinite(v) || v < 0.0) {
        throw std::invalid_argument(std::string{"chiplet: "} + what +
                                    " must be finite and >= 0");
    }
}

}  // namespace

chiplet_breakdown evaluate_chiplet(const chiplet_spec& s) {
    if (s.chiplets < 1 || s.chiplets > 16) {
        throw std::invalid_argument("chiplet: chiplets must be in [1, 16]");
    }
    require_nonneg(s.logic_area_mm2, "logic_area_mm2");
    require_nonneg(s.memory_area_mm2, "memory_area_mm2");
    require_nonneg(s.io_area_mm2, "io_area_mm2");
    const double total = s.logic_area_mm2 + s.memory_area_mm2 + s.io_area_mm2;
    if (!(total > 0.0)) {
        throw std::invalid_argument(
            "chiplet: total area budget must be positive");
    }
    require_nonneg(s.d2d_area_mm2, "d2d_area_mm2");
    require_nonneg(s.defects_per_cm2, "defects_per_cm2");
    require_nonneg(s.memory_defect_factor, "memory_defect_factor");
    require_nonneg(s.io_defect_factor, "io_defect_factor");
    require_nonneg(s.tester_rate_per_hour, "tester_rate_per_hour");
    require_nonneg(s.test_seconds_fixed, "test_seconds_fixed");
    require_nonneg(s.test_seconds_per_cm2, "test_seconds_per_cm2");
    require_nonneg(s.substrate_cost_per_cm2, "substrate_cost_per_cm2");
    require_nonneg(s.rdl_cost_per_cm2, "rdl_cost_per_cm2");
    require_nonneg(s.rdl_defects_per_cm2, "rdl_defects_per_cm2");
    require_nonneg(s.interposer_cost_per_cm2, "interposer_cost_per_cm2");
    require_nonneg(s.interposer_defects_per_cm2, "interposer_defects_per_cm2");
    require_nonneg(s.bonding_cost_per_chiplet, "bonding_cost_per_chiplet");
    if (!std::isfinite(s.package_area_factor) ||
        s.package_area_factor < 1.0) {
        throw std::invalid_argument(
            "chiplet: package_area_factor must be >= 1");
    }
    if (!std::isfinite(s.bond_yield) || !(s.bond_yield > 0.0) ||
        s.bond_yield > 1.0) {
        throw std::invalid_argument("chiplet: bond_yield must be in (0, 1]");
    }

    const double n = static_cast<double>(s.chiplets);
    const double d2d_per_die = s.d2d_area_mm2 * (n - 1.0);
    const double chip_mm2 = total / n + d2d_per_die;
    const double chip_cm2 = chip_mm2 / 100.0;

    // Geometry and process parameters are validated by the library
    // types themselves (wafer/die invariants, wafer cost model ranges)
    // exactly as a direct caller would see them.
    const geometry::wafer w{centimeters{s.wafer_radius_cm},
                            centimeters{s.edge_exclusion_cm}};
    const geometry::die d =
        geometry::die::square(millimeters{std::sqrt(chip_mm2)});
    const long gross =
        geometry::gross_dies(w, d, geometry::gross_die_method::maly_rows);
    if (gross <= 0) {
        throw std::domain_error(
            "chiplet: chiplet die does not fit on the wafer");
    }

    // Heterogeneous fault density: memory and IO area carry scaled
    // fractions of the logic defect density; the D2D interface area is
    // full-density logic-class silicon.
    const double d0 = s.defects_per_cm2;
    const double budget_faults =
        (s.logic_area_mm2 / 100.0) * d0 +
        (s.memory_area_mm2 / 100.0) * (d0 * s.memory_defect_factor) +
        (s.io_area_mm2 / 100.0) * (d0 * s.io_defect_factor);
    const double faults = budget_faults / n + (d2d_per_die / 100.0) * d0;
    const yield::negative_binomial_model model{s.clustering_alpha};
    const double y_die = model.yield(faults).value();
    if (!(y_die > 0.0)) {
        throw std::domain_error("chiplet: die yield underflows to zero");
    }

    const cost::wafer_cost_model wafer_cost{
        dollars{s.c0_usd}, s.x, microns{s.generation_step_um}};
    const double wafer_usd =
        wafer_cost.pure_wafer_cost(microns{s.lambda_um}).value();
    const double die_usd = wafer_usd / (static_cast<double>(gross) * y_die);

    // Known-good-die test: every gross die is probed at a flat rate,
    // the bill lands on the yielded fraction; Williams-Brown gives the
    // escape fraction that survives into assembly.
    const double test_usd =
        (s.tester_rate_per_hour / 3600.0) *
        (s.test_seconds_fixed + s.test_seconds_per_cm2 * chip_cm2);
    const double test_per_good_usd = test_usd / y_die;
    const double dl =
        cost::defect_level(probability{y_die}, s.test_coverage).value();
    const double known_good = 1.0 - dl;  // P(good | passed test)

    const double pkg_cm2 = s.package_area_factor * (total / 100.0);
    double sub_usd = 0.0;
    double sub_yield = 1.0;
    switch (s.substrate) {
        case substrate_kind::organic:
            sub_usd = s.substrate_cost_per_cm2 * pkg_cm2;
            sub_yield = 1.0;
            break;
        case substrate_kind::rdl:
            sub_usd = s.rdl_cost_per_cm2 * pkg_cm2;
            sub_yield = std::exp(-pkg_cm2 * s.rdl_defects_per_cm2);
            break;
        case substrate_kind::interposer:
            sub_usd = s.interposer_cost_per_cm2 * pkg_cm2;
            sub_yield = std::exp(-pkg_cm2 * s.interposer_defects_per_cm2);
            break;
    }

    const double assembly = std::pow(s.bond_yield, n) * sub_yield;
    const double module = assembly * std::pow(known_good, n);
    if (!(module > 0.0)) {
        throw std::domain_error("chiplet: module yield underflows to zero");
    }

    const double dies_usd = n * (die_usd + test_per_good_usd);
    const double bonding_usd = n * s.bonding_cost_per_chiplet;
    const double system_usd = dies_usd + sub_usd + bonding_usd;
    const double good_usd = system_usd / module;
    if (!std::isfinite(good_usd)) {
        throw std::domain_error("chiplet: system cost overflows");
    }

    chiplet_breakdown out;
    out.chiplets = s.chiplets;
    out.total_area_mm2 = total;
    out.chiplet_area_mm2 = chip_mm2;
    out.die_yield = y_die;
    out.gross_dies_per_wafer = static_cast<double>(gross);
    out.wafer_cost_usd = wafer_usd;
    out.die_cost_usd = die_usd;
    out.test_cost_per_die_usd = test_per_good_usd;
    out.defect_level = dl;
    out.package_area_cm2 = pkg_cm2;
    out.substrate_cost_usd = sub_usd;
    out.substrate_yield = sub_yield;
    out.assembly_yield = assembly;
    out.module_yield = module;
    out.bonding_cost_usd = bonding_usd;
    out.cost_per_system_usd = system_usd;
    out.cost_per_good_system_usd = good_usd;
    return out;
}

chiplet_spec scaled_to_total(chiplet_spec spec, double total_area_mm2) {
    const double base = spec.logic_area_mm2 + spec.memory_area_mm2 +
                        spec.io_area_mm2;
    const double factor = total_area_mm2 / base;
    spec.logic_area_mm2 *= factor;
    spec.memory_area_mm2 *= factor;
    spec.io_area_mm2 *= factor;
    return spec;
}

}  // namespace silicon::chiplet
