// model.hpp — multi-die (chiplet) system cost composition.
//
// Maly's Eq. (1) prices a monolithic die: wafer cost amortized over
// gross dies and yield.  Chiplet Actuary (arXiv:2203.12268) and CATCH
// (arXiv:2503.15753) generalize exactly that die/yield/test/packaging
// decomposition to multi-chip systems, and both exhibit the same
// qualitative result: below a total-area threshold the monolithic die
// is cheaper (packaging, bonding, and die-to-die PHY overheads
// dominate), above it an N-way split wins (smaller dies yield
// super-linearly better on a negative-binomial process).  This module
// composes the repo's existing ingredients into that model:
//
//   * per-die area: an equal N-way split of a logic+memory+IO area
//     budget, plus `d2d_area_mm2 * (n - 1)` of die-to-die interface
//     area per chiplet (a full mesh of PHY links; zero for n = 1, so
//     the monolithic baseline is the same pipeline, not a special
//     case);
//   * per-die yield: negative-binomial (yield/models.hpp) over a
//     heterogeneous fault density — memory and IO area carry
//     configurable fractions of the logic defect density;
//   * die cost: the paper's wafer cost model (cost/wafer_cost.hpp)
//     over Maly-row gross dies (geometry/gross_die.hpp);
//   * known-good-die test: a flat-rate tester charging fixed +
//     per-cm^2 seconds per die, amortized over yielded dies, with the
//     Williams-Brown escape fraction DL = 1 - Y^(1-T)
//     (cost/test_cost.hpp) determining how many latent-defective dies
//     survive into assembly;
//   * packaging: organic substrate, RDL fan-out, or silicon
//     interposer — area-priced, with a Poisson substrate yield for
//     the patterned options;
//   * assembly: per-bond yield raised to the bond (chiplet) count,
//     composed with substrate yield and the post-test escape
//     probability of every chiplet into a module yield that divides
//     the whole bill.
//
// Everything is deterministic double arithmetic in one fixed
// association order; `evaluate_chiplet` is the single scalar core and
// the batch kernel (batch.hpp) calls it per lane, so the two are
// bit-identical by construction.

#pragma once

#include <cstddef>

namespace silicon::chiplet {

/// Packaging substrate options, in ascending cost/complexity.
enum class substrate_kind {
    organic,     ///< laminate: cheap, assumed defect-free
    rdl,         ///< fan-out redistribution layers: patterned, yields
    interposer,  ///< silicon interposer: wafer-priced, yields
};

/// One multi-die system configuration.  Defaults describe a plausible
/// late-1990s-extrapolated process consistent with the repo's Maly
/// scenario parameters; areas are per-system budgets that the N-way
/// split divides evenly.
struct chiplet_spec {
    // --- area budget (whole system, mm^2) ---
    double logic_area_mm2 = 350.0;
    double memory_area_mm2 = 150.0;
    double io_area_mm2 = 100.0;

    /// How many identical chiplets the budget is split across (1 =
    /// monolithic baseline).
    int chiplets = 1;

    /// Die-to-die interface (PHY + TSV/bump field) area added to each
    /// chiplet per partner die: a full mesh costs (n - 1) links per
    /// die.  This is the term that makes fine-grained splits lose at
    /// small total area.
    double d2d_area_mm2 = 5.0;

    // --- process / wafer (Maly Eq. 4 wafer cost) ---
    double lambda_um = 0.5;          ///< feature size
    double c0_usd = 5000.0;          ///< wafer cost at the reference node
    double x = 1.5;                  ///< cost growth per generation
    double generation_step_um = 0.2; ///< lambda shrink per generation
    double wafer_radius_cm = 15.0;
    double edge_exclusion_cm = 0.0;

    // --- yield ---
    double defects_per_cm2 = 0.5;      ///< logic-area defect density
    double memory_defect_factor = 0.5; ///< memory density relative to logic
    double io_defect_factor = 0.3;     ///< IO density relative to logic
    double clustering_alpha = 2.0;     ///< negative-binomial clustering

    // --- known-good-die test ---
    double test_coverage = 0.98;        ///< fault coverage T in [0,1]
    double tester_rate_per_hour = 3600.0; ///< $/hour (3600 = $1/s)
    double test_seconds_fixed = 0.5;    ///< handling/index time per die
    double test_seconds_per_cm2 = 1.0;  ///< pattern time per die cm^2

    // --- packaging / assembly ---
    substrate_kind substrate = substrate_kind::organic;
    double substrate_cost_per_cm2 = 0.5;
    double rdl_cost_per_cm2 = 2.0;
    double rdl_defects_per_cm2 = 0.05;
    double interposer_cost_per_cm2 = 8.0;
    double interposer_defects_per_cm2 = 0.2;
    double package_area_factor = 1.1;   ///< package area / silicon budget
    double bond_yield = 0.99;           ///< per chiplet attach
    double bonding_cost_per_chiplet = 0.5;
};

/// Full cost breakdown for one configuration.  Every field is finite
/// when `evaluate_chiplet` returns (infeasible configurations throw
/// instead).
struct chiplet_breakdown {
    int chiplets = 1;
    double total_area_mm2 = 0.0;     ///< logic + memory + IO budget
    double chiplet_area_mm2 = 0.0;   ///< per-die, incl. D2D overhead
    double die_yield = 0.0;
    double gross_dies_per_wafer = 0.0;
    double wafer_cost_usd = 0.0;
    double die_cost_usd = 0.0;            ///< per good die
    double test_cost_per_die_usd = 0.0;   ///< per good die (probe bill / yield)
    double defect_level = 0.0;            ///< Williams-Brown escapes
    double package_area_cm2 = 0.0;
    double substrate_cost_usd = 0.0;
    double substrate_yield = 0.0;
    double assembly_yield = 0.0;  ///< bond_yield^n * substrate_yield
    double module_yield = 0.0;    ///< assembly * (1 - DL)^n
    double bonding_cost_usd = 0.0;
    double cost_per_system_usd = 0.0;       ///< bill before module yield
    double cost_per_good_system_usd = 0.0;  ///< the headline number
};

/// Price one configuration.  Throws std::invalid_argument for
/// out-of-range parameters and std::domain_error for infeasible
/// configurations (die does not fit the wafer, yield underflows to
/// zero) — the same taxonomy the serve layer maps to
/// bad_param/domain_error.
[[nodiscard]] chiplet_breakdown evaluate_chiplet(const chiplet_spec& spec);

/// The same spec rescaled so logic + memory + IO sum to
/// `total_area_mm2`, preserving the area-class ratios.  This is the
/// single scaling rule `partition_explore` uses for every grid point
/// (kernel and fallback paths alike), so both see bit-identical
/// inputs.
[[nodiscard]] chiplet_spec scaled_to_total(chiplet_spec spec,
                                           double total_area_mm2);

}  // namespace silicon::chiplet
