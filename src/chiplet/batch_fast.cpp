// batch_fast.cpp — fast_math variant of the chiplet SoA kernel.
//
// Unlike the closed-form cost/yield fast kernels, most of a chiplet
// lane is branchy scalar work (Maly-row gross-die scan, guard chain,
// cost composition) that stays exactly as in evaluate_chiplet.  What
// vectorizes is the transcendental tail shared by every lane of a
// partition_explore grid: the negative-binomial die yield
// (1 + faults/alpha)^-alpha, the Williams-Brown escape pow(y, 1 - T),
// the RDL/interposer substrate yield exp(-A_pkg * D_sub) and the
// module yield pow(known_good, n).  Those go through simd/math.hpp in
// blocked array passes; everything else — including the per-lane
// classification of inputs the scalar path throws on — replicates
// evaluate_chiplet operation for operation.
//
// Lane-invariant validation (chiplets range, spec field guards, wafer
// and wafer-cost-model construction, clustering alpha, test coverage)
// is hoisted out of the lane loop: any failure NaNs every lane, which
// is exactly what the scalar kernel produces since those throws do not
// depend on the swept total area.

#include "chiplet/batch.hpp"

#include "cost/wafer_cost.hpp"
#include "geometry/die.hpp"
#include "geometry/gross_die.hpp"
#include "geometry/wafer.hpp"
#include "simd/math.hpp"

#include <cmath>
#include <cstddef>
#include <limits>
#include <optional>

namespace silicon::chiplet::batch {

namespace {

constexpr double nan_lane = std::numeric_limits<double>::quiet_NaN();
constexpr std::size_t block = 256;

bool nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

void fill_nan(double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = nan_lane;
    }
}

/// The lane-invariant prefix of evaluate_chiplet: every guard and
/// construction here throws (or not) identically for all lanes.
bool spec_invariants_ok(const chiplet_spec& base, int chiplets) {
    if (chiplets < 1 || chiplets > 16) {
        return false;
    }
    if (!nonneg(base.d2d_area_mm2) || !nonneg(base.defects_per_cm2) ||
        !nonneg(base.memory_defect_factor) ||
        !nonneg(base.io_defect_factor) ||
        !nonneg(base.tester_rate_per_hour) ||
        !nonneg(base.test_seconds_fixed) ||
        !nonneg(base.test_seconds_per_cm2) ||
        !nonneg(base.substrate_cost_per_cm2) ||
        !nonneg(base.rdl_cost_per_cm2) ||
        !nonneg(base.rdl_defects_per_cm2) ||
        !nonneg(base.interposer_cost_per_cm2) ||
        !nonneg(base.interposer_defects_per_cm2) ||
        !nonneg(base.bonding_cost_per_chiplet)) {
        return false;
    }
    if (!std::isfinite(base.package_area_factor) ||
        base.package_area_factor < 1.0) {
        return false;
    }
    if (!std::isfinite(base.bond_yield) || !(base.bond_yield > 0.0) ||
        base.bond_yield > 1.0) {
        return false;
    }
    if (!(base.clustering_alpha > 0.0)) {
        return false;
    }
    // defect_level's coverage guard (cost/test_cost.hpp).
    if (!(base.test_coverage >= 0.0 && base.test_coverage <= 1.0)) {
        return false;
    }
    return true;
}

}  // namespace

void cost_per_good_system_fast(const chiplet_spec& base, int chiplets,
                               const double* total_area_mm2, double* out,
                               std::size_t n) {
    if (!spec_invariants_ok(base, chiplets)) {
        fill_nan(out, n);
        return;
    }
    std::optional<geometry::wafer> w;
    double wafer_usd = 0.0;
    try {
        w.emplace(centimeters{base.wafer_radius_cm},
                  centimeters{base.edge_exclusion_cm});
        const cost::wafer_cost_model wafer_cost{
            dollars{base.c0_usd}, base.x, microns{base.generation_step_um}};
        wafer_usd =
            wafer_cost.pure_wafer_cost(microns{base.lambda_um}).value();
    } catch (...) {
        fill_nan(out, n);
        return;
    }

    const double base_sum = base.logic_area_mm2 + base.memory_area_mm2 +
                            base.io_area_mm2;
    const double nd = static_cast<double>(chiplets);
    const double d2d_per_die = base.d2d_area_mm2 * (nd - 1.0);
    const double d0 = base.defects_per_cm2;
    const double alpha = base.clustering_alpha;
    const double coverage = base.test_coverage;
    // Lane-invariant factor of the assembly yield; same std::pow call
    // (and bytes) as the scalar path makes per lane.
    const double bond_pow = std::pow(base.bond_yield, nd);

    bool valid[block];
    double total_v[block];
    double chip_cm2_v[block];
    double gross_v[block];
    double y_die[block];
    double known_good[block];
    double sub_yield[block];
    double mod_pow[block];
    double pb[block];
    double pe[block];
    double arg[block];

    for (std::size_t lo = 0; lo < n; lo += block) {
        const std::size_t len = (n - lo < block) ? (n - lo) : block;

        // Phase 1 (scalar): area scaling, geometry, fault budget — the
        // guard chain of evaluate_chiplet up to the die-yield pow.
        for (std::size_t j = 0; j < len; ++j) {
            const double factor = total_area_mm2[lo + j] / base_sum;
            const double sl = base.logic_area_mm2 * factor;
            const double sm = base.memory_area_mm2 * factor;
            const double sio = base.io_area_mm2 * factor;
            bool ok = nonneg(sl) && nonneg(sm) && nonneg(sio);
            const double total = sl + sm + sio;
            ok = ok && total > 0.0;
            double chip_cm2 = 0.0;
            double gross = 0.0;
            double faults = 0.0;
            if (ok) {
                const double chip_mm2 = total / nd + d2d_per_die;
                chip_cm2 = chip_mm2 / 100.0;
                try {
                    const geometry::die d = geometry::die::square(
                        millimeters{std::sqrt(chip_mm2)});
                    gross = static_cast<double>(geometry::gross_dies(
                        *w, d, geometry::gross_die_method::maly_rows));
                } catch (...) {
                    ok = false;
                }
                ok = ok && gross > 0.0;
                const double budget_faults =
                    (sl / 100.0) * d0 +
                    (sm / 100.0) * (d0 * base.memory_defect_factor) +
                    (sio / 100.0) * (d0 * base.io_defect_factor);
                faults = budget_faults / nd + (d2d_per_die / 100.0) * d0;
                // model.yield's require_nonnegative: accepts +inf,
                // rejects NaN (can't happen here — all terms finite).
                ok = ok && faults >= 0.0;
            }
            valid[j] = ok;
            total_v[j] = total;
            chip_cm2_v[j] = chip_cm2;
            gross_v[j] = gross;
            pb[j] = ok ? 1.0 + faults / alpha : 1.0;
            pe[j] = ok ? -alpha : 0.0;
        }

        // Phase 2 (vector): die yield (1 + faults/alpha)^-alpha.
        simd::pow_lanes(pb, pe, y_die, len);
        for (std::size_t j = 0; j < len; ++j) {
            // "die yield underflows to zero" domain guard.
            valid[j] = valid[j] && y_die[j] > 0.0;
            pb[j] = valid[j] ? y_die[j] : 1.0;
            pe[j] = valid[j] ? 1.0 - coverage : 0.0;
        }

        // Phase 3 (vector): Williams-Brown defect level — the scalar
        // path is clamped(1 - pow(y, 1 - T)) then known_good = 1 - DL;
        // replicate both ops so the clamp boundaries match.
        simd::pow_lanes(pb, pe, known_good, len);
        for (std::size_t j = 0; j < len; ++j) {
            double dl = 1.0 - known_good[j];
            dl = dl < 0.0 ? 0.0 : (dl > 1.0 ? 1.0 : dl);
            known_good[j] = 1.0 - dl;
            const double pkg_cm2 =
                base.package_area_factor * (total_v[j] / 100.0);
            const double dsub =
                base.substrate == substrate_kind::rdl
                    ? base.rdl_defects_per_cm2
                    : base.interposer_defects_per_cm2;
            arg[j] = valid[j] && base.substrate != substrate_kind::organic
                         ? -pkg_cm2 * dsub
                         : 0.0;
            pb[j] = valid[j] ? known_good[j] : 1.0;
            pe[j] = valid[j] ? nd : 0.0;
        }

        // Phase 4 (vector): substrate yield and module-yield pow.
        simd::exp_lanes(arg, sub_yield, len);
        simd::pow_lanes(pb, pe, mod_pow, len);

        // Phase 5 (scalar): cost composition with the remaining domain
        // guards, same association order as evaluate_chiplet.
        for (std::size_t j = 0; j < len; ++j) {
            if (!valid[j]) {
                out[lo + j] = nan_lane;
                continue;
            }
            const double die_usd = wafer_usd / (gross_v[j] * y_die[j]);
            const double test_usd =
                (base.tester_rate_per_hour / 3600.0) *
                (base.test_seconds_fixed +
                 base.test_seconds_per_cm2 * chip_cm2_v[j]);
            const double test_per_good_usd = test_usd / y_die[j];
            const double pkg_cm2 =
                base.package_area_factor * (total_v[j] / 100.0);
            double sub_usd = 0.0;
            double sy = 1.0;
            switch (base.substrate) {
                case substrate_kind::organic:
                    sub_usd = base.substrate_cost_per_cm2 * pkg_cm2;
                    sy = 1.0;
                    break;
                case substrate_kind::rdl:
                    sub_usd = base.rdl_cost_per_cm2 * pkg_cm2;
                    sy = sub_yield[j];
                    break;
                case substrate_kind::interposer:
                    sub_usd = base.interposer_cost_per_cm2 * pkg_cm2;
                    sy = sub_yield[j];
                    break;
            }
            const double assembly = bond_pow * sy;
            const double module = assembly * mod_pow[j];
            if (!(module > 0.0)) {
                out[lo + j] = nan_lane;
                continue;
            }
            const double dies_usd = nd * (die_usd + test_per_good_usd);
            const double bonding_usd = nd * base.bonding_cost_per_chiplet;
            const double system_usd = dies_usd + sub_usd + bonding_usd;
            const double good_usd = system_usd / module;
            out[lo + j] = std::isfinite(good_usd) ? good_usd : nan_lane;
        }
    }
}

}  // namespace silicon::chiplet::batch
