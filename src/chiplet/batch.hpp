// batch.hpp — SoA kernel for partition_explore grids.
//
// Same contract as cost/batch.hpp and yield/batch.hpp: each lane
// performs exactly the floating-point operations of the scalar path in
// the same association order; inputs the scalar path would throw on
// become quiet NaN lanes; kernels never throw; lanes are independent,
// so evaluating any sub-range produces bit-identical results (which is
// what lets the engine shard a grid across threads and stay
// deterministic at any thread count).
//
// Unlike the closed-form cost/yield kernels, the per-lane work here is
// dominated by the Maly-row gross-die scan, so the lane body simply
// calls the scalar core (`evaluate_chiplet`) — bit-identity with the
// scalar path is by construction, and the kernel's win over the
// engine's per-point path is skipping the parse/canonicalize/
// serialize round-trip per grid point, not the arithmetic itself.

#pragma once

#include "chiplet/model.hpp"

#include <cstddef>

namespace silicon::chiplet::batch {

/// For each lane i: rescale `base` so its logic+memory+IO budget sums
/// to total_area_mm2[i] (ratios preserved), split it across `chiplets`
/// dies, and write cost_per_good_system_usd to out[i].  Lanes where
/// the scalar path throws become quiet NaN.
void cost_per_good_system(const chiplet_spec& base, int chiplets,
                          const double* total_area_mm2, double* out,
                          std::size_t n);

/// As above, but additionally stores each successful lane's full
/// breakdown into breakdowns[i] (NaN lanes leave their slot untouched).
/// The scalar core computes the whole breakdown anyway, so exposing it
/// costs nothing — the engine uses it to feed explore lanes into the
/// per-point memoization cache without a second evaluation.  Passing
/// nullptr is exactly the plain variant.
void cost_per_good_system(const chiplet_spec& base, int chiplets,
                          const double* total_area_mm2, double* out,
                          chiplet_breakdown* breakdowns, std::size_t n);

/// fast_math variant: same lane classification (a lane is NaN for
/// exactly the inputs that make evaluate_chiplet throw), but the
/// transcendental tail — negative-binomial die yield, Williams-Brown
/// escape, RDL/interposer substrate yield, module-yield pow — runs
/// through the dispatched vector math in simd/math.hpp in blocked
/// array passes, so results agree with the scalar kernel only to the
/// ULP bounds in DESIGN.md §15.  The Maly-row gross-die scan and the
/// cost composition stay scalar and op-identical.  Lanes remain
/// independent (sub-range calls compose bit-identically); selected by
/// the engine only when engine_config::fast_math is set.
void cost_per_good_system_fast(const chiplet_spec& base, int chiplets,
                               const double* total_area_mm2, double* out,
                               std::size_t n);

}  // namespace silicon::chiplet::batch
