#include "chiplet/batch.hpp"

#include <limits>

namespace silicon::chiplet::batch {

void cost_per_good_system(const chiplet_spec& base, int chiplets,
                          const double* total_area_mm2, double* out,
                          std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        try {
            chiplet_spec spec = scaled_to_total(base, total_area_mm2[i]);
            spec.chiplets = chiplets;
            out[i] = evaluate_chiplet(spec).cost_per_good_system_usd;
        } catch (...) {
            out[i] = std::numeric_limits<double>::quiet_NaN();
        }
    }
}

}  // namespace silicon::chiplet::batch
