#include "chiplet/batch.hpp"

#include <limits>

namespace silicon::chiplet::batch {

void cost_per_good_system(const chiplet_spec& base, int chiplets,
                          const double* total_area_mm2, double* out,
                          std::size_t n) {
    cost_per_good_system(base, chiplets, total_area_mm2, out, nullptr, n);
}

void cost_per_good_system(const chiplet_spec& base, int chiplets,
                          const double* total_area_mm2, double* out,
                          chiplet_breakdown* breakdowns, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        try {
            chiplet_spec spec = scaled_to_total(base, total_area_mm2[i]);
            spec.chiplets = chiplets;
            const chiplet_breakdown b = evaluate_chiplet(spec);
            out[i] = b.cost_per_good_system_usd;
            if (breakdowns != nullptr) {
                breakdowns[i] = b;
            }
        } catch (...) {
            out[i] = std::numeric_limits<double>::quiet_NaN();
        }
    }
}

}  // namespace silicon::chiplet::batch
