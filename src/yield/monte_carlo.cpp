#include "yield/monte_carlo.hpp"

#include "exec/thread_pool.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::yield {

namespace {

/// Number of adjacent wire pairs bridged by an extra-material disc of the
/// given diameter centered at height y (wires along +x, wire i spans
/// y in [i*pitch, i*pitch + w]).  Uses the vertical-extent criterion that
/// also underlies the analytic band model, so MC validates the statistics
/// rather than disc-versus-band geometry (see header).
int bridged_pairs(const wire_array_layout& layout, double y,
                  double diameter) {
    const double pitch = layout.pitch();
    const double w = layout.line_width;
    const double lo = y - 0.5 * diameter;
    const double hi = y + 0.5 * diameter;
    int events = 0;
    for (int i = 0; i + 1 < layout.line_count; ++i) {
        const double top_of_lower = static_cast<double>(i) * pitch + w;
        const double bottom_of_upper = static_cast<double>(i + 1) * pitch;
        // Bridge: the defect must reach into wire i (below the gap) and
        // wire i+1 (above the gap).
        if (lo < top_of_lower && hi > bottom_of_upper) {
            ++events;
        }
    }
    return events;
}

/// Number of wires fully severed by a missing-material disc.
int severed_wires(const wire_array_layout& layout, double y,
                  double diameter) {
    const double pitch = layout.pitch();
    const double w = layout.line_width;
    const double lo = y - 0.5 * diameter;
    const double hi = y + 0.5 * diameter;
    int events = 0;
    for (int i = 0; i < layout.line_count; ++i) {
        const double bottom = static_cast<double>(i) * pitch;
        if (lo <= bottom && hi >= bottom + w) {
            ++events;
        }
    }
    return events;
}

}  // namespace

bool defect_causes_fault(const wire_array_layout& layout, fault_kind kind,
                         double x, double y, double diameter) {
    layout.validate();
    if (x < 0.0 || x > layout.line_length) {
        return false;
    }
    switch (kind) {
        case fault_kind::short_circuit:
            return bridged_pairs(layout, y, diameter) > 0;
        case fault_kind::open_circuit:
            return severed_wires(layout, y, diameter) > 0;
    }
    throw std::invalid_argument("defect_causes_fault: unknown fault kind");
}

std::size_t poisson_sample(double mean, splitmix64& rng) {
    if (!(mean >= 0.0)) {
        throw std::invalid_argument("poisson_sample: mean must be >= 0");
    }
    // Poisson additivity: halve large means until Knuth's product method is
    // numerically safe, then sum the parts.
    if (mean > 30.0) {
        return poisson_sample(mean * 0.5, rng) +
               poisson_sample(mean * 0.5, rng);
    }
    const double limit = std::exp(-mean);
    std::size_t count = 0;
    double product = rng.next_double();
    while (product > limit) {
        ++count;
        product *= rng.next_double();
    }
    return count;
}

monte_carlo_result simulate_layout_yield(const wire_array_layout& layout,
                                         const defect_size_distribution& sizes,
                                         const monte_carlo_config& config) {
    layout.validate();
    if (config.dies == 0) {
        throw std::invalid_argument(
            "simulate_layout_yield: need at least one die");
    }
    if (!(config.defects_per_um2 >= 0.0)) {
        throw std::invalid_argument(
            "simulate_layout_yield: defect density must be >= 0");
    }
    if (!(config.extra_material_fraction >= 0.0 &&
          config.extra_material_fraction <= 1.0)) {
        throw std::invalid_argument(
            "simulate_layout_yield: extra-material fraction must be in "
            "[0,1]");
    }

    // Vertical sampling margin: centers outside the wire stack can still
    // cause events when the defect is large.  Cover all but 1e-6 of the
    // size distribution.
    const double height =
        static_cast<double>(layout.line_count) * layout.line_width +
        static_cast<double>(layout.line_count - 1) * layout.line_spacing;
    const double margin = 0.5 * sizes.quantile(1.0 - 1e-6);
    const double sample_height = height + 2.0 * margin;
    const double mean_defects =
        config.defects_per_um2 * layout.line_length * sample_height;

    // Shard the dies; each shard draws from its own shard_seed-ed stream
    // and the integer counters merge in shard order, so the result is
    // bit-identical at every parallelism level (see monte_carlo_config).
    struct counters {
        std::size_t good = 0;
        std::size_t thrown = 0;
        std::size_t shorts = 0;
        std::size_t opens = 0;
    };
    const counters merged = exec::parallel_reduce(
        config.dies, config.parallelism, counters{},
        [&](const exec::shard_range& shard) {
            counters c;
            // Cooperative cancellation at shard granularity: a skipped
            // shard contributes nothing and the throw below discards
            // the merge, so no partial result ever escapes.
            if (config.cancel != nullptr && config.cancel->expired()) {
                return c;
            }
            splitmix64 rng{exec::shard_seed(config.seed, shard.index)};
            for (std::size_t die = shard.begin; die < shard.end; ++die) {
                const std::size_t n = poisson_sample(mean_defects, rng);
                c.thrown += n;
                bool good = true;
                for (std::size_t k = 0; k < n; ++k) {
                    const double y =
                        -margin + rng.next_double() * sample_height;
                    const double diameter =
                        sizes.quantile(rng.next_double());
                    const bool extra = rng.next_double() <
                                       config.extra_material_fraction;
                    // x is uniform over the wire length; the band
                    // criterion does not depend on it, so it is not
                    // drawn explicitly.
                    if (extra) {
                        const int events =
                            bridged_pairs(layout, y, diameter);
                        c.shorts += static_cast<std::size_t>(events);
                        good = good && events == 0;
                    } else {
                        const int events =
                            severed_wires(layout, y, diameter);
                        c.opens += static_cast<std::size_t>(events);
                        good = good && events == 0;
                    }
                }
                if (good) {
                    ++c.good;
                }
            }
            return c;
        },
        [](counters a, counters b) {
            a.good += b.good;
            a.thrown += b.thrown;
            a.shorts += b.shorts;
            a.opens += b.opens;
            return a;
        });

    if (config.cancel != nullptr && config.cancel->expired()) {
        throw exec::cancelled_error{};
    }

    monte_carlo_result result;
    result.dies = config.dies;
    result.good_dies = merged.good;
    result.defects_thrown = merged.thrown;
    result.shorts = merged.shorts;
    result.opens = merged.opens;

    result.yield = static_cast<double>(result.good_dies) /
                   static_cast<double>(result.dies);
    result.std_error = std::sqrt(result.yield * (1.0 - result.yield) /
                                 static_cast<double>(result.dies));
    return result;
}

}  // namespace silicon::yield
