// batch_fast_impl.hpp — fast_math yield kernel bodies, compiled once
// per instruction-set variant.
//
// The transcendentals already run at full vector width through the
// dispatched table in simd/math.hpp, but the classification and guard
// passes around them compile with whatever flags their TU gets.  On
// x86-64 the baseline is SSE2 (2 lanes), which leaves the passes
// running at half the width of the AVX2 transcendentals — so the same
// bodies are compiled twice:
//
//   * batch_fast.cpp includes this header into namespace `baseline`
//     with the project's portable flags, and
//   * batch_fast_avx2.cpp (x86-64 only) includes it into namespace
//     `avx2` with -mavx2 -mfma -ffp-contract=off.
//
// -ffp-contract=off is what keeps the two variants bit-identical: the
// passes are plain IEEE adds/muls/divides/compares whose results do
// not depend on register width, and disabling FMA contraction removes
// the only way -mfma could change a rounding.  The public kernels in
// batch_fast.cpp pick the variant once per call from
// simd::active_target(), so a host always runs one variant and the
// fast path stays byte-stable across threads and shard splits.
//
// Define SILICON_FAST_IMPL_NS to the variant namespace before
// including.  See batch_fast.cpp for the kernel-structure contract
// (mask -> transcendental -> post-guard per block).

#include <cmath>
#include <cstddef>
#include <limits>

#include "simd/math.hpp"

namespace silicon::yield::batch {
namespace SILICON_FAST_IMPL_NS {

constexpr double nan_lane = std::numeric_limits<double>::quiet_NaN();
constexpr std::size_t block = 256;

/// The scalar kernels' shared post-guard: a computed yield outside
/// [0, 1] (or NaN) maps to the NaN lane.
inline double yield_guard(double y) {
    return !((y >= 0.0) & (y <= 1.0)) ? nan_lane : y;
}

void poisson_yield_fast(const double* expected_faults, double* out,
                               std::size_t n) {
    double arg[block];
    double e[block];
    for (std::size_t base = 0; base < n; base += block) {
        const std::size_t len = (n - base < block) ? (n - base) : block;
        for (std::size_t j = 0; j < len; ++j) {
            const double f = expected_faults[base + j];
            arg[j] = !(f >= 0.0) ? 0.0 : -f;
        }
        simd::exp_lanes(arg, e, len);
        for (std::size_t j = 0; j < len; ++j) {
            const double f = expected_faults[base + j];
            out[base + j] = !(f >= 0.0) ? nan_lane : e[j];
        }
    }
}

void murphy_yield_fast(const double* expected_faults, double* out,
                              std::size_t n) {
    double arg[block];
    double em[block];
    for (std::size_t base = 0; base < n; base += block) {
        const std::size_t len = (n - base < block) ? (n - base) : block;
        for (std::size_t j = 0; j < len; ++j) {
            const double f = expected_faults[base + j];
            // Only the main branch reaches the transcendental; guard
            // and linearized lanes are masked to 0.
            arg[j] = ((f >= 0.0) & !(f < 1e-9)) ? -f : 0.0;
        }
        simd::expm1_lanes(arg, em, len);
        // Branchless select chain (the division runs on every lane —
        // f = 0 lanes produce a NaN the linearization select discards)
        // so the compiler can if-convert and vectorize the pass.
        for (std::size_t j = 0; j < len; ++j) {
            const double f = expected_faults[base + j];
            // Bit-identical to the scalar kernel on the linearized
            // branch: same ops, same association, no transcendental.
            const double lin = 1.0 - 0.5 * f;
            const double t = -em[j] / f;
            const double y = (f < 1e-9) ? lin * lin : t * t;
            out[base + j] = !(f >= 0.0) ? nan_lane : yield_guard(y);
        }
    }
}

void bose_einstein_yield_fast(const double* expected_faults,
                                     int critical_steps, double* out,
                                     std::size_t n) {
    const double steps = static_cast<double>(critical_steps);
    double pb[block];
    double pe[block];
    double y[block];
    for (std::size_t base = 0; base < n; base += block) {
        const std::size_t len = (n - base < block) ? (n - base) : block;
        for (std::size_t j = 0; j < len; ++j) {
            const double f = expected_faults[base + j];
            const bool valid = f >= 0.0;
            const double per_step = f / steps;
            pb[j] = valid ? 1.0 + per_step : 1.0;
            pe[j] = valid ? -steps : 0.0;
        }
        simd::pow_lanes(pb, pe, y, len);
        for (std::size_t j = 0; j < len; ++j) {
            const double f = expected_faults[base + j];
            out[base + j] = !(f >= 0.0) ? nan_lane : yield_guard(y[j]);
        }
    }
}

void negative_binomial_yield_fast(const double* expected_faults,
                                         const double* alpha, double* out,
                                         std::size_t n) {
    double pb[block];
    double pe[block];
    double y[block];
    for (std::size_t base = 0; base < n; base += block) {
        const std::size_t len = (n - base < block) ? (n - base) : block;
        for (std::size_t j = 0; j < len; ++j) {
            const double f = expected_faults[base + j];
            const double a = alpha[base + j];
            const bool valid = (a > 0.0) & (f >= 0.0);
            // Unconditional division (masked denominator) so the loop
            // if-converts; f/a only reaches pb on valid lanes.
            const double fa = f / (valid ? a : 1.0);
            pb[j] = valid ? 1.0 + fa : 1.0;
            pe[j] = valid ? -a : 0.0;
        }
        simd::pow_lanes(pb, pe, y, len);
        for (std::size_t j = 0; j < len; ++j) {
            const double f = expected_faults[base + j];
            const double a = alpha[base + j];
            out[base + j] = (!(a > 0.0) | !(f >= 0.0))
                                ? nan_lane
                                : yield_guard(y[j]);
        }
    }
}

void scaled_poisson_yield_fast(const double* die_area_cm2,
                                      const double* lambda_um,
                                      const double* d, const double* p,
                                      double* out, std::size_t n) {
    double pb[block];
    double pe[block];
    double lp[block];
    double arg[block];
    double e[block];
    for (std::size_t base = 0; base < n; base += block) {
        const std::size_t len = (n - base < block) ? (n - base) : block;
        for (std::size_t j = 0; j < len; ++j) {
            const double a = die_area_cm2[base + j];
            const double l = lambda_um[base + j];
            const double di = d[base + j];
            const double pi = p[base + j];
            const bool valid = (di >= 0.0) & (pi > 2.0) & (a >= 0.0) &
                               !std::isinf(a) & (l > 0.0) &
                               !std::isinf(l);
            pb[j] = valid ? l : 1.0;
            pe[j] = valid ? pi : 0.0;
        }
        simd::pow_lanes(pb, pe, lp, len);
        for (std::size_t j = 0; j < len; ++j) {
            const double a = die_area_cm2[base + j];
            const double di = d[base + j];
            // Same association as the scalar kernel: A * (D / l^p);
            // masked lanes evaluate a benign exp(-0) they never read.
            const double expected = a * (di / lp[j]);
            arg[j] = ((pe[j] == 0.0) & (pb[j] == 1.0)) ? 0.0 : -expected;
        }
        simd::exp_lanes(arg, e, len);
        for (std::size_t j = 0; j < len; ++j) {
            const double a = die_area_cm2[base + j];
            const double l = lambda_um[base + j];
            const double di = d[base + j];
            const double pi = p[base + j];
            const bool invalid =
                !((di >= 0.0) & (pi > 2.0) & (a >= 0.0) &
                  !std::isinf(a) & (l > 0.0) & !std::isinf(l));
            out[base + j] = invalid ? nan_lane : yield_guard(e[j]);
        }
    }
}

void reference_yield_fast(const double* die_area_cm2,
                                 const double* y0, const double* a0_cm2,
                                 double* out, std::size_t n) {
    double pb[block];
    double pe[block];
    double y[block];
    for (std::size_t base = 0; base < n; base += block) {
        const std::size_t len = (n - base < block) ? (n - base) : block;
        for (std::size_t j = 0; j < len; ++j) {
            const double a = die_area_cm2[base + j];
            const double y0i = y0[base + j];
            const double a0i = a0_cm2[base + j];
            const bool valid = (y0i > 0.0) & (y0i <= 1.0) &
                               (a0i > 0.0) & !std::isinf(a0i) &
                               (a >= 0.0) & !std::isinf(a);
            // Unconditional division (masked denominator) so the loop
            // if-converts; a/a0 only reaches pe on valid lanes.
            const double ratio = a / (valid ? a0i : 1.0);
            pb[j] = valid ? y0i : 1.0;
            pe[j] = valid ? ratio : 0.0;
        }
        simd::pow_lanes(pb, pe, y, len);
        for (std::size_t j = 0; j < len; ++j) {
            const double a = die_area_cm2[base + j];
            const double y0i = y0[base + j];
            const double a0i = a0_cm2[base + j];
            const bool invalid =
                !((y0i > 0.0) & (y0i <= 1.0) & (a0i > 0.0) &
                  !std::isinf(a0i) & (a >= 0.0) & !std::isinf(a));
            out[base + j] = invalid ? nan_lane : yield_guard(y[j]);
        }
    }
}

}  // namespace SILICON_FAST_IMPL_NS
}  // namespace silicon::yield::batch
