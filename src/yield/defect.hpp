// defect.hpp — spot defect size distribution (paper Fig. 5).
//
// Contamination-generated spot defects are modeled as discs whose radius R
// follows the standard two-branch density used throughout the yield
// literature (Stapper, Ferris-Prabhu, Maly):
//
//     f(R) = k * R^q               for 0 < R <= R0      (rising branch)
//     f(R) = k * R0^(q+p) / R^p    for R  > R0          (1/R^p tail)
//
// The density is continuous at R0 and normalized over (0, inf), which
// requires p > 1.  The paper reports p in the 4-5 range for real lines and
// uses q = 1 implicitly (the conventional value); both are parameters here.
//
// The class provides the pdf, cdf, survival function, raw moments, the
// mean, and inverse-cdf sampling — everything the critical-area and
// Monte-Carlo yield modules need.

#pragma once

#include <cstdint>
#include <vector>

namespace silicon::yield {

/// Two-branch power-law defect size distribution of Fig. 5.
///
/// Radii are in the same length unit as r0 (the model is scale-free; the
/// critical-area code uses microns throughout).
class defect_size_distribution {
public:
    /// @param r0 peak radius (microns); must be > 0.
    /// @param p  tail exponent; must be > 1 for normalizability.
    /// @param q  rising-branch exponent; must be > -1.
    defect_size_distribution(double r0, double p, double q = 1.0);

    [[nodiscard]] double r0() const noexcept { return r0_; }
    [[nodiscard]] double p() const noexcept { return p_; }
    [[nodiscard]] double q() const noexcept { return q_; }

    /// Probability density at radius r (0 for r <= 0).
    [[nodiscard]] double pdf(double r) const;

    /// P(R <= r).
    [[nodiscard]] double cdf(double r) const;

    /// P(R > r) = 1 - cdf(r), computed without cancellation for large r.
    [[nodiscard]] double survival(double r) const;

    /// Raw moment E[R^n]; requires p > n + 1, throws std::domain_error
    /// otherwise (the tail makes the moment infinite).
    [[nodiscard]] double moment(int n) const;

    /// Mean defect radius E[R] (requires p > 2).
    [[nodiscard]] double mean() const { return moment(1); }

    /// Inverse cdf: the radius r with cdf(r) = u, for u in [0, 1).
    [[nodiscard]] double quantile(double u) const;

    /// Draw `count` radii by inverse-cdf sampling of a SplitMix64 stream
    /// seeded with `seed` (deterministic across platforms).
    [[nodiscard]] std::vector<double> sample(std::size_t count,
                                             std::uint64_t seed) const;

    /// Fraction of the distribution's mass on the tail branch (r > r0).
    [[nodiscard]] double tail_mass() const noexcept { return tail_mass_; }

private:
    double r0_;
    double p_;
    double q_;
    double k_;          // normalization constant
    double tail_mass_;  // P(R > r0)
    double body_mass_;  // P(R <= r0)
};

/// Deterministic 64-bit SplitMix64 generator used for all stochastic
/// substrates in this library (stable results across platforms, unlike
/// std::default_random_engine distributions).
class splitmix64 {
public:
    explicit constexpr splitmix64(std::uint64_t seed) noexcept
        : state_{seed} {}

    /// Next raw 64-bit value.
    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform double in [0, 1).
    double next_double() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

private:
    std::uint64_t state_;
};

}  // namespace silicon::yield
