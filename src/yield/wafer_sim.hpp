// wafer_sim.hpp — whole-wafer Monte-Carlo yield simulation.
//
// The classic yield models (models.hpp) differ only in their assumption
// about how defect density varies across wafers: Poisson assumes a
// uniform density, the compound models let it fluctuate (clustering).
// This simulator makes that concrete: it places the die grid on a wafer
// (via the exact placement engine), draws a per-wafer defect count from
// either a uniform-density or a gamma-mixed (clustered) process, assigns
// defect positions, and kills dies by Poisson thinning with a per-die
// fault probability.
//
// Outputs: per-wafer yields (mean and spread — clustering widens the
// spread and *raises* the mean yield at equal density, exactly the
// negative-binomial prediction that the tests and the clustering bench
// verify), plus ASCII pass/fail wafer maps.

#pragma once

#include "geometry/die.hpp"
#include "geometry/wafer.hpp"
#include "yield/defect.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace silicon::yield {

/// Defect spatial statistics.
enum class defect_process {
    uniform,    ///< Poisson field: constant density everywhere
    clustered,  ///< gamma-mixed density per wafer (negative binomial)
};

/// Simulation parameters.
///
/// Determinism contract: wafers are split into
/// `exec::shard_count_for(wafers)` chunks, each drawing from its own
/// `exec::shard_seed(seed, chunk)`-seeded stream; per-wafer yields are
/// written into index-addressed slots and the totals merge in chunk
/// order, so the result is bit-identical for every `parallelism` value.
struct wafer_sim_config {
    std::size_t wafers = 100;           ///< wafers to simulate
    double defects_per_cm2 = 1.0;       ///< mean all-size defect density
    double fault_probability = 1.0;     ///< P(defect on a die kills it)
    defect_process process = defect_process::uniform;
    double cluster_alpha = 2.0;         ///< gamma shape for `clustered`
    std::uint64_t seed = 0x5eedu;
    unsigned parallelism = 0;           ///< threads; 0 = hardware
                                        ///< concurrency, 1 = serial
};

/// Result of one run.
struct wafer_sim_result {
    std::size_t wafers = 0;
    long dies_per_wafer = 0;            ///< gross dies placed
    std::vector<double> wafer_yields;   ///< per-wafer good fraction
    double mean_yield = 0.0;
    double yield_stddev = 0.0;          ///< across wafers
    std::size_t total_defects = 0;

    /// Pass/fail map of the *last* simulated wafer ('#' good, 'x' bad).
    std::string last_wafer_map;
};

/// Run the simulation.  Throws std::invalid_argument when no dies fit
/// or parameters are out of range.
[[nodiscard]] wafer_sim_result simulate_wafers(const geometry::wafer& w,
                                               const geometry::die& d,
                                               const wafer_sim_config& config);

/// Draw from Gamma(shape, scale=1) — exposed for testing.  Uses
/// Marsaglia-Tsang for shape >= 1 and the boost for shape < 1.
[[nodiscard]] double gamma_sample(double shape, splitmix64& rng);

}  // namespace silicon::yield
