// critical_area.hpp — analytical critical-area yield analysis.
//
// The link between the defect size distribution of Fig. 5 and the
// fault-causing defect density D/lambda^p of Eq. (7) is *critical area*:
// for a defect of size x, the critical area A_c(x) is the region of the
// layout where the center of that defect causes a fault.  The expected
// fault count of a die is then
//
//     E[faults] = D_total * integral A_c(x) f(x) dx / A_layout
//               = D_total_density * A_c_avg
//
// This module implements the canonical test structure of the critical-area
// literature (and of Maly's own defect work): an array of N parallel wires
// of width w, spacing s and length L.
//
//   * extra-material defects short adjacent wires:  band height (x - s)
//     per gap once x > s,
//   * missing-material defects open a wire:         band height (x - w)
//     per wire once x > w.
//
// Both A_c(x) curves are piecewise linear and capped at the layout area
// (a defect larger than the structure cannot have more critical area than
// the structure).  The average critical area integral has a closed form
// for the power-law tail and is also exposed through numeric quadrature so
// the two can be cross-checked in tests.
//
// All lengths are microns; defect "size" x is the defect *diameter*,
// matching the convention of the analytic band heights above.

#pragma once

#include "yield/defect.hpp"

#include <functional>

namespace silicon::yield {

/// Parallel-wire test structure.
struct wire_array_layout {
    double line_width = 1.0;   ///< w, microns
    double line_spacing = 1.0; ///< s, microns
    double line_length = 100.0;///< L, microns
    int line_count = 10;       ///< N >= 1

    /// Total bounding area: L * (N*w + (N-1)*s), um^2.
    [[nodiscard]] double area() const noexcept {
        return line_length *
               (static_cast<double>(line_count) * line_width +
                static_cast<double>(line_count - 1) * line_spacing);
    }

    /// Wire pitch w + s.
    [[nodiscard]] double pitch() const noexcept {
        return line_width + line_spacing;
    }

    /// Throws std::invalid_argument if any dimension is non-positive or
    /// line_count < 1.
    void validate() const;
};

/// Fault mechanisms distinguished by the extractor.
enum class fault_kind {
    short_circuit,  ///< extra conducting material bridging adjacent wires
    open_circuit,   ///< missing material severing a wire
};

/// Critical area A_c(x) in um^2 for a defect of diameter x on the layout.
/// Piecewise linear in x, zero below the threshold (s for shorts, w for
/// opens), capped at layout.area().
[[nodiscard]] double critical_area(const wire_array_layout& layout,
                                   fault_kind kind, double defect_diameter);

/// Average critical area integral A_c_avg = E[A_c(X)] against the given
/// defect size (diameter) distribution, evaluated in closed form for the
/// linear-then-capped A_c and two-branch power-law f.
[[nodiscard]] double average_critical_area(const wire_array_layout& layout,
                                           fault_kind kind,
                                           const defect_size_distribution& d);

/// Same integral by adaptive Simpson quadrature (validation path; `steps`
/// panels over the finite support plus the analytic tail above the cap).
[[nodiscard]] double average_critical_area_numeric(
    const wire_array_layout& layout, fault_kind kind,
    const defect_size_distribution& d, int steps = 4096);

/// Expected fault count for the layout exposed to `defects_per_um2`
/// defects (all sizes), of which `extra_material_fraction` are
/// extra-material (short-causing) and the rest missing-material
/// (open-causing).
[[nodiscard]] double expected_faults(const wire_array_layout& layout,
                                     const defect_size_distribution& d,
                                     double defects_per_um2,
                                     double extra_material_fraction = 0.5);

/// Poisson functional yield of the layout: exp(-expected_faults).
[[nodiscard]] double layout_yield(const wire_array_layout& layout,
                                  const defect_size_distribution& d,
                                  double defects_per_um2,
                                  double extra_material_fraction = 0.5);

}  // namespace silicon::yield
