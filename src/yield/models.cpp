#include "yield/models.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::yield {

namespace {

void require_nonnegative(double expected_faults) {
    if (!(expected_faults >= 0.0)) {
        throw std::invalid_argument(
            "yield_model: expected fault count must be >= 0");
    }
}

}  // namespace

probability poisson_model::yield(double expected_faults) const {
    require_nonnegative(expected_faults);
    return probability{std::exp(-expected_faults)};
}

probability murphy_model::yield(double expected_faults) const {
    require_nonnegative(expected_faults);
    if (expected_faults < 1e-9) {
        // (1 - e^-l)/l -> 1 - l/2 as l -> 0; squaring keeps full precision.
        const double lin = 1.0 - 0.5 * expected_faults;
        return probability{lin * lin};
    }
    const double t = (1.0 - std::exp(-expected_faults)) / expected_faults;
    return probability{t * t};
}

probability seeds_model::yield(double expected_faults) const {
    require_nonnegative(expected_faults);
    return probability{1.0 / (1.0 + expected_faults)};
}

bose_einstein_model::bose_einstein_model(int critical_steps)
    : steps_{critical_steps} {
    if (critical_steps < 1) {
        throw std::invalid_argument(
            "bose_einstein_model: critical step count must be >= 1");
    }
}

probability bose_einstein_model::yield(double expected_faults) const {
    require_nonnegative(expected_faults);
    const double per_step =
        expected_faults / static_cast<double>(steps_);
    return probability{
        std::pow(1.0 + per_step, -static_cast<double>(steps_))};
}

std::string bose_einstein_model::name() const {
    return "bose_einstein(n=" + std::to_string(steps_) + ")";
}

negative_binomial_model::negative_binomial_model(double alpha)
    : alpha_{alpha} {
    if (!(alpha > 0.0)) {
        throw std::invalid_argument(
            "negative_binomial_model: alpha must be positive");
    }
}

probability negative_binomial_model::yield(double expected_faults) const {
    require_nonnegative(expected_faults);
    return probability{std::pow(1.0 + expected_faults / alpha_, -alpha_)};
}

std::string negative_binomial_model::name() const {
    return "neg_binomial(alpha=" + std::to_string(alpha_) + ")";
}

std::vector<std::unique_ptr<yield_model>> standard_model_family(
    int bose_einstein_steps, double clustering_alpha) {
    std::vector<std::unique_ptr<yield_model>> family;
    family.push_back(std::make_unique<poisson_model>());
    family.push_back(std::make_unique<murphy_model>());
    family.push_back(std::make_unique<seeds_model>());
    family.push_back(std::make_unique<bose_einstein_model>(
        bose_einstein_steps));
    family.push_back(std::make_unique<negative_binomial_model>(
        clustering_alpha));
    return family;
}

}  // namespace silicon::yield
