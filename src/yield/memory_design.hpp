// memory_design.hpp — choosing the redundancy level of a memory.
//
// Assumption S.1.2 speaks of "appropriately designed redundant
// components": spares are not free (each spare row/column adds cell
// area), so there is an optimal spare count — too few and yield
// collapses, too many and every good die carries dead silicon.  This
// optimizer sweeps the spare count and minimizes the *cost per good die*
// proxy: effective area per good die = total area / yield.
//
// The paper's broader point falls out of the same computation: the
// optimal redundancy level rises with defect density and die size, which
// is why big commodity memories invest heavily in spares while logic
// (which cannot use them) is stuck with raw Poisson yield.

#pragma once

#include "yield/redundancy.hpp"

#include <vector>

namespace silicon::yield {

/// Memory design parameters.
struct memory_design {
    square_centimeters base_array_area{1.0};  ///< array without spares
    square_centimeters periphery_area{0.2};   ///< non-repairable logic
    double area_per_spare_fraction = 0.005;   ///< array area added per
                                              ///< spare (row or column)
};

/// One point of the spare sweep.
struct redundancy_point {
    int spares = 0;
    square_centimeters total_area{0.0};
    probability yield{0.0};
    double area_per_good_die_cm2 = 0.0;  ///< total / yield: cost proxy
};

/// Sweep result.
struct redundancy_choice {
    std::vector<redundancy_point> sweep;
    redundancy_point best;   ///< minimum area per good die
    redundancy_point none;   ///< zero-spare baseline
    double improvement = 0.0;///< 1 - best/none (fraction saved)
};

/// Sweep spares 0..max_spares at the given defect density and pick the
/// cost-optimal count.  Throws std::invalid_argument on bad inputs.
[[nodiscard]] redundancy_choice optimize_redundancy(
    const memory_design& design, double defects_per_cm2,
    int max_spares = 64);

}  // namespace silicon::yield
