// parametric.hpp — parametric yield (Y_par) from global process spread.
//
// Section III.C: total yield factors as Y = Y_fnc * Y_par, where Y_par
// captures dies that function but miss their performance window (delay,
// power) because of "global process disturbances".  The standard model
// treats each electrical parameter as Gaussian across the wafer population
// with a two-sided spec window; independent parameters multiply.
//
// This module supplies that model plus the composition helper, so the core
// cost model can be driven with either the paper's pure-functional
// assumption (Y_par = 1) or a full composite yield.

#pragma once

#include "core/units.hpp"

#include <string>
#include <vector>

namespace silicon::yield {

/// Standard normal CDF.
[[nodiscard]] double standard_normal_cdf(double z);

/// One monitored electrical parameter with a Gaussian population and a
/// spec window.  An unbounded side is expressed with infinity.
struct parameter_spec {
    std::string name;       ///< e.g. "ring oscillator delay"
    double mean = 0.0;      ///< population mean
    double sigma = 1.0;     ///< population standard deviation (> 0)
    double lower = -1e300;  ///< lower spec limit
    double upper = 1e300;   ///< upper spec limit

    /// Probability that a die's parameter lands inside the window.
    [[nodiscard]] probability pass_probability() const;

    /// Process capability index Cpk = min(USL-mu, mu-LSL) / (3 sigma).
    [[nodiscard]] double cpk() const;
};

/// Independent-parameter parametric yield model.
class parametric_yield_model {
public:
    parametric_yield_model() = default;

    /// Add a parameter; throws std::invalid_argument on sigma <= 0 or an
    /// empty spec window (lower >= upper).
    void add_parameter(parameter_spec spec);

    [[nodiscard]] const std::vector<parameter_spec>& parameters()
        const noexcept {
        return parameters_;
    }

    /// Product of the per-parameter pass probabilities.
    [[nodiscard]] probability yield() const;

    /// The single worst (lowest pass probability) parameter, or nullptr
    /// when the model is empty.  Useful for "which spec dominates loss".
    [[nodiscard]] const parameter_spec* dominant_loss() const;

private:
    std::vector<parameter_spec> parameters_;
};

/// Y = Y_fnc * Y_par (Sec. III.C).
[[nodiscard]] inline probability composite_yield(probability functional,
                                                 probability parametric) {
    return functional * parametric;
}

}  // namespace silicon::yield
