#include "yield/defect.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::yield {

defect_size_distribution::defect_size_distribution(double r0, double p,
                                                   double q)
    : r0_{r0}, p_{p}, q_{q} {
    if (!(r0 > 0.0)) {
        throw std::invalid_argument(
            "defect_size_distribution: r0 must be positive");
    }
    if (!(p > 1.0)) {
        throw std::invalid_argument(
            "defect_size_distribution: p must exceed 1 for a normalizable "
            "tail");
    }
    if (!(q > -1.0)) {
        throw std::invalid_argument(
            "defect_size_distribution: q must exceed -1");
    }
    // Normalization: integral of the body k*R^q over (0, r0] is
    // k*r0^(q+1)/(q+1); the tail k*r0^(q+p)/R^p over (r0, inf) is
    // k*r0^(q+1)/(p-1).
    const double body = std::pow(r0_, q_ + 1.0) / (q_ + 1.0);
    const double tail = std::pow(r0_, q_ + 1.0) / (p_ - 1.0);
    k_ = 1.0 / (body + tail);
    body_mass_ = k_ * body;
    tail_mass_ = k_ * tail;
}

double defect_size_distribution::pdf(double r) const {
    if (r <= 0.0) {
        return 0.0;
    }
    if (r <= r0_) {
        return k_ * std::pow(r, q_);
    }
    return k_ * std::pow(r0_, q_ + p_) * std::pow(r, -p_);
}

double defect_size_distribution::cdf(double r) const {
    if (r <= 0.0) {
        return 0.0;
    }
    if (r <= r0_) {
        return k_ * std::pow(r, q_ + 1.0) / (q_ + 1.0);
    }
    // body_mass_ + integral of tail from r0 to r.
    const double tail_part = k_ * std::pow(r0_, q_ + p_) / (p_ - 1.0) *
                             (std::pow(r0_, 1.0 - p_) - std::pow(r, 1.0 - p_));
    return body_mass_ + tail_part;
}

double defect_size_distribution::survival(double r) const {
    if (r <= 0.0) {
        return 1.0;
    }
    if (r <= r0_) {
        return 1.0 - cdf(r);
    }
    // P(R > r) = k * r0^(q+p) * r^(1-p) / (p-1): exact, no cancellation.
    return k_ * std::pow(r0_, q_ + p_) * std::pow(r, 1.0 - p_) / (p_ - 1.0);
}

double defect_size_distribution::moment(int n) const {
    if (n < 0) {
        throw std::invalid_argument(
            "defect_size_distribution: moment order must be >= 0");
    }
    if (n == 0) {
        return 1.0;
    }
    const double dn = static_cast<double>(n);
    if (!(p_ > dn + 1.0)) {
        throw std::domain_error(
            "defect_size_distribution: E[R^n] diverges unless p > n + 1");
    }
    // E[R^n] = k [ r0^(q+n+1)/(q+n+1) + r0^(q+n+1)/(p-n-1) ].
    const double rn = std::pow(r0_, q_ + dn + 1.0);
    return k_ * (rn / (q_ + dn + 1.0) + rn / (p_ - dn - 1.0));
}

double defect_size_distribution::quantile(double u) const {
    if (!(u >= 0.0 && u < 1.0)) {
        throw std::invalid_argument(
            "defect_size_distribution: quantile argument must be in [0,1)");
    }
    if (u <= body_mass_) {
        // u = k * r^(q+1) / (q+1)  =>  r = ((q+1) u / k)^(1/(q+1)).
        return std::pow((q_ + 1.0) * u / k_, 1.0 / (q_ + 1.0));
    }
    // Tail: survival(r) = 1-u  =>  r^(1-p) = (1-u)(p-1)/(k r0^(q+p)).
    const double s = (1.0 - u) * (p_ - 1.0) /
                     (k_ * std::pow(r0_, q_ + p_));
    return std::pow(s, 1.0 / (1.0 - p_));
}

std::vector<double> defect_size_distribution::sample(
    std::size_t count, std::uint64_t seed) const {
    std::vector<double> radii;
    radii.reserve(count);
    splitmix64 rng{seed};
    for (std::size_t i = 0; i < count; ++i) {
        radii.push_back(quantile(rng.next_double()));
    }
    return radii;
}

}  // namespace silicon::yield
