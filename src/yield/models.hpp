// models.hpp — classic functional-yield models.
//
// All of these map the expected fault count lambda0 = A_ch * D_0 (die area
// times effective defect density) to a yield.  They differ in the assumed
// spatial distribution of defect density across wafers and lots:
//
//   poisson        Y = exp(-l)                    (uniform density; Eq. 6)
//   murphy         Y = ((1 - exp(-l)) / l)^2      (triangular density mix)
//   seeds          Y = 1 / (1 + l)                (exponential density mix)
//   bose_einstein  Y = 1 / (1 + l/n)^n            (n critical process steps)
//   neg_binomial   Y = (1 + l/alpha)^-alpha       (gamma mix, clustering)
//
// The negative binomial model degenerates to Poisson as alpha -> inf and to
// Seeds at alpha = 1, which the tests exploit as properties.
//
// The polymorphic interface exists because the comparison across models *is*
// one of the reproduction ablations (bench_ablate_yield); most library code
// uses the concrete classes directly.

#pragma once

#include "core/units.hpp"

#include <memory>
#include <string>
#include <vector>

namespace silicon::yield {

/// Abstract yield model over the expected fault count per die.
class yield_model {
public:
    virtual ~yield_model() = default;

    /// Yield for an expected fault count lambda0 >= 0.
    [[nodiscard]] virtual probability yield(double expected_faults) const = 0;

    /// Short identifier for tables and benches.
    [[nodiscard]] virtual std::string name() const = 0;

    /// Convenience: yield for die area * defect density.
    [[nodiscard]] probability yield(square_centimeters area,
                                    double defects_per_cm2) const {
        return yield(area.value() * defects_per_cm2);
    }
};

/// Eq. (6): Y = exp(-A D0).
class poisson_model final : public yield_model {
public:
    using yield_model::yield;
    [[nodiscard]] probability yield(double expected_faults) const override;
    [[nodiscard]] std::string name() const override { return "poisson"; }
};

/// Murphy's bell-shaped (double triangular) compounding.
class murphy_model final : public yield_model {
public:
    using yield_model::yield;
    [[nodiscard]] probability yield(double expected_faults) const override;
    [[nodiscard]] std::string name() const override { return "murphy"; }
};

/// Seeds' exponential compounding: optimistic for large dies.
class seeds_model final : public yield_model {
public:
    using yield_model::yield;
    [[nodiscard]] probability yield(double expected_faults) const override;
    [[nodiscard]] std::string name() const override { return "seeds"; }
};

/// Bose-Einstein: n identically critical process steps.
class bose_einstein_model final : public yield_model {
public:
    /// @param critical_steps number of critical layers n >= 1.
    explicit bose_einstein_model(int critical_steps);

    using yield_model::yield;
    [[nodiscard]] probability yield(double expected_faults) const override;
    [[nodiscard]] std::string name() const override;

    [[nodiscard]] int critical_steps() const noexcept { return steps_; }

private:
    int steps_;
};

/// Negative binomial with clustering parameter alpha > 0.
class negative_binomial_model final : public yield_model {
public:
    explicit negative_binomial_model(double alpha);

    using yield_model::yield;
    [[nodiscard]] probability yield(double expected_faults) const override;
    [[nodiscard]] std::string name() const override;

    [[nodiscard]] double alpha() const noexcept { return alpha_; }

private:
    double alpha_;
};

/// The model family used by the ablation bench, in canonical order.
[[nodiscard]] std::vector<std::unique_ptr<yield_model>>
standard_model_family(int bose_einstein_steps = 10,
                      double clustering_alpha = 2.0);

}  // namespace silicon::yield
