#include "yield/critical_area.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::yield {

void wire_array_layout::validate() const {
    if (!(line_width > 0.0) || !(line_spacing > 0.0) ||
        !(line_length > 0.0)) {
        throw std::invalid_argument(
            "wire_array_layout: dimensions must be positive");
    }
    if (line_count < 1) {
        throw std::invalid_argument(
            "wire_array_layout: need at least one line");
    }
}

namespace {

/// Slope m and threshold t of the linear branch of A_c(x) = m * (x - t).
struct linear_band {
    double slope = 0.0;
    double threshold = 0.0;
};

linear_band band_for(const wire_array_layout& layout, fault_kind kind) {
    layout.validate();
    switch (kind) {
        case fault_kind::short_circuit:
            return {static_cast<double>(layout.line_count - 1) *
                        layout.line_length,
                    layout.line_spacing};
        case fault_kind::open_circuit:
            return {static_cast<double>(layout.line_count) *
                        layout.line_length,
                    layout.line_width};
    }
    throw std::invalid_argument("critical_area: unknown fault kind");
}

/// Definite integral of the survival function of `d` over [a, b].
double integral_survival(const defect_size_distribution& d, double a,
                         double b) {
    if (b <= a) {
        return 0.0;
    }
    const double r0 = d.r0();
    const double p = d.p();
    const double q = d.q();
    // Normalization constant recovered from the pdf at r0 (body branch):
    // pdf(r0) = k * r0^q.
    const double k = d.pdf(r0) / std::pow(r0, q);

    // Antiderivative of S on the body branch (x <= r0):
    //   S(x) = 1 - k x^(q+1)/(q+1)
    const auto body_anti = [&](double x) {
        return x - k * std::pow(x, q + 2.0) / ((q + 1.0) * (q + 2.0));
    };
    // Antiderivative of S on the tail branch (x > r0):
    //   S(x) = k r0^(q+p) x^(1-p) / (p-1)
    const auto tail_anti = [&](double x) {
        const double c = k * std::pow(r0, q + p) / (p - 1.0);
        if (std::abs(p - 2.0) < 1e-12) {
            return c * std::log(x);
        }
        return c * std::pow(x, 2.0 - p) / (2.0 - p);
    };

    double total = 0.0;
    const double body_hi = std::min(b, r0);
    if (a < r0) {
        total += body_anti(body_hi) - body_anti(a);
    }
    const double tail_lo = std::max(a, r0);
    if (b > r0) {
        total += tail_anti(b) - tail_anti(tail_lo);
    }
    return total;
}

}  // namespace

double critical_area(const wire_array_layout& layout, fault_kind kind,
                     double defect_diameter) {
    const linear_band band = band_for(layout, kind);
    if (defect_diameter <= band.threshold) {
        return 0.0;
    }
    const double linear = band.slope * (defect_diameter - band.threshold);
    const double cap = layout.area();
    return linear < cap ? linear : cap;
}

double average_critical_area(const wire_array_layout& layout, fault_kind kind,
                             const defect_size_distribution& d) {
    const linear_band band = band_for(layout, kind);
    if (band.slope <= 0.0) {
        return 0.0;  // single wire has no short mechanism
    }
    // With A_c linear in x up to the cap, integration by parts collapses
    // the expectation to  m * integral_{t}^{x_cap} S(x) dx  (the boundary
    // terms cancel exactly against the capped branch; see header).
    const double x_cap = band.threshold + layout.area() / band.slope;
    return band.slope * integral_survival(d, band.threshold, x_cap);
}

double average_critical_area_numeric(const wire_array_layout& layout,
                                     fault_kind kind,
                                     const defect_size_distribution& d,
                                     int steps) {
    if (steps < 2) {
        throw std::invalid_argument(
            "average_critical_area_numeric: need at least 2 panels");
    }
    const linear_band band = band_for(layout, kind);
    if (band.slope <= 0.0) {
        return 0.0;
    }
    const double x_cap = band.threshold + layout.area() / band.slope;

    // Simpson over [threshold, x_cap] of A_c(x) f(x).
    const int n = steps % 2 == 0 ? steps : steps + 1;
    const double a = band.threshold;
    const double h = (x_cap - a) / n;
    const auto g = [&](double x) {
        return critical_area(layout, kind, x) * d.pdf(x);
    };
    double sum = g(a) + g(x_cap);
    for (int i = 1; i < n; ++i) {
        sum += (i % 2 == 1 ? 4.0 : 2.0) * g(a + h * i);
    }
    const double finite_part = sum * h / 3.0;

    // Above the cap A_c is constant: contributes area * P(X > x_cap).
    return finite_part + layout.area() * d.survival(x_cap);
}

double expected_faults(const wire_array_layout& layout,
                       const defect_size_distribution& d,
                       double defects_per_um2,
                       double extra_material_fraction) {
    if (!(defects_per_um2 >= 0.0)) {
        throw std::invalid_argument(
            "expected_faults: defect density must be >= 0");
    }
    if (!(extra_material_fraction >= 0.0 && extra_material_fraction <= 1.0)) {
        throw std::invalid_argument(
            "expected_faults: extra-material fraction must be in [0,1]");
    }
    const double ca_short =
        average_critical_area(layout, fault_kind::short_circuit, d);
    const double ca_open =
        average_critical_area(layout, fault_kind::open_circuit, d);
    return defects_per_um2 * (extra_material_fraction * ca_short +
                              (1.0 - extra_material_fraction) * ca_open);
}

double layout_yield(const wire_array_layout& layout,
                    const defect_size_distribution& d,
                    double defects_per_um2,
                    double extra_material_fraction) {
    return std::exp(
        -expected_faults(layout, d, defects_per_um2,
                         extra_material_fraction));
}

}  // namespace silicon::yield
