// batch_fast_avx2.cpp — AVX2 compilation of the fast yield kernel
// bodies (see batch_fast_impl.hpp for why the passes are compiled per
// ISA and why -ffp-contract=off keeps this variant bit-identical to
// the baseline one).  Compiled with -mavx2 -mfma -ffp-contract=off on
// x86-64 only; nothing here runs unless simd::active_target() resolved
// to avx2, which implies the host supports these instructions.

#if defined(__x86_64__) || defined(_M_X64)

#define SILICON_FAST_IMPL_NS avx2
#include "yield/batch_fast_impl.hpp"
#undef SILICON_FAST_IMPL_NS

#endif  // x86-64
