#include "yield/scaled.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::yield {

scaled_poisson_model::scaled_poisson_model(double d, double p)
    : d_{d}, p_{p} {
    if (!(d >= 0.0)) {
        throw std::invalid_argument("scaled_poisson_model: D must be >= 0");
    }
    if (!(p > 2.0)) {
        throw std::invalid_argument(
            "scaled_poisson_model: p must exceed 2 (paper range 4-5)");
    }
}

double scaled_poisson_model::effective_defect_density(microns lambda) const {
    if (lambda.value() <= 0.0) {
        throw std::invalid_argument(
            "scaled_poisson_model: lambda must be positive");
    }
    return d_ / std::pow(lambda.value(), p_);
}

probability scaled_poisson_model::yield(square_centimeters die_area,
                                        microns lambda) const {
    const double expected_faults =
        die_area.value() * effective_defect_density(lambda);
    return probability{std::exp(-expected_faults)};
}

probability scaled_poisson_model::yield_for_transistors(
    double n_tr, double design_density, microns lambda) const {
    if (!(n_tr >= 0.0) || !(design_density > 0.0)) {
        throw std::invalid_argument(
            "scaled_poisson_model: transistor count must be >= 0 and design "
            "density positive");
    }
    // Die area in cm^2: n_tr * d_d * lambda^2 [um^2] * 1e-8 [cm^2/um^2].
    const double area_cm2 =
        n_tr * design_density * lambda.value() * lambda.value() * 1e-8;
    return yield(square_centimeters{area_cm2}, lambda);
}

double scaled_poisson_model::required_d(probability target,
                                        square_centimeters die_area,
                                        microns lambda, double p) {
    if (target.value() <= 0.0) {
        throw std::domain_error(
            "scaled_poisson_model: cannot hit a zero yield target with "
            "finite defect density");
    }
    if (die_area.value() <= 0.0 || lambda.value() <= 0.0) {
        throw std::invalid_argument(
            "scaled_poisson_model: area and lambda must be positive");
    }
    // exp(-A * D / lambda^p) = Y  =>  D = -ln(Y) lambda^p / A.
    return -std::log(target.value()) * std::pow(lambda.value(), p) /
           die_area.value();
}

reference_die_yield::reference_die_yield(probability y0, square_centimeters a0)
    : y0_{y0}, a0_{a0} {
    if (y0.value() <= 0.0) {
        throw std::invalid_argument(
            "reference_die_yield: Y_0 must be positive");
    }
    if (a0.value() <= 0.0) {
        throw std::invalid_argument(
            "reference_die_yield: A_0 must be positive");
    }
}

probability reference_die_yield::yield(square_centimeters die_area) const {
    if (die_area.value() < 0.0) {
        throw std::invalid_argument(
            "reference_die_yield: die area must be >= 0");
    }
    return probability{
        std::pow(y0_.value(), die_area.value() / a0_.value())};
}

double reference_die_yield::equivalent_defect_density() const {
    return -std::log(y0_.value()) / a0_.value();
}

}  // namespace silicon::yield
