// extraction.hpp — fitting Eq. (7)'s (D, p) parameters from yield data.
//
// The paper's Fig. 8 calibration "D = 1.72 and p = 4.07 ... extracted
// from a real manufacturing operation [26]".  This module implements that
// extraction: given yield observations at several feature sizes and die
// areas, recover D and p of
//
//     Y = exp(-A * D / lambda^p)
//
// by log-log regression:  ln(-ln Y / A) = ln D - p ln lambda.
//
// Closes the loop with the Monte-Carlo substrate: simulate yields with a
// known ground truth, extract, and compare (tested in test_extraction).

#pragma once

#include "core/units.hpp"

#include <vector>

namespace silicon::yield {

/// One yield observation.
struct yield_observation {
    microns lambda{1.0};
    square_centimeters die_area{1.0};
    probability yield{0.5};
};

/// Extraction result.
struct scaled_model_fit {
    double d = 0.0;          ///< defects/cm^2 at lambda = 1 um
    double p = 0.0;          ///< size-distribution exponent
    double r_squared = 0.0;  ///< of the log-log regression
};

/// Fit (D, p).  Requires >= 2 observations at distinct feature sizes
/// with yields strictly inside (0, 1); throws std::invalid_argument
/// otherwise.
[[nodiscard]] scaled_model_fit fit_scaled_poisson(
    const std::vector<yield_observation>& observations);

}  // namespace silicon::yield
