#include "yield/batch.hpp"

#include <cmath>
#include <limits>

namespace silicon::yield::batch {

namespace {

constexpr double nan_lane = std::numeric_limits<double>::quiet_NaN();

}  // namespace

void poisson_yield(const double* expected_faults, double* out,
                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const double f = expected_faults[i];
        // poisson_model::yield's require_nonnegative guard.
        out[i] = !(f >= 0.0) ? nan_lane : std::exp(-f);
    }
}

void murphy_yield(const double* expected_faults, double* out,
                  std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const double f = expected_faults[i];
        if (!(f >= 0.0)) {
            out[i] = nan_lane;
            continue;
        }
        // murphy_model::yield: linearized below 1e-9 to keep full
        // precision (same branch, same association).
        double y;
        if (f < 1e-9) {
            const double lin = 1.0 - 0.5 * f;
            y = lin * lin;
        } else {
            const double t = (1.0 - std::exp(-f)) / f;
            y = t * t;
        }
        out[i] = !(y >= 0.0 && y <= 1.0) ? nan_lane : y;
    }
}

void seeds_yield(const double* expected_faults, double* out,
                 std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const double f = expected_faults[i];
        out[i] = !(f >= 0.0) ? nan_lane : 1.0 / (1.0 + f);
    }
}

void bose_einstein_yield(const double* expected_faults, int critical_steps,
                         double* out, std::size_t n) {
    if (critical_steps < 1) {
        // bose_einstein_model's constructor throw: every lane invalid.
        for (std::size_t i = 0; i < n; ++i) {
            out[i] = nan_lane;
        }
        return;
    }
    const double steps = static_cast<double>(critical_steps);
    for (std::size_t i = 0; i < n; ++i) {
        const double f = expected_faults[i];
        if (!(f >= 0.0)) {
            out[i] = nan_lane;
            continue;
        }
        const double per_step = f / steps;
        const double y = std::pow(1.0 + per_step, -steps);
        out[i] = !(y >= 0.0 && y <= 1.0) ? nan_lane : y;
    }
}

void negative_binomial_yield(const double* expected_faults,
                             const double* alpha, double* out,
                             std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const double f = expected_faults[i];
        const double a = alpha[i];
        // Constructor guard (alpha > 0) before the fault-count guard —
        // matching negative_binomial_model{alpha}.yield(f) order is
        // irrelevant to the NaN lane, which collapses both throws.
        if (!(a > 0.0) || !(f >= 0.0)) {
            out[i] = nan_lane;
            continue;
        }
        const double y = std::pow(1.0 + f / a, -a);
        out[i] = !(y >= 0.0 && y <= 1.0) ? nan_lane : y;
    }
}

void scaled_poisson_yield(const double* die_area_cm2,
                          const double* lambda_um, const double* d,
                          const double* p, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const double a = die_area_cm2[i];
        const double l = lambda_um[i];
        const double di = d[i];
        const double pi = p[i];
        // Constructor guards: scaled_poisson_model{d, p},
        // square_centimeters{area}, microns{lambda}, then the model's
        // own lambda > 0 requirement.
        if (!(di >= 0.0) || !(pi > 2.0) || !(a >= 0.0) || std::isinf(a) ||
            !(l >= 0.0) || std::isinf(l) || l <= 0.0) {
            out[i] = nan_lane;
            continue;
        }
        // Exact scalar association: area * (D / lambda^p), then
        // exp(-faults); the probability constructor's range check maps
        // to the NaN lane (0 * inf fault counts).
        const double expected_faults = a * (di / std::pow(l, pi));
        const double y = std::exp(-expected_faults);
        out[i] = !(y >= 0.0 && y <= 1.0) ? nan_lane : y;
    }
}

void reference_yield(const double* die_area_cm2, const double* y0,
                     const double* a0_cm2, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const double a = die_area_cm2[i];
        const double y0i = y0[i];
        const double a0i = a0_cm2[i];
        // Constructor guards: probability{y0}, square_centimeters{a0},
        // reference_die_yield{y0, a0} (y0 > 0, a0 > 0), then the area
        // argument's own unit check.
        if (!(y0i >= 0.0 && y0i <= 1.0) || y0i <= 0.0 || !(a0i >= 0.0) ||
            std::isinf(a0i) || a0i <= 0.0 || !(a >= 0.0) || std::isinf(a)) {
            out[i] = nan_lane;
            continue;
        }
        const double y = std::pow(y0i, a / a0i);
        out[i] = !(y >= 0.0 && y <= 1.0) ? nan_lane : y;
    }
}

}  // namespace silicon::yield::batch
