// spatial.hpp — within-wafer radial yield variation and edge exclusion.
//
// Real wafers yield worse near the rim (process uniformity, handling
// damage — the Sec. III.A.c "process uniformity and stability issues"
// that make larger wafers hard).  This module models a radial defect
// density profile
//
//     D(r) = D_center * (1 + k * (r / R_w)^m)
//
// (k >= 0 the edge severity, m >= 1 the profile sharpness), evaluates
// per-die yields by die position, aggregates the wafer-average yield over
// an exact placement, and answers the design question the profile poses:
// what edge exclusion maximizes *good dies* per wafer — placing dies on
// the rim costs processing money for dies that mostly die.

#pragma once

#include "core/units.hpp"
#include "geometry/die.hpp"
#include "geometry/wafer.hpp"

#include <vector>

namespace silicon::yield {

/// Radial defect density profile.
struct radial_defect_profile {
    double center_density = 0.5;  ///< D at wafer center [1/cm^2]
    double edge_severity = 2.0;   ///< k: D(edge)/D(center) - 1
    double exponent = 4.0;        ///< m: how sharply the rim degrades

    /// Density at radial position r on a wafer of radius rw.
    [[nodiscard]] double density_at(centimeters r, centimeters rw) const;
};

/// One placed die with its position-dependent yield.
struct positioned_die_yield {
    double center_x_mm = 0.0;   ///< die center, mm from wafer center
    double center_y_mm = 0.0;
    double radius_mm = 0.0;     ///< die-center radial position
    probability yield{0.0};
};

/// Wafer-level aggregation.
struct spatial_yield_result {
    std::vector<positioned_die_yield> dies;
    long gross_dies = 0;
    double expected_good_dies = 0.0;
    double average_yield = 0.0;     ///< expected_good / gross
    double center_yield = 0.0;      ///< best die
    double edge_yield = 0.0;        ///< worst die
};

/// Evaluate per-die Poisson yields under the profile for the exact
/// placement of `d` on `w`.  Throws std::invalid_argument when no die
/// fits or the profile is invalid.
[[nodiscard]] spatial_yield_result evaluate_spatial_yield(
    const geometry::wafer& w, const geometry::die& d,
    const radial_defect_profile& profile);

/// Expected *good dies per wafer* as a function of edge exclusion, and
/// the exclusion (searched over [0, max_exclusion], `steps` samples)
/// that maximizes good dies minus a per-die processing cost penalty for
/// placing dies that will fail.  With zero penalty more dies is always
/// weakly better; the penalty models probe-test time wasted on rim dies.
struct edge_exclusion_choice {
    centimeters best_exclusion{0.0};
    double best_objective = 0.0;    ///< good dies - penalty * bad dies
    std::vector<std::pair<double, double>> sweep;  ///< (exclusion cm, obj)
};

[[nodiscard]] edge_exclusion_choice choose_edge_exclusion(
    const geometry::wafer& w, const geometry::die& d,
    const radial_defect_profile& profile, double bad_die_penalty = 0.2,
    centimeters max_exclusion = centimeters{1.5}, int steps = 16);

}  // namespace silicon::yield
