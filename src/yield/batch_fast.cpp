// batch_fast.cpp — fast_math variants of the SoA yield kernels.
//
// Structure shared by every kernel here: work proceeds in fixed-size
// blocks of lanes through small stack buffers.  Phase one is plain
// elementwise code that classifies each lane with exactly the scalar
// kernel's guard chain and writes a *masked* argument — invalid lanes
// get a benign value (0 for exp, base 1/exponent 0 for pow) so the
// transcendental never sees them; phase two is one dispatched vector
// transcendental over the block (simd/math.hpp); phase three applies
// the scalar kernel's post-guards and overwrites masked lanes with
// quiet NaN.  Masking *before* the transcendental is what guarantees
// invalid lanes serialize as byte-identical JSON nulls under the
// vector path (the guard-lane regression tests in
// tests/yield/test_batch_ulp.cpp pin this per family).
//
// The kernel bodies live in batch_fast_impl.hpp and are compiled once
// with the portable baseline flags (namespace `baseline`, this TU) and
// — on x86-64 — once more with AVX2 flags (namespace `avx2`,
// batch_fast_avx2.cpp) so the classification/guard passes run at the
// same register width as the transcendentals.  Each public kernel
// picks the variant from simd::active_target(); the variants are
// bit-identical (see the impl header), so this is purely a speed
// dispatch.
//
// No heap allocation, no exceptions, lane-independent by construction.

#include "yield/batch.hpp"

#include <cstddef>
#include <limits>

#include "simd/dispatch.hpp"

#define SILICON_FAST_IMPL_NS baseline
#include "yield/batch_fast_impl.hpp"
#undef SILICON_FAST_IMPL_NS

namespace silicon::yield::batch {

#if defined(__x86_64__) || defined(_M_X64)
// Defined in batch_fast_avx2.cpp from the same impl header.
namespace avx2 {
void poisson_yield_fast(const double*, double*, std::size_t);
void murphy_yield_fast(const double*, double*, std::size_t);
void bose_einstein_yield_fast(const double*, int, double*, std::size_t);
void negative_binomial_yield_fast(const double*, const double*, double*,
                                  std::size_t);
void scaled_poisson_yield_fast(const double*, const double*, const double*,
                               const double*, double*, std::size_t);
void reference_yield_fast(const double*, const double*, const double*,
                          double*, std::size_t);
}  // namespace avx2
#endif

namespace {

inline bool wide_passes() {
#if defined(__x86_64__) || defined(_M_X64)
    return simd::active_target() == simd::target::avx2;
#else
    return false;
#endif
}

}  // namespace

void poisson_yield_fast(const double* expected_faults, double* out,
                        std::size_t n) {
#if defined(__x86_64__) || defined(_M_X64)
    if (wide_passes()) {
        avx2::poisson_yield_fast(expected_faults, out, n);
        return;
    }
#endif
    baseline::poisson_yield_fast(expected_faults, out, n);
}

void murphy_yield_fast(const double* expected_faults, double* out,
                       std::size_t n) {
#if defined(__x86_64__) || defined(_M_X64)
    if (wide_passes()) {
        avx2::murphy_yield_fast(expected_faults, out, n);
        return;
    }
#endif
    baseline::murphy_yield_fast(expected_faults, out, n);
}

void seeds_yield_fast(const double* expected_faults, double* out,
                      std::size_t n) {
    // 1/(1+f) has no transcendental to vectorize; delegate so the fast
    // path is bit-identical to the scalar kernel on every target.
    seeds_yield(expected_faults, out, n);
}

void bose_einstein_yield_fast(const double* expected_faults,
                              int critical_steps, double* out,
                              std::size_t n) {
    if (critical_steps < 1) {
        for (std::size_t i = 0; i < n; ++i) {
            out[i] = std::numeric_limits<double>::quiet_NaN();
        }
        return;
    }
#if defined(__x86_64__) || defined(_M_X64)
    if (wide_passes()) {
        avx2::bose_einstein_yield_fast(expected_faults, critical_steps, out,
                                       n);
        return;
    }
#endif
    baseline::bose_einstein_yield_fast(expected_faults, critical_steps, out,
                                       n);
}

void negative_binomial_yield_fast(const double* expected_faults,
                                  const double* alpha, double* out,
                                  std::size_t n) {
#if defined(__x86_64__) || defined(_M_X64)
    if (wide_passes()) {
        avx2::negative_binomial_yield_fast(expected_faults, alpha, out, n);
        return;
    }
#endif
    baseline::negative_binomial_yield_fast(expected_faults, alpha, out, n);
}

void scaled_poisson_yield_fast(const double* die_area_cm2,
                               const double* lambda_um, const double* d,
                               const double* p, double* out, std::size_t n) {
#if defined(__x86_64__) || defined(_M_X64)
    if (wide_passes()) {
        avx2::scaled_poisson_yield_fast(die_area_cm2, lambda_um, d, p, out,
                                        n);
        return;
    }
#endif
    baseline::scaled_poisson_yield_fast(die_area_cm2, lambda_um, d, p, out,
                                        n);
}

void reference_yield_fast(const double* die_area_cm2, const double* y0,
                          const double* a0_cm2, double* out, std::size_t n) {
#if defined(__x86_64__) || defined(_M_X64)
    if (wide_passes()) {
        avx2::reference_yield_fast(die_area_cm2, y0, a0_cm2, out, n);
        return;
    }
#endif
    baseline::reference_yield_fast(die_area_cm2, y0, a0_cm2, out, n);
}

}  // namespace silicon::yield::batch
