// monte_carlo.hpp — Monte-Carlo defect-injection yield simulation.
//
// Validates the analytical critical-area / Eq. (7) chain end-to-end:
// defects are thrown onto the wire-array layout with Poisson-distributed
// counts, uniform positions and Fig. 5-distributed sizes, each defect is
// classified geometrically as benign / short / open, and the surviving die
// fraction estimates the yield.  Agreement with the closed form (within
// binomial error) is asserted by tests and reported by
// bench_ablate_mc_yield.
//
// The simulator alternates extra-material and missing-material defect
// populations with a configurable split (real lines see both kinds).

#pragma once

#include "exec/cancel.hpp"
#include "yield/critical_area.hpp"
#include "yield/defect.hpp"

#include <cstdint>

namespace silicon::yield {

/// Outcome of a Monte-Carlo yield run.
struct monte_carlo_result {
    std::size_t dies = 0;          ///< simulated dies
    std::size_t good_dies = 0;     ///< dies with no fault
    std::size_t defects_thrown = 0;///< total defects generated
    std::size_t shorts = 0;        ///< defects classified as shorts
    std::size_t opens = 0;         ///< defects classified as opens
    double yield = 0.0;            ///< good_dies / dies
    double std_error = 0.0;        ///< binomial standard error of `yield`

    /// Expected faults per die implied by the observed fault count.
    [[nodiscard]] double observed_faults_per_die() const {
        return dies == 0 ? 0.0
                         : static_cast<double>(shorts + opens) /
                               static_cast<double>(dies);
    }
};

/// Simulation parameters.
///
/// Determinism contract: dies are split into `exec::shard_count_for(dies)`
/// chunks, each with its own `exec::shard_seed(seed, chunk)`-seeded RNG
/// stream, and the per-chunk counters are merged in chunk order.  The
/// decomposition depends only on `dies`, so the result is bit-identical
/// for every `parallelism` value (including 1, which runs the same
/// chunks serially).
struct monte_carlo_config {
    std::size_t dies = 10000;            ///< number of dies to simulate
    double defects_per_um2 = 0.0;        ///< all-size defect density
    double extra_material_fraction = 0.5;///< share of defects that are
                                         ///< extra-material (short-causing)
    std::uint64_t seed = 0x5eedu;        ///< RNG seed
    unsigned parallelism = 0;            ///< threads; 0 = hardware
                                         ///< concurrency, 1 = serial
    /// Optional cooperative cancellation (deadline) token.  Checked at
    /// shard boundaries only: a run either completes every shard
    /// bit-identically or throws exec::cancelled_error — never a
    /// partial result.
    const exec::cancel_token* cancel = nullptr;
};

/// Classify a single defect: does a disc of the given diameter centered at
/// (x, y) — coordinates in microns, origin at the layout's lower-left
/// corner, wires running along +x — cause the given fault kind?
/// Exposed for direct testing of the geometry predicate.
[[nodiscard]] bool defect_causes_fault(const wire_array_layout& layout,
                                       fault_kind kind, double x, double y,
                                       double diameter);

/// Run the simulation.  Throws std::invalid_argument on a non-positive die
/// count, negative density, or a material fraction outside [0, 1].
[[nodiscard]] monte_carlo_result simulate_layout_yield(
    const wire_array_layout& layout, const defect_size_distribution& sizes,
    const monte_carlo_config& config);

/// Draw from Poisson(mean) using the given generator.  Deterministic,
/// exact (Knuth with recursive halving for large means).
[[nodiscard]] std::size_t poisson_sample(double mean, splitmix64& rng);

}  // namespace silicon::yield
