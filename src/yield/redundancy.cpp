#include "yield/redundancy.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::yield {

double poisson_cdf(int k, double mu) {
    if (!(mu >= 0.0)) {
        throw std::invalid_argument("poisson_cdf: mean must be >= 0");
    }
    if (k < 0) {
        return 0.0;
    }
    // Work with per-term logarithms: exp(-mu) underflows for mu > ~700,
    // but the terms near i = mu are O(1/sqrt(mu)) and must survive.
    double log_term = -mu;  // ln P(N = 0)
    double sum = std::exp(log_term);
    for (int i = 1; i <= k; ++i) {
        log_term += std::log(mu / static_cast<double>(i));
        sum += std::exp(log_term);
    }
    return sum > 1.0 ? 1.0 : sum;
}

redundant_memory_model::redundant_memory_model(
    square_centimeters array_area, square_centimeters periphery_area,
    int spares)
    : array_area_{array_area}, periphery_area_{periphery_area},
      spares_{spares} {
    if (array_area.value() <= 0.0) {
        throw std::invalid_argument(
            "redundant_memory_model: array area must be positive");
    }
    if (spares < 0) {
        throw std::invalid_argument(
            "redundant_memory_model: spare count must be >= 0");
    }
}

probability redundant_memory_model::yield(double defects_per_cm2) const {
    if (!(defects_per_cm2 >= 0.0)) {
        throw std::invalid_argument(
            "redundant_memory_model: defect density must be >= 0");
    }
    const double mu_array = array_area_.value() * defects_per_cm2;
    const double mu_periph = periphery_area_.value() * defects_per_cm2;
    const double repairable = poisson_cdf(spares_, mu_array);
    return probability::clamped(repairable * std::exp(-mu_periph));
}

probability redundant_memory_model::yield_without_repair(
    double defects_per_cm2) const {
    if (!(defects_per_cm2 >= 0.0)) {
        throw std::invalid_argument(
            "redundant_memory_model: defect density must be >= 0");
    }
    const double mu =
        (array_area_.value() + periphery_area_.value()) * defects_per_cm2;
    return probability{std::exp(-mu)};
}

double redundant_memory_model::repair_gain(double defects_per_cm2) const {
    const double base = yield_without_repair(defects_per_cm2).value();
    if (base == 0.0) {
        throw std::domain_error(
            "redundant_memory_model: unrepaired yield underflowed to zero; "
            "gain is unbounded");
    }
    return yield(defects_per_cm2).value() / base;
}

}  // namespace silicon::yield
