#include "yield/extraction.hpp"

#include "analysis/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::yield {

scaled_model_fit fit_scaled_poisson(
    const std::vector<yield_observation>& observations) {
    if (observations.size() < 2) {
        throw std::invalid_argument(
            "fit_scaled_poisson: need at least two observations");
    }
    std::vector<double> log_lambda;
    std::vector<double> log_density;
    log_lambda.reserve(observations.size());
    log_density.reserve(observations.size());
    for (const yield_observation& obs : observations) {
        const double y = obs.yield.value();
        if (!(y > 0.0 && y < 1.0)) {
            throw std::invalid_argument(
                "fit_scaled_poisson: yields must be strictly inside "
                "(0, 1)");
        }
        if (!(obs.lambda.value() > 0.0) || !(obs.die_area.value() > 0.0)) {
            throw std::invalid_argument(
                "fit_scaled_poisson: lambda and area must be positive");
        }
        // -ln Y / A = D / lambda^p  =>  ln(.) = ln D - p ln lambda.
        log_lambda.push_back(std::log(obs.lambda.value()));
        log_density.push_back(std::log(-std::log(y) / obs.die_area.value()));
    }
    const analysis::linear_fit fit =
        analysis::fit_line(log_lambda, log_density);
    scaled_model_fit result;
    result.d = std::exp(fit.intercept);
    result.p = -fit.slope;
    result.r_squared = fit.r_squared;
    return result;
}

}  // namespace silicon::yield
