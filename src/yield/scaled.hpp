// scaled.hpp — the paper's feature-size-scaled yield models.
//
// Two concrete models built on the Poisson form of Eq. (6):
//
// 1. scaled_poisson_model — Eq. (7).  The defect density that matters grows
//    as the feature size shrinks because an ever larger share of the defect
//    size distribution (Fig. 5, 1/R^p tail) becomes fault-causing:
//
//        D_eff(lambda) = D / lambda^p        [defects / cm^2, lambda in um]
//        Y = exp(-A_ch * D_eff(lambda))
//          = exp(-N_tr * d_d * D * 1e-8 / lambda^(p-2))
//
//    The 1e-8 converts the die area N_tr*d_d*lambda^2 from um^2 to cm^2 so
//    that D keeps its defects/cm^2 meaning (the printed equation leaves the
//    unit conversion implicit).  Fig. 8 calibration: D = 1.72, p = 4.07.
//
// 2. reference_die_yield — assumption S.2.3 / Eq. (9): a yield Y_0 is known
//    for a reference die of area A_0 (1 cm^2 in the paper) and scales as
//    Y = Y_0^(A/A_0).  This is exactly a Poisson model with
//    D_0 = -ln(Y_0)/A_0, and Table 3 is computed with it.

#pragma once

#include "core/units.hpp"

namespace silicon::yield {

/// Eq. (7): lambda-scaled Poisson functional yield.
class scaled_poisson_model {
public:
    /// @param d defect characterization parameter D (defects per cm^2 for a
    ///          1 um process); must be >= 0.
    /// @param p defect size distribution tail exponent; must be > 2 so the
    ///          exponent lambda^(p-2) scales the right way.
    scaled_poisson_model(double d, double p);

    [[nodiscard]] double d() const noexcept { return d_; }
    [[nodiscard]] double p() const noexcept { return p_; }

    /// Effective fault-causing defect density D / lambda^p in defects/cm^2.
    [[nodiscard]] double effective_defect_density(microns lambda) const;

    /// Yield of a die of the given area built at feature size lambda.
    [[nodiscard]] probability yield(square_centimeters die_area,
                                    microns lambda) const;

    /// Yield in the paper's native variables: transistor count and design
    /// density (die area = n_tr * d_d * lambda^2).
    [[nodiscard]] probability yield_for_transistors(double n_tr,
                                                    double design_density,
                                                    microns lambda) const;

    /// The defect density D required (at this p) so that a die of
    /// `die_area` at `lambda` yields `target`.  Used by the Fig. 4
    /// reproduction (required defect density per technology generation).
    [[nodiscard]] static double required_d(probability target,
                                           square_centimeters die_area,
                                           microns lambda, double p);

    /// The Fig. 8 calibration from a real manufacturing line [26].
    [[nodiscard]] static scaled_poisson_model fig8_calibration() {
        return scaled_poisson_model{1.72, 4.07};
    }

private:
    double d_;
    double p_;
};

/// Assumption S.2.3: yield referenced to a known (Y_0, A_0) pair,
/// Y(A) = Y_0^(A/A_0).  Equivalent to Poisson with D_0 = -ln(Y_0)/A_0.
class reference_die_yield {
public:
    /// @param y0 yield of the reference die; must be in (0, 1].
    /// @param a0 reference die area; must be positive (paper: 1 cm^2).
    explicit reference_die_yield(
        probability y0, square_centimeters a0 = square_centimeters{1.0});

    [[nodiscard]] probability y0() const noexcept { return y0_; }
    [[nodiscard]] square_centimeters a0() const noexcept { return a0_; }

    /// Y = Y_0^(A/A_0).
    [[nodiscard]] probability yield(square_centimeters die_area) const;

    /// The equivalent Poisson defect density -ln(Y_0)/A_0 in defects/cm^2.
    [[nodiscard]] double equivalent_defect_density() const;

private:
    probability y0_;
    square_centimeters a0_;
};

}  // namespace silicon::yield
