#include "yield/parametric.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace silicon::yield {

double standard_normal_cdf(double z) {
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

probability parameter_spec::pass_probability() const {
    if (!(sigma > 0.0)) {
        throw std::invalid_argument(
            "parameter_spec: sigma must be positive");
    }
    const double hi = standard_normal_cdf((upper - mean) / sigma);
    const double lo = standard_normal_cdf((lower - mean) / sigma);
    return probability::clamped(hi - lo);
}

double parameter_spec::cpk() const {
    if (!(sigma > 0.0)) {
        throw std::invalid_argument(
            "parameter_spec: sigma must be positive");
    }
    return std::min(upper - mean, mean - lower) / (3.0 * sigma);
}

void parametric_yield_model::add_parameter(parameter_spec spec) {
    if (!(spec.sigma > 0.0)) {
        throw std::invalid_argument(
            "parametric_yield_model: sigma must be positive");
    }
    if (!(spec.lower < spec.upper)) {
        throw std::invalid_argument(
            "parametric_yield_model: spec window is empty");
    }
    parameters_.push_back(std::move(spec));
}

probability parametric_yield_model::yield() const {
    probability y{1.0};
    for (const parameter_spec& spec : parameters_) {
        y = y * spec.pass_probability();
    }
    return y;
}

const parameter_spec* parametric_yield_model::dominant_loss() const {
    const auto worst = std::min_element(
        parameters_.begin(), parameters_.end(),
        [](const parameter_spec& a, const parameter_spec& b) {
            return a.pass_probability() < b.pass_probability();
        });
    return worst == parameters_.end() ? nullptr : &*worst;
}

}  // namespace silicon::yield
