#include "yield/spatial.hpp"

#include "geometry/gross_die.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::yield {

double radial_defect_profile::density_at(centimeters r,
                                         centimeters rw) const {
    if (!(rw.value() > 0.0)) {
        throw std::invalid_argument(
            "radial_defect_profile: wafer radius must be positive");
    }
    if (!(center_density >= 0.0) || !(edge_severity >= 0.0) ||
        !(exponent >= 1.0)) {
        throw std::invalid_argument(
            "radial_defect_profile: invalid profile parameters");
    }
    const double normalized = r.value() / rw.value();
    return center_density *
           (1.0 + edge_severity * std::pow(normalized, exponent));
}

spatial_yield_result evaluate_spatial_yield(
    const geometry::wafer& w, const geometry::die& d,
    const radial_defect_profile& profile) {
    const geometry::placement_result placement = geometry::exact_count(w, d);
    if (placement.count <= 0) {
        throw std::invalid_argument(
            "evaluate_spatial_yield: the die does not fit on the wafer");
    }

    const double r = w.usable_radius().to_millimeters().value();
    const double a = d.width().value();
    const double b = d.height().value();
    const double r2 = r * r;
    const double die_cm2 = d.area().to_square_centimeters().value();
    const auto fits = [&](double x, double y) {
        const auto in = [&](double px, double py) {
            return px * px + py * py <= r2;
        };
        return in(x, y) && in(x + a, y) && in(x, y + b) && in(x + a, y + b);
    };

    spatial_yield_result result;
    const long half_cols = static_cast<long>(std::ceil(r / a)) + 1;
    const long half_rows = static_cast<long>(std::ceil(r / b)) + 1;
    double best = 0.0;
    double worst = 1.0;
    for (long j = -half_rows; j <= half_rows; ++j) {
        for (long i = -half_cols; i <= half_cols; ++i) {
            const double x =
                placement.offset_x + static_cast<double>(i) * a;
            const double y =
                placement.offset_y + static_cast<double>(j) * b;
            if (!fits(x, y)) {
                continue;
            }
            positioned_die_yield die;
            die.center_x_mm = x + 0.5 * a;
            die.center_y_mm = y + 0.5 * b;
            die.radius_mm =
                std::hypot(die.center_x_mm, die.center_y_mm);
            const double density = profile.density_at(
                centimeters{die.radius_mm / 10.0}, w.radius());
            die.yield = probability{std::exp(-die_cm2 * density)};
            best = std::max(best, die.yield.value());
            worst = std::min(worst, die.yield.value());
            result.expected_good_dies += die.yield.value();
            result.dies.push_back(die);
        }
    }
    result.gross_dies = static_cast<long>(result.dies.size());
    result.average_yield =
        result.expected_good_dies / static_cast<double>(result.gross_dies);
    result.center_yield = best;
    result.edge_yield = worst;
    return result;
}

edge_exclusion_choice choose_edge_exclusion(
    const geometry::wafer& w, const geometry::die& d,
    const radial_defect_profile& profile, double bad_die_penalty,
    centimeters max_exclusion, int steps) {
    if (steps < 2) {
        throw std::invalid_argument(
            "choose_edge_exclusion: need at least 2 steps");
    }
    if (!(bad_die_penalty >= 0.0)) {
        throw std::invalid_argument(
            "choose_edge_exclusion: penalty must be >= 0");
    }
    if (!(max_exclusion.value() < w.radius().value())) {
        throw std::invalid_argument(
            "choose_edge_exclusion: exclusion must stay below the "
            "radius");
    }

    edge_exclusion_choice choice;
    choice.best_objective = -1e300;
    for (int s = 0; s < steps; ++s) {
        const double exclusion =
            max_exclusion.value() * static_cast<double>(s) /
            static_cast<double>(steps - 1);
        const geometry::wafer trimmed{w.radius(), centimeters{exclusion}};
        double objective;
        try {
            const spatial_yield_result r =
                evaluate_spatial_yield(trimmed, d, profile);
            const double bad =
                static_cast<double>(r.gross_dies) - r.expected_good_dies;
            objective = r.expected_good_dies - bad_die_penalty * bad;
        } catch (const std::invalid_argument&) {
            objective = 0.0;  // nothing fits at this exclusion
        }
        choice.sweep.emplace_back(exclusion, objective);
        if (objective > choice.best_objective) {
            choice.best_objective = objective;
            choice.best_exclusion = centimeters{exclusion};
        }
    }
    return choice;
}

}  // namespace silicon::yield
