// batch.hpp — structure-of-arrays yield kernels for sweep evaluation.
//
// The serve engine's sweep endpoint evaluates the same yield model at
// hundreds of grid points; going through the scalar API costs a JSON
// round trip, a cache probe and an exception frame per point.  These
// kernels take contiguous parameter arrays and write one output lane
// per point, restructured so the compiler can auto-vectorize the
// straight-line arithmetic (lane validity is decided by branchless-ish
// guard chains, not exceptions).
//
// Bit-exactness contract (pinned by tests/yield/test_batch.cpp and the
// serve sweep equivalence tests): every lane performs *exactly* the
// floating-point operations, in exactly the association order, of the
// scalar path it mirrors — poisson_model::yield,
// scaled_poisson_model::yield, reference_die_yield::yield — including
// the serve layer's constructor validation.  A lane whose inputs would
// make the scalar path throw (negative fault count, lambda <= 0,
// Y_0 outside (0,1], ...) produces quiet NaN instead, which the engine
// serializes as JSON null — the same bytes the per-point error path
// yields.  Kernels never throw.
//
// All kernels are lane-independent: splitting [0, n) into sub-ranges
// and calling the kernel per range produces bit-identical output, which
// is what lets the engine shard them over exec::parallel_for while
// keeping the serve determinism contract.

#pragma once

#include <cstddef>

namespace silicon::yield::batch {

/// Poisson yield exp(-faults) per lane (Eq. (5) family).  Lane i is
/// NaN when !(expected_faults[i] >= 0) — the scalar model's
/// require_nonnegative guard (NaN inputs propagate).
void poisson_yield(const double* expected_faults, double* out,
                   std::size_t n);

/// Murphy yield ((1 - e^-l)/l)^2 per lane, including the scalar
/// model's small-l linearization (l < 1e-9 evaluates (1 - l/2)^2).
/// Lane i is NaN when !(expected_faults[i] >= 0).
void murphy_yield(const double* expected_faults, double* out,
                  std::size_t n);

/// Seeds yield 1/(1 + l) per lane.  Lane i is NaN when
/// !(expected_faults[i] >= 0).
void seeds_yield(const double* expected_faults, double* out,
                 std::size_t n);

/// Bose-Einstein yield (1 + l/n)^-n per lane for a constant critical
/// step count (integer-typed, so never a swept column).  Every lane is
/// NaN when critical_steps < 1 — the scalar constructor's throw.
void bose_einstein_yield(const double* expected_faults, int critical_steps,
                         double* out, std::size_t n);

/// Negative-binomial yield (1 + l/a)^-a per lane with a per-lane
/// clustering parameter.  Lane i is NaN when !(alpha[i] > 0) — the
/// scalar constructor's throw — or !(expected_faults[i] >= 0).
void negative_binomial_yield(const double* expected_faults,
                             const double* alpha, double* out,
                             std::size_t n);

/// Lambda-scaled Poisson yield (Eq. (7)): exp(-A * D / lambda^p) per
/// lane, mirroring scaled_poisson_model{d,p}.yield(area, lambda) plus
/// the unit-type constructor guards: lane NaN when !(d >= 0), !(p > 2),
/// area is negative/infinite/NaN, or lambda is not strictly positive
/// and finite.
void scaled_poisson_yield(const double* die_area_cm2,
                          const double* lambda_um, const double* d,
                          const double* p, double* out, std::size_t n);

/// Reference-die yield (Eq. (9)): Y_0^(A/A_0) per lane, mirroring
/// reference_die_yield{y0, a0}.yield(area).  Lane NaN when y0 is not
/// in (0, 1], a0 is not strictly positive and finite, or area is
/// negative/infinite/NaN.
void reference_yield(const double* die_area_cm2, const double* y0,
                     const double* a0_cm2, double* out, std::size_t n);

// ---- fast_math variants --------------------------------------------
//
// Same signatures, same lane-validity classification (a lane is NaN
// for exactly the inputs that NaN the scalar kernel above — pinned by
// tests/yield/test_batch_ulp.cpp), but the transcendentals go through
// the dispatched vector math in simd/math.hpp instead of libm, so the
// results are NOT bit-identical to the scalar kernels: they agree to
// within the ULP bounds in DESIGN.md §15 (<= 4 ULP drift on
// well-conditioned lanes, <= 4 ULP against a long-double reference).
// Invalid lanes are masked to benign arguments *before* the
// transcendental, so guard lanes cannot perturb neighbours and always
// serialize as the same JSON null bytes as the scalar path.
//
// Like the scalar kernels, every lane is computed independently (tails
// use the same vector math through a padded register), so sub-range
// calls compose bit-identically — fast_math sweeps stay deterministic
// across thread counts.  The engine only selects these when
// engine_config::fast_math is set.

/// Vector-path poisson_yield (same NaN classification).
void poisson_yield_fast(const double* expected_faults, double* out,
                        std::size_t n);

/// Vector-path murphy_yield.  The f < 1e-9 linearization branch is
/// bit-identical to the scalar kernel (no transcendental there); the
/// main branch evaluates ((-expm1(-f))/f)^2, which is better
/// conditioned than the scalar (1 - exp(-f))/f form.
void murphy_yield_fast(const double* expected_faults, double* out,
                       std::size_t n);

/// seeds_yield has no transcendental: the "fast" path is the scalar
/// kernel itself (bit-identical on every target).
void seeds_yield_fast(const double* expected_faults, double* out,
                      std::size_t n);

/// Vector-path bose_einstein_yield (same NaN classification).
void bose_einstein_yield_fast(const double* expected_faults,
                              int critical_steps, double* out,
                              std::size_t n);

/// Vector-path negative_binomial_yield (same NaN classification).
void negative_binomial_yield_fast(const double* expected_faults,
                                  const double* alpha, double* out,
                                  std::size_t n);

/// Vector-path scaled_poisson_yield (same NaN classification).
void scaled_poisson_yield_fast(const double* die_area_cm2,
                               const double* lambda_um, const double* d,
                               const double* p, double* out, std::size_t n);

/// Vector-path reference_yield (same NaN classification).
void reference_yield_fast(const double* die_area_cm2, const double* y0,
                          const double* a0_cm2, double* out, std::size_t n);

}  // namespace silicon::yield::batch
