#include "yield/wafer_sim.hpp"

#include "exec/thread_pool.hpp"
#include "geometry/gross_die.hpp"
#include "yield/monte_carlo.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::yield {

double gamma_sample(double shape, splitmix64& rng) {
    if (!(shape > 0.0)) {
        throw std::invalid_argument("gamma_sample: shape must be positive");
    }
    if (shape < 1.0) {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        const double u = rng.next_double();
        return gamma_sample(shape + 1.0, rng) *
               std::pow(u > 0.0 ? u : 1e-300, 1.0 / shape);
    }
    // Marsaglia-Tsang squeeze method.
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        // Normal via Box-Muller on the deterministic stream.
        const double u1 = rng.next_double();
        const double u2 = rng.next_double();
        const double r = std::sqrt(-2.0 * std::log(u1 > 0.0 ? u1 : 1e-300));
        const double x = r * std::cos(2.0 * 3.14159265358979323846 * u2);
        const double v_cubed = 1.0 + c * x;
        if (v_cubed <= 0.0) {
            continue;
        }
        const double v = v_cubed * v_cubed * v_cubed;
        const double u = rng.next_double();
        if (u < 1.0 - 0.0331 * x * x * x * x) {
            return d * v;
        }
        if (std::log(u > 0.0 ? u : 1e-300) <
            0.5 * x * x + d * (1.0 - v + std::log(v))) {
            return d * v;
        }
    }
}

wafer_sim_result simulate_wafers(const geometry::wafer& w,
                                 const geometry::die& d,
                                 const wafer_sim_config& config) {
    if (config.wafers == 0) {
        throw std::invalid_argument("simulate_wafers: need wafers >= 1");
    }
    if (!(config.defects_per_cm2 >= 0.0)) {
        throw std::invalid_argument(
            "simulate_wafers: defect density must be >= 0");
    }
    if (!(config.fault_probability >= 0.0 &&
          config.fault_probability <= 1.0)) {
        throw std::invalid_argument(
            "simulate_wafers: fault probability must be in [0,1]");
    }
    if (config.process == defect_process::clustered &&
        !(config.cluster_alpha > 0.0)) {
        throw std::invalid_argument(
            "simulate_wafers: cluster alpha must be positive");
    }

    const geometry::placement_result placement = geometry::exact_count(w, d);
    if (placement.count <= 0) {
        throw std::invalid_argument(
            "simulate_wafers: the die does not fit on the wafer");
    }

    // Reconstruct the die sites of the winning placement for mapping and
    // defect-to-die assignment.
    const double r = w.usable_radius().to_millimeters().value();
    const double a = d.width().value();
    const double b = d.height().value();
    const double r2 = r * r;
    const auto fits = [&](double x, double y) {
        const auto in = [&](double px, double py) {
            return px * px + py * py <= r2;
        };
        return in(x, y) && in(x + a, y) && in(x, y + b) && in(x + a, y + b);
    };
    struct site {
        double x, y;   // lower-left corner, mm from wafer center
        long col, row; // grid coordinates for the map
    };
    std::vector<site> sites;
    const long half_cols = static_cast<long>(std::ceil(r / a)) + 1;
    const long half_rows = static_cast<long>(std::ceil(r / b)) + 1;
    for (long j = -half_rows; j <= half_rows; ++j) {
        for (long i = -half_cols; i <= half_cols; ++i) {
            const double x =
                placement.offset_x + static_cast<double>(i) * a;
            const double y =
                placement.offset_y + static_cast<double>(j) * b;
            if (fits(x, y)) {
                sites.push_back({x, y, i, j});
            }
        }
    }

    // Defect count statistics over the *usable* wafer area.
    const double area_cm2 = w.usable_area().value();
    const double mean_defects = config.defects_per_cm2 * area_cm2;

    wafer_sim_result result;
    result.wafers = config.wafers;
    result.dies_per_wafer = static_cast<long>(sites.size());
    result.wafer_yields.assign(config.wafers, 0.0);

    // Shard the wafers; each shard draws from its own shard_seed-ed
    // stream, writes yields into index-addressed slots (disjoint across
    // shards), and the totals merge in shard order — bit-identical at
    // every parallelism level (see wafer_sim_config).
    struct totals {
        std::size_t defects = 0;
        std::string last_map;  // set only by the shard owning wafer N-1
    };
    const totals merged = exec::parallel_reduce(
        config.wafers, config.parallelism, totals{},
        [&](const exec::shard_range& shard) {
            splitmix64 rng{exec::shard_seed(config.seed, shard.index)};
            totals t;
            std::vector<bool> die_good(sites.size(), true);
            for (std::size_t wi = shard.begin; wi < shard.end; ++wi) {
                // Per-wafer defect intensity.
                double intensity = mean_defects;
                if (config.process == defect_process::clustered) {
                    // Gamma(alpha, mean/alpha)-distributed density:
                    // compound Poisson-gamma = negative binomial
                    // marginal.
                    intensity = mean_defects / config.cluster_alpha *
                                gamma_sample(config.cluster_alpha, rng);
                }
                const std::size_t defects =
                    poisson_sample(intensity, rng);
                t.defects += defects;

                std::fill(die_good.begin(), die_good.end(), true);
                for (std::size_t k = 0; k < defects; ++k) {
                    // Uniform position in the usable disc by rejection.
                    double px;
                    double py;
                    do {
                        px = (2.0 * rng.next_double() - 1.0) * r;
                        py = (2.0 * rng.next_double() - 1.0) * r;
                    } while (px * px + py * py > r2);
                    if (config.fault_probability < 1.0 &&
                        rng.next_double() >= config.fault_probability) {
                        continue;  // benign defect
                    }
                    // Which die site contains it?  Grid lookup via the
                    // offsets.
                    const long i = static_cast<long>(
                        std::floor((px - placement.offset_x) / a));
                    const long j = static_cast<long>(
                        std::floor((py - placement.offset_y) / b));
                    for (std::size_t s = 0; s < sites.size(); ++s) {
                        if (sites[s].col == i && sites[s].row == j) {
                            die_good[s] = false;
                            break;
                        }
                    }
                }
                std::size_t good = 0;
                for (bool ok : die_good) {
                    good += ok ? 1u : 0u;
                }
                result.wafer_yields[wi] =
                    static_cast<double>(good) /
                    static_cast<double>(sites.size());

                if (wi + 1 == config.wafers) {
                    // Render the last wafer's pass/fail map.
                    std::string map;
                    for (long j = half_rows; j >= -half_rows; --j) {
                        std::string line;
                        for (long i = -half_cols; i <= half_cols; ++i) {
                            char ch = ' ';
                            for (std::size_t s = 0; s < sites.size();
                                 ++s) {
                                if (sites[s].col == i &&
                                    sites[s].row == j) {
                                    ch = die_good[s] ? '#' : 'x';
                                    break;
                                }
                            }
                            line.push_back(ch);
                        }
                        while (!line.empty() && line.back() == ' ') {
                            line.pop_back();
                        }
                        if (!line.empty()) {
                            map += line;
                            map.push_back('\n');
                        }
                    }
                    t.last_map = std::move(map);
                }
            }
            return t;
        },
        [](totals a, totals b) {
            a.defects += b.defects;
            if (!b.last_map.empty()) {
                a.last_map = std::move(b.last_map);
            }
            return a;
        });
    result.total_defects = merged.defects;
    result.last_wafer_map = merged.last_map;

    double sum = 0.0;
    for (double y : result.wafer_yields) {
        sum += y;
    }
    result.mean_yield = sum / static_cast<double>(result.wafer_yields.size());
    if (result.wafer_yields.size() > 1) {
        double ss = 0.0;
        for (double y : result.wafer_yields) {
            ss += (y - result.mean_yield) * (y - result.mean_yield);
        }
        result.yield_stddev = std::sqrt(
            ss / static_cast<double>(result.wafer_yields.size() - 1));
    }
    return result;
}

}  // namespace silicon::yield
