// redundancy.hpp — yield of memories with repairable redundancy.
//
// Assumption S.1.2 of the paper rests on DRAMs shipping with "appropriately
// designed redundant components": spare rows and columns let a die with a
// few spot defects be laser-repaired to full function, which is why memory
// yield (and hence memory transistor cost, Table 3 rows 11-14) is so much
// better than logic yield.  Section IV.A's criticism S.1.2 notes that
// *only* memories enjoy this benefit.
//
// Model: the cell array accumulates faults as a Poisson process; a die is
// shippable when the fault count does not exceed the number of repairs the
// spare set can absorb (each fault consumes one spare row or column — the
// standard single-fault-per-spare first-order model).  Peripheral logic
// (decoders, sense amps, pads) has no redundancy and multiplies in as a
// plain Poisson yield.

#pragma once

#include "core/units.hpp"

namespace silicon::yield {

/// Poisson CDF P(N <= k) for mean mu — exposed because several modules
/// (redundancy, test economics) need it and the standard library has none.
[[nodiscard]] double poisson_cdf(int k, double mu);

/// Memory die with repairable array and unprotected periphery.
class redundant_memory_model {
public:
    /// @param array_area      cell array area (repairable)
    /// @param periphery_area  support logic area (not repairable)
    /// @param spares          number of faults the spare rows+columns can
    ///                        absorb; 0 means no redundancy.
    redundant_memory_model(square_centimeters array_area,
                           square_centimeters periphery_area, int spares);

    [[nodiscard]] square_centimeters array_area() const noexcept {
        return array_area_;
    }
    [[nodiscard]] square_centimeters periphery_area() const noexcept {
        return periphery_area_;
    }
    [[nodiscard]] int spares() const noexcept { return spares_; }

    /// Yield at the given defect density (defects/cm^2):
    ///   P(array faults <= spares) * exp(-periphery_area * D).
    [[nodiscard]] probability yield(double defects_per_cm2) const;

    /// Yield of the identical die with redundancy ignored (all faults
    /// fatal) — the comparison that quantifies the redundancy benefit.
    [[nodiscard]] probability yield_without_repair(
        double defects_per_cm2) const;

    /// Multiplicative yield benefit of the spares at this density.
    [[nodiscard]] double repair_gain(double defects_per_cm2) const;

private:
    square_centimeters array_area_;
    square_centimeters periphery_area_;
    int spares_;
};

}  // namespace silicon::yield
