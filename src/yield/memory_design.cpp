#include "yield/memory_design.hpp"

#include <limits>
#include <stdexcept>

namespace silicon::yield {

redundancy_choice optimize_redundancy(const memory_design& design,
                                      double defects_per_cm2,
                                      int max_spares) {
    if (!(design.base_array_area.value() > 0.0)) {
        throw std::invalid_argument(
            "optimize_redundancy: array area must be positive");
    }
    if (!(design.area_per_spare_fraction >= 0.0)) {
        throw std::invalid_argument(
            "optimize_redundancy: spare area fraction must be >= 0");
    }
    if (!(defects_per_cm2 >= 0.0)) {
        throw std::invalid_argument(
            "optimize_redundancy: defect density must be >= 0");
    }
    if (max_spares < 0) {
        throw std::invalid_argument(
            "optimize_redundancy: max spares must be >= 0");
    }

    redundancy_choice choice;
    choice.best.area_per_good_die_cm2 =
        std::numeric_limits<double>::max();
    for (int spares = 0; spares <= max_spares; ++spares) {
        const double array_cm2 =
            design.base_array_area.value() *
            (1.0 + design.area_per_spare_fraction * spares);
        const redundant_memory_model model{
            square_centimeters{array_cm2}, design.periphery_area, spares};

        redundancy_point point;
        point.spares = spares;
        point.total_area = square_centimeters{
            array_cm2 + design.periphery_area.value()};
        point.yield = model.yield(defects_per_cm2);
        if (point.yield.value() <= 0.0) {
            continue;  // hopeless configuration; skip
        }
        point.area_per_good_die_cm2 =
            point.total_area.value() / point.yield.value();
        choice.sweep.push_back(point);
        if (point.area_per_good_die_cm2 <
            choice.best.area_per_good_die_cm2) {
            choice.best = point;
        }
        if (spares == 0) {
            choice.none = point;
        }
    }
    if (choice.sweep.empty()) {
        throw std::domain_error(
            "optimize_redundancy: every configuration yielded zero");
    }
    if (choice.none.area_per_good_die_cm2 > 0.0) {
        choice.improvement = 1.0 - choice.best.area_per_good_die_cm2 /
                                       choice.none.area_per_good_die_cm2;
    }
    return choice;
}

}  // namespace silicon::yield
