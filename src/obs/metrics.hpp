// metrics.hpp — runtime metrics primitives and the named registry.
//
// Promoted out of serve/metrics (PR 2) into a general observability
// building block: lock-free counters, gauges and power-of-two latency
// histograms that any subsystem can register under a stable name and
// expose through the Prometheus text exposition format
// (https://prometheus.io/docs/instrumenting/exposition_formats/).
//
// Concurrency model: every mutation is a relaxed atomic — recording
// never takes a lock, never allocates, never perturbs the hot path by
// more than a few nanoseconds.  `latency_histogram::record` maintains
// the running maximum with a CAS-max loop so concurrent recorders can
// never lose a larger observation (stress-asserted by
// tests/obs/test_metrics.cpp).  Registration (name → metric) takes a
// mutex, so callers hold the returned reference instead of re-looking
// it up per event; references stay valid for the registry's lifetime.
//
// Metrics are observability, not results: nothing here feeds back into
// any computation, so the bit-identical-across-thread-counts contract
// (DESIGN.md §7/§8) is untouched.
//
// Naming: a metric name may carry Prometheus labels inline, e.g.
// `serve_requests_total{op="cost_tr"}` — the exposition writer splits
// the base name at the first `{` and emits one # HELP/# TYPE header
// per base-name family.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace silicon::obs {

/// Monotonically increasing event count (relaxed atomics).
class counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Settable instantaneous value (queue depth, occupancy, ratios).
class gauge {
public:
    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
    void add(double delta) noexcept {
        double seen = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(seen, seen + delta,
                                             std::memory_order_relaxed)) {
        }
    }
    [[nodiscard]] double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<double> value_{0.0};
};

/// Lock-free latency histogram over power-of-two microsecond buckets:
/// bucket k counts observations in [2^k, 2^(k+1)) microseconds, with
/// bucket 0 additionally holding sub-microsecond observations.
class latency_histogram {
public:
    static constexpr int bucket_count = 24;  ///< up to ~2.3 hours

    /// Record one observation (relaxed atomics, thread-safe; the max is
    /// maintained with a CAS-max loop so no concurrent larger value is
    /// ever lost).
    void record(std::uint64_t nanoseconds) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept;
    [[nodiscard]] std::uint64_t total_nanoseconds() const noexcept;
    [[nodiscard]] std::uint64_t max_nanoseconds() const noexcept;

    /// Raw count of bucket `b` in [0, bucket_count).
    [[nodiscard]] std::uint64_t bucket(int b) const noexcept;

    /// Exclusive upper bound of bucket `b` in microseconds (2^(b+1)).
    [[nodiscard]] static std::uint64_t bucket_upper_us(int b) noexcept {
        return std::uint64_t{1} << (b + 1);
    }

private:
    std::array<std::atomic<std::uint64_t>, bucket_count> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> total_ns_{0};
    std::atomic<std::uint64_t> max_ns_{0};
};

/// Named metrics, node-stable: get_* returns a reference that lives as
/// long as the registry; the same name always returns the same object.
/// A process-wide instance hangs off `global()` for library-internal
/// metrics (the exec pool registers there); servers may also own local
/// registries.
class metrics_registry {
public:
    metrics_registry();
    ~metrics_registry();
    metrics_registry(const metrics_registry&) = delete;
    metrics_registry& operator=(const metrics_registry&) = delete;

    [[nodiscard]] counter& get_counter(std::string_view name,
                                       std::string_view help = "");
    [[nodiscard]] gauge& get_gauge(std::string_view name,
                                   std::string_view help = "");
    [[nodiscard]] latency_histogram& get_histogram(std::string_view name,
                                                   std::string_view help = "");

    /// Full Prometheus text exposition of every registered metric, in
    /// registration order, one # HELP/# TYPE header per base name.
    [[nodiscard]] std::string to_prometheus() const;

    /// Process-wide registry (leaked singleton, safe from any thread).
    [[nodiscard]] static metrics_registry& global();

private:
    struct impl;
    impl* impl_;
};

// ---------------------------------------------------------------------------
// Prometheus text-exposition building blocks (used by the registry and
// by subsystems that expose non-registered snapshots, e.g. the serve
// cache).  `name` may carry inline labels; headers take the base name.
// ---------------------------------------------------------------------------

/// "# HELP name help\n# TYPE name type\n" (help omitted when empty).
void prometheus_header(std::string& out, std::string_view base_name,
                       std::string_view type, std::string_view help);

/// "name value\n" with shortest-round-trip number formatting.
void prometheus_sample(std::string& out, std::string_view name, double value);
void prometheus_sample(std::string& out, std::string_view name,
                       std::uint64_t value);

/// Cumulative-bucket histogram exposition: `name_bucket{le="..."}`
/// lines (upper bounds in seconds, ending at `+Inf`), then `name_sum`
/// (seconds) and `name_count`.  Inline labels in `name` are merged
/// into each bucket's label set.
void prometheus_histogram(std::string& out, std::string_view name,
                          const latency_histogram& h);

/// The base name of a possibly-labeled metric name (prefix before '{').
[[nodiscard]] std::string_view prometheus_base_name(
    std::string_view name) noexcept;

}  // namespace silicon::obs
