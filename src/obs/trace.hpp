// trace.hpp — span-based tracing with lock-free per-thread ring buffers.
//
// The tracer answers "where does a slow batch spend its time" for the
// serve dispatcher (parse → canonicalize → cache → exec → serialize)
// and the exec engine (per-task runtime, queue wait) without touching
// the determinism contract: spans carry steady-clock timestamps that
// are *observed*, never fed back into any computation, so a traced run
// produces byte-identical responses to an untraced one (asserted by
// tests/obs/test_trace.cpp).
//
// Hot-path design:
//
//   * `trace_span` is an RAII guard.  When tracing is disabled it costs
//     one relaxed atomic load at construction and one at destruction —
//     no clock read, no allocation, no branch beyond the flag check.
//     bench_obs_overhead gates this at < 2% of serve throughput.
//   * When enabled, each thread appends finished spans to its own
//     fixed-capacity ring buffer (drop-oldest on overflow).  The owning
//     thread is the only writer; publication is a release store of the
//     ring head, so recording never takes a lock and never allocates
//     after the ring's one-time registration.
//   * Span names/categories are `const char*` with static storage
//     duration (string literals) — the ring stores the pointer only.
//
// Export (`export_chrome_json` / `write_chrome_json`) renders every
// ring as a Chrome `trace_event`-format JSON array of complete ("ph":
// "X") events, sorted by start timestamp within each thread, loadable
// in chrome://tracing or https://ui.perfetto.dev.  Export acquires the
// published heads; it is intended to run while recording is quiescent
// (tracing disabled or workload drained) — an in-flight span recorded
// concurrently with an export may be dropped from that export but is
// never torn into the next one.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace silicon::obs {

/// One finished span as stored in a ring slot.  `name`/`category` must
/// point at static-storage strings (the ring keeps only the pointers).
struct trace_event {
    const char* name = nullptr;
    const char* category = nullptr;
    std::uint64_t start_ns = 0;     ///< steady-clock ns since tracer epoch
    std::uint64_t duration_ns = 0;  ///< span wall time
};

/// Process-wide tracer: a registry of per-thread event rings behind a
/// single runtime enable flag.
class tracer {
public:
    /// Events retained per thread; older events are dropped (the tail
    /// of a long run is what a hang/latency investigation needs).
    static constexpr std::size_t ring_capacity = 16384;

    [[nodiscard]] static tracer& instance();

    void enable() noexcept;
    void disable() noexcept;
    [[nodiscard]] bool enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Steady-clock nanoseconds since the tracer was constructed.
    [[nodiscard]] std::uint64_t now_ns() const noexcept;

    /// Append one finished span to the calling thread's ring.  Callers
    /// normally go through trace_span; direct use must also pass
    /// static-storage strings.  No-op while disabled.
    void record(const char* name, const char* category,
                std::uint64_t start_ns, std::uint64_t duration_ns) noexcept;

    struct stats {
        std::uint64_t recorded = 0;  ///< events ever written (all threads)
        std::uint64_t dropped = 0;   ///< events overwritten by drop-oldest
        std::size_t threads = 0;     ///< rings registered so far
    };
    [[nodiscard]] stats snapshot() const;

    /// Chrome trace_event JSON: an array of thread-name metadata events
    /// followed by every retained span as a complete event, sorted by
    /// start timestamp within each thread.
    [[nodiscard]] std::string export_chrome_json() const;

    /// export_chrome_json() to `path`; false (with no partial file kept
    /// open) when the file cannot be written.
    bool write_chrome_json(const std::string& path) const;

    /// Drop every retained event (ring registrations survive).  Like
    /// export, intended for quiescent points.
    void clear() noexcept;

private:
    struct ring;

    tracer();
    ~tracer();
    tracer(const tracer&) = delete;
    tracer& operator=(const tracer&) = delete;

    [[nodiscard]] ring& local_ring();

    std::atomic<bool> enabled_{false};
    std::uint64_t epoch_ns_ = 0;  ///< steady-clock at construction

    struct registry;
    registry* registry_;
};

/// RAII span guard: times its own scope and records on destruction.
/// `name` and `category` must be string literals (or otherwise static).
class trace_span {
public:
    explicit trace_span(const char* name,
                        const char* category = "app") noexcept {
        tracer& t = tracer::instance();
        if (t.enabled()) {
            name_ = name;
            category_ = category;
            start_ns_ = t.now_ns();
        }
    }

    ~trace_span() {
        if (name_ != nullptr) {
            tracer& t = tracer::instance();
            t.record(name_, category_, start_ns_, t.now_ns() - start_ns_);
        }
    }

    trace_span(const trace_span&) = delete;
    trace_span& operator=(const trace_span&) = delete;

private:
    const char* name_ = nullptr;  ///< nullptr = tracing was off at entry
    const char* category_ = nullptr;
    std::uint64_t start_ns_ = 0;
};

}  // namespace silicon::obs
