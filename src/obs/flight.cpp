#include "obs/flight.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace silicon::obs {

namespace {

/// Unique per-recorder-configuration stamp; lets threads cache their
/// ring pointer in a thread_local without ever dereferencing a ring of
/// a destroyed or reconfigured recorder.
std::atomic<std::uint64_t> g_generation{1};

/// Minimal JSON string escaping (mirrors obs/trace.cpp): record text
/// comes from client-supplied ids/trace_ids, so a stray quote or
/// control byte must never corrupt the dump.
void append_escaped(std::string& out, const char* s) {
    out += '"';
    for (; *s != '\0'; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char hex[8];
            std::snprintf(hex, sizeof hex, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += hex;
        } else {
            out += c;
        }
    }
    out += '"';
}

void append_record(std::string& out, const flight_record& r) {
    out += "{\"seq\":";
    out += std::to_string(r.seq);
    out += ",\"endpoint\":";
    append_escaped(out, r.endpoint);
    out += ",\"id\":";
    append_escaped(out, r.id);
    out += ",\"trace_id\":";
    append_escaped(out, r.trace);
    out += ",\"code\":";
    append_escaped(out, r.code);
    out += ",\"cache_hit\":";
    out += r.cache_hit ? "true" : "false";
    out += ",\"anomaly\":";
    out += r.anomaly ? "true" : "false";
    out += ",\"parse_us\":";
    out += std::to_string(r.parse_us);
    out += ",\"cache_us\":";
    out += std::to_string(r.cache_us);
    out += ",\"exec_us\":";
    out += std::to_string(r.exec_us);
    out += ",\"serialize_us\":";
    out += std::to_string(r.serialize_us);
    out += ",\"total_us\":";
    out += std::to_string(r.total_us);
    out += ",\"deadline_slack_us\":";
    if (r.deadline_slack_us == flight_record::no_deadline) {
        out += "null";
    } else {
        out += std::to_string(r.deadline_slack_us);
    }
    out += "}\n";
}

}  // namespace

/// One thread's record ring: single writer, release-published head.
struct flight_recorder::ring {
    explicit ring(std::size_t cap) : records(cap) {}
    std::vector<flight_record> records;
    std::atomic<std::uint64_t> head{0};
    std::thread::id owner;
};

struct flight_recorder::registry {
    mutable std::mutex mutex;
    std::vector<std::unique_ptr<ring>> rings;  // guarded by mutex (growth)
    std::size_t capacity = flight_recorder::default_capacity;
    std::string armed_path;  // guarded by mutex
};

namespace {
/// Per-thread ring cache; `r` is really a flight_recorder::ring* (the
/// nested type is private, so the cache holds it type-erased).
struct tl_ring_cache {
    std::uint64_t generation = 0;
    void* r = nullptr;
};
thread_local tl_ring_cache t_ring_cache;
}  // namespace

flight_recorder::flight_recorder(std::size_t capacity)
    : generation_{g_generation.fetch_add(1, std::memory_order_relaxed)},
      registry_{new registry} {
    registry_->capacity = capacity;
}

flight_recorder::~flight_recorder() { delete registry_; }

flight_recorder& flight_recorder::instance() {
    // Deliberately leaked, like the tracer: worker threads may outlive
    // static destruction order.
    static flight_recorder* f = new flight_recorder;
    return *f;
}

void flight_recorder::configure(std::size_t capacity) {
    const std::lock_guard<std::mutex> lock(registry_->mutex);
    registry_->rings.clear();
    registry_->capacity = capacity;
    // New generation: every thread's cached ring pointer is now stale
    // and will re-register on its next append.
    generation_.store(g_generation.fetch_add(1, std::memory_order_relaxed),
                      std::memory_order_release);
    seq_.store(0, std::memory_order_relaxed);
}

std::size_t flight_recorder::capacity() const noexcept {
    const std::lock_guard<std::mutex> lock(registry_->mutex);
    return registry_->capacity;
}

void flight_recorder::set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_release);
}

void flight_recorder::set_deterministic(bool on) noexcept {
    deterministic_.store(on, std::memory_order_release);
}

flight_recorder::ring* flight_recorder::local_ring() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (t_ring_cache.generation == gen) {
        return static_cast<ring*>(t_ring_cache.r);
    }
    const std::lock_guard<std::mutex> lock(registry_->mutex);
    ring* mine = nullptr;
    if (registry_->capacity > 0) {
        const std::thread::id self = std::this_thread::get_id();
        for (const auto& r : registry_->rings) {
            if (r->owner == self) {
                mine = r.get();
                break;
            }
        }
        if (mine == nullptr) {
            auto owned = std::make_unique<ring>(registry_->capacity);
            owned->owner = self;
            registry_->rings.push_back(std::move(owned));
            mine = registry_->rings.back().get();
        }
    }
    t_ring_cache = {gen, mine};
    return mine;
}

void flight_recorder::append(flight_record r) noexcept {
    if (!enabled()) {
        return;
    }
    ring* ours = local_ring();
    if (ours == nullptr) {
        return;  // capacity 0: recording disabled
    }
    r.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    if (deterministic()) {
        r.parse_us = 0;
        r.cache_us = 0;
        r.exec_us = 0;
        r.serialize_us = 0;
        r.total_us = 0;
        if (r.deadline_slack_us != flight_record::no_deadline) {
            r.deadline_slack_us = 0;
        }
    }
    const std::uint64_t h = ours->head.load(std::memory_order_relaxed);
    ours->records[h % ours->records.size()] = r;
    ours->head.store(h + 1, std::memory_order_release);
}

void flight_recorder::note_anomaly() noexcept {
    anomalies_.fetch_add(1, std::memory_order_relaxed);
    if (dump_armed_.exchange(false, std::memory_order_acq_rel)) {
        std::string path;
        {
            const std::lock_guard<std::mutex> lock(registry_->mutex);
            path = registry_->armed_path;
        }
        if (!path.empty()) {
            (void)write_jsonl(path);
        }
    }
}

void flight_recorder::arm_dump(std::string path) {
    {
        const std::lock_guard<std::mutex> lock(registry_->mutex);
        registry_->armed_path = std::move(path);
    }
    dump_armed_.store(true, std::memory_order_release);
}

flight_recorder::stats flight_recorder::snapshot() const {
    stats out;
    out.anomalies = anomalies_.load(std::memory_order_relaxed);
    out.enabled = enabled();
    const std::lock_guard<std::mutex> lock(registry_->mutex);
    out.capacity = registry_->capacity;
    out.threads = registry_->rings.size();
    for (const auto& r : registry_->rings) {
        const std::uint64_t head = r->head.load(std::memory_order_acquire);
        out.appended += head;
        if (head > r->records.size()) {
            out.dropped += head - r->records.size();
        }
    }
    return out;
}

void flight_recorder::export_jsonl(std::string& out) const {
    std::vector<flight_record> merged;
    {
        const std::lock_guard<std::mutex> lock(registry_->mutex);
        for (const auto& r : registry_->rings) {
            const std::uint64_t head = r->head.load(std::memory_order_acquire);
            const std::uint64_t n =
                std::min<std::uint64_t>(head, r->records.size());
            for (std::uint64_t i = head - n; i < head; ++i) {
                merged.push_back(r->records[i % r->records.size()]);
            }
        }
    }
    std::sort(merged.begin(), merged.end(),
              [](const flight_record& a, const flight_record& b) {
                  return a.seq < b.seq;
              });
    for (const flight_record& r : merged) {
        append_record(out, r);
    }
}

bool flight_recorder::write_jsonl(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return false;
    }
    std::string text;
    export_jsonl(text);
    const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
    const bool ok = std::fclose(f) == 0 && written == text.size();
    return ok;
}

void flight_recorder::clear() noexcept {
    const std::lock_guard<std::mutex> lock(registry_->mutex);
    for (const auto& r : registry_->rings) {
        r->head.store(0, std::memory_order_release);
    }
    seq_.store(0, std::memory_order_relaxed);
}

}  // namespace silicon::obs
