#include "obs/metrics.hpp"

#include <array>
#include <charconv>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace silicon::obs {

namespace {

/// Bucket index for a latency: floor(log2(us)), clamped to the range.
int bucket_for(std::uint64_t nanoseconds) noexcept {
    const std::uint64_t us = nanoseconds / 1000;
    if (us == 0) {
        return 0;
    }
    int b = 0;
    std::uint64_t v = us;
    while (v > 1 && b < latency_histogram::bucket_count - 1) {
        v >>= 1;
        ++b;
    }
    return b;
}

void append_double(std::string& out, double v) {
    std::array<char, 32> buf{};
    const auto [end, ec] =
        std::to_chars(buf.data(), buf.data() + buf.size(), v);
    if (ec == std::errc{}) {
        out.append(buf.data(), static_cast<std::size_t>(end - buf.data()));
    } else {
        out += "0";
    }
}

/// Split "base{a="b"}" into base and the inner label list (no braces).
struct split_name {
    std::string_view base;
    std::string_view labels;
};

split_name split(std::string_view name) noexcept {
    const std::size_t brace = name.find('{');
    if (brace == std::string_view::npos) {
        return {name, {}};
    }
    std::string_view labels = name.substr(brace + 1);
    if (!labels.empty() && labels.back() == '}') {
        labels.remove_suffix(1);
    }
    return {name.substr(0, brace), labels};
}

}  // namespace

// ---------------------------------------------------------------------------
// latency_histogram
// ---------------------------------------------------------------------------

void latency_histogram::record(std::uint64_t nanoseconds) noexcept {
    buckets_[static_cast<std::size_t>(bucket_for(nanoseconds))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(nanoseconds, std::memory_order_relaxed);
    // CAS-max: a failed exchange reloads `seen`, so a concurrent larger
    // observation can never be overwritten by a smaller one.
    std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (nanoseconds > seen &&
           !max_ns_.compare_exchange_weak(seen, nanoseconds,
                                          std::memory_order_relaxed)) {
    }
}

std::uint64_t latency_histogram::count() const noexcept {
    return count_.load(std::memory_order_relaxed);
}

std::uint64_t latency_histogram::total_nanoseconds() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
}

std::uint64_t latency_histogram::max_nanoseconds() const noexcept {
    return max_ns_.load(std::memory_order_relaxed);
}

std::uint64_t latency_histogram::bucket(int b) const noexcept {
    if (b < 0 || b >= bucket_count) {
        return 0;
    }
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// metrics_registry
// ---------------------------------------------------------------------------

struct metrics_registry::impl {
    enum class kind { counter_k, gauge_k, histogram_k };

    struct entry {
        std::string name;
        std::string help;
        kind k = kind::counter_k;
        std::unique_ptr<counter> c;
        std::unique_ptr<gauge> g;
        std::unique_ptr<latency_histogram> h;
    };

    mutable std::mutex mutex;
    std::vector<std::unique_ptr<entry>> entries;  // registration order
    std::unordered_map<std::string_view, entry*> index;  // views into names

    entry& get(std::string_view name, std::string_view help, kind k) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (const auto it = index.find(name); it != index.end()) {
            if (it->second->k != k) {
                throw std::logic_error(
                    "metrics_registry: '" + std::string{name} +
                    "' already registered with a different type");
            }
            return *it->second;
        }
        auto e = std::make_unique<entry>();
        e->name = std::string{name};
        e->help = std::string{help};
        e->k = k;
        switch (k) {
            case kind::counter_k:
                e->c = std::make_unique<counter>();
                break;
            case kind::gauge_k:
                e->g = std::make_unique<gauge>();
                break;
            case kind::histogram_k:
                e->h = std::make_unique<latency_histogram>();
                break;
        }
        entries.push_back(std::move(e));
        entry& stored = *entries.back();
        index.emplace(std::string_view{stored.name}, &stored);
        return stored;
    }
};

metrics_registry::metrics_registry() : impl_{new impl} {}
metrics_registry::~metrics_registry() { delete impl_; }

counter& metrics_registry::get_counter(std::string_view name,
                                       std::string_view help) {
    return *impl_->get(name, help, impl::kind::counter_k).c;
}

gauge& metrics_registry::get_gauge(std::string_view name,
                                   std::string_view help) {
    return *impl_->get(name, help, impl::kind::gauge_k).g;
}

latency_histogram& metrics_registry::get_histogram(std::string_view name,
                                                   std::string_view help) {
    return *impl_->get(name, help, impl::kind::histogram_k).h;
}

std::string metrics_registry::to_prometheus() const {
    std::string out;
    std::unordered_set<std::string_view> headed;
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const auto& e : impl_->entries) {
        const std::string_view base = prometheus_base_name(e->name);
        const char* type = e->k == impl::kind::counter_k   ? "counter"
                           : e->k == impl::kind::gauge_k   ? "gauge"
                                                           : "histogram";
        if (headed.insert(base).second) {
            prometheus_header(out, base, type, e->help);
        }
        switch (e->k) {
            case impl::kind::counter_k:
                prometheus_sample(out, e->name, e->c->value());
                break;
            case impl::kind::gauge_k:
                prometheus_sample(out, e->name, e->g->value());
                break;
            case impl::kind::histogram_k:
                prometheus_histogram(out, e->name, *e->h);
                break;
        }
    }
    return out;
}

metrics_registry& metrics_registry::global() {
    // Leaked: pool worker threads may touch counters during static
    // destruction of other translation units.
    static metrics_registry* r = new metrics_registry;
    return *r;
}

// ---------------------------------------------------------------------------
// exposition helpers
// ---------------------------------------------------------------------------

std::string_view prometheus_base_name(std::string_view name) noexcept {
    return split(name).base;
}

void prometheus_header(std::string& out, std::string_view base_name,
                       std::string_view type, std::string_view help) {
    if (!help.empty()) {
        out += "# HELP ";
        out += base_name;
        out += ' ';
        out += help;
        out += '\n';
    }
    out += "# TYPE ";
    out += base_name;
    out += ' ';
    out += type;
    out += '\n';
}

void prometheus_sample(std::string& out, std::string_view name,
                       double value) {
    out += name;
    out += ' ';
    append_double(out, value);
    out += '\n';
}

void prometheus_sample(std::string& out, std::string_view name,
                       std::uint64_t value) {
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
}

void prometheus_histogram(std::string& out, std::string_view name,
                          const latency_histogram& h) {
    const split_name parts = split(name);
    const auto bucket_line = [&](std::string_view le_text,
                                 std::uint64_t cumulative) {
        out += parts.base;
        out += "_bucket{";
        if (!parts.labels.empty()) {
            out += parts.labels;
            out += ',';
        }
        out += "le=\"";
        out += le_text;
        out += "\"} ";
        out += std::to_string(cumulative);
        out += '\n';
    };

    // Snapshot every bucket once, then derive `+Inf` and `_count` from
    // the snapshot's sum.  record() increments the bucket before the
    // shared count, so reading h.count() separately mid-burst could
    // show `_count` *behind* the cumulative `_bucket` totals — a scrape
    // must never expose that inversion.
    std::array<std::uint64_t, latency_histogram::bucket_count> snap{};
    std::uint64_t total = 0;
    int last_nonzero = -1;
    for (int b = 0; b < latency_histogram::bucket_count; ++b) {
        snap[static_cast<std::size_t>(b)] = h.bucket(b);
        total += snap[static_cast<std::size_t>(b)];
        if (snap[static_cast<std::size_t>(b)] != 0) {
            last_nonzero = b;
        }
    }
    std::uint64_t cumulative = 0;
    for (int b = 0; b <= last_nonzero; ++b) {
        cumulative += snap[static_cast<std::size_t>(b)];
        std::string le;
        append_double(le,
                      static_cast<double>(
                          latency_histogram::bucket_upper_us(b)) /
                          1e6);
        bucket_line(le, cumulative);
    }
    bucket_line("+Inf", total);

    out += parts.base;
    out += "_sum";
    if (!parts.labels.empty()) {
        out += '{';
        out += parts.labels;
        out += '}';
    }
    out += ' ';
    append_double(out, static_cast<double>(h.total_nanoseconds()) / 1e9);
    out += '\n';

    out += parts.base;
    out += "_count";
    if (!parts.labels.empty()) {
        out += '{';
        out += parts.labels;
        out += '}';
    }
    out += ' ';
    out += std::to_string(total);
    out += '\n';
}

}  // namespace silicon::obs
