#include "obs/log.hpp"

#include <array>
#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>

namespace silicon::obs {

namespace {

std::atomic<int> threshold{static_cast<int>(log_level::info)};
std::atomic<std::ostream*> sink{nullptr};  // nullptr = stderr
std::mutex write_mutex;

void append_double(std::string& out, double v) {
    std::array<char, 32> buf{};
    const auto [end, ec] =
        std::to_chars(buf.data(), buf.data() + buf.size(), v);
    if (ec == std::errc{}) {
        out.append(buf.data(), static_cast<std::size_t>(end - buf.data()));
    } else {
        out += "0";
    }
}

void append_escaped(std::string& out, std::string_view s) {
    out += '"';
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else if (c == '\t') {
            out += "\\t";
        } else if (c == '\r') {
            out += "\\r";
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char hex[8];
            std::snprintf(hex, sizeof hex, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += hex;
        } else {
            out += c;
        }
    }
    out += '"';
}

}  // namespace

std::string_view to_string(log_level level) noexcept {
    switch (level) {
        case log_level::trace:
            return "trace";
        case log_level::debug:
            return "debug";
        case log_level::info:
            return "info";
        case log_level::warn:
            return "warn";
        case log_level::error:
            return "error";
        case log_level::off:
            return "off";
    }
    return "unknown";
}

void log_field::append_to(std::string& out) const {
    append_escaped(out, key_);
    out += ':';
    switch (kind_) {
        case kind::string:
            append_escaped(out, string_);
            break;
        case kind::number:
            append_double(out, number_);
            break;
        case kind::boolean:
            out += boolean_ ? "true" : "false";
            break;
    }
}

log_level log_threshold() noexcept {
    return static_cast<log_level>(threshold.load(std::memory_order_relaxed));
}

void set_log_threshold(log_level level) noexcept {
    threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_log_sink(std::ostream* s) noexcept {
    sink.store(s, std::memory_order_release);
}

void log(log_level level, std::string_view event,
         std::initializer_list<log_field> fields) {
    if (static_cast<int>(level) <
        threshold.load(std::memory_order_relaxed)) {
        return;
    }

    const double ts =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();

    std::string line = "{\"ts\":";
    append_double(line, ts);
    line += ",\"level\":\"";
    line += to_string(level);
    line += "\",\"event\":";
    append_escaped(line, event);
    for (const log_field& f : fields) {
        line += ',';
        f.append_to(line);
    }
    line += "}\n";

    const std::lock_guard<std::mutex> lock(write_mutex);
    if (std::ostream* s = sink.load(std::memory_order_acquire)) {
        *s << line;
        s->flush();
    } else {
        std::fwrite(line.data(), 1, line.size(), stderr);
        std::fflush(stderr);
    }
}

}  // namespace silicon::obs
