// flight.hpp — an always-on flight recorder of per-request records.
//
// The tracer (obs/trace) answers "where does a slow batch spend its
// time" after the operator turns tracing on; the flight recorder
// answers "what were the last N requests doing" *retroactively* — it is
// cheap enough to leave on in production (bench_flight gates < 2% of
// warm serve throughput), so when a deadline blows or admission sheds,
// the ring already holds the evidence.
//
// Each record is a fixed-size POD: endpoint, best-effort id/trace_id,
// the response code, cache hit/miss, per-stage timings
// (parse/cache/exec/serialize), and the deadline slack at completion.
// Recording follows the tracer's hot-path design: per-thread rings with
// a single writer each, drop-oldest on overflow, release-published
// heads — no locks, no allocation after the ring's one-time
// registration.  A process-wide `seq` counter stamps every record so a
// dump merges the rings back into append order.
//
// Dumps are JSONL (one record object per line, fixed key order, seq
// ascending) and fire three ways: on the first anomaly after
// `arm_dump` (deadline_exceeded, overloaded, internal_error — see
// engine dispatch), on SIGUSR1 (silicond), or on demand
// (`GET /flightz`, shutdown).  `set_deterministic` zeroes the timing
// fields at append so a fixed input corpus produces a byte-identical
// dump at any thread count (the serving layer appends records in line
// order regardless of worker parallelism).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace silicon::obs {

/// One completed (or shed) request.  Text fields are NUL-terminated and
/// silently truncated to the field width; `assign_field` does the copy.
struct flight_record {
    std::uint64_t seq = 0;       ///< stamped by append(); merge key
    char endpoint[20] = {};      ///< op wire name ("" = shed pre-parse)
    char id[32] = {};            ///< best-effort `id` rendering
    char trace[48] = {};         ///< client trace_id ("" = none)
    char code[20] = {};          ///< "ok" or the error-taxonomy code
    bool cache_hit = false;
    bool anomaly = false;        ///< this record tripped an anomaly trigger
    std::uint32_t parse_us = 0;
    std::uint32_t cache_us = 0;
    std::uint32_t exec_us = 0;
    std::uint32_t serialize_us = 0;
    std::uint32_t total_us = 0;
    /// Remaining deadline budget at completion in microseconds
    /// (negative = finished late); no_deadline when the request had none.
    std::int64_t deadline_slack_us = no_deadline;

    static constexpr std::int64_t no_deadline = INT64_MIN;
};

/// NUL-truncating copy into a fixed record field.
template <std::size_t N>
inline void assign_field(char (&dst)[N], std::string_view s) noexcept {
    const std::size_t n = s.size() < N - 1 ? s.size() : N - 1;
    if (n > 0) {
        std::memcpy(dst, s.data(), n);
    }
    dst[n] = '\0';
}

/// The recorder: a registry of per-thread record rings.  `instance()`
/// is the process-wide recorder silicond and the engine use; tests may
/// construct private instances (capacity is fixed per instance's rings
/// once a thread first appends).
class flight_recorder {
public:
    static constexpr std::size_t default_capacity = 4096;

    explicit flight_recorder(std::size_t capacity = default_capacity);
    ~flight_recorder();
    flight_recorder(const flight_recorder&) = delete;
    flight_recorder& operator=(const flight_recorder&) = delete;

    [[nodiscard]] static flight_recorder& instance();

    /// Records retained per appending thread.  Must be called before
    /// the first append (silicond does so while single-threaded);
    /// capacity 0 disables recording entirely.
    void configure(std::size_t capacity);
    [[nodiscard]] std::size_t capacity() const noexcept;

    void set_enabled(bool on) noexcept;
    [[nodiscard]] bool enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Zero every timing field at append: a fixed input corpus then
    /// dumps byte-identically at any `--threads` value.
    void set_deterministic(bool on) noexcept;
    [[nodiscard]] bool deterministic() const noexcept {
        return deterministic_.load(std::memory_order_relaxed);
    }

    /// Stamp `r.seq` and append to the calling thread's ring
    /// (drop-oldest).  No-op while disabled.
    void append(flight_record r) noexcept;

    /// Count an anomaly trigger; the first one after `arm_dump` writes
    /// the armed dump file (once per arming).
    void note_anomaly() noexcept;

    /// Write a JSONL dump to `path` on the first subsequent anomaly.
    void arm_dump(std::string path);

    struct stats {
        std::uint64_t appended = 0;   ///< records ever appended
        std::uint64_t dropped = 0;    ///< overwritten by drop-oldest
        std::uint64_t anomalies = 0;  ///< note_anomaly() calls
        std::size_t threads = 0;      ///< rings registered
        std::size_t capacity = 0;     ///< per-thread ring capacity
        bool enabled = false;
    };
    [[nodiscard]] stats snapshot() const;

    /// Append the retained records as JSONL, seq ascending.  Like the
    /// tracer's export: intended for quiescent points; records appended
    /// concurrently may be missed but never torn.
    void export_jsonl(std::string& out) const;

    /// export_jsonl() to `path`; false when the file cannot be written.
    bool write_jsonl(const std::string& path) const;

    /// Drop retained records and restart seq at 0 (quiescent only).
    void clear() noexcept;

private:
    struct ring;
    struct registry;

    [[nodiscard]] ring* local_ring();

    std::atomic<bool> enabled_{true};
    std::atomic<bool> deterministic_{false};
    std::atomic<std::uint64_t> seq_{0};
    std::atomic<std::uint64_t> anomalies_{0};
    std::atomic<bool> dump_armed_{false};
    /// Unique per instance and per configure() call; keys the
    /// thread-local ring cache so stale pointers are never followed.
    std::atomic<std::uint64_t> generation_;
    registry* registry_;
};

}  // namespace silicon::obs
