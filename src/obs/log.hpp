// log.hpp — leveled structured logging (JSONL to stderr).
//
// One event per line, machine-parseable, replacing ad-hoc stderr
// writes in silicond and the engine:
//
//     {"ts":1754500000.123,"level":"info","event":"silicond.start",
//      "threads":4,"port":9000}
//
// Levels: trace < debug < info < warn < error.  Two thresholds apply:
//
//   * Compile-time floor `SILICON_LOG_MIN_LEVEL` (0=trace … 4=error;
//     default 0): the convenience wrappers are `if constexpr`-elided
//     below it, so a release build can compile debug logging out
//     entirely.
//   * Runtime threshold `set_log_threshold` (default info): cheaper
//     events are dropped with a single relaxed atomic load.
//
// The sink defaults to stderr (never stdout — the serve protocol owns
// stdout and its bytes are golden-tested); tests may redirect it with
// `set_log_sink`.  Each event is rendered into one string and written
// with a single call under a mutex, so concurrent events never
// interleave mid-line.  Timestamps are wall-clock (system_clock)
// seconds — logs are for operators and never feed back into results.

#pragma once

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>

#ifndef SILICON_LOG_MIN_LEVEL
#define SILICON_LOG_MIN_LEVEL 0
#endif

namespace silicon::obs {

enum class log_level : int {
    trace = 0,
    debug = 1,
    info = 2,
    warn = 3,
    error = 4,
    off = 5,  ///< threshold only: suppress everything
};

[[nodiscard]] std::string_view to_string(log_level level) noexcept;

/// One "key":value member of a log event.
class log_field {
public:
    log_field(std::string_view key, std::string_view v)
        : key_{key}, kind_{kind::string}, string_{v} {}
    log_field(std::string_view key, const char* v)
        : log_field{key, std::string_view{v}} {}
    log_field(std::string_view key, const std::string& v)
        : log_field{key, std::string_view{v}} {}
    log_field(std::string_view key, double v)
        : key_{key}, kind_{kind::number}, number_{v} {}
    log_field(std::string_view key, int v)
        : log_field{key, static_cast<double>(v)} {}
    log_field(std::string_view key, long v)
        : log_field{key, static_cast<double>(v)} {}
    log_field(std::string_view key, unsigned v)
        : log_field{key, static_cast<double>(v)} {}
    log_field(std::string_view key, unsigned long v)
        : log_field{key, static_cast<double>(v)} {}
    log_field(std::string_view key, unsigned long long v)
        : log_field{key, static_cast<double>(v)} {}
    log_field(std::string_view key, bool v)
        : key_{key}, kind_{kind::boolean}, boolean_{v} {}

    void append_to(std::string& out) const;

private:
    enum class kind { string, number, boolean };

    std::string_view key_;
    kind kind_;
    std::string_view string_{};
    double number_ = 0.0;
    bool boolean_ = false;
};

/// Runtime threshold (default info).
[[nodiscard]] log_level log_threshold() noexcept;
void set_log_threshold(log_level level) noexcept;

/// Redirect the sink (nullptr restores stderr).  The stream must
/// outlive every subsequent log call; intended for tests.
void set_log_sink(std::ostream* sink) noexcept;

/// Emit one event if `level` passes the runtime threshold.
void log(log_level level, std::string_view event,
         std::initializer_list<log_field> fields = {});

// Convenience wrappers; levels below SILICON_LOG_MIN_LEVEL compile to
// nothing.
inline void log_trace(std::string_view event,
                      std::initializer_list<log_field> fields = {}) {
    if constexpr (SILICON_LOG_MIN_LEVEL <= 0) {
        log(log_level::trace, event, fields);
    }
}
inline void log_debug(std::string_view event,
                      std::initializer_list<log_field> fields = {}) {
    if constexpr (SILICON_LOG_MIN_LEVEL <= 1) {
        log(log_level::debug, event, fields);
    }
}
inline void log_info(std::string_view event,
                     std::initializer_list<log_field> fields = {}) {
    if constexpr (SILICON_LOG_MIN_LEVEL <= 2) {
        log(log_level::info, event, fields);
    }
}
inline void log_warn(std::string_view event,
                     std::initializer_list<log_field> fields = {}) {
    if constexpr (SILICON_LOG_MIN_LEVEL <= 3) {
        log(log_level::warn, event, fields);
    }
}
inline void log_error(std::string_view event,
                      std::initializer_list<log_field> fields = {}) {
    if constexpr (SILICON_LOG_MIN_LEVEL <= 4) {
        log(log_level::error, event, fields);
    }
}

}  // namespace silicon::obs
