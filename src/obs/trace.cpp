#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace silicon::obs {

namespace {

std::uint64_t steady_now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Shortest round-trip double (the ts/dur microsecond fields).
void append_double(std::string& out, double v) {
    std::array<char, 32> buf{};
    const auto [end, ec] =
        std::to_chars(buf.data(), buf.data() + buf.size(), v);
    if (ec == std::errc{}) {
        out.append(buf.data(), static_cast<std::size_t>(end - buf.data()));
    } else {
        out += "0";
    }
}

/// Minimal JSON string escaping — span names are controlled literals,
/// but a stray quote must never corrupt the export.
void append_escaped(std::string& out, const char* s) {
    out += '"';
    for (; *s != '\0'; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char hex[8];
            std::snprintf(hex, sizeof hex, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += hex;
        } else {
            out += c;
        }
    }
    out += '"';
}

}  // namespace

/// One thread's event ring.  The owning thread is the only writer;
/// `head` counts events ever written and is published with release
/// semantics after each slot write, so an exporter that acquire-loads
/// `head` observes every slot below it.
struct tracer::ring {
    std::array<trace_event, tracer::ring_capacity> events{};
    std::atomic<std::uint64_t> head{0};
    std::size_t tid = 0;
};

struct tracer::registry {
    std::mutex mutex;
    std::vector<std::unique_ptr<ring>> rings;  // guarded by mutex (growth)
};

tracer::tracer() : epoch_ns_{steady_now_ns()}, registry_{new registry} {}

tracer::~tracer() { delete registry_; }

tracer& tracer::instance() {
    // Deliberately leaked: pool worker threads may outlive static
    // destruction order, and a dangling tracer would turn a shutdown
    // span into a crash.
    static tracer* t = new tracer;
    return *t;
}

void tracer::enable() noexcept {
    enabled_.store(true, std::memory_order_release);
}

void tracer::disable() noexcept {
    enabled_.store(false, std::memory_order_release);
}

std::uint64_t tracer::now_ns() const noexcept {
    return steady_now_ns() - epoch_ns_;
}

tracer::ring& tracer::local_ring() {
    thread_local ring* local = nullptr;
    if (local == nullptr) {
        auto owned = std::make_unique<ring>();
        const std::lock_guard<std::mutex> lock(registry_->mutex);
        owned->tid = registry_->rings.size();
        registry_->rings.push_back(std::move(owned));
        local = registry_->rings.back().get();
    }
    return *local;
}

void tracer::record(const char* name, const char* category,
                    std::uint64_t start_ns,
                    std::uint64_t duration_ns) noexcept {
    if (!enabled()) {
        return;  // spans that end after disable() are dropped
    }
    ring& r = local_ring();
    const std::uint64_t h = r.head.load(std::memory_order_relaxed);
    trace_event& slot = r.events[h % ring_capacity];
    slot.name = name;
    slot.category = category;
    slot.start_ns = start_ns;
    slot.duration_ns = duration_ns;
    r.head.store(h + 1, std::memory_order_release);
}

tracer::stats tracer::snapshot() const {
    stats out;
    const std::lock_guard<std::mutex> lock(registry_->mutex);
    out.threads = registry_->rings.size();
    for (const auto& r : registry_->rings) {
        const std::uint64_t head = r->head.load(std::memory_order_acquire);
        out.recorded += head;
        if (head > ring_capacity) {
            out.dropped += head - ring_capacity;
        }
    }
    return out;
}

void tracer::clear() noexcept {
    const std::lock_guard<std::mutex> lock(registry_->mutex);
    for (const auto& r : registry_->rings) {
        r->head.store(0, std::memory_order_release);
    }
}

std::string tracer::export_chrome_json() const {
    std::string out = "[";
    bool first = true;
    const auto emit = [&](const std::string& event) {
        if (!first) {
            out += ",";
        }
        out += "\n";
        out += event;
        first = false;
    };

    const std::lock_guard<std::mutex> lock(registry_->mutex);
    for (const auto& r : registry_->rings) {
        const std::uint64_t head = r->head.load(std::memory_order_acquire);
        const std::uint64_t n = std::min<std::uint64_t>(head, ring_capacity);
        if (n == 0) {
            continue;
        }
        std::string meta = R"({"name":"thread_name","ph":"M","pid":1,"tid":)";
        meta += std::to_string(r->tid);
        meta += R"(,"args":{"name":"thread-)";
        meta += std::to_string(r->tid);
        meta += R"("}})";
        emit(meta);

        std::vector<trace_event> events;
        events.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = head - n; i < head; ++i) {
            events.push_back(r->events[i % ring_capacity]);
        }
        // Spans are recorded at scope exit, so nested spans land after
        // their parent ends; re-sort by start so each thread's track
        // reads in wall-clock order (and the export tests can assert
        // per-thread monotonicity).
        std::stable_sort(events.begin(), events.end(),
                         [](const trace_event& a, const trace_event& b) {
                             return a.start_ns < b.start_ns;
                         });
        for (const trace_event& e : events) {
            std::string line = R"({"name":)";
            append_escaped(line, e.name);
            line += R"(,"cat":)";
            append_escaped(line, e.category);
            line += R"(,"ph":"X","pid":1,"tid":)";
            line += std::to_string(r->tid);
            line += R"(,"ts":)";
            append_double(line, static_cast<double>(e.start_ns) / 1000.0);
            line += R"(,"dur":)";
            append_double(line, static_cast<double>(e.duration_ns) / 1000.0);
            line += "}";
            emit(line);
        }
    }
    out += "\n]\n";
    return out;
}

bool tracer::write_chrome_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return false;
    }
    const std::string text = export_chrome_json();
    const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
    const bool ok = std::fclose(f) == 0 && written == text.size();
    return ok;
}

}  // namespace silicon::obs
