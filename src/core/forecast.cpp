#include "core/forecast.hpp"

#include "tech/roadmap.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::core {

double x_schedule::at(int year) const {
    if (year <= ramp_start) {
        return x_early;
    }
    if (year >= ramp_end) {
        return x_late;
    }
    const double t = static_cast<double>(year - ramp_start) /
                     static_cast<double>(ramp_end - ramp_start);
    return x_early + t * (x_late - x_early);
}

transistor_cost_forecast forecast_transistor_cost(
    const scenario1& memory, const scenario2& logic, int first_year,
    int last_year, const std::optional<x_schedule>& schedule) {
    if (last_year < first_year) {
        throw std::invalid_argument(
            "forecast_transistor_cost: empty year range");
    }
    const tech::trend lambda_trend = tech::feature_size_trend();

    transistor_cost_forecast forecast;
    double previous_logic = -1.0;
    for (int year = first_year; year <= last_year; ++year) {
        const double lambda_um = lambda_trend.at(year);
        if (!(lambda_um > 0.0)) {
            continue;
        }
        forecast_point point;
        point.year = year;
        point.lambda = microns{lambda_um};
        try {
            point.memory_ctr =
                memory.cost_per_transistor(point.lambda);
            if (schedule.has_value()) {
                scenario2 dated = logic;
                dated.wafer_cost = cost::wafer_cost_model{
                    logic.wafer_cost.c0(), schedule->at(year),
                    logic.wafer_cost.generation_step()};
                point.logic_ctr = dated.cost_per_transistor(point.lambda);
            } else {
                point.logic_ctr = logic.cost_per_transistor(point.lambda);
            }
        } catch (const std::exception&) {
            continue;  // outside a scenario's valid domain
        }
        // Reversal detection is confined to the sub-micron domain where
        // Eq. (3) is calibrated; extrapolating the wafer-cost model to
        // multi-micron 1970s-80s features produces spurious wiggles.
        if (point.lambda.value() <= 1.0) {
            if (!forecast.logic_reversal_year.has_value() &&
                previous_logic > 0.0 &&
                point.logic_ctr.value() > previous_logic) {
                forecast.logic_reversal_year = year;
            }
            previous_logic = point.logic_ctr.value();
        }
        forecast.points.push_back(point);
    }
    if (forecast.points.size() >= 2) {
        const double years = static_cast<double>(
            forecast.points.back().year - forecast.points.front().year);
        forecast.memory_cagr =
            std::pow(forecast.points.back().memory_ctr.value() /
                         forecast.points.front().memory_ctr.value(),
                     1.0 / years) -
            1.0;
        forecast.logic_cagr =
            std::pow(forecast.points.back().logic_ctr.value() /
                         forecast.points.front().logic_ctr.value(),
                     1.0 / years) -
            1.0;
    }
    return forecast;
}

}  // namespace silicon::core
