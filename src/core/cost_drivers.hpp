// cost_drivers.hpp — what actually moves a product's transistor cost.
//
// Section III opens by promising to "demonstrate the complexity of the
// IC manufacturing cost problem"; this module makes the complexity
// navigable by ranking the cost drivers.  It wires the integrated Eq. (1)
// model into the generic elasticity engine: for a given product it
// reports d ln C_tr / d ln theta for every model input
// (C_0, X, lambda, d_d, N_tr, wafer radius, Y_0), ranked by magnitude.
//
// The probes evaluate a fully smooth closed form of Eq. (1) (continuous
// dies-per-wafer, no floor()) so the finite differences are not polluted
// by the integer jumps of Eq. (4); the reported nominal cost uses the
// configured estimator.

#pragma once

#include "core/cost_model.hpp"
#include "opt/sensitivity.hpp"

#include <vector>

namespace silicon::core {

/// Driver report for one product.
struct cost_driver_report {
    cost_breakdown nominal;                 ///< at the configured inputs
    std::vector<opt::elasticity> drivers;   ///< ranked by |elasticity|
};

/// Compute the ranked elasticities of cost per transistor.  Only
/// supports the reference_die_yield process form (Table 3's), because
/// Y_0 is one of the probed drivers; throws std::invalid_argument for
/// other yield_spec alternatives.
[[nodiscard]] cost_driver_report analyze_cost_drivers(
    const process_spec& process, const product_spec& product);

}  // namespace silicon::core
