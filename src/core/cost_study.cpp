#include "core/cost_study.hpp"

#include "analysis/markdown.hpp"
#include "analysis/svg_chart.hpp"
#include "analysis/sweep.hpp"
#include "geometry/wafer_map.hpp"

#include <stdexcept>

namespace silicon::core {

namespace {

std::string money(double v, int precision = 2) {
    return "$" + analysis::format_number(v, precision);
}

}  // namespace

std::string render_cost_study(const process_spec& process,
                              const product_spec& product,
                              const cost_study_options& options) {
    const cost_model model{process};
    const cost_breakdown b = model.evaluate(product);

    analysis::markdown_document doc{"Cost study: " + product.name};

    doc.heading("Inputs");
    doc.key_value("transistors (N_tr)",
                  analysis::format_number(product.transistors, -1));
    doc.key_value("design density (d_d)",
                  analysis::format_number(product.design_density, -1) +
                      " lambda^2/transistor");
    doc.key_value("feature size (lambda)",
                  analysis::format_number(product.feature_size.value(), -1) +
                      " um");
    doc.key_value(
        "wafer",
        "R_w = " +
            analysis::format_number(process.wafer.radius().value(), -1) +
            " cm");
    doc.key_value(
        "wafer cost model",
        "C_0 = " + money(process.wafer_cost.c0().value(), 0) +
            ", X = " + analysis::format_number(process.wafer_cost.x(), -1) +
            " per " +
            analysis::format_number(
                process.wafer_cost.generation_step().value(), -1) +
            " um generation");
    doc.paragraph("");

    doc.heading("Silicon cost (Eq. 1)");
    analysis::text_table silicon;
    silicon.add_column("quantity", analysis::align::left);
    silicon.add_column("value", analysis::align::right);
    const auto add = [&](const std::string& k, const std::string& v) {
        silicon.begin_row();
        silicon.add_cell(k);
        silicon.add_cell(v);
    };
    add("die area (Eq. 5)",
        analysis::format_number(b.die_area.value(), 1) + " mm^2");
    add("gross dies per wafer (Eq. 4)",
        std::to_string(b.gross_dies_per_wafer));
    add("functional yield",
        analysis::format_number(b.yield.value() * 100.0, 1) + " %");
    add("good dies per wafer",
        analysis::format_number(b.good_dies_per_wafer, 1));
    add("wafer cost", money(b.wafer_cost.value(), 0));
    add("cost per good die", money(b.cost_per_good_die.value()));
    add("cost per transistor",
        analysis::format_number(b.cost_per_transistor_micro_dollars(), 3) +
            " micro-dollars");
    doc.table(silicon);

    doc.heading("Wafer map");
    doc.code_block(
        geometry::render_wafer_map(process.wafer, product.make_die()));

    if (options.include_lambda_sweep) {
        doc.heading("Feature size sensitivity");
        analysis::text_table sweep_table;
        sweep_table.add_column("lambda [um]", analysis::align::right, 3);
        sweep_table.add_column("C_tr [u$]", analysis::align::right, 3);
        sweep_table.add_column("die [mm^2]", analysis::align::right, 1);
        sweep_table.add_column("yield", analysis::align::right, 3);
        for (double lambda :
             analysis::linspace(options.sweep_lo.value(),
                                options.sweep_hi.value(),
                                options.sweep_points)) {
            product_spec probe = product;
            probe.feature_size = microns{lambda};
            try {
                const cost_breakdown pb = model.evaluate(probe);
                sweep_table.begin_row();
                sweep_table.add_number(lambda);
                sweep_table.add_number(
                    pb.cost_per_transistor_micro_dollars());
                sweep_table.add_number(pb.die_area.value());
                sweep_table.add_number(pb.yield.value());
            } catch (const std::domain_error&) {
                // infeasible point: skip the row
            }
        }
        doc.table(sweep_table);
        const microns best = model.optimal_feature_size(
            product, options.sweep_lo, options.sweep_hi);
        doc.paragraph("Cost-optimal feature size in the window: **" +
                      analysis::format_number(best.value(), 3) + " um**.");
    }

    if (options.include_drivers &&
        std::holds_alternative<yield::reference_die_yield>(process.yield)) {
        doc.heading("Ranked cost drivers");
        const cost_driver_report drivers =
            analyze_cost_drivers(process, product);
        analysis::text_table driver_table;
        driver_table.add_column("driver", analysis::align::left);
        driver_table.add_column("elasticity d lnC/d ln theta",
                                analysis::align::right, 3);
        for (const opt::elasticity& e : drivers.drivers) {
            driver_table.begin_row();
            driver_table.add_cell(e.name);
            driver_table.add_number(e.value);
        }
        doc.table(driver_table);
    }

    dollars running_cost = b.cost_per_good_die;
    if (options.include_test) {
        doc.heading("Test economics");
        cost::test_program program = options.test_program;
        program.transistors = product.transistors;
        const cost::test_economics test = cost::evaluate_test_economics(
            options.tester, program, b.yield,
            options.field_cost_per_escape);
        analysis::text_table test_table;
        test_table.add_column("quantity", analysis::align::left);
        test_table.add_column("value", analysis::align::right);
        const auto trow = [&](const std::string& k, const std::string& v) {
            test_table.begin_row();
            test_table.add_cell(k);
            test_table.add_cell(v);
        };
        trow("probe cost per good die",
             money(test.probe_per_good_die.value()));
        trow("final test per good die",
             money(test.final_per_good_die.value()));
        trow("shipped defect level",
             analysis::format_number(
                 test.shipped_defect_level.value() * 1e6, 0) +
                 " ppm");
        trow("expected field cost per shipped die",
             money(test.escape_cost_per_shipped_die.value()));
        doc.table(test_table);
        running_cost = running_cost + test.total_per_shipped_die;
    }

    if (options.include_packaging) {
        doc.heading("Packaged part");
        const dollars shipped =
            cost::packaged_part_cost(running_cost, options.package);
        doc.key_value("package",
                      std::to_string(options.package.pins) + " pins, " +
                          money(cost::package_cost(options.package)
                                    .value()));
        doc.key_value("cost per shipped part",
                      money(shipped.value()));
        doc.paragraph("");
    }

    return doc.str();
}

void write_cost_study(const std::string& path, const process_spec& process,
                      const product_spec& product,
                      const cost_study_options& options) {
    analysis::write_file(path,
                         render_cost_study(process, product, options));
}

}  // namespace silicon::core
