#include "core/table3.hpp"

#include <algorithm>
#include <stdexcept>

namespace silicon::core {

const std::vector<table3_row>& table3_rows() {
    // Columns: idx, type, N_tr, lambda, d_d, R_w, Y0, C0, X, printed C_tr,
    // reconstructed.  Rows 4/15/16: N_tr reconstructed (see header).
    static const std::vector<table3_row> rows = {
        {1,  "BiCMOS uP",    3.1e6,  0.80, 150.0, 7.5, 0.9, 700,  1.4,   9.40, false},
        {2,  "BiCMOS uP",    3.1e6,  0.80, 150.0, 7.5, 0.7, 700,  1.8,  25.50, false},
        {3,  "BiCMOS uP",    3.1e6,  0.80, 150.0, 7.5, 0.6, 700,  2.2,  49.30, false},
        {4,  "CMOS uP",      1.7e6,  0.80, 190.0, 7.5, 0.7, 700,  1.8,  21.80, true},
        {5,  "CMOS uP",      0.85e6, 0.80, 370.0, 7.5, 0.7, 900,  1.8,  53.50, false},
        {6,  "BiCMOS uP",    3.1e6,  0.80, 150.0, 7.5, 0.7, 700,  1.8,  25.50, false},
        {7,  "CMOS uP",      2.8e6,  0.65, 102.0, 7.5, 0.7, 700,  1.8,   8.60, false},
        {8,  "BiCMOS uP",    3.1e6,  0.70, 170.0, 7.5, 0.7, 900,  1.8,  32.60, false},
        {9,  "CMOS uP",      1.2e6,  0.65, 250.0, 7.5, 0.7, 700,  1.8,  21.10, false},
        {10, "BiCMOS VSP",   0.91e6, 0.80, 400.0, 7.5, 0.7, 1500, 1.8, 115.00, false},
        {11, "SRAM, 1Mb",    6.2e6,  0.35,  36.0, 7.5, 0.9, 500,  1.8,   0.93, false},
        {12, "DRAM, 4Mb",    4.1e6,  0.60,  35.0, 7.5, 0.9, 400,  1.8,   1.08, false},
        {13, "DRAM, 256Mb",  264e6,  0.25,  29.0, 7.5, 0.9, 600,  1.8,   1.31, false},
        {14, "DRAM, 256Mb",  264e6,  0.25,  29.0, 10.0, 0.7, 600, 1.8,   2.18, false},
        {15, "G.A., 53kg",   85e3,   0.80, 500.0, 7.5, 0.7, 1200, 1.8,  43.10, true},
        {16, "SOG, 177kg",   1.0e6,  0.80, 245.0, 7.5, 0.7, 1200, 1.8,  51.10, true},
        {17, "PLD, 1.2kg",   7.2e3,  0.80, 2600.0, 7.5, 0.7, 1300, 1.8, 240.00, false},
    };
    return rows;
}

cost_breakdown reproduce_row(const table3_row& row) {
    process_spec process{
        cost::wafer_cost_model{dollars{row.c0_usd}, row.x},
        geometry::wafer{centimeters{row.wafer_radius_cm}},
        yield::reference_die_yield{probability{row.y0}},
        geometry::gross_die_method::maly_rows,
    };
    product_spec product;
    product.name = "Table 3 row " + std::to_string(row.index) + " (" +
                   row.ic_type + ")";
    product.transistors = row.transistors;
    product.design_density = row.design_density;
    product.feature_size = microns{row.lambda_um};

    return cost_model{std::move(process)}.evaluate(product);
}

std::vector<table3_comparison> reproduce_table3() {
    std::vector<table3_comparison> comparisons;
    comparisons.reserve(table3_rows().size());
    for (const table3_row& row : table3_rows()) {
        table3_comparison comparison;
        comparison.row = row;
        comparison.computed = reproduce_row(row);
        comparison.computed_ctr_micro =
            comparison.computed.cost_per_transistor_micro_dollars();
        comparison.ratio =
            comparison.computed_ctr_micro / row.printed_ctr_micro;
        comparisons.push_back(std::move(comparison));
    }
    return comparisons;
}

double memory_logic_separation() {
    double min_logic = 1e300;
    double max_memory = 0.0;
    for (const table3_comparison& c : reproduce_table3()) {
        const bool memory = c.row.index >= 11 && c.row.index <= 14;
        if (memory) {
            max_memory = std::max(max_memory, c.computed_ctr_micro);
        } else {
            min_logic = std::min(min_logic, c.computed_ctr_micro);
        }
    }
    if (max_memory <= 0.0) {
        throw std::domain_error(
            "memory_logic_separation: no memory rows evaluated");
    }
    return min_logic / max_memory;
}

}  // namespace silicon::core
