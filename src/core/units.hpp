// units.hpp — strong numeric types for the silicon cost model.
//
// The cost model of Maly (DAC 1994) mixes quantities whose raw
// representations are all `double`: feature sizes in microns, die edges in
// millimetres, wafer radii in centimetres, areas in mm^2 and cm^2, money in
// dollars, and probabilities.  Mixing these up silently is the classic
// failure mode of cost spreadsheets, so the public API trades exclusively in
// the strong types defined here.  Construction is checked (no negative
// lengths, probabilities clamped to [0,1] only through explicit helpers) and
// conversions are spelled out by name.
//
// All types are trivially copyable value types; arithmetic that makes
// dimensional sense is provided, everything else is a compile error.

#pragma once

#include <cmath>
#include <compare>
#include <stdexcept>
#include <string>

namespace silicon {

namespace detail {

// Shared implementation of a strongly typed non-negative double quantity.
// `Derived` is the CRTP leaf (e.g. microns); `unit_name()` is used in
// exception messages.
template <typename Derived>
class nonnegative_quantity {
public:
    constexpr nonnegative_quantity() noexcept = default;

    [[nodiscard]] constexpr double value() const noexcept { return value_; }

    friend constexpr auto operator<=>(const nonnegative_quantity&,
                                      const nonnegative_quantity&) = default;

    friend constexpr Derived operator+(Derived a, Derived b) {
        return Derived{a.value_ + b.value_};
    }
    friend constexpr Derived operator-(Derived a, Derived b) {
        return Derived{a.value_ - b.value_};
    }
    friend constexpr Derived operator*(Derived a, double s) {
        return Derived{a.value_ * s};
    }
    friend constexpr Derived operator*(double s, Derived a) {
        return Derived{s * a.value_};
    }
    friend constexpr Derived operator/(Derived a, double s) {
        return Derived{a.value_ / s};
    }
    // Ratio of two like quantities is dimensionless.
    friend constexpr double operator/(Derived a, Derived b) {
        return a.value_ / b.value_;
    }

protected:
    constexpr explicit nonnegative_quantity(double v) : value_{v} {
        if (!(v >= 0.0) || std::isinf(v)) {  // catches NaN and -0 range errors
            throw std::invalid_argument(std::string{Derived::unit_name()} +
                                        ": value must be finite and >= 0");
        }
    }

private:
    double value_ = 0.0;
};

}  // namespace detail

// ---------------------------------------------------------------------------
// Lengths
// ---------------------------------------------------------------------------

class millimeters;
class centimeters;

/// Minimum feature size and other mask-scale lengths. 1 um = 1e-3 mm.
class microns : public detail::nonnegative_quantity<microns> {
public:
    constexpr microns() noexcept = default;
    constexpr explicit microns(double v) : nonnegative_quantity{v} {}
    static constexpr const char* unit_name() noexcept { return "microns"; }

    [[nodiscard]] constexpr millimeters to_millimeters() const;
};

/// Die-scale lengths (die edges, scribe lanes).
class millimeters : public detail::nonnegative_quantity<millimeters> {
public:
    constexpr millimeters() noexcept = default;
    constexpr explicit millimeters(double v) : nonnegative_quantity{v} {}
    static constexpr const char* unit_name() noexcept { return "millimeters"; }

    [[nodiscard]] constexpr microns to_microns() const {
        return microns{value() * 1000.0};
    }
    [[nodiscard]] constexpr centimeters to_centimeters() const;
};

/// Wafer-scale lengths (wafer radius, edge exclusion).
class centimeters : public detail::nonnegative_quantity<centimeters> {
public:
    constexpr centimeters() noexcept = default;
    constexpr explicit centimeters(double v) : nonnegative_quantity{v} {}
    static constexpr const char* unit_name() noexcept { return "centimeters"; }

    [[nodiscard]] constexpr millimeters to_millimeters() const {
        return millimeters{value() * 10.0};
    }
};

constexpr millimeters microns::to_millimeters() const {
    return millimeters{value() / 1000.0};
}
constexpr centimeters millimeters::to_centimeters() const {
    return centimeters{value() / 10.0};
}

// ---------------------------------------------------------------------------
// Areas
// ---------------------------------------------------------------------------

class square_centimeters;

/// Die areas.  1 cm^2 = 100 mm^2.
class square_millimeters
    : public detail::nonnegative_quantity<square_millimeters> {
public:
    constexpr square_millimeters() noexcept = default;
    constexpr explicit square_millimeters(double v) : nonnegative_quantity{v} {}
    static constexpr const char* unit_name() noexcept {
        return "square_millimeters";
    }

    [[nodiscard]] constexpr square_centimeters to_square_centimeters() const;
};

/// Wafer areas and the paper's reference die area A_0 = 1 cm^2.
class square_centimeters
    : public detail::nonnegative_quantity<square_centimeters> {
public:
    constexpr square_centimeters() noexcept = default;
    constexpr explicit square_centimeters(double v) : nonnegative_quantity{v} {}
    static constexpr const char* unit_name() noexcept {
        return "square_centimeters";
    }

    [[nodiscard]] constexpr square_millimeters to_square_millimeters() const {
        return square_millimeters{value() * 100.0};
    }
};

constexpr square_centimeters square_millimeters::to_square_centimeters() const {
    return square_centimeters{value() / 100.0};
}

/// Area of a rectangle with edges given in millimetres.
[[nodiscard]] constexpr square_millimeters area_of(millimeters a,
                                                   millimeters b) {
    return square_millimeters{a.value() * b.value()};
}

/// Area of a disc of the given radius (used for wafer area A_w).
[[nodiscard]] inline square_centimeters disc_area(centimeters radius) {
    constexpr double pi = 3.14159265358979323846;
    return square_centimeters{pi * radius.value() * radius.value()};
}

// ---------------------------------------------------------------------------
// Money
// ---------------------------------------------------------------------------

/// US dollars (1994 dollars throughout, matching the paper's calibration).
/// Negative amounts are permitted: cost deltas and margins can be negative.
class dollars {
public:
    constexpr dollars() noexcept = default;
    constexpr explicit dollars(double v) : value_{v} {
        if (std::isnan(v) || std::isinf(v)) {
            throw std::invalid_argument("dollars: value must be finite");
        }
    }

    [[nodiscard]] constexpr double value() const noexcept { return value_; }

    friend constexpr auto operator<=>(const dollars&, const dollars&) = default;
    friend constexpr dollars operator+(dollars a, dollars b) {
        return dollars{a.value_ + b.value_};
    }
    friend constexpr dollars operator-(dollars a, dollars b) {
        return dollars{a.value_ - b.value_};
    }
    friend constexpr dollars operator-(dollars a) { return dollars{-a.value_}; }
    friend constexpr dollars operator*(dollars a, double s) {
        return dollars{a.value_ * s};
    }
    friend constexpr dollars operator*(double s, dollars a) {
        return dollars{s * a.value_};
    }
    friend constexpr dollars operator/(dollars a, double s) {
        return dollars{a.value_ / s};
    }
    friend constexpr double operator/(dollars a, dollars b) {
        return a.value_ / b.value_;
    }

private:
    double value_ = 0.0;
};

// ---------------------------------------------------------------------------
// Probabilities / yields
// ---------------------------------------------------------------------------

/// A probability in [0, 1].  Used for yields and fault/escape probabilities.
/// Construction outside [0,1] throws; `clamped` saturates instead (useful
/// when composing models whose product may underflow the representable
/// range only through rounding).
class probability {
public:
    constexpr probability() noexcept = default;
    constexpr explicit probability(double v) : value_{v} {
        if (!(v >= 0.0 && v <= 1.0)) {  // rejects NaN
            throw std::invalid_argument("probability: value must be in [0,1]");
        }
    }

    /// Saturating factory: clamps v into [0,1]; NaN still throws.
    [[nodiscard]] static constexpr probability clamped(double v) {
        if (std::isnan(v)) {
            throw std::invalid_argument("probability: NaN");
        }
        return probability{v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v)};
    }

    [[nodiscard]] constexpr double value() const noexcept { return value_; }

    /// Complement 1 - p.
    [[nodiscard]] constexpr probability complement() const {
        return probability{1.0 - value_};
    }

    friend constexpr auto operator<=>(const probability&,
                                      const probability&) = default;

    /// Product of independent probabilities (e.g. Y = Y_fnc * Y_par).
    friend constexpr probability operator*(probability a, probability b) {
        return probability{a.value_ * b.value_};
    }

private:
    double value_ = 0.0;
};

}  // namespace silicon
