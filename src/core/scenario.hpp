// scenario.hpp — the paper's manufacturing scenarios (Eqs. 8 and 9).
//
// Scenario #1 (Sec. IV.A, Fig. 6) — the optimistic memory-style operation:
//   S1.1  X in 1.1-1.3
//   S1.2  product is a DRAM with working redundancy (d_d ~ 30)
//   S1.3  mature yield is 100%
//   S1.4  high volume, zero overhead
// With Y = 1 the die partitioning cancels out of Eq. (1) and the cost per
// transistor is Eq. (8):
//
//     C_tr = C'_w(lambda) * d_d * lambda^2 / A_w
//
// Scenario #2 (Fig. 7) — the realistic custom-microprocessor operation:
//   S2.1  X in 1.8-2.4
//   S2.2  die size follows the Fig. 3 trend A_ch(lambda) = 16.5 e^(-5.3 lambda)
//   S2.3  yield is Y_0 = 70% for a 1 cm^2 die at every generation
//   S2.4  high volume, zero overhead
// which yields Eq. (9):
//
//     C_tr = C'_w(lambda) * d_d * lambda^2 / (A_w * Y_0^(A_ch(lambda)/A_0))
//
// The headline reproduction: under #1 cost per transistor *falls* as
// lambda shrinks; under #2 it *rises* — "a decrease in the feature size
// causes an increase in the transistor cost!".

#pragma once

#include "core/units.hpp"
#include "cost/wafer_cost.hpp"
#include "geometry/wafer.hpp"
#include "yield/scaled.hpp"

namespace silicon::core {

/// Scenario #1 parameters with the paper's Fig. 6 defaults.
struct scenario1 {
    cost::wafer_cost_model wafer_cost{dollars{500.0}, 1.2};
    geometry::wafer wafer = geometry::wafer::six_inch();
    double design_density = 30.0;  ///< DRAM-class d_d

    /// Eq. (8).
    [[nodiscard]] dollars cost_per_transistor(microns lambda) const;
};

/// Scenario #2 parameters with the paper's Fig. 7 defaults.
struct scenario2 {
    cost::wafer_cost_model wafer_cost{dollars{500.0}, 1.8};
    geometry::wafer wafer = geometry::wafer::six_inch();
    double design_density = 200.0;  ///< custom-logic d_d
    yield::reference_die_yield yield{probability{0.7}};  ///< S2.3

    /// The die area the Fig. 3 trend dictates at this feature size.
    [[nodiscard]] square_centimeters die_area(microns lambda) const;

    /// Transistor count implied by the trend die at this feature size
    /// (A_ch / (d_d lambda^2)) — grows as lambda shrinks, matching S2.2.
    [[nodiscard]] double transistors(microns lambda) const;

    /// Eq. (9).
    [[nodiscard]] dollars cost_per_transistor(microns lambda) const;
};

}  // namespace silicon::core
