#include "core/cost_model.hpp"

#include "opt/minimize.hpp"

#include <stdexcept>

namespace silicon::core {

cost_model::cost_model(process_spec process) : process_{std::move(process)} {}

cost_breakdown cost_model::evaluate(const product_spec& product,
                                    const economics_spec& economics) const {
    cost_breakdown breakdown;
    breakdown.product_name = product.name;
    breakdown.feature_size = product.feature_size;
    breakdown.die_area = product.die_area();

    const geometry::die die = product.make_die();
    breakdown.gross_dies_per_wafer = geometry::gross_dies(
        process_.wafer, die, process_.dies_per_wafer_method);
    if (breakdown.gross_dies_per_wafer <= 0) {
        throw std::domain_error("cost_model: product '" + product.name +
                                "' does not fit on the wafer");
    }

    breakdown.yield =
        process_.evaluate_yield(breakdown.die_area, product.feature_size);
    if (breakdown.yield.value() <= 0.0) {
        throw std::domain_error("cost_model: yield underflowed to zero for "
                                "product '" +
                                product.name + "'");
    }
    breakdown.good_dies_per_wafer =
        static_cast<double>(breakdown.gross_dies_per_wafer) *
        breakdown.yield.value();

    breakdown.wafer_cost = process_.wafer_cost.wafer_cost_at_volume(
        product.feature_size, economics.overhead, economics.volume_wafers);

    breakdown.cost_per_good_die =
        dollars{breakdown.wafer_cost.value() /
                breakdown.good_dies_per_wafer};
    breakdown.cost_per_transistor =
        dollars{breakdown.cost_per_good_die.value() / product.transistors};
    return breakdown;
}

dollars cost_model::cost_per_transistor(const product_spec& product,
                                        const economics_spec& economics)
    const {
    return evaluate(product, economics).cost_per_transistor;
}

microns cost_model::optimal_feature_size(const product_spec& product,
                                         microns lo, microns hi,
                                         const economics_spec& economics,
                                         unsigned parallelism) const {
    if (!(lo.value() > 0.0) || !(lo.value() < hi.value())) {
        throw std::invalid_argument(
            "cost_model: feature size interval must be positive and "
            "non-empty");
    }
    const auto objective = [&](double lambda) {
        product_spec probe = product;
        probe.feature_size = microns{lambda};
        try {
            return cost_per_transistor(probe, economics).value();
        } catch (const std::domain_error&) {
            // Doesn't fit / yield underflow: price it out of the search.
            return 1e300;
        }
    };
    const opt::scalar_minimum best = opt::grid_then_golden(
        objective, lo.value(), hi.value(), 96, 1e-6, parallelism);
    if (best.value >= 1e300) {
        throw std::domain_error(
            "cost_model: no feasible feature size in the interval");
    }
    return microns{best.x};
}

}  // namespace silicon::core
