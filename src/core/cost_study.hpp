// cost_study.hpp — one-call product cost study document.
//
// The paper's closing ask is "tools performing system level design cost
// optimization"; the entry ticket for such a tool is a readable cost
// study.  `write_cost_study` runs the whole battery for one product —
// Eq. (1) breakdown, dies-per-wafer estimator cross-check, lambda
// sensitivity sweep, ranked cost drivers, test economics and packaged
// cost — and renders it as a markdown document.

#pragma once

#include "core/cost_drivers.hpp"
#include "core/cost_model.hpp"
#include "cost/assembly.hpp"
#include "cost/test_cost.hpp"

#include <string>

namespace silicon::core {

/// Optional study stages beyond the silicon breakdown.
struct cost_study_options {
    bool include_test = true;
    cost::tester_spec tester;
    cost::test_program test_program;   ///< transistors auto-filled
    dollars field_cost_per_escape{250.0};

    bool include_packaging = true;
    cost::package_spec package;

    bool include_lambda_sweep = true;
    microns sweep_lo{0.5};
    microns sweep_hi{1.0};
    int sweep_points = 11;

    bool include_drivers = true;  ///< requires reference yield form
};

/// Produce the study as a markdown string.
[[nodiscard]] std::string render_cost_study(
    const process_spec& process, const product_spec& product,
    const cost_study_options& options = {});

/// Render and write to `path` (throws std::runtime_error on I/O error).
void write_cost_study(const std::string& path, const process_spec& process,
                      const product_spec& product,
                      const cost_study_options& options = {});

}  // namespace silicon::core
