#include "core/dft_case.hpp"

#include <limits>
#include <stdexcept>

namespace silicon::core {

double dft_response::coverage(double area_overhead) const {
    if (area_overhead < 0.0) {
        throw std::invalid_argument("dft_response: negative overhead");
    }
    const double gap = max_coverage - base_coverage;
    return base_coverage +
           gap * area_overhead / (area_overhead + coverage_area_50);
}

double dft_response::compression(double area_overhead) const {
    if (area_overhead < 0.0) {
        throw std::invalid_argument("dft_response: negative overhead");
    }
    return 1.0 + (max_compression - 1.0) * area_overhead /
                     (area_overhead + compression_area_50);
}

dft_case_result evaluate_dft_case(const process_spec& process,
                                  const product_spec& product,
                                  const cost::tester_spec& tester,
                                  const cost::test_program& base_program,
                                  dollars field_cost_per_escape,
                                  const dft_response& response,
                                  const std::vector<double>& overheads) {
    std::vector<double> sweep = overheads;
    if (sweep.empty()) {
        for (int i = 0; i <= 25; ++i) {
            sweep.push_back(0.01 * i);
        }
    }

    const cost_model model{process};
    dft_case_result result;
    result.best.total_per_shipped_die =
        dollars{std::numeric_limits<double>::max()};

    for (double overhead : sweep) {
        // DFT area scales the effective design density: same transistor
        // count, (1 + overhead) times the silicon.
        product_spec padded = product;
        padded.design_density = product.design_density * (1.0 + overhead);
        const cost_breakdown silicon_cost = model.evaluate(padded);

        cost::test_program program = base_program;
        program.fault_coverage = response.coverage(overhead);
        program.vectors_per_kilotransistor =
            base_program.vectors_per_kilotransistor /
            response.compression(overhead);

        const cost::test_economics test = cost::evaluate_test_economics(
            tester, program, silicon_cost.yield, field_cost_per_escape);

        dft_point point;
        point.area_overhead = overhead;
        point.coverage = program.fault_coverage;
        point.compression = response.compression(overhead);
        point.silicon_per_good_die = silicon_cost.cost_per_good_die;
        point.test_per_shipped_die =
            test.probe_per_good_die + test.final_per_good_die;
        point.escape_cost = test.escape_cost_per_shipped_die;
        point.shipped_defect_level = test.shipped_defect_level;
        point.total_per_shipped_die = point.silicon_per_good_die +
                                      point.test_per_shipped_die +
                                      point.escape_cost;
        result.sweep.push_back(point);

        if (point.total_per_shipped_die <
            result.best.total_per_shipped_die) {
            result.best = point;
        }
        if (overhead == sweep.front()) {
            result.no_dft = point;
        }
    }
    result.saving_fraction =
        1.0 - result.best.total_per_shipped_die.value() /
                  result.no_dft.total_per_shipped_die.value();
    return result;
}

}  // namespace silicon::core
