#include "core/cost_drivers.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::core {

cost_driver_report analyze_cost_drivers(const process_spec& process,
                                        const product_spec& product) {
    const auto* reference =
        std::get_if<yield::reference_die_yield>(&process.yield);
    if (reference == nullptr) {
        throw std::invalid_argument(
            "analyze_cost_drivers: requires the reference (Y_0, A_0) "
            "yield form");
    }

    cost_driver_report report;
    report.nominal = cost_model{process}.evaluate(product);

    const std::vector<opt::parameter> parameters = {
        {"C_0 (reference wafer cost)",
         process.wafer_cost.c0().value()},
        {"X (cost escalation rate)", process.wafer_cost.x()},
        {"lambda (feature size)", product.feature_size.value()},
        {"d_d (design density)", product.design_density},
        {"N_tr (transistor count)", product.transistors},
        {"R_w (wafer radius)",
         process.wafer.radius().value()},
        {"Y_0 (reference yield)", reference->y0().value()},
    };

    const auto objective = [&](const std::vector<double>& v) {
        const dollars c0{v[0]};
        const double x = v[1];
        const microns lambda{v[2]};
        const double dd = v[3];
        const double n_tr = v[4];
        const centimeters rw{v[5]};
        const probability y0 = probability::clamped(v[6]);

        // Fully smooth closed form of Eq. (1): N_ch = A_w / A_die with
        // no floor(), so the central differences see real derivatives
        // instead of integer staircase plateaus.
        const cost::wafer_cost_model wafer_cost{
            c0, x, process.wafer_cost.generation_step()};
        const double wafer_cm2 =
            disc_area(rw).value();
        const double die_cm2 =
            n_tr * dd * lambda.value() * lambda.value() * 1e-8;
        const yield::reference_die_yield yield_model{y0, reference->a0()};
        const double y =
            yield_model.yield(square_centimeters{die_cm2}).value();
        const double dies = wafer_cm2 / die_cm2;
        return wafer_cost.pure_wafer_cost(lambda).value() /
               (dies * n_tr * y);
    };

    report.drivers =
        opt::ranked(opt::elasticities(objective, parameters));
    return report;
}

}  // namespace silicon::core
