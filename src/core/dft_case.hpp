// dft_case.hpp — the DFT/BIST business case (Sec. VI).
//
// "DFT and BIST techniques exist to minimize cost and complexity of test
// generation.  But designers are wary to allocate the resources (such as
// silicon area, and/or performance) ...  The problem is lack of adequate
// procedure which quantifies the benefit."
//
// This module is that procedure: it composes the Eq. (1) silicon cost
// model with the test economics model so that the *whole* consequence of
// a DFT decision is priced at once —
//
//   costs of DFT:   area overhead -> larger die -> fewer dies per wafer
//                   and lower yield (Eq. 6/7/9 all punish area);
//   benefits:       higher fault coverage -> fewer shipped escapes, and
//                   vector compression -> less tester time.
//
// The optimizer sweeps the overhead fraction (coverage and compression
// modeled as saturating functions of invested area) and reports the
// minimum total cost per shipped part.

#pragma once

#include "core/cost_model.hpp"
#include "cost/test_cost.hpp"

#include <vector>

namespace silicon::core {

/// How invested DFT area buys coverage and compression.
struct dft_response {
    double base_coverage = 0.90;   ///< coverage with no DFT
    double max_coverage = 0.999;   ///< asymptote with heavy DFT
    double coverage_area_50 = 0.05;///< overhead at which half the
                                   ///< coverage gap is closed
    double max_compression = 8.0;  ///< vector compression asymptote
    double compression_area_50 = 0.08;

    /// Coverage at a given area overhead (saturating).
    [[nodiscard]] double coverage(double area_overhead) const;

    /// Compression factor at a given area overhead (>= 1).
    [[nodiscard]] double compression(double area_overhead) const;
};

/// One point of the sweep.
struct dft_point {
    double area_overhead = 0.0;       ///< fraction of base die area
    double coverage = 0.0;
    double compression = 1.0;
    dollars silicon_per_good_die{0.0};
    dollars test_per_shipped_die{0.0};
    dollars escape_cost{0.0};
    dollars total_per_shipped_die{0.0};
    probability shipped_defect_level{0.0};
};

/// Result of the case study.
struct dft_case_result {
    std::vector<dft_point> sweep;
    dft_point best;             ///< minimum total cost point
    dft_point no_dft;           ///< the 0-overhead baseline
    double saving_fraction = 0.0;  ///< 1 - best/no_dft
};

/// Evaluate the business case for a product on a process.  The field
/// cost per escape is the lever that makes coverage valuable.
/// `overheads` defaults to a 0..25% sweep.
[[nodiscard]] dft_case_result evaluate_dft_case(
    const process_spec& process, const product_spec& product,
    const cost::tester_spec& tester, const cost::test_program& base_program,
    dollars field_cost_per_escape, const dft_response& response = {},
    const std::vector<double>& overheads = {});

}  // namespace silicon::core
