// specs.hpp — input specifications for the integrated cost model.
//
// Eq. (1), C_tr = C_w / (N_ch * N_tr * Y), needs three ingredient groups:
// what is being built (product_spec), how (process_spec: wafer cost model,
// wafer geometry, yield model) and under which business conditions
// (economics_spec: volume, overhead).  These are plain value types; the
// evaluator lives in cost_model.hpp.

#pragma once

#include "core/units.hpp"
#include "cost/wafer_cost.hpp"
#include "geometry/gross_die.hpp"
#include "geometry/wafer.hpp"
#include "yield/scaled.hpp"

#include <string>
#include <variant>

namespace silicon::core {

/// The IC being priced.
struct product_spec {
    std::string name;
    double transistors = 1e6;       ///< N_tr
    double design_density = 150.0;  ///< d_d, lambda^2 per transistor
    microns feature_size{0.8};      ///< lambda
    double die_aspect_ratio = 1.0;  ///< a/b of the die (1 = square)

    /// Die area from Eq. (5): A_ch = N_tr * d_d * lambda^2.
    [[nodiscard]] square_millimeters die_area() const;

    /// Die rectangle with the requested aspect ratio.
    [[nodiscard]] geometry::die make_die() const;
};

/// Yield model choice: the Table 3 / Eq. (9) reference form, the Eq. (7)
/// lambda-scaled form, or a fixed probability (Scenario #1's "mature
/// yield is 100%" is probability{1}).
using yield_spec = std::variant<yield::reference_die_yield,
                                yield::scaled_poisson_model, probability>;

/// The manufacturing process and its wafer.
struct process_spec {
    cost::wafer_cost_model wafer_cost;
    geometry::wafer wafer;
    yield_spec yield;
    geometry::gross_die_method dies_per_wafer_method =
        geometry::gross_die_method::maly_rows;

    /// Evaluate the configured yield model for a die.
    [[nodiscard]] probability evaluate_yield(square_millimeters die_area,
                                             microns lambda) const;
};

/// Business conditions for Eq. (2).  The paper's high-volume scenarios
/// use overhead = 0 (assumption S.1.4).
struct economics_spec {
    dollars overhead{0.0};          ///< C_over, total per period
    double volume_wafers = 1.0;     ///< wafers per period sharing it

    /// Default: the paper's zero-overhead high-volume operation.
    [[nodiscard]] static economics_spec high_volume() { return {}; }
};

}  // namespace silicon::core
