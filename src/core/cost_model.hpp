// cost_model.hpp — the integrated transistor cost model (paper Eq. 1).
//
//     C_tr = C_w / (N_ch * N_tr * Y)
//
// with C_w from Eqs. (2)+(3), N_ch from Eq. (4), N_tr/A_ch from Eq. (5)
// and Y from Eq. (6)/(7)/(9) depending on the configured yield_spec.
// This is the class Table 3 and Fig. 8 are generated with, and the main
// entry point of the library.

#pragma once

#include "core/specs.hpp"

namespace silicon::core {

/// Full decomposition of one evaluation — every intermediate the paper's
/// equations produce, so tables can print any column.
struct cost_breakdown {
    std::string product_name;
    microns feature_size{0.0};
    square_millimeters die_area{0.0};
    long gross_dies_per_wafer = 0;      ///< N_ch
    probability yield{0.0};             ///< Y
    double good_dies_per_wafer = 0.0;   ///< N_ch * Y
    dollars wafer_cost{0.0};            ///< C_w at the configured volume
    dollars cost_per_good_die{0.0};     ///< C_w / (N_ch * Y)
    dollars cost_per_transistor{0.0};   ///< Eq. (1)

    /// Cost per transistor in the paper's Table 3 unit, micro-dollars.
    [[nodiscard]] double cost_per_transistor_micro_dollars() const {
        return cost_per_transistor.value() * 1e6;
    }
};

/// Evaluator binding a process to Eq. (1).
class cost_model {
public:
    explicit cost_model(process_spec process);

    [[nodiscard]] const process_spec& process() const noexcept {
        return process_;
    }

    /// Evaluate the full breakdown for a product under the given
    /// economics.  Throws std::domain_error when the die does not fit on
    /// the wafer (N_ch = 0) or the yield underflows to zero.
    [[nodiscard]] cost_breakdown evaluate(
        const product_spec& product,
        const economics_spec& economics = economics_spec::high_volume())
        const;

    /// Cost per transistor only — the objective used by optimizers.
    [[nodiscard]] dollars cost_per_transistor(
        const product_spec& product,
        const economics_spec& economics = economics_spec::high_volume())
        const;

    /// The feature size in [lo, hi] minimizing cost per transistor for a
    /// product at fixed transistor count (Sec. IV.B's lambda_opt).  Grid
    /// scan plus golden-section refinement; returns the refined lambda.
    /// `parallelism` fans the grid scan across the exec engine
    /// (0 = hardware, 1 = serial); the result is identical either way.
    [[nodiscard]] microns optimal_feature_size(
        const product_spec& product, microns lo, microns hi,
        const economics_spec& economics = economics_spec::high_volume(),
        unsigned parallelism = 1) const;

private:
    process_spec process_;
};

}  // namespace silicon::core
