#include "core/scenario.hpp"

#include "tech/roadmap.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::core {

dollars scenario1::cost_per_transistor(microns lambda) const {
    if (!(lambda.value() > 0.0)) {
        throw std::invalid_argument("scenario1: lambda must be positive");
    }
    const dollars cw = wafer_cost.pure_wafer_cost(lambda);
    // Transistors per wafer: A_w / (d_d lambda^2); areas in um^2
    // (1 cm^2 = 1e8 um^2).
    const double wafer_um2 = wafer.area().value() * 1e8;
    const double area_per_transistor_um2 =
        design_density * lambda.value() * lambda.value();
    return dollars{cw.value() * area_per_transistor_um2 / wafer_um2};
}

square_centimeters scenario2::die_area(microns lambda) const {
    return tech::microprocessor_die_area(lambda);
}

double scenario2::transistors(microns lambda) const {
    const double area_um2 = die_area(lambda).value() * 1e8;
    return area_um2 /
           (design_density * lambda.value() * lambda.value());
}

dollars scenario2::cost_per_transistor(microns lambda) const {
    if (!(lambda.value() > 0.0)) {
        throw std::invalid_argument("scenario2: lambda must be positive");
    }
    const dollars cw = wafer_cost.pure_wafer_cost(lambda);
    const double wafer_um2 = wafer.area().value() * 1e8;
    const double area_per_transistor_um2 =
        design_density * lambda.value() * lambda.value();
    const probability y = yield.yield(die_area(lambda));
    if (y.value() <= 0.0) {
        throw std::domain_error("scenario2: yield underflowed to zero");
    }
    return dollars{cw.value() * area_per_transistor_um2 /
                   (wafer_um2 * y.value())};
}

}  // namespace silicon::core
