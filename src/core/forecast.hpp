// forecast.hpp — transistor cost trends projected onto calendar time.
//
// Section III states the analysis goal: "(a) determine whether transistor
// cost trends known from the past will continue into the future".  The
// scenarios answer in feature-size space; this module composes them with
// the Fig. 1 feature-size-vs-year trend to answer in *time*: the cost per
// transistor each scenario predicts for each roadmap year, the
// year-over-year cost change, and the reversal year (if any) where the
// historic decline stops — the paper's "cost per transistor may no longer
// decrease" [10] moment.

#pragma once

#include "core/scenario.hpp"

#include <optional>
#include <vector>

namespace silicon::core {

/// One forecast year.
struct forecast_point {
    int year = 0;
    microns lambda{0.0};         ///< trend feature size that year
    dollars memory_ctr{0.0};     ///< Scenario #1 cost per transistor
    dollars logic_ctr{0.0};      ///< Scenario #2 cost per transistor
};

/// The composed forecast.
struct transistor_cost_forecast {
    std::vector<forecast_point> points;
    std::optional<int> logic_reversal_year;  ///< first year the logic
                                             ///< C_tr rises, if any
    double memory_cagr = 0.0;    ///< compound annual change of memory C_tr
    double logic_cagr = 0.0;     ///< same for logic
};

/// Time-varying escalation rate: the paper's history has X near the
/// benign 1.2-1.4 band (its own Fig. 2 extraction) and warns that "the
/// value of X in the future is likely to grow" toward 2.4.  The default
/// schedule ramps linearly across the early 90s.
struct x_schedule {
    double x_early = 1.3;
    double x_late = 2.2;
    int ramp_start = 1990;
    int ramp_end = 1996;

    /// X in effect during `year`.
    [[nodiscard]] double at(int year) const;
};

/// Forecast from `first_year` to `last_year` (inclusive) using the
/// roadmap feature-size trend and the given scenarios.  When `schedule`
/// is provided, the logic scenario's X follows it year by year (C_0 and
/// the rest of the scenario are kept).  Years where the trend lambda
/// leaves a scenario's valid domain are skipped.
/// Throws std::invalid_argument when the year range is empty.
[[nodiscard]] transistor_cost_forecast forecast_transistor_cost(
    const scenario1& memory, const scenario2& logic, int first_year,
    int last_year, const std::optional<x_schedule>& schedule = {});

}  // namespace silicon::core
