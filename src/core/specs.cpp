#include "core/specs.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::core {

square_millimeters product_spec::die_area() const {
    if (!(transistors > 0.0)) {
        throw std::invalid_argument(
            "product_spec: transistor count must be positive");
    }
    if (!(design_density > 0.0)) {
        throw std::invalid_argument(
            "product_spec: design density must be positive");
    }
    const double lambda = feature_size.value();
    if (!(lambda > 0.0)) {
        throw std::invalid_argument(
            "product_spec: feature size must be positive");
    }
    // um^2 -> mm^2 is 1e-6.
    return square_millimeters{transistors * design_density * lambda *
                              lambda * 1e-6};
}

geometry::die product_spec::make_die() const {
    if (!(die_aspect_ratio > 0.0)) {
        throw std::invalid_argument(
            "product_spec: die aspect ratio must be positive");
    }
    const double area_mm2 = die_area().value();
    // a/b = aspect, a*b = area  =>  b = sqrt(area/aspect).
    const double b = std::sqrt(area_mm2 / die_aspect_ratio);
    const double a = die_aspect_ratio * b;
    return geometry::die{millimeters{a}, millimeters{b}};
}

probability process_spec::evaluate_yield(square_millimeters die_area,
                                         microns lambda) const {
    return std::visit(
        [&](const auto& model) -> probability {
            using T = std::decay_t<decltype(model)>;
            if constexpr (std::is_same_v<T, yield::reference_die_yield>) {
                return model.yield(die_area.to_square_centimeters());
            } else if constexpr (std::is_same_v<
                                     T, yield::scaled_poisson_model>) {
                return model.yield(die_area.to_square_centimeters(), lambda);
            } else {
                return model;  // fixed probability
            }
        },
        yield);
}

}  // namespace silicon::core
