// shrink.hpp — product shrink (optical die shrink) economics.
//
// The yield model the paper builds on (ref [26]) is titled "Yield Model
// for Manufacturing Strategy Planning and *Product Shrink* Applications":
// the strategic question is whether to port an existing design to a finer
// process.  A shrink multiplies every figure in Eq. (1) at once —
//
//   die area        falls as (lambda_new / lambda_old)^2,
//   dies per wafer  rise accordingly,
//   wafer cost      rises as X^(generations stepped),
//   yield           moves by the configured yield model (under Eq. (7)
//                   the smaller die fights a denser killer-defect
//                   population; under the reference model the smaller
//                   die simply yields better),
//
// and the verdict is the cost-per-good-die ratio.  `analyze_shrink`
// reports every factor plus the break-even X: the escalation rate above
// which the shrink stops paying.

#pragma once

#include "core/cost_model.hpp"

namespace silicon::core {

/// The decomposed outcome of a shrink.
struct shrink_analysis {
    microns lambda_old{0.0};
    microns lambda_new{0.0};
    cost_breakdown before;
    cost_breakdown after;
    double area_ratio = 0.0;        ///< new/old die area
    double gross_die_ratio = 0.0;   ///< new/old dies per wafer
    double wafer_cost_ratio = 0.0;  ///< new/old wafer cost
    double yield_ratio = 0.0;       ///< new/old yield
    double cost_ratio = 0.0;        ///< new/old cost per good die
    bool shrink_pays = false;       ///< cost_ratio < 1

    /// X at which the shrink would exactly break even, holding
    /// everything else fixed: X_be = X * cost_ratio^(-1/generations).
    double breakeven_x = 0.0;
};

/// Analyze porting `product` from its current feature size to
/// `lambda_new` on the same process environment.  Throws
/// std::invalid_argument when lambda_new >= the product's current
/// feature size (that would be a reverse shrink) or is non-positive.
[[nodiscard]] shrink_analysis analyze_shrink(const process_spec& process,
                                             const product_spec& product,
                                             microns lambda_new);

}  // namespace silicon::core
