#include "core/shrink.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::core {

shrink_analysis analyze_shrink(const process_spec& process,
                               const product_spec& product,
                               microns lambda_new) {
    if (!(lambda_new.value() > 0.0)) {
        throw std::invalid_argument(
            "analyze_shrink: target feature size must be positive");
    }
    if (!(lambda_new.value() < product.feature_size.value())) {
        throw std::invalid_argument(
            "analyze_shrink: target must be finer than the current "
            "feature size");
    }

    const cost_model model{process};
    shrink_analysis analysis;
    analysis.lambda_old = product.feature_size;
    analysis.lambda_new = lambda_new;
    analysis.before = model.evaluate(product);

    product_spec shrunk = product;
    shrunk.feature_size = lambda_new;
    analysis.after = model.evaluate(shrunk);

    analysis.area_ratio =
        analysis.after.die_area.value() / analysis.before.die_area.value();
    analysis.gross_die_ratio =
        static_cast<double>(analysis.after.gross_dies_per_wafer) /
        static_cast<double>(analysis.before.gross_dies_per_wafer);
    analysis.wafer_cost_ratio = analysis.after.wafer_cost.value() /
                                analysis.before.wafer_cost.value();
    analysis.yield_ratio =
        analysis.after.yield.value() / analysis.before.yield.value();
    analysis.cost_ratio = analysis.after.cost_per_good_die.value() /
                          analysis.before.cost_per_good_die.value();
    analysis.shrink_pays = analysis.cost_ratio < 1.0;

    // cost_ratio scales as (X_be / X)^generations for the wafer-cost
    // part; solving cost_ratio_target = 1:
    const double generations =
        (product.feature_size.value() - lambda_new.value()) /
        process.wafer_cost.generation_step().value();
    analysis.breakeven_x =
        process.wafer_cost.x() *
        std::pow(analysis.cost_ratio, -1.0 / generations);
    return analysis;
}

}  // namespace silicon::core
