#include "core/system_optimizer.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace silicon::core {

namespace {

/// Merge blocks into one die description: counts add, density is the
/// transistor-weighted mean (each block keeps its own layout style).
std::pair<double, double> merge(const std::vector<opt::block>& group) {
    double transistors = 0.0;
    double weighted_density = 0.0;
    for (const opt::block& b : group) {
        transistors += b.transistors;
        weighted_density += b.transistors * b.design_density;
    }
    const double density =
        transistors > 0.0 ? weighted_density / transistors : 0.0;
    return {transistors, density};
}

/// Best (cost, lambda) for one merged die, or +inf when nothing in range
/// is feasible.
std::pair<double, double> price_die(const cost_model& model,
                                    const system_optimization_config& config,
                                    double transistors, double density) {
    product_spec product;
    product.name = "partition";
    product.transistors = transistors;
    product.design_density = density;

    try {
        // Nested use inside the partition fan-out degrades to serial
        // per the exec rules; the monolithic baseline still benefits.
        const microns best = model.optimal_feature_size(
            product, config.lambda_lo, config.lambda_hi,
            economics_spec::high_volume(), config.parallelism);
        product.feature_size = best;
        const cost_breakdown breakdown = model.evaluate(product);
        return {breakdown.cost_per_good_die.value(), best.value()};
    } catch (const std::domain_error&) {
        return {std::numeric_limits<double>::infinity(), 0.0};
    }
}

}  // namespace

system_solution optimize_system(const std::vector<system_block>& blocks,
                                const system_optimization_config& config) {
    if (blocks.empty()) {
        throw std::invalid_argument("optimize_system: no blocks");
    }
    const cost_model model{config.process};

    std::vector<opt::block> opt_blocks;
    opt_blocks.reserve(blocks.size());
    for (const system_block& b : blocks) {
        if (!(b.transistors > 0.0) || !(b.design_density > 0.0)) {
            throw std::invalid_argument("optimize_system: block '" + b.name +
                                        "' has non-positive size/density");
        }
        opt_blocks.push_back({b.name, b.transistors, b.design_density});
    }

    const opt::die_cost_fn die_cost =
        [&](const std::vector<opt::block>& group) {
            const auto [transistors, density] = merge(group);
            return price_die(model, config, transistors, density);
        };
    const opt::packaging_cost_fn packaging_cost = [&](std::size_t dies) {
        const double n = static_cast<double>(dies);
        return config.packaging.per_system_base.value() +
               config.packaging.per_die.value() * n +
               config.packaging.integration_per_extra_die.value() *
                   (n - 1.0);
    };

    const opt::partition_solution best = opt::optimize_partitions(
        opt_blocks, die_cost, packaging_cost, /*max_blocks=*/10,
        config.parallelism);

    system_solution solution;
    for (const opt::die_assignment& die : best.dies) {
        optimized_die out;
        std::vector<opt::block> group;
        for (std::size_t bi : die.block_indices) {
            out.block_names.push_back(blocks[bi].name);
            group.push_back(opt_blocks[bi]);
        }
        const auto [transistors, density] = merge(group);
        out.transistors = transistors;
        out.design_density = density;
        out.lambda = microns{die.chosen_lambda};
        out.cost_per_good_die = dollars{die.cost};
        solution.dies.push_back(std::move(out));
    }
    solution.silicon_cost = dollars{best.die_cost_total};
    solution.packaging_cost = dollars{best.packaging_cost};
    solution.total_cost = dollars{best.total_cost};

    // Monolithic baseline: everything on one die.
    const auto [all_tr, all_density] = merge(opt_blocks);
    const auto [mono_cost, mono_lambda] =
        price_die(model, config, all_tr, all_density);
    (void)mono_lambda;
    if (std::isfinite(mono_cost)) {
        solution.monolithic_cost =
            dollars{mono_cost + packaging_cost(1)};
    } else {
        solution.monolithic_cost =
            dollars{std::numeric_limits<double>::max()};
    }
    return solution;
}

}  // namespace silicon::core
