// table3.hpp — the paper's Table 3: cost per transistor across products.
//
// Table 3 is the paper's central quantitative exhibit: 17
// product/manufacturing scenarios priced with "the cost model constructed
// of equations (1), (3), (4) and (7)" (with the yield entered through the
// per-row (Y_0, A_0 = 1 cm^2) reference form, which is Eq. (7)'s Poisson
// ancestor Eq. (6) reparameterized).  The printed input columns are
//: N_tr, lambda, d_d, R_w, Y_0, C_0, X; the output column is C_tr in
// micro-dollars.
//
// Reproduction status (full derivation in EXPERIMENTS.md):
//   * With the wafer-cost exponent (1-lambda)/0.2 (see wafer_cost.hpp),
//     rows 1-3, 5, 7-14 and 17 reproduce the printed C_tr to within the
//     rounding of the printed inputs (a few percent; rows 1-3, 13, 14 to
//     all printed digits).
//   * Rows 4, 15 and 16 do not print N_tr legibly in the source scan;
//     their `transistors` value here is reconstructed (from gate counts
//     and printed utilization for 15/16, and by inversion of the printed
//     C_tr for 4) and the rows are flagged `reconstructed`.

#pragma once

#include "core/cost_model.hpp"

#include <string>
#include <vector>

namespace silicon::core {

/// One row of Table 3 as printed (plus provenance flag).
struct table3_row {
    int index = 0;              ///< 1-based row number in the paper
    std::string ic_type;        ///< last column
    double transistors = 0.0;   ///< N_tr
    double lambda_um = 0.0;     ///< minimum feature size
    double design_density = 0.0;///< d_d
    double wafer_radius_cm = 0.0;
    double y0 = 0.0;            ///< reference yield for a 1 cm^2 die
    double c0_usd = 0.0;        ///< 1 um reference wafer cost
    double x = 0.0;             ///< cost escalation rate
    double printed_ctr_micro = 0.0;  ///< paper's C_tr in 1e-6 dollars
    bool reconstructed = false; ///< N_tr not legible; reconstructed input
};

/// All 17 rows in paper order.
[[nodiscard]] const std::vector<table3_row>& table3_rows();

/// Build the cost model a row describes and evaluate it.
[[nodiscard]] cost_breakdown reproduce_row(const table3_row& row);

/// One row's reproduction verdict.
struct table3_comparison {
    table3_row row;
    cost_breakdown computed;
    double computed_ctr_micro = 0.0;
    double ratio = 0.0;  ///< computed / printed
};

/// Reproduce the whole table.
[[nodiscard]] std::vector<table3_comparison> reproduce_table3();

/// The paper's two Sec. IV.C conclusions, checkable from the rows:
/// memory rows (11-14) are far cheaper per transistor than every logic
/// row.  Returns min(logic C_tr) / max(memory C_tr) using computed
/// values — > 1 confirms the separation.
[[nodiscard]] double memory_logic_separation();

}  // namespace silicon::core
