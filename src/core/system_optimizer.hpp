// system_optimizer.hpp — system-level cost optimization (Sec. IV.B).
//
// Glue between the integrated cost model and the generic partition
// optimizer: a system is a list of functional blocks (Table 1 style);
// each candidate die merges some blocks (transistor counts add; the die's
// design density is the transistor-weighted mean), gets its own optimal
// feature size from cost_model::optimal_feature_size, and is priced per
// good die.  Multi-die solutions pay packaging per die plus an MCM-style
// integration premium that grows with die count.
//
// This realizes the paper's claim that "the optimum solution may not call
// for the smallest possible (and expensive) feature size" — dense cache
// blocks and sparse control blocks generally prefer different lambdas.

#pragma once

#include "core/cost_model.hpp"
#include "opt/partition.hpp"

#include <string>
#include <vector>

namespace silicon::core {

/// One functional block of the system.
struct system_block {
    std::string name;
    double transistors = 0.0;
    double design_density = 150.0;
};

/// Packaging economics of a multi-die solution.
struct packaging_spec {
    dollars per_die{3.0};          ///< package/attach per die
    dollars per_system_base{5.0};  ///< board or substrate base
    dollars integration_per_extra_die{4.0};  ///< inter-die wiring/test
};

/// Configuration for the optimizer.
struct system_optimization_config {
    process_spec process;           ///< shared wafer/X/yield environment
    microns lambda_lo{0.25};        ///< feature-size search range
    microns lambda_hi{1.0};
    packaging_spec packaging;
    double volume_systems = 1e5;    ///< (reserved for overhead spreading)
    /// Fan the candidate-die pricing across the exec engine
    /// (0 = hardware concurrency, 1 = serial).  The solution is
    /// bit-identical at every value — only wall-clock changes.
    unsigned parallelism = 0;
};

/// A solved die.
struct optimized_die {
    std::vector<std::string> block_names;
    double transistors = 0.0;
    double design_density = 0.0;
    microns lambda{0.0};
    dollars cost_per_good_die{0.0};
};

/// The optimized system.
struct system_solution {
    std::vector<optimized_die> dies;
    dollars silicon_cost{0.0};
    dollars packaging_cost{0.0};
    dollars total_cost{0.0};

    /// Cost of the same system forced onto a single die at its best
    /// lambda — the baseline the partitioning is compared against.
    dollars monolithic_cost{0.0};
};

/// Exhaustively optimize the block partitioning (<= 10 blocks).
/// Throws std::invalid_argument on empty input; blocks a single die
/// cannot yield at any lambda in range are handled by pricing that
/// grouping out of the search.
[[nodiscard]] system_solution optimize_system(
    const std::vector<system_block>& blocks,
    const system_optimization_config& config);

}  // namespace silicon::core
