// cost_performance — the two-objective view the paper says design must
// adopt: "typical design/test objectives were focused on the IC
// performance only and manufacturing costs were determined through ...
// arbitrary decisions" (Sec. IV).  Sweeps technology choices for one
// product, prices each with the full model, scores performance with the
// classic constant-field scaling proxy (speed ~ 1/lambda), and extracts
// the cost/performance Pareto front.

#include "analysis/table.hpp"
#include "core/cost_model.hpp"
#include "opt/pareto.hpp"

#include <cmath>
#include <iostream>

int main() {
    using namespace silicon;

    core::product_spec product;
    product.name = "1.2M-transistor CPU core";
    product.transistors = 1.2e6;
    product.design_density = 200.0;

    std::vector<opt::design_point> candidates;
    analysis::text_table table;
    table.add_column("lambda [um]", analysis::align::right, 2);
    table.add_column("wafer", analysis::align::left);
    table.add_column("X", analysis::align::right, 1);
    table.add_column("die cost [$]", analysis::align::right, 2);
    table.add_column("relative speed", analysis::align::right, 2);

    for (double lambda : {1.0, 0.8, 0.65, 0.5, 0.35}) {
        for (bool eight_inch : {false, true}) {
            // Newer fabs run finer processes at higher X; the 8-inch
            // line charges a higher C_0 but holds more dies.
            // Lambda-scaled yield (Eq. 7, mature-line D): finer nodes
            // pay real yield, making speed genuinely expensive.
            core::process_spec process{
                cost::wafer_cost_model{
                    dollars{eight_inch ? 900.0 : 700.0}, 1.8},
                eight_inch ? geometry::wafer::eight_inch()
                           : geometry::wafer::six_inch(),
                yield::scaled_poisson_model{0.05, 4.07},
                geometry::gross_die_method::maly_rows};
            core::product_spec p = product;
            p.feature_size = microns{lambda};
            const core::cost_breakdown b =
                core::cost_model{process}.evaluate(p);

            opt::design_point point;
            point.label = analysis::format_number(lambda, 2) + " um / " +
                          (eight_inch ? "8\"" : "6\"");
            point.cost = b.cost_per_good_die.value();
            point.merit = 1.0 / lambda;  // constant-field speed proxy
            candidates.push_back(point);

            table.begin_row();
            table.add_number(lambda);
            table.add_cell(eight_inch ? "8-inch" : "6-inch");
            table.add_number(1.8);
            table.add_number(point.cost);
            table.add_number(point.merit);
        }
    }
    std::cout << table.to_string() << "\n";

    const auto front = opt::pareto_front(candidates);
    std::cout << "Pareto-efficient choices (cost up, speed up):\n";
    for (const opt::design_point& p : front) {
        std::cout << "  " << p.label << ": $" << p.cost
                  << " per good die at " << p.merit << "x speed\n";
    }
    std::cout << "\ndominated points pay more silicon for less speed -- "
                 "the cost axis removes " << candidates.size() - front.size()
              << " of " << candidates.size()
              << " seemingly reasonable technology choices.\n";
    return 0;
}
