// system_partitioning — the Sec. IV.B design flow: take the functional
// blocks of the Table 1 microprocessor, let each candidate die choose its
// own optimal feature size, and search all partitions of blocks onto
// dies.  Shows that the cheapest system is often neither monolithic nor
// fully split, and that cache and logic dies prefer different lambdas.

#include "core/system_optimizer.hpp"
#include "tech/density.hpp"

#include <iostream>

int main() {
    using namespace silicon;

    // The system: Table 1's blocks (0.8 um reference design).
    std::vector<core::system_block> blocks;
    for (const tech::functional_block& b : tech::table1_blocks()) {
        blocks.push_back({b.name, b.transistors, b.printed_dd});
    }
    std::cout << "system: " << blocks.size()
              << " functional blocks of the 3.1M-transistor uP of "
                 "Table 1\n\n";

    core::system_optimization_config config{
        core::process_spec{
            cost::wafer_cost_model{dollars{700.0}, 1.8},
            geometry::wafer::six_inch(),
            yield::scaled_poisson_model::fig8_calibration(),
            geometry::gross_die_method::maly_rows},
        microns{0.4},
        microns{1.0},
        core::packaging_spec{},
        1e5};

    const core::system_solution best =
        core::optimize_system(blocks, config);

    std::cout << "optimal partitioning (" << best.dies.size()
              << " dies):\n";
    for (const core::optimized_die& die : best.dies) {
        std::cout << "  die @ " << die.lambda.value() << " um, "
                  << die.transistors / 1e6 << "M transistors, d_d "
                  << die.design_density << ", $"
                  << die.cost_per_good_die.value() << "/good die  [";
        for (std::size_t i = 0; i < die.block_names.size(); ++i) {
            std::cout << (i ? ", " : "") << die.block_names[i];
        }
        std::cout << "]\n";
    }
    std::cout << "\nsilicon:    $" << best.silicon_cost.value()
              << "\npackaging:  $" << best.packaging_cost.value()
              << "\ntotal:      $" << best.total_cost.value()
              << "\nmonolithic: $" << best.monolithic_cost.value()
              << "  (single die at its own best lambda)\n";
    const double saving =
        (1.0 - best.total_cost.value() / best.monolithic_cost.value()) *
        100.0;
    std::cout << "partitioning saves " << saving << "% vs monolithic\n\n";

    std::cout << "the paper's Sec. IV.B point, demonstrated: \"by "
                 "including in the IC system design\nprocess such "
                 "variables as sizes of the system's partitions and "
                 "minimum feature sizes\nof each partition one can "
                 "minimize the overall system cost\" -- and \"the optimum\n"
                 "solution may not call for the smallest possible (and "
                 "expensive) feature size.\"\n";
    return 0;
}
