// cost_study — produce the full markdown cost study for a product.
// The one-call deliverable a design team would attach to a technology
// review: silicon breakdown, wafer map, feature-size sensitivity, ranked
// cost drivers, test and packaging economics.
//
// usage: cost_study [output.md]

#include "core/cost_study.hpp"

#include <iostream>

int main(int argc, char** argv) {
    using namespace silicon;

    core::process_spec process{
        cost::wafer_cost_model{dollars{700.0}, 1.8},
        geometry::wafer::six_inch(),
        yield::reference_die_yield{probability{0.7}},
        geometry::gross_die_method::maly_rows};

    core::product_spec product;
    product.name = "2.8M-transistor CMOS microprocessor";
    product.transistors = 2.8e6;
    product.design_density = 102.0;
    product.feature_size = microns{0.65};

    core::cost_study_options options;
    options.tester.rate_per_hour = dollars{1800.0};
    options.test_program.fault_coverage = 0.95;
    options.test_program.vectors_per_kilotransistor = 2.0;
    options.package.pins = 273;
    options.package.cost_per_pin = dollars{0.03};
    options.sweep_lo = microns{0.5};
    options.sweep_hi = microns{0.9};

    if (argc > 1) {
        core::write_cost_study(argv[1], process, product, options);
        std::cout << "wrote " << argv[1] << "\n";
    } else {
        std::cout << core::render_cost_study(process, product, options);
    }
    return 0;
}
