// scenario_explorer — interactive-style exploration of the paper's two
// manufacturing futures (Sec. IV.A).  Takes optional command-line
// overrides and prints both scenarios side by side, answering: at which
// escalation rate X does the cost-per-transistor decline stall?
//
// usage: scenario_explorer [C0] [dd_memory] [dd_logic] [Y0]

#include "analysis/ascii_chart.hpp"
#include "analysis/table.hpp"
#include "core/scenario.hpp"

#include <cstdlib>
#include <iostream>

int main(int argc, char** argv) {
    using namespace silicon;

    const double c0 = argc > 1 ? std::atof(argv[1]) : 500.0;
    const double dd_memory = argc > 2 ? std::atof(argv[2]) : 30.0;
    const double dd_logic = argc > 3 ? std::atof(argv[3]) : 200.0;
    const double y0 = argc > 4 ? std::atof(argv[4]) : 0.7;
    std::cout << "inputs: C0=$" << c0 << "  d_d(memory)=" << dd_memory
              << "  d_d(logic)=" << dd_logic << "  Y0=" << y0 << "\n\n";

    // Side-by-side table over lambda for a moderate X.
    analysis::text_table table;
    table.add_column("lambda [um]", analysis::align::right, 2);
    table.add_column("#1 memory [u$/tr]", analysis::align::right, 4);
    table.add_column("#2 logic [u$/tr]", analysis::align::right, 2);
    table.add_column("logic/memory", analysis::align::right, 1);

    core::scenario1 s1;
    s1.wafer_cost = cost::wafer_cost_model{dollars{c0}, 1.2};
    s1.design_density = dd_memory;
    core::scenario2 s2;
    s2.wafer_cost = cost::wafer_cost_model{dollars{c0}, 2.0};
    s2.design_density = dd_logic;
    s2.yield = yield::reference_die_yield{probability{y0}};

    analysis::series memory{"Scenario #1 (memory, X=1.2)"};
    analysis::series logic{"Scenario #2 (logic, X=2.0)"};
    for (double lambda = 1.0; lambda >= 0.249; lambda -= 0.05) {
        const double m =
            s1.cost_per_transistor(microns{lambda}).value() * 1e6;
        const double l =
            s2.cost_per_transistor(microns{lambda}).value() * 1e6;
        table.begin_row();
        table.add_number(lambda);
        table.add_number(m);
        table.add_number(l);
        table.add_number(l / m);
        memory.add(lambda, m);
        logic.add(lambda, l);
    }
    std::cout << table.to_string() << "\n";

    analysis::ascii_chart_options options;
    options.title = "cost per transistor [u$], log scale";
    options.x_label = "minimum feature size [um]";
    options.y_scale = analysis::scale::log10;
    std::cout << analysis::render_ascii_chart({memory, logic}, options)
              << "\n";

    // Where does the Scenario-2 decline stall?  Sweep X and report the
    // ratio C_tr(0.25)/C_tr(0.8): above 1 means shrinking *raises* cost.
    analysis::text_table stall;
    stall.add_column("X", analysis::align::right, 2);
    stall.add_column("C(0.25um)/C(0.8um)", analysis::align::right, 3);
    stall.add_column("shrink pays?", analysis::align::left);
    for (double x = 1.1; x <= 2.45; x += 0.15) {
        core::scenario2 probe;
        probe.wafer_cost = cost::wafer_cost_model{dollars{c0}, x};
        probe.design_density = dd_logic;
        probe.yield = yield::reference_die_yield{probability{y0}};
        const double ratio =
            probe.cost_per_transistor(microns{0.25}).value() /
            probe.cost_per_transistor(microns{0.8}).value();
        stall.begin_row();
        stall.add_number(x);
        stall.add_number(ratio);
        stall.add_cell(ratio < 1.0 ? "yes" : "NO - cost rises");
    }
    std::cout << stall.to_string()
              << "\nthe paper's message: for realistic X and yields, "
                 "\"continuation of the trend towards\nsmaller feature "
                 "size may become unhealthy or even damaging for some "
                 "classes of ICs.\"\n";
    return 0;
}
