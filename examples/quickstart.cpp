// quickstart — the five-minute tour of the library: price a real product
// (a 0.8 um 3.1M-transistor BiCMOS microprocessor, Table 3 row 1) with
// the full Eq. (1) model and print every intermediate, then find its
// cost-optimal feature size and show the wafer map.

#include "core/cost_model.hpp"
#include "geometry/wafer_map.hpp"

#include <iostream>

int main() {
    using namespace silicon;

    // 1. Describe the manufacturing process: a 6-inch line whose wafer
    //    cost escalates at X = 1.4 per 0.2 um generation from a $700
    //    reference, yielding 90% on a 1 cm^2 die.
    core::process_spec process{
        cost::wafer_cost_model{dollars{700.0}, 1.4},
        geometry::wafer::six_inch(),
        yield::reference_die_yield{probability{0.9}},
        geometry::gross_die_method::maly_rows,
    };

    // 2. Describe the product: Eq. (5) turns transistor count and design
    //    density into die area.
    core::product_spec product;
    product.name = "BiCMOS microprocessor";
    product.transistors = 3.1e6;
    product.design_density = 150.0;  // lambda^2 per transistor
    product.feature_size = microns{0.8};

    // 3. Evaluate Eq. (1).
    const core::cost_model model{process};
    const core::cost_breakdown b = model.evaluate(product);

    std::cout << "product:             " << b.product_name << "\n"
              << "die area:            " << b.die_area.value() << " mm^2\n"
              << "gross dies/wafer:    " << b.gross_dies_per_wafer << "\n"
              << "functional yield:    " << b.yield.value() * 100.0
              << " %\n"
              << "good dies/wafer:     " << b.good_dies_per_wafer << "\n"
              << "wafer cost:          $" << b.wafer_cost.value() << "\n"
              << "cost per good die:   $" << b.cost_per_good_die.value()
              << "\n"
              << "cost per transistor: "
              << b.cost_per_transistor_micro_dollars()
              << " micro-dollars  (paper Table 3 row 1: 9.40)\n\n";

    // 4. Ask the design question of Sec. IV.B: which feature size
    //    actually minimizes this product's cost per transistor?
    const microns best =
        model.optimal_feature_size(product, microns{0.5}, microns{1.0});
    core::product_spec at_best = product;
    at_best.feature_size = best;
    std::cout << "lambda_opt in [0.5, 1.0] um: " << best.value()
              << " um -> "
              << model.evaluate(at_best).cost_per_transistor_micro_dollars()
              << " micro-dollars/transistor\n\n";

    // 5. Look at the wafer.
    std::cout << "wafer map (" << b.gross_dies_per_wafer
              << " whole dies by Eq. (4); '#' = placed die):\n"
              << geometry::render_wafer_map(process.wafer,
                                            product.make_die());
    return 0;
}
