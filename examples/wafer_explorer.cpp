// wafer_explorer — interactive die-placement tool.  Pass a die edge (mm),
// optionally a wafer radius (cm) and scribe width (mm), and get every
// gross-die estimate, the placement map, and the per-die silicon cost at
// a reference process.
//
// usage: wafer_explorer [die_edge_mm] [wafer_radius_cm] [scribe_mm]

#include "analysis/table.hpp"
#include "core/cost_model.hpp"
#include "geometry/wafer_map.hpp"

#include <cstdlib>
#include <iostream>

int main(int argc, char** argv) {
    using namespace silicon;

    const double edge = argc > 1 ? std::atof(argv[1]) : 12.0;
    const double radius = argc > 2 ? std::atof(argv[2]) : 7.5;
    const double scribe = argc > 3 ? std::atof(argv[3]) : 0.0;
    if (edge <= 0.0 || radius <= 0.0 || scribe < 0.0) {
        std::cerr << "usage: wafer_explorer [die_edge_mm] "
                     "[wafer_radius_cm] [scribe_mm]\n";
        return 1;
    }

    const geometry::wafer w{centimeters{radius}};
    const geometry::die d = geometry::die::square(millimeters{edge});
    std::cout << "wafer: R = " << radius << " cm (" << w.area().value()
              << " cm^2); die: " << edge << " x " << edge << " mm ("
              << d.area().value() << " mm^2); scribe: " << scribe
              << " mm\n\n";

    analysis::text_table table;
    table.add_column("estimator", analysis::align::left);
    table.add_column("N_ch", analysis::align::right, 0);
    table.add_column("silicon used", analysis::align::right, 3);
    const double wafer_mm2 = w.area().to_square_millimeters().value();
    for (const geometry::gross_die_method method :
         {geometry::gross_die_method::area_ratio,
          geometry::gross_die_method::circumference,
          geometry::gross_die_method::ferris_prabhu,
          geometry::gross_die_method::maly_rows,
          geometry::gross_die_method::maly_rows_best_orient,
          geometry::gross_die_method::exact}) {
        const long n = geometry::gross_dies(w, d, method,
                                            millimeters{scribe});
        table.begin_row();
        table.add_cell(geometry::to_string(method));
        table.add_integer(n);
        table.add_number(static_cast<double>(n) * d.area().value() /
                         wafer_mm2);
    }
    std::cout << table.to_string() << "\n";

    std::cout << geometry::render_wafer_map(w, d, millimeters{scribe})
              << "\n";

    // Cost of this die on a reference 0.8 um process.
    core::process_spec process{
        cost::wafer_cost_model{dollars{700.0}, 1.8},
        w, yield::reference_die_yield{probability{0.7}},
        geometry::gross_die_method::maly_rows};
    core::product_spec product;
    product.name = "explorer die";
    product.feature_size = microns{0.8};
    product.design_density = 200.0;
    // Pick the transistor count that fills the requested die.
    product.transistors = d.area().value() * 1e6 /
                          (product.design_density * 0.8 * 0.8);
    try {
        const core::cost_breakdown b =
            core::cost_model{process}.evaluate(product);
        std::cout << "at 0.8 um / d_d 200 / Y0 0.7 / C0 $700 / X 1.8:\n"
                  << "  " << product.transistors / 1e6
                  << "M transistors, yield " << b.yield.value() * 100.0
                  << "%, $" << b.cost_per_good_die.value()
                  << " per good die, "
                  << b.cost_per_transistor_micro_dollars()
                  << " u$/transistor\n";
    } catch (const std::domain_error& e) {
        std::cout << "cost model: " << e.what() << "\n";
    }
    return 0;
}
