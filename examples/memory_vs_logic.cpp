// memory_vs_logic — why "what is cost effective for memories is not
// necessarily beneficial for non-memory products" (Sec. IV.D).
//
// Prices one DRAM and one microprocessor through the full chain at each
// technology generation, with the DRAM enjoying redundancy repair and the
// logic die paying full Poisson yield, and shows the per-transistor cost
// gap and its growth as features shrink.

#include "analysis/table.hpp"
#include "core/cost_model.hpp"
#include "tech/roadmap.hpp"
#include "yield/redundancy.hpp"
#include "yield/scaled.hpp"

#include <iostream>

int main() {
    using namespace silicon;

    const yield::scaled_poisson_model defects{1.0, 4.07};

    analysis::text_table table;
    table.add_column("lambda [um]", analysis::align::right, 2);
    table.add_column("DRAM die [mm^2]", analysis::align::right, 0);
    table.add_column("DRAM Y (repair)", analysis::align::right, 3);
    table.add_column("DRAM Y (none)", analysis::align::right, 3);
    table.add_column("DRAM [u$/tr]", analysis::align::right, 3);
    table.add_column("uP [u$/tr]", analysis::align::right, 2);
    table.add_column("uP / DRAM", analysis::align::right, 1);

    for (double lambda : {1.0, 0.8, 0.6, 0.5, 0.35}) {
        // --- DRAM: dense cells, redundancy covers the array.
        core::product_spec dram;
        dram.name = "DRAM";
        dram.transistors = 4.1e6 * std::pow(1.0 / lambda, 1.2);
        dram.design_density = 30.0;
        dram.feature_size = microns{lambda};
        const square_centimeters dram_area =
            dram.die_area().to_square_centimeters();
        // 90% of the die is repairable array with 16 usable spares.
        const yield::redundant_memory_model repair{
            square_centimeters{dram_area.value() * 0.9},
            square_centimeters{dram_area.value() * 0.1}, 16};
        const double d_eff =
            defects.effective_defect_density(microns{lambda});
        const probability y_repaired = repair.yield(d_eff);
        const probability y_unrepaired =
            repair.yield_without_repair(d_eff);

        core::process_spec dram_process{
            cost::wafer_cost_model{dollars{400.0}, 1.5},
            geometry::wafer::six_inch(), y_repaired,
            geometry::gross_die_method::maly_rows};
        const core::cost_breakdown dram_cost =
            core::cost_model{dram_process}.evaluate(dram);

        // --- Microprocessor: sparse logic, no repair possible.
        core::product_spec up;
        up.name = "uP";
        up.transistors = 2e6 * std::pow(0.8 / lambda, 1.5);
        up.design_density = 170.0;
        up.feature_size = microns{lambda};
        core::process_spec up_process{
            cost::wafer_cost_model{dollars{700.0}, 1.8},
            geometry::wafer::six_inch(), defects,
            geometry::gross_die_method::maly_rows};
        const core::cost_breakdown up_cost =
            core::cost_model{up_process}.evaluate(up);

        table.begin_row();
        table.add_number(lambda);
        table.add_number(dram_cost.die_area.value());
        table.add_number(y_repaired.value());
        table.add_number(y_unrepaired.value());
        table.add_number(dram_cost.cost_per_transistor_micro_dollars());
        table.add_number(up_cost.cost_per_transistor_micro_dollars());
        table.add_number(up_cost.cost_per_transistor.value() /
                         dram_cost.cost_per_transistor.value());
    }
    std::cout << table.to_string() << "\n";
    std::cout
        << "three paper messages in one table:\n"
           "  1. redundancy keeps DRAM yield high where the same silicon "
           "without repair collapses\n     (assumption S.1.2 and its "
           "criticism: \"only memories enjoy the benefits of "
           "redundancy\");\n"
           "  2. the memory/logic per-transistor cost gap is an order of "
           "magnitude and widens with shrink;\n"
           "  3. hence \"any discussion or decision made based on the "
           "memory cost data should not be\n     extrapolated onto other "
           "types of ICs\" (Sec. IV.C).\n";
    return 0;
}
