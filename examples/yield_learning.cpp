// yield_learning — Phase-2 economics from Sec. V: "computer aids in rapid
// yield learning" as a cost lever.  Models defect density falling along a
// learning curve after a process ramp, prices a product quarter by
// quarter, and quantifies what doubling the learning rate is worth --
// exactly the kind of design/CAD-adjacent investment the paper argues the
// industry will need.

#include "analysis/ascii_chart.hpp"
#include "analysis/table.hpp"
#include "core/cost_model.hpp"
#include "cost/test_cost.hpp"

#include <cmath>
#include <iostream>
#include <tuple>

namespace {

// Defect density learning curve: D(t) = D_end + (D_0 - D_end) e^(-t/tau).
double defect_density(double quarters, double d0, double d_end,
                      double tau) {
    return d_end + (d0 - d_end) * std::exp(-quarters / tau);
}

}  // namespace

int main() {
    using namespace silicon;

    core::product_spec product;
    product.name = "0.5 um ASIC";
    product.transistors = 1.5e6;
    product.design_density = 160.0;
    product.feature_size = microns{0.5};
    const square_centimeters die_area =
        product.die_area().to_square_centimeters();

    const double d0 = 4.0;     // defects/cm^2 at ramp start
    const double d_end = 0.6;  // mature-line floor
    const double slow_tau = 4.0;   // quarters
    const double fast_tau = 2.0;   // with rapid yield learning tools

    analysis::text_table table;
    table.add_column("quarter");
    table.add_column("D slow", analysis::align::right, 2);
    table.add_column("Y slow", analysis::align::right, 3);
    table.add_column("C_tr slow [u$]", analysis::align::right, 2);
    table.add_column("D fast", analysis::align::right, 2);
    table.add_column("Y fast", analysis::align::right, 3);
    table.add_column("C_tr fast [u$]", analysis::align::right, 2);

    analysis::series slow{"slow learning (tau=4q)"};
    analysis::series fast{"fast learning (tau=2q)"};
    double slow_total = 0.0;
    double fast_total = 0.0;
    for (int q = 0; q <= 11; ++q) {
        const auto price = [&](double tau) {
            const double d =
                defect_density(q, d0, d_end, tau);
            core::process_spec process{
                cost::wafer_cost_model{dollars{900.0}, 1.8},
                geometry::wafer::six_inch(),
                probability{std::exp(-die_area.value() * d)},
                geometry::gross_die_method::maly_rows};
            return std::tuple{
                d,
                std::exp(-die_area.value() * d),
                core::cost_model{process}
                    .evaluate(product)
                    .cost_per_transistor_micro_dollars()};
        };
        const auto [ds, ys, cs] = price(slow_tau);
        const auto [df, yf, cf] = price(fast_tau);
        table.begin_row();
        table.add_integer(q);
        table.add_number(ds);
        table.add_number(ys);
        table.add_number(cs);
        table.add_number(df);
        table.add_number(yf);
        table.add_number(cf);
        slow.add(q, cs);
        fast.add(q, cf);
        slow_total += cs;
        fast_total += cf;
    }
    std::cout << table.to_string() << "\n";

    analysis::ascii_chart_options options;
    options.title = "C_tr [u$/transistor] over the ramp";
    options.x_label = "quarters since ramp start";
    std::cout << analysis::render_ascii_chart({slow, fast}, options)
              << "\n";

    std::cout << "3-year average C_tr: slow " << slow_total / 12.0
              << " u$ vs fast " << fast_total / 12.0 << " u$ -> "
              << (1.0 - fast_total / slow_total) * 100.0
              << "% silicon cost saved by halving the learning time "
                 "constant.\n\n"
              << "Sec. V, Phase 2: niche producers \"will also invest in "
                 "such manufacturing cost cutting\ndirections as computer "
                 "aids in rapid yield learning, DFM and flexible fabline "
                 "control.\"\nThis example quantifies that investment "
                 "case.\n";
    return 0;
}
