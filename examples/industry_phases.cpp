// industry_phases — Sec. V's "past-momentum-driven" evolution, walked
// through with the library's models.  Each phase of the paper's four-
// phase vision is quantified with the substrate that matters for it:
//
//   Phase 1  the investment race        -> fab NPV vs utilization
//   Phase 2  smart cost cutting         -> renting capacity / mix costs
//   Phase 3  fabless vs mega-fabline    -> niche wafer-cost penalty
//   Phase 4  co-synthesis beginning     -> system partitioning gains
//
// Not a forecast — a demonstration that every lever in the paper's
// narrative is computable with analytical (not accounting) cost models,
// which is exactly the paper's closing demand.

#include "core/system_optimizer.hpp"
#include "cost/investment.hpp"
#include "cost/product_mix.hpp"
#include "tech/density.hpp"

#include <iostream>

int main() {
    using namespace silicon;

    std::cout << "Phase 1: the invest-now-to-dominate-later race\n"
                 "----------------------------------------------\n";
    cost::fab_investment race;
    race.capital = dollars{1000e6};
    race.life_quarters = 24;
    race.wafers_per_quarter = 60000.0;
    race.margin_per_wafer = dollars{2200.0};
    race.margin_erosion_per_quarter = 0.03;
    race.discount_rate_per_quarter = 0.03;
    for (double utilization : {0.95, 0.7, 0.45}) {
        cost::fab_investment probe = race;
        probe.utilization = utilization;
        std::cout << "  utilization " << utilization * 100.0 << "%: NPV $"
                  << cost::investment_npv(probe).value() / 1e6 << "M\n";
    }
    std::cout << "  only near-full loading wins the race; \"high volume\" "
                 "is not a choice but a survival\n  condition.\n\n";

    std::cout << "Phase 2: winners rent capacity, losers pay the mix tax\n"
                 "------------------------------------------------------\n";
    const cost::fabline line = cost::fabline::generic_cmos();
    const cost::wafer_recipe mono = cost::fabline::generic_recipe(0.8, 2);
    const cost::mix_comparison niche = cost::compare_mono_vs_multi(
        line, mono, 50000.0, cost::diverse_mix(8, 40.0));
    std::cout << "  niche 8-product line: $"
              << niche.multi.cost_per_wafer.value()
              << "/wafer vs commodity $"
              << niche.mono.cost_per_wafer.value() << " -> "
              << niche.cost_ratio << "x penalty\n";
    const cost::mix_comparison rented = cost::compare_mono_vs_multi(
        line, mono, 50000.0, cost::diverse_mix(8, 2000.0));
    std::cout << "  same products renting slack mega-fab capacity: "
              << rented.cost_ratio
              << "x -- the economic force that makes niche houses "
                 "fabless.\n\n";

    std::cout << "Phase 3: what the fabless-niche/mega-fab split costs\n"
                 "----------------------------------------------------\n";
    std::cout << "  the mix tax above *is* Phase 3: \"one-size-fits-all\" "
                 "technologies priced for DRAM\n  volumes serve diverse "
                 "low-volume ICs at multiples of their efficient cost "
                 "(Table 3's\n  cost diversity column).\n\n";

    std::cout << "Phase 4: co-synthesis — cost models in the design loop\n"
                 "------------------------------------------------------\n";
    std::vector<core::system_block> blocks;
    for (const tech::functional_block& b : tech::table1_blocks()) {
        blocks.push_back({b.name, b.transistors, b.printed_dd});
    }
    core::system_optimization_config config{
        core::process_spec{
            cost::wafer_cost_model{dollars{700.0}, 1.8},
            geometry::wafer::six_inch(),
            yield::scaled_poisson_model::fig8_calibration(),
            geometry::gross_die_method::maly_rows},
        microns{0.4},
        microns{1.0},
        core::packaging_spec{},
        1e5};
    const core::system_solution best =
        core::optimize_system(blocks, config);
    std::cout << "  Table 1 uP re-partitioned by the optimizer: "
              << best.dies.size() << " dies, $"
              << best.total_cost.value() << " vs monolithic $"
              << best.monolithic_cost.value() << " ("
              << (1.0 -
                  best.total_cost.value() / best.monolithic_cost.value()) *
                     100.0
              << "% saved)\n";
    std::cout << "  \"system/circuit/device/layout/process co-synthesis\" "
                 "starts paying the moment cost\n  models sit inside the "
                 "design loop -- the paper's closing thesis.\n";
    return 0;
}
