// fab_investment — the Sec. V "invest-now-to-dominate-later" bet, priced.
// Evaluates a $1B fabline (the paper's headline number) over a 6-year
// horizon: cash flow table, payback quarter, NPV sensitivity to
// utilization and margin erosion, and the break-even utilization that
// decides who can afford to stay in manufacturing.

#include "analysis/ascii_chart.hpp"
#include "analysis/table.hpp"
#include "cost/investment.hpp"

#include <iostream>

int main() {
    using namespace silicon;

    cost::fab_investment plan;
    plan.capital = dollars{1000e6};       // "1 billion dollars per fabline"
    plan.life_quarters = 24;
    plan.wafers_per_quarter = 60000.0;
    plan.ramp_quarters = 4;
    plan.utilization = 0.9;
    plan.margin_per_wafer = dollars{2200.0};
    plan.margin_erosion_per_quarter = 0.03;  // "decrease in previously
                                             //  lucrative profit margins"
    plan.discount_rate_per_quarter = 0.03;

    const cost::investment_result result =
        cost::evaluate_investment(plan);

    analysis::text_table table;
    table.add_column("quarter");
    table.add_column("wafers", analysis::align::right, 0);
    table.add_column("margin/wafer [$]", analysis::align::right, 0);
    table.add_column("cash [M$]", analysis::align::right, 1);
    table.add_column("cum. NPV [M$]", analysis::align::right, 1);
    analysis::series npv_curve{"cumulative NPV [M$]"};
    for (const cost::quarter_cash_flow& q : result.quarters) {
        if (q.quarter % 2 == 0) {
            table.begin_row();
            table.add_integer(q.quarter);
            table.add_number(q.wafers);
            table.add_number(q.margin_per_wafer.value());
            table.add_number(q.cash.value() / 1e6);
            table.add_number(q.cumulative_npv.value() / 1e6);
        }
        npv_curve.add(q.quarter, q.cumulative_npv.value() / 1e6);
    }
    std::cout << table.to_string() << "\n";
    std::cout << "NPV at horizon: $" << result.npv.value() / 1e6
              << "M, payback in quarter " << result.payback_quarter
              << ", break-even utilization "
              << result.internal_utilization_breakeven * 100.0 << "%\n\n";

    analysis::ascii_chart_options options;
    options.title = "cumulative NPV [M$] of the $1B fab";
    options.x_label = "quarter";
    std::cout << analysis::render_ascii_chart({npv_curve}, options) << "\n";

    // Sensitivity: utilization x margin erosion.
    analysis::text_table grid;
    grid.add_column("utilization", analysis::align::right, 2);
    grid.add_column("erosion 1%/q NPV [M$]", analysis::align::right, 0);
    grid.add_column("erosion 3%/q NPV [M$]", analysis::align::right, 0);
    grid.add_column("erosion 6%/q NPV [M$]", analysis::align::right, 0);
    for (double utilization : {0.5, 0.65, 0.8, 0.95}) {
        grid.begin_row();
        grid.add_number(utilization);
        for (double erosion : {0.01, 0.03, 0.06}) {
            cost::fab_investment probe = plan;
            probe.utilization = utilization;
            probe.margin_erosion_per_quarter = erosion;
            grid.add_number(cost::investment_npv(probe).value() / 1e6);
        }
    }
    std::cout << grid.to_string() << "\n";
    std::cout
        << "the Sec. V mechanism in numbers: the bet only pays at high "
           "sustained utilization and\nslow margin erosion -- which is "
           "why \"winners of the race ... will be forced to maintain\n"
           "very high volume production to recover huge past investments\" "
           "(Phase 2) and why low-volume\nplayers go fabless (Phase 3).\n";
    return 0;
}
